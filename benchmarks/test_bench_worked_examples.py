"""Experiment E1: the paper's worked examples, certificates pinned.

Regenerates the quantities the paper derives by hand:

- Example 3.1/4.1 perm: final constraint 2*lambda >= 1; lambda = 1/2.
- Example 5.1 merge: lambda1 = lambda2 >= 1/2 ("the sum of two bound
  arguments always decreases in every recursive call").
- Example 6.1 parser: theta_et = theta_tn = 0, theta_ne = 1;
  alpha = beta = gamma >= 1/2.

The benchmark times the *entire* analysis (inter-argument inference
included) of each example.
"""

from fractions import Fraction

from repro.core import analyze_program, verify_proof
from repro.core.adornment import AdornedPredicate
from repro.corpus.registry import get_program, load

from benchmarks.conftest import emit


def _analyze(name):
    entry = get_program(name)
    program = load(entry)
    return analyze_program(program, entry.root, entry.mode)


def test_perm_example_3_1(benchmark):
    result = benchmark(_analyze, "perm")
    assert result.proved
    verify_proof(result.proof)
    node = AdornedPredicate(("perm", 2), "bf")
    weights = result.proof.proof_for(node).lambda_for(node)
    assert weights[1] >= Fraction(1, 2)
    emit(
        "E1_perm",
        "Example 3.1/4.1 (perm, mode bf)\n"
        "paper:    single constraint 2*lambda >= 1; lambda = 1/2 proves\n"
        "measured: verdict=%s lambda[arg1]=%s theta=1\n"
        % (result.status, weights[1]),
        data={"verdict": result.status, "lambda_arg1": str(weights[1])},
    )


def test_merge_example_5_1(benchmark):
    result = benchmark(_analyze, "merge_variant")
    assert result.proved
    verify_proof(result.proof)
    node = AdornedPredicate(("merge", 3), "bbf")
    weights = result.proof.proof_for(node).lambda_for(node)
    assert weights[1] == weights[2] >= Fraction(1, 2)
    emit(
        "E1_merge",
        "Example 5.1 (merge variant, mode bbf)\n"
        "paper:    lambda1 = lambda2 >= 1/2 (sum of both bound args "
        "decreases)\n"
        "measured: verdict=%s lambda=(%s, %s)\n"
        % (result.status, weights[1], weights[2]),
        data={
            "verdict": result.status,
            "lambda": [str(weights[1]), str(weights[2])],
        },
    )


def test_parser_example_6_1(benchmark):
    result = benchmark(_analyze, "expr_parser")
    assert result.proved
    verify_proof(result.proof)
    proof = [
        p for p in result.proof.scc_proofs if not p.trivially_nonrecursive
    ][0]
    e = AdornedPredicate(("e", 2), "bf")
    t = AdornedPredicate(("t", 2), "bf")
    n = AdornedPredicate(("n", 2), "bf")
    assert proof.thetas[(e, t)] == 0
    assert proof.thetas[(t, n)] == 0
    assert proof.thetas[(n, e)] == 1
    lambdas = {
        name: proof.lambda_for(AdornedPredicate((name, 2), "bf"))[1]
        for name in ("e", "t", "n")
    }
    assert all(v >= Fraction(1, 2) for v in lambdas.values())
    emit(
        "E1_parser",
        "Example 6.1 (expression parser, mode bf)\n"
        "paper:    theta_et = theta_tn = 0, theta_ne = 1;\n"
        "          alpha = beta = gamma >= 1/2\n"
        "measured: verdict=%s\n"
        "          theta_et=%s theta_tn=%s theta_ne=%s\n"
        "          lambda(e)=%s lambda(t)=%s lambda(n)=%s\n"
        % (
            result.status,
            proof.thetas[(e, t)], proof.thetas[(t, n)],
            proof.thetas[(n, e)],
            lambdas["e"], lambdas["t"], lambdas["n"],
        ),
        data={
            "verdict": result.status,
            "theta_et": str(proof.thetas[(e, t)]),
            "theta_tn": str(proof.thetas[(t, n)]),
            "theta_ne": str(proof.thetas[(n, e)]),
            "lambda": {k: str(v) for k, v in lambdas.items()},
        },
    )


def test_example_a1_with_transformation(benchmark):
    from repro.transform import normalize_program

    entry = get_program("example_a1")
    program = load(entry)

    def pipeline():
        transformed, _ = normalize_program(program, roots=[("p", 1)])
        return analyze_program(transformed, ("p", 1), "b")

    before = analyze_program(program, ("p", 1), "b")
    after = benchmark(pipeline)
    assert before.status == "UNKNOWN"
    assert after.status == "PROVED"
    emit(
        "E1_a1",
        "Example A.1 (Appendix A pipeline)\n"
        "paper:    undetectable as written; provable after safe\n"
        "          unfolding + predicate splitting + safe unfolding\n"
        "measured: before=%s after=%s\n" % (before.status, after.status),
        data={"before": before.status, "after": after.status},
    )
