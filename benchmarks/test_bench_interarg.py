"""Experiment E4: automatic inter-argument constraint inference.

The paper *imports* these constraints ("the required imported
feasibility constraints are taken as input, but are not automated") —
we reproduce the [VG90] derivation and pin the exact constraints the
paper quotes:

- ``append1 + append2 = append3`` (Section 3, Example 3.1),
- ``t1 >= 2 + t2`` for the parser SCC (Section 6.2),

plus the relations deeper corpus programs need, and the headline
dependence: perm flips PROVED -> UNKNOWN without them.
"""

from repro.core import AnalyzerSettings, analyze_program
from repro.corpus.registry import get_program, load
from repro.interarg import infer_interargument_constraints
from repro.linalg.constraints import Constraint
from repro.linalg.linexpr import LinearExpr
from repro.sizes.size_equations import arg_dimension

from benchmarks.conftest import emit


def dim(i):
    return LinearExpr.of(arg_dimension(i))


def test_append_constraint(benchmark):
    program = load(get_program("append_bbf"))
    env = benchmark(infer_interargument_constraints, program)
    poly = env.get(("append", 3))
    assert poly.entails_constraint(Constraint.eq(dim(1) + dim(2), dim(3)))
    emit(
        "E4_append",
        "append/3 inter-argument inference\n"
        "paper:    imported constraint append1 + append2 = append3\n"
        "measured:\n%s\n" % poly,
        data={"append/3": str(poly).splitlines()},
    )


def test_parser_constraint(benchmark):
    program = load(get_program("expr_parser"))
    env = benchmark(infer_interargument_constraints, program)
    rows = []
    data = {}
    for name in ("e", "t", "n"):
        poly = env.get((name, 2))
        assert poly.entails_constraint(Constraint.ge(dim(1), dim(2) + 2))
        rows.append("%s/2:\n%s" % (name, poly))
        data["%s/2" % name] = str(poly).splitlines()
    emit(
        "E4_parser",
        "parser SCC inter-argument inference\n"
        "paper:    t1 >= 2 + t2 'found by Van Gelder's methods'\n"
        "measured:\n" + "\n".join(rows) + "\n",
        data=data,
    )


def test_gcd_pipeline_constraints(benchmark):
    """Four predicates deep: less -> leq/sub -> mod -> gcd."""
    program = load(get_program("gcd_euclid"))
    env = benchmark(infer_interargument_constraints, program)
    less = env.get(("less", 2))
    sub = env.get(("sub", 3))
    mod = env.get(("mod", 3))
    assert less.entails_constraint(Constraint.ge(dim(2), dim(1) + 1))
    assert sub.entails_constraint(Constraint.eq(dim(1), dim(2) + dim(3)))
    # The key fact for gcd's decrease: remainder < divisor.
    assert mod.entails_constraint(Constraint.ge(dim(2), dim(3) + 1))
    emit(
        "E4_gcd",
        "gcd pipeline inference (less -> sub -> mod)\n"
        "less/2:\n%s\nsub/3:\n%s\nmod/3:\n%s\n" % (less, sub, mod),
        data={
            "less/2": str(less).splitlines(),
            "sub/3": str(sub).splitlines(),
            "mod/3": str(mod).splitlines(),
        },
    )


def test_perm_depends_on_interarg(benchmark):
    """The separation claim in one toggle."""
    entry = get_program("perm")
    program = load(entry)

    def both():
        with_ia = analyze_program(program, entry.root, entry.mode)
        without = analyze_program(
            program, entry.root, entry.mode,
            settings=AnalyzerSettings(use_interarg=False),
        )
        return with_ia.status, without.status

    with_status, without_status = benchmark(both)
    assert with_status == "PROVED"
    assert without_status == "UNKNOWN"
    emit(
        "E4_perm_toggle",
        "perm/2^bf with vs without inter-argument constraints\n"
        "with [VG90] import: %s\nwithout:            %s\n"
        % (with_status, without_status),
        data={"with_interarg": with_status, "without": without_status},
    )
