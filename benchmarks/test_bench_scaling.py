"""Experiment F1: scaling of the analysis with program size.

The paper claims a theoretical polynomial bound ("largely imaginary")
and that "in practice, Fourier-Motzkin elimination is simple and
adequate".  We regenerate that as three generated program families:

- ``ring(k)``   — one SCC of k mutually recursive predicates,
- ``chain(k)``  — k separate self-recursive SCCs in a call chain,
- ``wide(a)``   — one predicate of arity a, every argument decreasing.

All instances must be PROVED, and the series (analysis time, final
constraint rows) should grow smoothly — no exponential cliff.  Each
series runs through :func:`repro.batch.analyze_many` (the batch layer
the corpus drivers share), which reports per-item wall time and the
structural work counters the tables plot.
"""

import pytest

from repro.batch import BatchItem, analyze_many
from repro.core import analyze_program

from benchmarks.conftest import emit


def ring_program(k):
    """p1 -> p2 -> ... -> pk -> p1, argument shrinks at every hop."""
    lines = ["p1(0)."]
    for i in range(1, k + 1):
        succ = (i % k) + 1
        lines.append("p%d(s(X)) :- p%d(X)." % (i, succ))
    return "\n".join(lines)


def chain_program(k):
    """q1 calls q2 calls ... qk; each qi also recurses on a list."""
    lines = []
    for i in range(1, k + 1):
        lines.append("q%d([], [])." % i)
        if i < k:
            lines.append(
                "q%d([X|Xs], [X|Ys]) :- q%d(Xs, Zs), q%d(Zs, Ys)."
                % (i, i, i + 1)
            )
        else:
            lines.append("q%d([X|Xs], [X|Ys]) :- q%d(Xs, Ys)." % (i, i))
    return "\n".join(lines)


def wide_program(arity):
    """r(s(X1), ..., s(Xa)) :- r(X1, ..., Xa)."""
    args_head = ", ".join("s(X%d)" % i for i in range(arity))
    args_body = ", ".join("X%d" % i for i in range(arity))
    zeros = ", ".join("0" for _ in range(arity))
    return "r(%s).\nr(%s) :- r(%s)." % (zeros, args_head, args_body)


def measure_series(sized_sources, root_of, mode_of):
    """Run one generated family through the batch layer; returns the
    (size, verdict, seconds, rows, pivots) table rows."""
    items = [
        BatchItem(
            name=str(size), source=source,
            root=root_of(size), mode=mode_of(size),
        )
        for size, source in sized_sources
    ]
    report = analyze_many(items)
    return [
        (int(result.name), result.status, result.wall_time,
         result.constraint_rows, result.pivots)
        for result in report.results
    ]


def series_table(title, rows):
    lines = [
        "%-8s %10s %8s %8s %8s"
        % ("size", "verdict", "sec", "rows", "pivots")
    ]
    for size, verdict, seconds, count, pivots in rows:
        lines.append(
            "%-8s %10s %8.3f %8d %8d"
            % (size, verdict, seconds, count, pivots)
        )
    return title + "\n" + "\n".join(lines)


def series_data(rows):
    """The measured series as JSON-ready records."""
    return [
        {
            "size": size,
            "verdict": verdict,
            "seconds": seconds,
            "rows": count,
            "pivots": pivots,
        }
        for size, verdict, seconds, count, pivots in rows
    ]


def test_ring_scaling(benchmark):
    rows = measure_series(
        [(k, ring_program(k)) for k in (2, 4, 8, 12)],
        root_of=lambda k: ("p1", 1), mode_of=lambda k: "b",
    )
    for k, status, _, _, _ in rows:
        assert status == "PROVED", "ring(%d)" % k
    benchmark.pedantic(
        lambda: analyze_program(ring_program(8), ("p1", 1), "b"),
        rounds=3, iterations=1,
    )
    emit("F1_ring", series_table("mutual-recursion ring(k)", rows),
         data=series_data(rows))


def test_chain_scaling(benchmark):
    rows = measure_series(
        [(k, chain_program(k)) for k in (2, 4, 8, 12)],
        root_of=lambda k: ("q1", 2), mode_of=lambda k: "bf",
    )
    for k, status, _, _, _ in rows:
        assert status == "PROVED", "chain(%d)" % k
    benchmark.pedantic(
        lambda: analyze_program(chain_program(8), ("q1", 2), "bf"),
        rounds=3, iterations=1,
    )
    emit("F1_chain", series_table("SCC chain(k)", rows),
         data=series_data(rows))


def test_arity_scaling(benchmark):
    rows = measure_series(
        [(arity, wide_program(arity)) for arity in (1, 2, 4, 6, 8)],
        root_of=lambda arity: ("r", arity),
        mode_of=lambda arity: "b" * arity,
    )
    for arity, status, _, _, _ in rows:
        assert status == "PROVED", "wide(%d)" % arity
    benchmark.pedantic(
        lambda: analyze_program(wide_program(6), ("r", 6), "b" * 6),
        rounds=3, iterations=1,
    )
    emit("F1_wide", series_table("arity sweep wide(a)", rows),
         data=series_data(rows))
