"""Experiment F1: scaling of the analysis with program size.

The paper claims a theoretical polynomial bound ("largely imaginary")
and that "in practice, Fourier-Motzkin elimination is simple and
adequate".  We regenerate that as three generated program families:

- ``ring(k)``   — one SCC of k mutually recursive predicates,
- ``chain(k)``  — k separate self-recursive SCCs in a call chain,
- ``wide(a)``   — one predicate of arity a, every argument decreasing.

All instances must be PROVED, and the series (analysis time, final
constraint rows) should grow smoothly — no exponential cliff.
"""

import time

import pytest

from repro.core import analyze_program
from repro.lp import parse_program

from benchmarks.conftest import emit


def ring_program(k):
    """p1 -> p2 -> ... -> pk -> p1, argument shrinks at every hop."""
    lines = ["p1(0)."]
    for i in range(1, k + 1):
        succ = (i % k) + 1
        lines.append("p%d(s(X)) :- p%d(X)." % (i, succ))
    return parse_program("\n".join(lines))


def chain_program(k):
    """q1 calls q2 calls ... qk; each qi also recurses on a list."""
    lines = []
    for i in range(1, k + 1):
        lines.append("q%d([], [])." % i)
        if i < k:
            lines.append(
                "q%d([X|Xs], [X|Ys]) :- q%d(Xs, Zs), q%d(Zs, Ys)."
                % (i, i, i + 1)
            )
        else:
            lines.append("q%d([X|Xs], [X|Ys]) :- q%d(Xs, Ys)." % (i, i))
    return parse_program("\n".join(lines))


def wide_program(arity):
    """r(s(X1), ..., s(Xa)) :- r(X1, ..., Xa)."""
    args_head = ", ".join("s(X%d)" % i for i in range(arity))
    args_body = ", ".join("X%d" % i for i in range(arity))
    zeros = ", ".join("0" for _ in range(arity))
    return parse_program(
        "r(%s).\nr(%s) :- r(%s)." % (zeros, args_head, args_body)
    )


def measure(program, root, mode):
    started = time.perf_counter()
    result = analyze_program(program, root, mode)
    elapsed = time.perf_counter() - started
    rows = sum(r.constraint_rows for r in result.scc_results)
    pivots = result.trace.stage("solve").pivots
    return result, elapsed, rows, pivots


def series_table(title, rows):
    lines = [
        "%-8s %10s %8s %8s %8s"
        % ("size", "verdict", "sec", "rows", "pivots")
    ]
    for size, verdict, seconds, count, pivots in rows:
        lines.append(
            "%-8s %10s %8.3f %8d %8d"
            % (size, verdict, seconds, count, pivots)
        )
    return title + "\n" + "\n".join(lines)


def test_ring_scaling(benchmark):
    rows = []
    for k in (2, 4, 8, 12):
        result, elapsed, count, pivots = measure(
            ring_program(k), ("p1", 1), "b"
        )
        assert result.proved, "ring(%d)" % k
        rows.append((k, result.status, elapsed, count, pivots))
    benchmark.pedantic(
        lambda: analyze_program(ring_program(8), ("p1", 1), "b"),
        rounds=3, iterations=1,
    )
    emit("F1_ring", series_table("mutual-recursion ring(k)", rows))


def test_chain_scaling(benchmark):
    rows = []
    for k in (2, 4, 8, 12):
        result, elapsed, count, pivots = measure(
            chain_program(k), ("q1", 2), "bf"
        )
        assert result.proved, "chain(%d)" % k
        rows.append((k, result.status, elapsed, count, pivots))
    benchmark.pedantic(
        lambda: analyze_program(chain_program(8), ("q1", 2), "bf"),
        rounds=3, iterations=1,
    )
    emit("F1_chain", series_table("SCC chain(k)", rows))


def test_arity_scaling(benchmark):
    rows = []
    for arity in (1, 2, 4, 6, 8):
        mode = "b" * arity
        result, elapsed, count, pivots = measure(
            wide_program(arity), ("r", arity), mode
        )
        assert result.proved, "wide(%d)" % arity
        rows.append((arity, result.status, elapsed, count, pivots))
    benchmark.pedantic(
        lambda: analyze_program(wide_program(6), ("r", 6), "b" * 6),
        rounds=3, iterations=1,
    )
    emit("F1_wide", series_table("arity sweep wide(a)", rows))
