"""Experiment F9: the analysis service and its persistent store.

Two claims to regenerate:

- warm requests (answered from the content-addressed store) are far
  cheaper than cold requests (solved by a worker) — the store turns
  repeated analyses of the same program into O(hash + lookup);
- the daemon sustains concurrent load at ``jobs=2``, with every
  payload byte-identical between the cold and warm passes.

The measurements fold into the repo-level ``BENCH_F9.json`` so the
headline numbers are quotable without re-running pytest.
"""

import asyncio
import json
import os
import threading
import time

from repro.batch import as_batch_item
from repro.corpus import all_programs
from repro.serve.app import ServeApp
from repro.serve.client import ServeClient
from repro.serve.pool import SolverPool
from repro.serve.store import ResultStore

from benchmarks.conftest import emit

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
HEADLINE_PATH = os.path.join(REPO_ROOT, "BENCH_F9.json")

SLICE = 10


def _update_headline(key, value):
    """Merge one section into the repo-level BENCH_F9.json artifact."""
    payload = {}
    if os.path.exists(HEADLINE_PATH):
        with open(HEADLINE_PATH) as handle:
            payload = json.load(handle)
    payload[key] = value
    with open(HEADLINE_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _median(values):
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2


class _LiveServer:
    """A real daemon on an ephemeral port, event loop on a thread."""

    def __init__(self, tmp_path, jobs):
        self.store = ResultStore(str(tmp_path / "cache"))
        self.app = ServeApp(self.store, SolverPool(jobs=jobs),
                            max_inflight=64)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self.loop.run_forever, daemon=True
        )

    def __enter__(self):
        self.thread.start()
        asyncio.run_coroutine_threadsafe(
            self.app.start(port=0), self.loop
        ).result(10)
        return ServeClient("127.0.0.1:%d" % self.app.port)

    def __exit__(self, *exc_info):
        asyncio.run_coroutine_threadsafe(
            self.app.shutdown(), self.loop
        ).result(60)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()


def _timed_pass(client, items):
    """One replay over *items*: (latencies_ms, texts, hits)."""
    latencies, texts, hits = [], {}, 0
    for item in items:
        started = time.perf_counter()
        answer = client.analyze(item.source, item.root, item.mode)
        latencies.append((time.perf_counter() - started) * 1000)
        texts[item.name] = answer.text
        hits += answer.cached
    return latencies, texts, hits


def test_cold_vs_warm_latency(tmp_path, benchmark):
    items = [as_batch_item(e) for e in all_programs()[:SLICE]]
    with _LiveServer(tmp_path, jobs=1) as client:
        cold_ms, cold_texts, cold_hits = _timed_pass(client, items)
        warm_ms, warm_texts, warm_hits = _timed_pass(client, items)

        assert cold_hits == 0
        assert warm_hits == len(items)  # every repeat is a store hit
        assert warm_texts == cold_texts  # byte-identical payloads

        benchmark.pedantic(
            lambda: _timed_pass(client, items), rounds=3, iterations=1
        )

    cold_median = _median(cold_ms)
    warm_median = _median(warm_ms)
    ratio = cold_median / warm_median if warm_median else float("inf")
    lines = [
        "replay of %d corpus programs through one daemon" % len(items),
        "cold pass (worker solves):  median %7.2f ms" % cold_median,
        "warm pass (store hits):     median %7.2f ms" % warm_median,
        "cold/warm:                  %7.1fx" % ratio,
        "payloads byte-identical: True",
    ]
    record = {
        "programs": len(items),
        "cold_median_ms": cold_median,
        "warm_median_ms": warm_median,
        "cold_over_warm": ratio,
        "byte_identical": True,
    }
    emit("F9_cold_warm", "\n".join(lines) + "\n", data=record)
    _update_headline("cold_warm", record)
    # A store hit skips parsing, adornment, FM, and the LP entirely;
    # even against the fastest corpus programs it must win clearly.
    assert ratio >= 2.0, lines


def test_concurrent_throughput_jobs2(tmp_path):
    import concurrent.futures

    items = [as_batch_item(e) for e in all_programs()[:SLICE]]
    with _LiveServer(tmp_path, jobs=2) as client:
        started = time.perf_counter()
        with concurrent.futures.ThreadPoolExecutor(4) as executor:
            answers = list(executor.map(
                lambda item: client.analyze(
                    item.source, item.root, item.mode
                ),
                items,
            ))
        cold_wall = time.perf_counter() - started

        started = time.perf_counter()
        with concurrent.futures.ThreadPoolExecutor(4) as executor:
            warm = list(executor.map(
                lambda item: client.analyze(
                    item.source, item.root, item.mode
                ),
                items,
            ))
        warm_wall = time.perf_counter() - started

    assert all(a.status in ("PROVED", "UNKNOWN") for a in answers)
    assert all(a.cached for a in warm)
    cold_rps = len(items) / cold_wall
    warm_rps = len(items) / warm_wall
    lines = [
        "%d concurrent requests, daemon at jobs=2" % len(items),
        "cold: %6.2fs wall, %6.1f req/s" % (cold_wall, cold_rps),
        "warm: %6.2fs wall, %6.1f req/s" % (warm_wall, warm_rps),
    ]
    record = {
        "programs": len(items),
        "jobs": 2,
        "cold_wall_seconds": cold_wall,
        "cold_requests_per_second": cold_rps,
        "warm_wall_seconds": warm_wall,
        "warm_requests_per_second": warm_rps,
    }
    emit("F9_throughput", "\n".join(lines) + "\n", data=record)
    _update_headline("throughput_jobs2", record)
    assert warm_rps > cold_rps, lines
