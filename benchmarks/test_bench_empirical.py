"""Experiment F2: empirical validation of every verdict.

The method is a *sufficient* condition (Section 7) — so the shape to
reproduce is one-sided:

- every corpus program we PROVE must complete its search within budget
  on every randomized well-moded query (zero violations), and
- the known non-terminators must exhaust the budget on every query.

The benchmark times the full empirical sweep of the proved set.
"""

import pytest

from repro.lp import SLDEngine
from repro.lp.generate import TermGenerator
from repro.core import analyze_program
from repro.corpus import all_programs
from repro.corpus.registry import load, make_query

from benchmarks.conftest import emit

QUERIES_PER_PROGRAM = 8
BUDGET = {"max_depth": 300, "max_steps": 300000}


def run_queries(entry, seed=99):
    program = load(entry)
    engine = SLDEngine(program)
    generator = TermGenerator(seed=seed)
    completed = 0
    for _ in range(QUERIES_PER_PROGRAM):
        query = make_query(entry, generator)
        outcome = engine.solve([query], **BUDGET)
        if outcome.completed:
            completed += 1
    return completed


def test_empirical_validation(benchmark):
    proved = [
        entry for entry in all_programs()
        if entry.expected["paper"] == "PROVED"
    ]
    diverging = [
        entry for entry in all_programs() if entry.terminating is False
    ]

    def sweep():
        return {entry.name: run_queries(entry) for entry in proved}

    completed_counts = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    violations = []
    for entry in proved:
        count = completed_counts[entry.name]
        rows.append(
            "%-22s PROVED   %d/%d queries completed"
            % (entry.name, count, QUERIES_PER_PROGRAM)
        )
        if count != QUERIES_PER_PROGRAM:
            violations.append(entry.name)

    for entry in diverging:
        count = run_queries(entry)
        rows.append(
            "%-22s diverges %d/%d queries completed"
            % (entry.name, count, QUERIES_PER_PROGRAM)
        )
        assert count == 0, "%s should exhaust the budget" % entry.name

    emit(
        "F2_empirical",
        "Empirical validation (%d queries per program)\n" % QUERIES_PER_PROGRAM
        + "\n".join(rows)
        + "\nsoundness violations: %d\n" % len(violations),
        data={
            "queries_per_program": QUERIES_PER_PROGRAM,
            "completed": completed_counts,
            "violations": violations,
        },
    )
    assert violations == [], violations


def test_verdicts_stable_across_engine(benchmark):
    """Analyzer verdicts agree with the ground-truth column."""

    def verdicts():
        return {
            entry.name: analyze_program(
                load(entry), entry.root, entry.mode
            ).status
            for entry in all_programs()
        }

    results = benchmark.pedantic(verdicts, rounds=1, iterations=1)
    for entry in all_programs():
        # PROVED implies genuinely terminating (never the reverse).
        if results[entry.name] == "PROVED":
            assert entry.terminating is True, entry.name
