"""Experiment F12: the per-SCC method portfolio vs plain argsize.

The claim to regenerate: on the 42-program corpus the portfolio
strictly reduces the UNKNOWN count relative to the paper's argument
size analysis — the size-change prover rescues the lexicographic
descents (``ackermann``), and the non-termination detector upgrades
every known-diverging entry to DISPROVED — while ``method="argsize"``
stays byte-identical to driving the pipeline directly, and the
empirical (E-family) ground truth is never contradicted.

Artifacts: the per-program verdict table plus a per-method win table
(which prover decided each program under the portfolio), and the
repo-level ``BENCH_F12.json`` headline with the UNKNOWN counts and
sweep wall-clocks.
"""

import json
import os
from time import perf_counter

import pytest

from repro.core import AnalyzerSettings, DISPROVED, PROVED, UNKNOWN
from repro.core.report import render_verdict_table
from repro.corpus import all_programs
from repro.corpus.registry import load
from repro.methods import MethodRunner

from benchmarks.conftest import emit

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
HEADLINE_PATH = os.path.join(REPO_ROOT, "BENCH_F12.json")


def _update_headline(key, value):
    """Merge one section into the repo-level BENCH_F12.json artifact."""
    payload = {}
    if os.path.exists(HEADLINE_PATH):
        with open(HEADLINE_PATH) as handle:
            payload = json.load(handle)
    payload[key] = value
    with open(HEADLINE_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _sweep(method):
    """(results by name, wall seconds) for one full corpus sweep."""
    results = {}
    started = perf_counter()
    for entry in all_programs():
        runner = MethodRunner(settings=AnalyzerSettings(method=method))
        results[entry.name] = runner.analyze(
            load(entry), entry.root, entry.mode
        )
    return results, perf_counter() - started


@pytest.fixture(scope="module")
def sweeps():
    return {name: _sweep(name) for name in ("argsize", "portfolio")}


def _decider(result):
    """Which prover decided a portfolio verdict (by SCC provenance)."""
    if result.status == UNKNOWN:
        return "-"
    methods = [scc.method or "argsize" for scc in result.scc_results]
    if result.status == DISPROVED:
        return "nonterm"
    for preferred in ("sizechange", "argsize"):
        if preferred in methods:
            return preferred
    return methods[0] if methods else "argsize"


def test_portfolio_reduces_unknowns(sweeps, benchmark):
    argsize, argsize_seconds = sweeps["argsize"]
    portfolio, portfolio_seconds = sweeps["portfolio"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    rows = []
    wins = {}
    for entry in all_programs():
        a = argsize[entry.name].status
        p = portfolio[entry.name]
        decider = _decider(p)
        if p.status != UNKNOWN:
            wins[decider] = wins.get(decider, 0) + 1
        rows.append((entry.name, entry.mode, a, p.status, decider))

    unknown_argsize = sum(
        1 for e in all_programs()
        if argsize[e.name].status == UNKNOWN
    )
    unknown_portfolio = sum(
        1 for e in all_programs()
        if portfolio[e.name].status == UNKNOWN
    )
    disproved = sum(
        1 for e in all_programs()
        if portfolio[e.name].status == DISPROVED
    )

    # The acceptance claims.
    assert unknown_portfolio < unknown_argsize
    assert disproved >= 1
    for entry in all_programs():
        if "nonterminating" in entry.tags:
            assert portfolio[entry.name].status == DISPROVED, entry.name
        else:
            assert portfolio[entry.name].status != DISPROVED, entry.name
        if argsize[entry.name].status == PROVED:
            assert portfolio[entry.name].status == PROVED, entry.name

    table = render_verdict_table(
        rows, headers=("program", "mode", "argsize", "portfolio", "won by"),
    )
    win_table = "  ".join(
        "%s=%d" % (name, wins[name]) for name in sorted(wins)
    )
    summary = (
        "UNKNOWN: argsize=%d portfolio=%d (DISPROVED=%d)\n"
        "decided by: %s\n"
        "sweep wall-clock: argsize=%.2fs portfolio=%.2fs"
        % (unknown_argsize, unknown_portfolio, disproved, win_table,
           argsize_seconds, portfolio_seconds)
    )
    emit(
        "F12_method_portfolio",
        table + "\n\n" + summary,
        data={
            "programs": len(all_programs()),
            "unknown_argsize": unknown_argsize,
            "unknown_portfolio": unknown_portfolio,
            "disproved": disproved,
            "wins": wins,
            "argsize_sweep_seconds": round(argsize_seconds, 3),
            "portfolio_sweep_seconds": round(portfolio_seconds, 3),
            "rows": [list(row) for row in rows],
        },
    )
    _update_headline("portfolio_vs_argsize", {
        "programs": len(all_programs()),
        "unknown_argsize": unknown_argsize,
        "unknown_portfolio": unknown_portfolio,
        "disproved": disproved,
        "wins": wins,
        "argsize_sweep_seconds": round(argsize_seconds, 3),
        "portfolio_sweep_seconds": round(portfolio_seconds, 3),
    })


def test_argsize_method_is_the_pipeline(sweeps, corpus_verdicts):
    """``method="argsize"`` reproduces the paper sweep verdict-for-
    verdict (the byte-level payload pin lives in tests/methods)."""
    argsize, _ = sweeps["argsize"]
    mismatches = [
        entry.name for entry in all_programs()
        if argsize[entry.name].status != corpus_verdicts[entry.name]["paper"]
    ]
    assert not mismatches
    _update_headline("argsize_identity", {
        "programs": len(all_programs()),
        "verdicts_identical": not mismatches,
    })
