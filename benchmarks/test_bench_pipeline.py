"""Experiment F7: what the staged pipeline's memoization buys.

Two caches sit behind :mod:`repro.core.pipeline`:

- the *environment* cache — one inter-argument fixpoint per
  (program, norm, inference settings), shared across query modes, and
- the *dualization* cache — Eq. 1 rule systems keyed by structural
  fingerprint, so the LP dualization of a shared SCC (``append``
  reached from three different callers, say) runs once.

This experiment measures cold vs warm sweeps over the corpus and a
multi-mode library file, and asserts the warm verdicts are identical —
memoization must be invisible except in the timings.
"""

import time

from repro.core import AnalysisTrace, TerminationAnalyzer, clear_caches
from repro.corpus import all_programs
from repro.corpus.registry import load

from benchmarks.conftest import emit

MULTI_MODE = """
perm([], []).
perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).
append([], Ys, Ys).
append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
rev(L, R) :- rev_acc(L, [], R).
rev_acc([], A, A).
rev_acc([X|Xs], A, R) :- rev_acc(Xs, [X|A], R).
"""

MODES = [
    (("perm", 2), "bf"),
    (("append", 3), "bbf"),
    (("append", 3), "ffb"),
    (("rev", 2), "bf"),
]


def sweep_corpus():
    """Paper-method verdicts for every corpus entry, with merged trace."""
    merged = AnalysisTrace()
    verdicts = {}
    started = time.perf_counter()
    for entry in all_programs():
        program = load(entry)
        result = TerminationAnalyzer(program).analyze(entry.root, entry.mode)
        merged.merge(result.trace)
        verdicts[entry.name] = result.status
    return verdicts, merged, time.perf_counter() - started


def test_corpus_cold_vs_warm(benchmark):
    clear_caches()
    cold_verdicts, cold_trace, cold_time = sweep_corpus()
    warm_verdicts, warm_trace, warm_time = sweep_corpus()
    assert warm_verdicts == cold_verdicts  # memoization changes nothing

    # A warm sweep re-reads every environment and dualization from the
    # process-wide caches.
    assert warm_trace.stage("interarg").cache_misses == 0
    assert warm_trace.stage("dualize").cache_misses == 0
    benchmark.pedantic(sweep_corpus, rounds=3, iterations=1)

    lines = [
        "%-6s %8s %14s %14s" % ("sweep", "sec", "interarg h/m", "dualize h/m"),
        "%-6s %8.3f %14s %14s" % (
            "cold", cold_time,
            "%d/%d" % (cold_trace.stage("interarg").cache_hits,
                       cold_trace.stage("interarg").cache_misses),
            "%d/%d" % (cold_trace.stage("dualize").cache_hits,
                       cold_trace.stage("dualize").cache_misses),
        ),
        "%-6s %8.3f %14s %14s" % (
            "warm", warm_time,
            "%d/%d" % (warm_trace.stage("interarg").cache_hits,
                       warm_trace.stage("interarg").cache_misses),
            "%d/%d" % (warm_trace.stage("dualize").cache_hits,
                       warm_trace.stage("dualize").cache_misses),
        ),
        "speedup: %.1fx" % (cold_time / warm_time if warm_time else 0.0),
    ]
    emit("F7_pipeline_cache", "corpus sweep, cold vs warm caches\n"
         + "\n".join(lines),
         data={
             "cold_seconds": cold_time,
             "warm_seconds": warm_time,
             "cold_interarg_misses": cold_trace.stage(
                 "interarg").cache_misses,
             "warm_interarg_hits": warm_trace.stage("interarg").cache_hits,
             "warm_dualize_hits": warm_trace.stage("dualize").cache_hits,
         })


def run_modes(analyzer):
    merged = AnalysisTrace()
    statuses = []
    for root, mode in MODES:
        result = analyzer.analyze(root, mode)
        merged.merge(result.trace)
        statuses.append(result.status)
    return statuses, merged


def test_shared_analyzer_across_modes(benchmark):
    from repro.lp import parse_program

    clear_caches()
    program = parse_program(MULTI_MODE)

    # Fresh analyzer per mode (the old driver shape) vs one analyzer
    # serving all declared modes (the `--all-modes` shape).
    clear_caches()
    started = time.perf_counter()
    per_mode = AnalysisTrace()
    for root, mode in MODES:
        result = TerminationAnalyzer(program).analyze(root, mode)
        per_mode.merge(result.trace)
        clear_caches()
    fresh_time = time.perf_counter() - started

    started = time.perf_counter()
    statuses, shared = run_modes(TerminationAnalyzer(program))
    shared_time = time.perf_counter() - started

    assert statuses == ["PROVED"] * len(MODES)
    assert per_mode.stage("interarg").cache_hits == 0
    assert shared.stage("interarg").cache_hits == len(MODES) - 1
    assert shared.stage("dualize").cache_hits > 0

    def bench():
        clear_caches()
        return run_modes(TerminationAnalyzer(program))

    benchmark.pedantic(bench, rounds=3, iterations=1)

    lines = [
        "%-18s %8s %14s %14s" % (
            "driver", "sec", "interarg h/m", "dualize h/m"),
        "%-18s %8.3f %14s %14s" % (
            "fresh per mode", fresh_time,
            "%d/%d" % (per_mode.stage("interarg").cache_hits,
                       per_mode.stage("interarg").cache_misses),
            "%d/%d" % (per_mode.stage("dualize").cache_hits,
                       per_mode.stage("dualize").cache_misses),
        ),
        "%-18s %8.3f %14s %14s" % (
            "shared analyzer", shared_time,
            "%d/%d" % (shared.stage("interarg").cache_hits,
                       shared.stage("interarg").cache_misses),
            "%d/%d" % (shared.stage("dualize").cache_hits,
                       shared.stage("dualize").cache_misses),
        ),
    ]
    emit("F7_shared_analyzer", "4 modes of a 3-predicate library\n"
         + "\n".join(lines),
         data={
             "fresh_seconds": fresh_time,
             "shared_seconds": shared_time,
             "shared_interarg_hits": shared.stage("interarg").cache_hits,
             "shared_dualize_hits": shared.stage("dualize").cache_hits,
         })
