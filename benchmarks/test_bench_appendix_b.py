"""Experiment E5: Appendix B — relation to Brodsky & Sagiv.

Regenerates the appendix's observation: restricting the imported
constraints to *partial-order* statements (all argument-mapping
techniques can use) "was found to be sufficient to handle Example 5.1
and Example 6.1, but not Example 3.1" — because perm's crucial
``append1 + append2 = append3`` relates three arguments.
"""

from repro.core import TerminationAnalyzer
from repro.corpus.registry import get_program, load
from repro.interarg import infer_interargument_constraints
from repro.interarg.partial_orders import (
    is_partial_order_shaped,
    restrict_to_partial_orders,
)

from benchmarks.conftest import emit


def analyze_with_partial_orders(entry):
    program = load(entry)
    env = infer_interargument_constraints(program)
    restricted = restrict_to_partial_orders(
        env, program.defined_indicators()
    )
    analyzer = TerminationAnalyzer(program)
    analyzer.use_external_constraints(restricted)
    return analyzer.analyze(entry.root, entry.mode)


def test_appendix_b_translation(benchmark):
    names = ("merge_variant", "expr_parser", "perm")
    verdicts = {}
    for name in names:
        verdicts[name] = analyze_with_partial_orders(
            get_program(name)
        ).status
    benchmark.pedantic(
        lambda: analyze_with_partial_orders(get_program("perm")),
        rounds=3, iterations=1,
    )
    emit(
        "E5_appendix_b",
        "Verdicts with constraints restricted to partial orders\n"
        "(emulating argument-mapping power; paper Appendix B)\n"
        "paper:    sufficient for Ex. 5.1 and 6.1, not for Ex. 3.1\n"
        "measured: merge_variant=%s expr_parser=%s perm=%s\n"
        % (
            verdicts["merge_variant"],
            verdicts["expr_parser"],
            verdicts["perm"],
        ),
        data=verdicts,
    )
    assert verdicts["merge_variant"] == "PROVED"   # Ex. 5.1
    assert verdicts["expr_parser"] == "PROVED"     # Ex. 6.1
    assert verdicts["perm"] == "UNKNOWN"           # Ex. 3.1


def test_shape_classifier(benchmark):
    """The classifier keeps differences/bounds and drops sums."""
    from repro.linalg.constraints import Constraint
    from repro.linalg.linexpr import LinearExpr
    from repro.sizes.size_equations import arg_dimension

    d1 = LinearExpr.of(arg_dimension(1))
    d2 = LinearExpr.of(arg_dimension(2))
    d3 = LinearExpr.of(arg_dimension(3))
    assert is_partial_order_shaped(Constraint.ge(d1, d2 + 2))
    assert is_partial_order_shaped(Constraint.ge(d1, 0))
    assert is_partial_order_shaped(Constraint.eq(d1, d2))
    assert not is_partial_order_shaped(Constraint.eq(d1 + d2, d3))
    assert not is_partial_order_shaped(Constraint.ge(d1 * 2, d2))
    assert not is_partial_order_shaped(Constraint.ge(d1 + d2, 1))
    benchmark.pedantic(
        lambda: is_partial_order_shaped(Constraint.eq(d1 + d2, d3)),
        rounds=5, iterations=100,
    )
