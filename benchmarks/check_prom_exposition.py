#!/usr/bin/env python
"""Lint a Prometheus text exposition for spec conformance.

Checks the invariants a real scraper relies on, against the text
format spec (``text/plain; version=0.0.4``) rather than against our
renderer's implementation:

- metric and label names match the spec grammars;
- every sample's family has a preceding ``# TYPE`` line, and samples
  of one family are contiguous (no interleaving);
- counter families follow the ``_total`` naming convention;
- sample values parse as Prometheus numbers (int/float/NaN/+-Inf);
- histogram families are complete and coherent: cumulative
  non-decreasing ``_bucket`` series per label set, a terminal
  ``le="+Inf"`` bucket equal to ``_count``, and ``_sum``/``_count``
  present.

Run against a file, stdin, or a live daemon::

    python benchmarks/check_prom_exposition.py exposition.txt
    repro-analyze ... | python benchmarks/check_prom_exposition.py -
    python benchmarks/check_prom_exposition.py --url http://127.0.0.1:8421

The ``--url`` mode performs the scrape itself (GET /v1/metrics with
``Accept: text/plain``) and additionally checks the Content-Type
header.  Exit code 0 on a clean exposition, 1 with one problem per
line otherwise.  Stdlib only — CI runs this in the serve-smoke job.
"""

from __future__ import annotations

import argparse
import re
import sys

METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
LABEL_NAME = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")
SAMPLE = re.compile(
    r"^(?P<name>[^\s{]+)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)"
    r"(?: (?P<timestamp>-?\d+))?$"
)
LABEL_PAIR = re.compile(r'([^=,]+)="((?:[^"\\]|\\.)*)"')
VALUE = re.compile(
    r"^(?:[+-]?Inf|NaN|[+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)$"
)

HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def _family_of(sample_name, types):
    """The declared family a sample belongs to (histogram samples use
    suffixed names), or None if undeclared."""
    if sample_name in types:
        return sample_name
    for suffix in HISTOGRAM_SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return None


def _parse_labels(text):
    """``(pairs, problems)`` for one sample's label body text."""
    problems = []
    pairs = []
    if not text:
        return pairs, problems
    consumed = 0
    for match in LABEL_PAIR.finditer(text):
        name, value = match.group(1), match.group(2)
        name = name.lstrip(",")
        if not LABEL_NAME.match(name):
            problems.append("bad label name %r" % name)
        pairs.append((name, value))
        consumed = match.end()
    remainder = text[consumed:].strip(", ")
    if remainder:
        problems.append("unparseable label text %r" % remainder)
    return pairs, problems


def lint_exposition(text):
    """Problems with one exposition text (empty list = conformant)."""
    problems = []
    if not text.endswith("\n"):
        problems.append("exposition must end with a newline")

    types = {}            # family -> declared type
    finished = set()      # families whose sample block has ended
    current_family = None
    # histogram state: (family, label_subset) -> list of (le, value)
    buckets = {}
    sums = set()
    counts = {}

    for line_number, line in enumerate(text.splitlines(), 1):
        where = "line %d" % line_number
        if not line.strip():
            continue
        if line.startswith("#"):
            fields = line.split(None, 3)
            if len(fields) < 2 or fields[1] not in ("TYPE", "HELP"):
                continue  # arbitrary comments are legal
            if len(fields) < 3:
                problems.append("%s: bare # %s line" % (where, fields[1]))
                continue
            family = fields[2]
            if fields[1] == "TYPE":
                if len(fields) < 4 or fields[3].split()[0] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"
                ):
                    problems.append(
                        "%s: TYPE %s needs a valid type" % (where, family)
                    )
                    continue
                if family in types:
                    problems.append(
                        "%s: duplicate TYPE for %s" % (where, family)
                    )
                kind = fields[3].split()[0]
                types[family] = kind
                if not METRIC_NAME.match(family):
                    problems.append(
                        "%s: illegal family name %r" % (where, family)
                    )
                if kind == "counter" and not family.endswith("_total"):
                    problems.append(
                        "%s: counter %s should follow the _total "
                        "naming convention" % (where, family)
                    )
            continue

        match = SAMPLE.match(line)
        if not match:
            problems.append("%s: unparseable sample %r" % (where, line))
            continue
        name, label_text, value = (
            match.group("name"), match.group("labels"),
            match.group("value"),
        )
        if not METRIC_NAME.match(name):
            problems.append("%s: illegal metric name %r" % (where, name))
        if not VALUE.match(value):
            problems.append("%s: bad sample value %r" % (where, value))
        pairs, label_problems = _parse_labels(label_text or "")
        problems.extend("%s: %s" % (where, p) for p in label_problems)

        family = _family_of(name, types)
        if family is None:
            problems.append(
                "%s: sample %s has no preceding # TYPE" % (where, name)
            )
            continue
        if family != current_family:
            if family in finished:
                problems.append(
                    "%s: family %s samples are not contiguous"
                    % (where, family)
                )
            if current_family is not None:
                finished.add(current_family)
            current_family = family

        if types[family] != "histogram":
            continue
        others = tuple(sorted(
            (k, v) for k, v in pairs if k != "le"
        ))
        if name.endswith("_bucket"):
            le = dict(pairs).get("le")
            if le is None:
                problems.append(
                    "%s: %s bucket without an le label" % (where, name)
                )
                continue
            buckets.setdefault((family, others), []).append(
                (le, float(value))
            )
        elif name.endswith("_sum"):
            sums.add((family, others))
        elif name.endswith("_count"):
            counts[(family, others)] = float(value)

    histogram_families = {
        family for family, kind in types.items() if kind == "histogram"
    }
    seen_histograms = {key[0] for key in buckets}
    for family in sorted(histogram_families - seen_histograms):
        problems.append("histogram %s declared but has no buckets"
                        % family)
    for (family, others), series in sorted(buckets.items()):
        label = family + (
            "{%s}" % ",".join("%s=%s" % p for p in others)
            if others else ""
        )
        values = [value for _, value in series]
        if values != sorted(values):
            problems.append(
                "histogram %s buckets are not cumulative "
                "non-decreasing" % label
            )
        if series[-1][0] != "+Inf":
            problems.append(
                "histogram %s must end with an le=\"+Inf\" bucket"
                % label
            )
        if (family, others) not in sums:
            problems.append("histogram %s is missing _sum" % label)
        if (family, others) not in counts:
            problems.append("histogram %s is missing _count" % label)
        elif series[-1][0] == "+Inf" and \
                counts[(family, others)] != series[-1][1]:
            problems.append(
                "histogram %s: le=\"+Inf\" bucket (%g) != _count (%g)"
                % (label, series[-1][1], counts[(family, others)])
            )
    return problems


def scrape(url, timeout=10.0):
    """GET ``{url}/v1/metrics`` with ``Accept: text/plain``; returns
    ``(content_type, body_text)``."""
    import http.client
    from urllib.parse import urlsplit

    parts = urlsplit(url if "//" in url else "http://" + url)
    connection = http.client.HTTPConnection(
        parts.hostname or "127.0.0.1", parts.port or 8421,
        timeout=timeout,
    )
    try:
        connection.request(
            "GET", "/v1/metrics", headers={"Accept": "text/plain"}
        )
        response = connection.getresponse()
        if response.status != 200:
            raise SystemExit(
                "scrape failed: HTTP %d from %s" % (response.status, url)
            )
        return (
            response.getheader("Content-Type", ""),
            response.read().decode("utf-8"),
        )
    finally:
        connection.close()


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Lint a Prometheus text exposition "
        "(file, stdin, or a live repro-serve scrape).",
    )
    parser.add_argument(
        "source", nargs="?", default=None,
        help="exposition file to lint ('-' = stdin)",
    )
    parser.add_argument(
        "--url", default=None, metavar="URL",
        help="scrape a live daemon's /v1/metrics instead of reading "
        "a file (also checks the Content-Type header)",
    )
    args = parser.parse_args(argv)
    problems = []
    if args.url:
        content_type, text = scrape(args.url)
        if not content_type.startswith("text/plain"):
            problems.append(
                "scrape Content-Type %r is not text/plain" % content_type
            )
        elif "version=0.0.4" not in content_type:
            problems.append(
                "scrape Content-Type %r lacks version=0.0.4"
                % content_type
            )
    elif args.source in (None, "-"):
        text = sys.stdin.read()
    else:
        with open(args.source) as handle:
            text = handle.read()
    problems.extend(lint_exposition(text))
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print("FAIL: %d problem(s) in the exposition" % len(problems),
              file=sys.stderr)
        return 1
    samples = sum(
        1 for line in text.splitlines()
        if line.strip() and not line.startswith("#")
    )
    print("OK: exposition conformant (%d samples)" % samples)
    return 0


if __name__ == "__main__":
    sys.exit(main())
