"""Experiment F3: ablations of the design choices DESIGN.md calls out.

- Norm choice: structural (the paper's) vs list-length vs right-spine —
  mergesort needs list-length; flatten/tree programs defeat right-spine.
- Inter-argument constraints on/off — perm, quicksort, palindrome, gcd
  all flip to UNKNOWN without them.
- Final lambda feasibility: simplex vs pure Fourier–Motzkin — identical
  verdicts, different cost.
- FM redundancy pruning on/off — identical verdicts, cost difference.
- Polyhedron join: exact hull vs weak (constraint-candidate) join — the
  weak join cannot *discover* facet directions, so the gcd pipeline
  degrades.
"""

import time

import pytest

from repro.core import AnalyzerSettings, analyze_program
from repro.corpus.registry import get_program, load
from repro.interarg import InferenceSettings

from benchmarks.conftest import emit

NORM_SENSITIVE = ("mergesort", "flatten_tree", "tree_member", "append_bbf")
INTERARG_SENSITIVE = ("perm", "quicksort", "palindrome", "gcd_euclid")


def verdict(name, settings=None):
    entry = get_program(name)
    return analyze_program(
        load(entry), entry.root, entry.mode, settings=settings
    ).status


def test_norm_ablation(benchmark):
    rows = []
    for name in NORM_SENSITIVE:
        row = [name]
        for norm in ("structural", "list_length", "right_spine"):
            row.append(verdict(name, AnalyzerSettings(norm=norm)))
        rows.append(row)
    benchmark.pedantic(
        lambda: verdict("mergesort", AnalyzerSettings(norm="list_length")),
        rounds=1, iterations=1,
    )
    table = "\n".join(
        "%-14s structural=%-8s list_length=%-8s right_spine=%-8s"
        % tuple(row)
        for row in rows
    )
    emit(
        "F3_norms",
        "Norm ablation\n" + table + "\n",
        data=[
            {
                "program": name,
                "structural": structural,
                "list_length": list_length,
                "right_spine": right_spine,
            }
            for name, structural, list_length, right_spine in rows
        ],
    )

    by_name = {row[0]: row[1:] for row in rows}
    # Mergesort: the crossover the corpus documents.
    assert by_name["mergesort"][0] == "UNKNOWN"
    assert by_name["mergesort"][1] == "PROVED"
    # append works under every norm.
    assert set(by_name["append_bbf"]) == {"PROVED"}


def test_interarg_ablation(benchmark):
    rows = []
    for name in INTERARG_SENSITIVE:
        with_ia = verdict(name)
        without = verdict(name, AnalyzerSettings(use_interarg=False))
        rows.append((name, with_ia, without))
        assert with_ia == "PROVED"
        assert without == "UNKNOWN"
    benchmark.pedantic(
        lambda: verdict("perm", AnalyzerSettings(use_interarg=False)),
        rounds=3, iterations=1,
    )
    emit(
        "F3_interarg",
        "Inter-argument constraint ablation\n"
        + "\n".join(
            "%-14s with=%-8s without=%-8s" % row for row in rows
        )
        + "\n",
        data=[
            {"program": name, "with_interarg": with_ia, "without": without}
            for name, with_ia, without in rows
        ],
    )


def test_feasibility_backend_ablation(benchmark):
    names = ("merge_variant", "expr_parser", "perm")
    timings = []
    for name in names:
        for backend in ("simplex", "fm"):
            settings = AnalyzerSettings(feasibility=backend)
            started = time.perf_counter()
            status = verdict(name, settings)
            elapsed = time.perf_counter() - started
            timings.append((name, backend, status, elapsed))
            assert status == "PROVED"
    benchmark.pedantic(
        lambda: verdict("merge_variant", AnalyzerSettings(feasibility="fm")),
        rounds=3, iterations=1,
    )
    emit(
        "F3_feasibility",
        "Final feasibility backend (identical verdicts)\n"
        + "\n".join(
            "%-14s %-8s %-8s %.3fs" % row for row in timings
        )
        + "\n",
        data=[
            {
                "program": name, "backend": backend,
                "verdict": status, "seconds": elapsed,
            }
            for name, backend, status, elapsed in timings
        ],
    )


def test_fm_prune_ablation(benchmark):
    names = ("merge_variant", "expr_parser")
    timings = []
    for name in names:
        for prune in (True, False):
            settings = AnalyzerSettings(prune_fm=prune)
            started = time.perf_counter()
            status = verdict(name, settings)
            elapsed = time.perf_counter() - started
            timings.append((name, prune, status, elapsed))
            assert status == "PROVED"
    benchmark.pedantic(
        lambda: verdict("expr_parser", AnalyzerSettings(prune_fm=False)),
        rounds=3, iterations=1,
    )
    emit(
        "F3_fm_prune",
        "FM redundancy pruning (identical verdicts)\n"
        + "\n".join(
            "%-14s prune=%-5s %-8s %.3fs" % row for row in timings
        )
        + "\n",
        data=[
            {
                "program": name, "prune": prune,
                "verdict": status, "seconds": elapsed,
            }
            for name, prune, status, elapsed in timings
        ],
    )


def test_eq8_vs_eq9_ablation(benchmark):
    """The paper's two procedural variants: eliminate the w
    multipliers per pair (Eq. 9 route, practical) vs keep them and
    solve one big LP (Eq. 8 route, the theoretical polynomial bound).
    Identical verdicts; the table records the cost difference."""
    names = ("perm", "merge_variant", "expr_parser")
    timings = []
    for name in names:
        for route, settings in (
            ("eq9-fm", AnalyzerSettings()),
            ("eq8-lp", AnalyzerSettings(eliminate_w=False)),
        ):
            started = time.perf_counter()
            status = verdict(name, settings)
            elapsed = time.perf_counter() - started
            timings.append((name, route, status, elapsed))
            assert status == "PROVED"
    benchmark.pedantic(
        lambda: verdict("perm", AnalyzerSettings(eliminate_w=False)),
        rounds=3, iterations=1,
    )
    emit(
        "F3_eq8_vs_eq9",
        "Dual-variable elimination route (identical verdicts)\n"
        + "\n".join("%-14s %-8s %-8s %.3fs" % row for row in timings)
        + "\n",
        data=[
            {
                "program": name, "route": route,
                "verdict": status, "seconds": elapsed,
            }
            for name, route, status, elapsed in timings
        ],
    )


def test_join_strategy_ablation(benchmark):
    """Weak join loses the gcd pipeline; exact hull keeps it."""
    exact = verdict(
        "gcd_euclid",
        AnalyzerSettings(inference=InferenceSettings(join_strategy="exact")),
    )
    weak = verdict(
        "gcd_euclid",
        AnalyzerSettings(inference=InferenceSettings(join_strategy="weak")),
    )
    benchmark.pedantic(
        lambda: verdict(
            "gcd_euclid",
            AnalyzerSettings(
                inference=InferenceSettings(join_strategy="weak")
            ),
        ),
        rounds=1, iterations=1,
    )
    emit(
        "F3_join",
        "Polyhedron join strategy on gcd_euclid\n"
        "exact hull: %s\nweak join:  %s\n" % (exact, weak),
        data={"program": "gcd_euclid", "exact": exact, "weak": weak},
    )
    assert exact == "PROVED"
    assert weak == "UNKNOWN"
