#!/usr/bin/env python
"""Validate a JSONL telemetry stream against schema ``repro.trace/1``.

Stdlib-only on purpose: CI runs this against the trace that
``repro-analyze --trace-out`` just wrote, and the sink tests run it
against their own output, so the checker must not depend on the
library it is checking.

Checks (normative schema in ``docs/OBSERVABILITY.md``):

- the first event is a ``meta`` event carrying the expected schema id;
- every ``span`` event has the full key set with the right types,
  a stream-unique increasing ``id``, a ``parent`` already seen
  (pre-order), and non-negative ``start_s``/``wall_s``;
- every ``metric`` event is a well-formed counter, gauge, or
  histogram (bucket bounds strictly increasing, one overflow slot);
- with ``--min-coverage F``, the direct children of each ``analyze``
  root span must account for at least fraction ``F`` of the root's
  wall time (the "no untraced time" acceptance gate).

Exit status: 0 valid, 1 invalid, 2 unreadable.
"""

from __future__ import annotations

import argparse
import json
import numbers
import sys

SCHEMA = "repro.trace/1"

_SPAN_KEYS = {
    "event", "id", "parent", "name", "start_s", "wall_s",
    "attrs", "counters",
}
_METRIC_KINDS = ("counter", "gauge", "histogram")


def _is_num(value):
    return isinstance(value, numbers.Real) and not isinstance(value, bool)


def load_events(path):
    """Parse a JSONL file into event dicts; raises ValueError on a
    malformed line."""
    events = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                raise ValueError(
                    "line %d: not valid JSON" % line_number
                ) from None
            if not isinstance(event, dict):
                raise ValueError(
                    "line %d: event is not a JSON object" % line_number
                )
            events.append(event)
    return events


def validate_events(events):
    """Return a list of problems (empty = schema-valid)."""
    problems = []
    if not events:
        return ["empty stream: no events at all"]
    head = events[0]
    if head.get("event") != "meta":
        problems.append("first event must be 'meta', got %r"
                        % head.get("event"))
    elif head.get("schema") != SCHEMA:
        problems.append("meta schema is %r, expected %r"
                        % (head.get("schema"), SCHEMA))

    seen_ids = set()
    last_id = None
    for position, event in enumerate(events[1:], 2):
        where = "event %d" % position
        kind = event.get("event")
        if kind == "meta":
            problems.append("%s: duplicate meta event" % where)
        elif kind == "span":
            problems.extend(
                "%s: %s" % (where, issue)
                for issue in _check_span(event, seen_ids, last_id)
            )
            if isinstance(event.get("id"), int):
                seen_ids.add(event["id"])
                last_id = event["id"]
        elif kind == "metric":
            problems.extend(
                "%s: %s" % (where, issue) for issue in _check_metric(event)
            )
        # unknown event types are forward-compatible: ignored
    return problems


def _check_span(event, seen_ids, last_id):
    issues = []
    missing = _SPAN_KEYS - set(event)
    if missing:
        issues.append("span missing keys %s" % ", ".join(sorted(missing)))
        return issues
    identifier = event["id"]
    if not isinstance(identifier, int):
        issues.append("span id %r is not an integer" % (identifier,))
    else:
        if identifier in seen_ids:
            issues.append("span id %d repeated" % identifier)
        if last_id is not None and identifier <= last_id:
            issues.append("span id %d not increasing (last was %d)"
                          % (identifier, last_id))
    parent = event["parent"]
    if parent is not None:
        if not isinstance(parent, int):
            issues.append("span parent %r is not an integer or null"
                          % (parent,))
        elif parent not in seen_ids:
            issues.append("span parent %d not seen before child (events "
                          "must be pre-order)" % parent)
    if not isinstance(event["name"], str) or not event["name"]:
        issues.append("span name %r is not a non-empty string"
                      % (event["name"],))
    for key in ("start_s", "wall_s"):
        if not _is_num(event[key]) or event[key] < 0:
            issues.append("span %s %r is not a non-negative number"
                          % (key, event[key]))
    if not isinstance(event["attrs"], dict):
        issues.append("span attrs is not an object")
    counters = event["counters"]
    if not isinstance(counters, dict):
        issues.append("span counters is not an object")
    else:
        for name, value in counters.items():
            if not isinstance(value, int) or isinstance(value, bool):
                issues.append("span counter %r = %r is not an integer"
                              % (name, value))
    return issues


def _check_metric(event):
    issues = []
    kind = event.get("kind")
    if kind not in _METRIC_KINDS:
        return ["metric kind %r not one of %s"
                % (kind, "/".join(_METRIC_KINDS))]
    if not isinstance(event.get("name"), str) or not event.get("name"):
        issues.append("metric name %r is not a non-empty string"
                      % (event.get("name"),))
    if kind in ("counter", "gauge"):
        if not _is_num(event.get("value")):
            issues.append("%s value %r is not a number"
                          % (kind, event.get("value")))
        return issues
    buckets = event.get("buckets")
    counts = event.get("counts")
    if (not isinstance(buckets, list) or not buckets
            or sorted(set(buckets)) != buckets):
        issues.append("histogram buckets %r are not strictly increasing"
                      % (buckets,))
    if not isinstance(counts, list) or (
        isinstance(buckets, list) and len(counts) != len(buckets) + 1
    ):
        issues.append("histogram needs len(buckets)+1 counts (overflow "
                      "slot), got %r" % (counts,))
    elif not all(isinstance(c, int) and c >= 0 for c in counts):
        issues.append("histogram counts %r are not non-negative integers"
                      % (counts,))
    for key in ("sum", "count"):
        if not _is_num(event.get(key)):
            issues.append("histogram %s %r is not a number"
                          % (key, event.get(key)))
    return issues


def coverage(events):
    """Fraction of each ``analyze`` root's wall time accounted for by
    its direct children, aggregated over all analyze roots.

    Returns ``None`` when the stream has no analyze root with positive
    wall time (coverage is then vacuous).
    """
    spans = {
        event["id"]: event
        for event in events
        if event.get("event") == "span" and isinstance(event.get("id"), int)
    }
    child_wall = {}
    for event in spans.values():
        parent = event.get("parent")
        if parent is not None:
            child_wall[parent] = (
                child_wall.get(parent, 0.0) + event.get("wall_s", 0.0)
            )
    total = 0.0
    covered = 0.0
    for identifier, event in spans.items():
        if event.get("parent") is None and event.get("name") == "analyze":
            total += event.get("wall_s", 0.0)
            covered += min(
                child_wall.get(identifier, 0.0), event.get("wall_s", 0.0)
            )
    if total <= 0:
        return None
    return covered / total


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="JSONL telemetry file to validate")
    parser.add_argument(
        "--min-coverage", type=float, default=None, metavar="F",
        help="require the analyze roots' direct children to cover at "
        "least fraction F (e.g. 0.95) of the roots' wall time",
    )
    args = parser.parse_args(argv)
    try:
        events = load_events(args.trace)
    except OSError as error:
        print("%s: %s" % (args.trace, error), file=sys.stderr)
        return 2
    except ValueError as error:
        print("%s: %s" % (args.trace, error), file=sys.stderr)
        return 1
    problems = validate_events(events)
    if args.min_coverage is not None and not problems:
        fraction = coverage(events)
        if fraction is None:
            problems.append("no 'analyze' root span with positive wall "
                            "time; cannot check coverage")
        elif fraction < args.min_coverage:
            problems.append(
                "span tree covers %.1f%% of analyze wall time, below "
                "the %.1f%% floor"
                % (100 * fraction, 100 * args.min_coverage)
            )
    for problem in problems:
        print("%s: %s" % (args.trace, problem), file=sys.stderr)
    if problems:
        return 1
    spans = sum(1 for e in events if e.get("event") == "span")
    metrics = sum(1 for e in events if e.get("event") == "metric")
    print("%s: OK (%d events: %d spans, %d metrics)"
          % (args.trace, len(events), spans, metrics))
    return 0


if __name__ == "__main__":
    sys.exit(main())
