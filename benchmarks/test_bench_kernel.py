"""Experiment F8: the integer row kernel and the parallel batch layer.

Two claims to regenerate:

- the dense integer row kernel (``kernel="int"``) beats the reference
  object pipeline by >= 3x on cold FM-heavy eliminations (the lifted
  convex-hull projections that dominate inter-argument inference), with
  byte-identical projections;
- :func:`repro.batch.analyze_many` fans the corpus sweep over worker
  processes with verdicts identical to the serial reference, and
  near-linear wall-clock speedup when cores are available (the
  speedup assertion is gated on ``os.cpu_count()`` — single-core CI
  boxes still check correctness).

Each test folds its measurements into the repo-level ``BENCH_F8.json``
so the headline numbers are quotable without re-running pytest.
"""

import json
import os
import time

import pytest

from repro.linalg.constraints import Constraint, ConstraintSystem
from repro.linalg.fourier_motzkin import eliminate_all_tracked
from repro.linalg.linexpr import LinearExpr
from repro.linalg.polyhedron import Polyhedron, _homogenize

from benchmarks.conftest import emit

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
HEADLINE_PATH = os.path.join(REPO_ROOT, "BENCH_F8.json")


def _update_headline(key, value):
    """Merge one section into the repo-level BENCH_F8.json artifact."""
    payload = {}
    if os.path.exists(HEADLINE_PATH):
        with open(HEADLINE_PATH) as handle:
            payload = json.load(handle)
    payload[key] = value
    with open(HEADLINE_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


# -- kernel micro-bench -------------------------------------------------------


def hull_lift_workload(nd):
    """The lifted system of an nd-dimensional convex hull — the exact
    shape ``join_exact`` hands to ``eliminate_all_tracked``."""
    dims = ["x%d" % i for i in range(nd)]
    box = Polyhedron(
        dims,
        [Constraint.ge(LinearExpr.of(d)) for d in dims]
        + [Constraint.ge(3 - LinearExpr.of(d)) for d in dims],
    )
    shifted = Polyhedron(
        dims,
        [Constraint.ge(LinearExpr.of(d) - 2) for d in dims]
        + [Constraint.ge(7 - LinearExpr.of(d)) for d in dims]
        + [
            Constraint.ge(
                LinearExpr.of(dims[i])
                - LinearExpr.of(dims[(i + 1) % nd]) + 1
            )
            for i in range(nd)
        ],
    )
    y1 = {d: ("hull_y1", 0, d) for d in dims}
    y2 = {d: ("hull_y2", 0, d) for d in dims}
    m1 = ("hull_m1", 0)
    m2 = ("hull_m2", 0)
    lifted = ConstraintSystem()
    for d in dims:
        lifted.add(
            Constraint.eq(
                LinearExpr.of(d),
                LinearExpr.of(y1[d]) + LinearExpr.of(y2[d]),
            )
        )
    lifted.extend(_homogenize(box.system, y1, m1))
    lifted.extend(_homogenize(shifted.system, y2, m2))
    lifted.add(Constraint.eq(LinearExpr.of(m1) + LinearExpr.of(m2), 1))
    lifted.add(Constraint.ge(LinearExpr.of(m1)))
    lifted.add(Constraint.ge(LinearExpr.of(m2)))
    return lifted, lifted.variables() - set(dims)


def best_of(runs, func):
    best = None
    for _ in range(runs):
        started = time.perf_counter()
        result = func()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best[0]:
            best = (elapsed, result)
    return best


def test_kernel_speedup(benchmark):
    from repro.linalg.array_kernel import numpy_available

    measure_array = numpy_available()
    rows = []
    records = []
    best_ratio = 0.0
    best_array_ratio = 0.0
    for nd in (2, 3, 4):
        lifted, to_eliminate = hull_lift_workload(nd)
        int_time, int_result = best_of(
            5, lambda: eliminate_all_tracked(lifted, to_eliminate,
                                             kernel="int")
        )
        ref_time, ref_result = best_of(
            5, lambda: eliminate_all_tracked(lifted, to_eliminate,
                                             kernel="reference")
        )
        assert list(int_result.constraints) == list(ref_result.constraints)
        ratio = ref_time / int_time
        best_ratio = max(best_ratio, ratio)
        record = {
            "workload": "hull(%d)" % nd,
            "int_seconds": int_time,
            "reference_seconds": ref_time,
            "speedup": ratio,
            "rows_out": len(int_result),
        }
        array_cell = "array=     n/a"
        if measure_array:
            array_time, array_result = best_of(
                5, lambda: eliminate_all_tracked(lifted, to_eliminate,
                                                 kernel="array")
            )
            assert (list(array_result.constraints)
                    == list(int_result.constraints))
            array_ratio = int_time / array_time
            best_array_ratio = max(best_array_ratio, array_ratio)
            record["array_seconds"] = array_time
            record["array_speedup_vs_int"] = array_ratio
            array_cell = ("array=%7.4fs (%5.2fx vs int)"
                          % (array_time, array_ratio))
        rows.append(
            "hull(%d)   int=%7.4fs   reference=%7.4fs   %5.2fx   "
            "%s   rows_out=%d"
            % (nd, int_time, ref_time, ratio, array_cell, len(int_result))
        )
        records.append(record)

    lifted, to_eliminate = hull_lift_workload(4)
    benchmark.pedantic(
        lambda: eliminate_all_tracked(lifted, to_eliminate, kernel="int"),
        rounds=3, iterations=1,
    )
    emit(
        "F8_kernel",
        "Integer row kernel vs reference object pipeline vs numpy\n"
        "array kernel (tracked FM projection of lifted hull systems;\n"
        "projections byte-identical by assertion)\n"
        + "\n".join(rows) + "\n",
        data=records,
    )
    _update_headline("kernel_micro", records)
    # The acceptance targets: int >= 3x over reference, and (with
    # numpy) array >= 2x over int, both on the FM-heavy workloads.
    # hull(2) is dominated by the shared final LP prune, so the
    # targets apply to the elimination-bound sizes.
    assert best_ratio >= 3.0, rows
    if measure_array:
        assert best_array_ratio >= 2.0, rows


# -- serial vs parallel corpus sweep ------------------------------------------


def test_parallel_sweep(benchmark):
    from repro.batch import analyze_many
    from repro.core import AnalyzerSettings, clear_caches
    from repro.corpus import all_programs

    entries = all_programs()
    settings = AnalyzerSettings()

    clear_caches()
    serial = analyze_many(entries, jobs=1, settings=settings)
    clear_caches()  # forked workers must start as cold as the serial run
    parallel = analyze_many(entries, jobs=4, settings=settings)

    serial_verdicts = [(r.name, r.status) for r in serial.results]
    parallel_verdicts = [(r.name, r.status) for r in parallel.results]
    assert parallel_verdicts == serial_verdicts

    cores = os.cpu_count() or 1
    # On a single-core box the ratio measures process-pool overhead,
    # not scaling; flag it so BENCH_F8.json consumers never quote a
    # ~1.0x single-core figure as a parallel-speedup result.
    scaling_measured = cores >= 2
    speedup = serial.wall_time / parallel.wall_time
    lines = [
        "corpus sweep over %d programs (%d cores available)"
        % (len(entries), cores),
        "serial (jobs=1):   %6.2fs" % serial.wall_time,
        "parallel (jobs=4): %6.2fs" % parallel.wall_time,
        "speedup:           %5.2fx%s"
        % (speedup,
           "" if scaling_measured
           else "  (single core: overhead check only, NOT a scaling "
                "measurement)"),
        "verdicts identical: True",
    ]
    record = {
        "programs": len(entries),
        "cores": cores,
        "kernel": settings.fm_kernel,
        "scaling_measured": scaling_measured,
        "serial_seconds": serial.wall_time,
        "parallel_seconds": parallel.wall_time,
        "speedup": speedup,
        "verdicts_identical": True,
    }
    emit("F8_parallel_sweep", "\n".join(lines) + "\n", data=record)
    _update_headline("parallel_sweep", record)

    def warm_parallel():
        return analyze_many(entries[:6], jobs=2)

    benchmark.pedantic(warm_parallel, rounds=1, iterations=1)

    if cores >= 2:
        # Near-linear up to the core count; allow generous slack for
        # process start-up and the re-parse each worker pays.
        expected = min(4, cores) * 0.5
        assert speedup >= expected, lines
