"""Experiment F11: the vectorized array kernels and batched LP solves.

Three claims to regenerate (all gated on numpy — the array kernel is
the optional ``repro[perf]`` accelerator):

- the numpy array kernel beats the integer row kernel by >= 2x on the
  FM-heavy hull(4) projection of experiment F8, with byte-identical
  projections;
- ``feasible_point_batch`` dispatching same-shape tableaus as one
  lockstep multi-tableau solve beats the serial ``solve_lp`` loop,
  with byte-identical witnesses and pivot counts;
- an end-to-end corpus sweep under ``fm_kernel="array"`` (batched
  per-SCC dispatch included) beats the ``"int"`` sweep with identical
  verdicts.

Each test folds its measurements into the repo-level ``BENCH_F11.json``
so the headline numbers are quotable without re-running pytest.
"""

import json
import os

import pytest

from repro.linalg.array_kernel import numpy_available
from repro.linalg.constraints import Constraint, ConstraintSystem
from repro.linalg.fourier_motzkin import eliminate_all_tracked
from repro.linalg.linexpr import LinearExpr
from repro.linalg.simplex import OPTIMAL, feasible_point_batch, solve_lp

from benchmarks.conftest import emit
from benchmarks.test_bench_kernel import best_of, hull_lift_workload

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
HEADLINE_PATH = os.path.join(REPO_ROOT, "BENCH_F11.json")

pytestmark = pytest.mark.skipif(
    not numpy_available(),
    reason="experiment F11 measures the numpy array kernel",
)


def _update_headline(key, value):
    """Merge one section into the repo-level BENCH_F11.json artifact."""
    payload = {}
    if os.path.exists(HEADLINE_PATH):
        with open(HEADLINE_PATH) as handle:
            payload = json.load(handle)
    payload[key] = value
    with open(HEADLINE_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


# -- FM array kernel on the F8 hull workload ----------------------------------


def test_fm_array_speedup(benchmark):
    rows = []
    records = []
    hull4_ratio = 0.0
    for nd in (3, 4):
        lifted, to_eliminate = hull_lift_workload(nd)
        int_time, int_result = best_of(
            5, lambda: eliminate_all_tracked(lifted, to_eliminate,
                                             kernel="int")
        )
        array_time, array_result = best_of(
            5, lambda: eliminate_all_tracked(lifted, to_eliminate,
                                             kernel="array")
        )
        assert (list(array_result.constraints)
                == list(int_result.constraints))
        ratio = int_time / array_time
        if nd == 4:
            hull4_ratio = ratio
        rows.append(
            "hull(%d)   int=%7.4fs   array=%7.4fs   %5.2fx   rows_out=%d"
            % (nd, int_time, array_time, ratio, len(int_result))
        )
        records.append({
            "workload": "hull(%d)" % nd,
            "int_seconds": int_time,
            "array_seconds": array_time,
            "speedup": ratio,
            "rows_out": len(int_result),
        })

    lifted, to_eliminate = hull_lift_workload(4)
    benchmark.pedantic(
        lambda: eliminate_all_tracked(lifted, to_eliminate,
                                      kernel="array"),
        rounds=3, iterations=1,
    )
    emit(
        "F11_fm_array",
        "Numpy array kernel vs integer row kernel\n"
        "(tracked FM projection of lifted hull systems; projections\n"
        "byte-identical by assertion)\n" + "\n".join(rows) + "\n",
        data=records,
    )
    _update_headline("fm_array", records)
    # The acceptance target: >= 2x over the integer kernel on the
    # elimination-bound hull(4) workload.
    assert hull4_ratio >= 2.0, rows


# -- batched lockstep simplex -------------------------------------------------


def batch_lp_workload(count, nv=6):
    """*count* same-shape feasibility systems with varied constants —
    the shape profile of per-SCC lambda solves, which the batch layer
    groups into one lockstep multi-tableau dispatch."""
    systems = []
    for k in range(count):
        dims = ["v%d" % i for i in range(nv)]
        rows = [
            Constraint.ge(LinearExpr.of(d) - (1 + (k + i) % 5))
            for i, d in enumerate(dims)
        ]
        rows += [
            Constraint.ge(
                (20 + 3 * (k % 7))
                - LinearExpr.of(dims[i]) - LinearExpr.of(dims[(i + 1) % nv])
            )
            for i in range(nv)
        ]
        rows.append(
            Constraint.ge(
                sum((LinearExpr.of(d) for d in dims),
                    LinearExpr.constant(0))
                - (8 + k % 11)
            )
        )
        systems.append(ConstraintSystem(rows))
    return systems


def test_batched_lp_speedup(benchmark):
    count = 48
    systems = batch_lp_workload(count)
    zero = LinearExpr.constant(0)

    def serial():
        results = []
        for system in systems:
            result = solve_lp(zero, system, kernel="array")
            results.append(
                result.assignment if result.status == OPTIMAL else None
            )
        return results

    serial_time, serial_results = best_of(5, serial)
    batch_time, batch_results = best_of(
        5, lambda: feasible_point_batch(systems, kernel="array")
    )
    assert batch_results == serial_results
    ratio = serial_time / batch_time
    feasible = sum(1 for r in batch_results if r is not None)

    benchmark.pedantic(
        lambda: feasible_point_batch(systems, kernel="array"),
        rounds=3, iterations=1,
    )
    lines = [
        "%d same-shape feasibility systems (%d feasible)"
        % (count, feasible),
        "serial solve_lp loop:    %7.4fs" % serial_time,
        "lockstep batched solve:  %7.4fs" % batch_time,
        "speedup:                 %5.2fx" % ratio,
        "witnesses identical: True",
    ]
    record = {
        "systems": count,
        "feasible": feasible,
        "serial_seconds": serial_time,
        "batched_seconds": batch_time,
        "speedup": ratio,
        "witnesses_identical": True,
    }
    emit("F11_batch_lp", "\n".join(lines) + "\n", data=record)
    _update_headline("batch_lp", record)
    assert ratio >= 1.2, lines


# -- end-to-end corpus sweep --------------------------------------------------


def test_corpus_kernel_sweep(benchmark):
    from repro.batch import analyze_many
    from repro.core import AnalyzerSettings, clear_caches
    from repro.corpus import all_programs

    entries = all_programs()

    def sweep(kernel):
        clear_caches()
        return analyze_many(
            entries, jobs=1, settings=AnalyzerSettings(fm_kernel=kernel)
        )

    int_report = sweep("int")
    array_report = sweep("array")
    assert (
        [(r.name, r.mode, r.status, r.reasons)
         for r in array_report.results]
        == [(r.name, r.mode, r.status, r.reasons)
            for r in int_report.results]
    )
    ratio = int_report.wall_time / array_report.wall_time

    benchmark.pedantic(lambda: sweep("array"), rounds=1, iterations=1)
    lines = [
        "corpus sweep over %d programs, serial (jobs=1)" % len(entries),
        "fm_kernel=int:    %6.2fs" % int_report.wall_time,
        "fm_kernel=array:  %6.2fs" % array_report.wall_time,
        "speedup:          %5.2fx" % ratio,
        "verdicts identical: True",
    ]
    record = {
        "programs": len(entries),
        "int_seconds": int_report.wall_time,
        "array_seconds": array_report.wall_time,
        "speedup": ratio,
        "verdicts_identical": True,
    }
    emit("F11_corpus_sweep", "\n".join(lines) + "\n", data=record)
    _update_headline("corpus_sweep", record)
    # End-to-end the sweep is not purely FM/LP-bound (parsing, graph
    # work); the array kernel must still win clearly.
    assert ratio >= 1.3, lines
