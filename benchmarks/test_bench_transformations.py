"""Experiment E3: the Appendix A transformation pipeline.

Regenerates: Example A.1 is unprovable as written; after the
alternating unfold/split phases (exactly 2 unfolds + 1 split, matching
the appendix narrative) it is proved.  Also checks the transformations
preserve operational behaviour and that quiescent programs pass
through unchanged.
"""

from repro.core import analyze_program
from repro.corpus.registry import get_program, load
from repro.lp import SLDEngine, parse_program
from repro.transform import normalize_program

from benchmarks.conftest import emit


def test_a1_pipeline(benchmark):
    entry = get_program("example_a1")
    program = load(entry)

    transformed, log = benchmark(
        lambda: normalize_program(program, roots=[("p", 1)])
    )
    before = analyze_program(program, ("p", 1), "b").status
    after = analyze_program(transformed, ("p", 1), "b").status

    kinds = [kind for kind, _ in log.steps]
    assert before == "UNKNOWN"
    assert after == "PROVED"
    assert kinds.count("unfold") == 2
    assert kinds.count("split") == 1

    # Behaviour preserved on concrete queries.
    source = parse_program(entry.source + "\ne(a).")
    target = parse_program(str(transformed) + "\ne(a).")
    for query in ("p(g(a))", "p(g(b))", "p(a)"):
        assert (
            SLDEngine(source).solve(query, max_depth=60).succeeded
            == SLDEngine(target).solve(query, max_depth=60).succeeded
        )

    emit(
        "E3_transformations",
        "Example A.1 transformation pipeline\n"
        "paper:    safe unfolding -> predicate splitting -> safe\n"
        "          unfolding exposes that p is not genuinely recursive\n"
        "measured: before=%s after=%s steps=%s\n"
        "clauses:  %d -> %d\n"
        % (before, after, kinds, len(program), len(transformed)),
        data={
            "before": before,
            "after": after,
            "steps": kinds,
            "clauses_before": len(program),
            "clauses_after": len(transformed),
        },
    )


def test_transformation_is_quiescent_on_normal_programs(benchmark):
    """Programs already in normal form pass through unchanged."""
    entry = get_program("quicksort")
    program = load(entry)
    transformed, log = benchmark(lambda: normalize_program(program))
    assert str(transformed) == str(program)
    assert log.count("unfold") == 0
    assert log.count("split") == 0


def test_subsumption_simplifies_a1(benchmark):
    """The appendix's closing remark: "considerable further
    simplifications are possible by subsumption" — the four unfolded
    q2 rules collapse to two."""
    entry = get_program("example_a1")
    program = load(entry)

    def pipeline():
        return normalize_program(
            program, roots=[("p", 1)], subsumption=True
        )

    transformed, log = benchmark(pipeline)
    recursive_name = [
        p.name for p in transformed.predicates if p.name.startswith("q")
    ][0]
    clauses = transformed.clauses_for((recursive_name, 1))
    assert len(clauses) == 2
    assert log.count("subsume") == 1
    assert analyze_program(transformed, ("p", 1), "b").status == "PROVED"


def test_equality_elimination(benchmark):
    program = parse_program(
        "r(Z) :- U = f(Z), p(U).\n"
        "s(X, Y) :- X = g(A), Y = h(A), q(A).\n"
    )
    transformed, _ = benchmark(lambda: normalize_program(program))
    text = str(transformed)
    assert "=" not in text.replace(":-", "")
