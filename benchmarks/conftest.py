"""Shared helpers for the benchmark harness.

Every benchmark regenerates part of the paper's evaluation and writes
its reproduction table to ``benchmarks/out/<experiment>.txt`` (as well
as printing it), so EXPERIMENTS.md can quote the measured artifacts.
Each emit also writes ``benchmarks/out/<experiment>.json`` — the same
result as structured data, stamped with when and at which revision it
was measured, for dashboards and regression diffing.
"""

import json
import os
import subprocess
from datetime import datetime, timezone

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def _git_revision():
    """The checkout's commit hash, or "unknown" outside a work tree."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10,
        ).stdout.strip() or "unknown"
    except OSError:
        return "unknown"


def emit(experiment, text, data=None):
    """Print a reproduction table and persist it for EXPERIMENTS.md.

    *data* (any JSON-serializable structure; non-serializable leaves
    fall back to ``str``) rides along in the ``.json`` artifact so the
    experiment is machine-readable, not just quotable; the payload is
    stamped with a UTC timestamp and the git revision so artifacts
    from different runs can be told apart.
    """
    os.makedirs(OUT_DIR, exist_ok=True)
    banner = "\n===== %s =====\n" % experiment
    print(banner + text)
    path = os.path.join(OUT_DIR, "%s.txt" % experiment)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    payload = {
        "experiment": experiment,
        "data": data,
        "generated_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "git_revision": _git_revision(),
    }
    with open(os.path.join(OUT_DIR, "%s.json" % experiment), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")


@pytest.fixture(scope="session")
def corpus_verdicts():
    """Verdict matrix for the whole corpus, computed once per session."""
    from repro.baselines import ALL_BASELINES
    from repro.core import TerminationAnalyzer
    from repro.corpus import all_programs
    from repro.corpus.registry import load

    matrix = {}
    for entry in all_programs():
        program = load(entry)
        analyzer = TerminationAnalyzer(program)
        row = {
            "paper": analyzer.analyze(entry.root, entry.mode).status
        }
        for method in ALL_BASELINES:
            row[method.name] = method.analyze(
                program, entry.root, entry.mode
            ).status
        matrix[entry.name] = row
    return matrix
