"""Shared helpers for the benchmark harness.

Every benchmark regenerates part of the paper's evaluation and writes
its reproduction table to ``benchmarks/out/<experiment>.txt`` (as well
as printing it), so EXPERIMENTS.md can quote the measured artifacts.
Each emit also writes ``benchmarks/out/<experiment>.json`` — the same
result as structured data, for dashboards and regression diffing.
"""

import json
import os

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def emit(experiment, text, data=None):
    """Print a reproduction table and persist it for EXPERIMENTS.md.

    *data* (any JSON-serializable structure; non-serializable leaves
    fall back to ``str``) rides along in the ``.json`` artifact so the
    experiment is machine-readable, not just quotable.
    """
    os.makedirs(OUT_DIR, exist_ok=True)
    banner = "\n===== %s =====\n" % experiment
    print(banner + text)
    path = os.path.join(OUT_DIR, "%s.txt" % experiment)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    payload = {"experiment": experiment, "data": data}
    with open(os.path.join(OUT_DIR, "%s.json" % experiment), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")


@pytest.fixture(scope="session")
def corpus_verdicts():
    """Verdict matrix for the whole corpus, computed once per session."""
    from repro.baselines import ALL_BASELINES
    from repro.core import TerminationAnalyzer
    from repro.corpus import all_programs
    from repro.corpus.registry import load

    matrix = {}
    for entry in all_programs():
        program = load(entry)
        analyzer = TerminationAnalyzer(program)
        row = {
            "paper": analyzer.analyze(entry.root, entry.mode).status
        }
        for method in ALL_BASELINES:
            row[method.name] = method.analyze(
                program, entry.root, entry.mode
            ).status
        matrix[entry.name] = row
    return matrix
