"""Shared helpers for the benchmark harness.

Every benchmark regenerates part of the paper's evaluation and writes
its reproduction table to ``benchmarks/out/<experiment>.txt`` (as well
as printing it), so EXPERIMENTS.md can quote the measured artifacts.
"""

import os

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def emit(experiment, text):
    """Print a reproduction table and persist it for EXPERIMENTS.md."""
    os.makedirs(OUT_DIR, exist_ok=True)
    banner = "\n===== %s =====\n" % experiment
    print(banner + text)
    path = os.path.join(OUT_DIR, "%s.txt" % experiment)
    with open(path, "w") as handle:
        handle.write(text + "\n")


@pytest.fixture(scope="session")
def corpus_verdicts():
    """Verdict matrix for the whole corpus, computed once per session."""
    from repro.baselines import ALL_BASELINES
    from repro.core import TerminationAnalyzer
    from repro.corpus import all_programs
    from repro.corpus.registry import load

    matrix = {}
    for entry in all_programs():
        program = load(entry)
        analyzer = TerminationAnalyzer(program)
        row = {
            "paper": analyzer.analyze(entry.root, entry.mode).status
        }
        for method in ALL_BASELINES:
            row[method.name] = method.analyze(
                program, entry.root, entry.mode
            ).status
        matrix[entry.name] = row
    return matrix
