"""Experiment E6: Appendix C — negative theta weights.

"Intuitively, this allows for the possibility that the critical bound
subgoals get larger before getting smaller, in such a way that they
are smaller by the time a cycle around the dependency graph has been
completed.  We are aware of no natural examples of such rules."

The corpus's synthetic ``seesaw`` program is such a program: the
argument grows by one from p to q and shrinks by three from q back to
p.  Shape to reproduce: the standard 0/1 theta assignment fails, the
Appendix C path-constraint search succeeds (with a genuinely negative
theta), and the certificate passes independent verification.  The
standard mode must also remain complete on everything it already
proves (Appendix C is an extension, not a replacement).
"""

from fractions import Fraction

from repro.core import AnalyzerSettings, analyze_program, verify_proof
from repro.corpus.registry import get_program, load

from benchmarks.conftest import emit


def test_seesaw_needs_negative_theta(benchmark):
    entry = get_program("seesaw")
    program = load(entry)

    standard = analyze_program(program, entry.root, entry.mode)
    negative = benchmark(
        analyze_program,
        program,
        entry.root,
        entry.mode,
        settings=AnalyzerSettings(allow_negative_theta=True),
    )

    assert standard.status == "UNKNOWN"
    assert negative.status == "PROVED"
    verify_proof(negative.proof)

    proof = [
        p for p in negative.proof.scc_proofs
        if not p.trivially_nonrecursive
    ][0]
    negative_edges = {
        (str(i), str(j)): value
        for (i, j), value in proof.thetas.items()
        if value < 0
    }
    assert negative_edges, "the proof must actually use a negative theta"

    emit(
        "E6_negative_theta",
        "Appendix C on the synthetic seesaw program\n"
        "standard 0/1 thetas: %s\n"
        "Appendix C search:   %s\n"
        "thetas: %s\n"
        % (
            standard.status,
            negative.status,
            "  ".join(
                "%s->%s=%s" % (i.name, j.name, v)
                for (i, j), v in sorted(proof.thetas.items(), key=repr)
            ),
        ),
        data={
            "standard": standard.status,
            "appendix_c": negative.status,
            "thetas": {
                "%s->%s" % (i.name, j.name): str(v)
                for (i, j), v in sorted(proof.thetas.items(), key=repr)
            },
        },
    )


def test_negative_mode_conservative(benchmark):
    """Appendix C proves everything the standard mode proves."""
    names = ("perm", "merge_variant", "expr_parser", "even_odd")
    settings = AnalyzerSettings(allow_negative_theta=True)
    verdicts = {}
    for name in names:
        entry = get_program(name)
        result = analyze_program(
            load(entry), entry.root, entry.mode, settings=settings
        )
        verdicts[name] = result.status
        assert result.status == "PROVED", name
        verify_proof(result.proof)
    benchmark.pedantic(
        lambda: analyze_program(
            load(get_program("expr_parser")), ("e", 2), "bf",
            settings=settings,
        ),
        rounds=3, iterations=1,
    )
    emit(
        "E6_conservative",
        "Appendix C mode on standard-provable programs\n"
        + "\n".join("%-14s %s" % kv for kv in sorted(verdicts.items()))
        + "\n",
        data=verdicts,
    )


def test_negative_mode_still_rejects_loops(benchmark):
    """The extra freedom must not prove non-terminators."""
    names = ("loop_direct", "loop_mutual", "loop_swap", "count_up")
    settings = AnalyzerSettings(allow_negative_theta=True)
    for name in names:
        entry = get_program(name)
        result = analyze_program(
            load(entry), entry.root, entry.mode, settings=settings
        )
        assert result.status == "UNKNOWN", name
    benchmark.pedantic(
        lambda: analyze_program(
            load(get_program("loop_mutual")), ("p", 1), "b",
            settings=settings,
        ),
        rounds=3, iterations=1,
    )
