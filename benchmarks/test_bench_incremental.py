"""Experiment F10: one-clause-edit re-analysis under the SCC cache.

The incremental claim to regenerate: after analyzing a multi-SCC
corpus program once with a certificate cache attached, appending one
clause to the *root* predicate and re-analyzing reuses every untouched
SCC's certificate and re-proves only the edited SCC — making the
edit-re-analysis at least 5x faster (median across programs) than
re-analyzing the edited program cold.

The three corpus programs with the deepest SCC structure carry the
measurement (gcd_euclid: 5 recursive SCCs; perm and quicksort: 3
each).  Results fold into the repo-level ``BENCH_F10.json`` so the
headline numbers are quotable without re-running pytest.
"""

import json
import os
import statistics
import time

import pytest

from repro.core import MemoryCertificateCache, TerminationAnalyzer, clear_caches
from repro.corpus import get_program
from repro.lp import parse_program

from benchmarks.conftest import emit

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
HEADLINE_PATH = os.path.join(REPO_ROOT, "BENCH_F10.json")

#: (corpus name, one-clause edit appended to the root predicate).
PROGRAMS = [
    ("gcd_euclid", "gcd(zzz, zzz, zzz).\n"),
    ("perm", "perm(zzz, zzz).\n"),
    ("quicksort", "qsort(zzz, zzz).\n"),
]

REPEATS = 3


def _analyze(source, root, mode, cache):
    clear_caches()
    program = parse_program(source)
    return TerminationAnalyzer(
        program, certificate_cache=cache
    ).analyze(root, mode)


def _best_of(fn, repeats=REPEATS):
    """(best wall seconds, last result) over *repeats* runs."""
    best, result = None, None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def test_one_clause_edit_reanalysis_speedup():
    rows = []
    records = []
    for name, edit in PROGRAMS:
        entry = get_program(name)
        edited = entry.source + "\n" + edit

        # Cold: the edited program, empty cache every run.
        cold_s, cold = _best_of(
            lambda: _analyze(edited, entry.root, entry.mode,
                             MemoryCertificateCache())
        )

        # Warm: certificates earned on the *unedited* program.
        seed = MemoryCertificateCache()
        _analyze(entry.source, entry.root, entry.mode, seed)
        warm_s, warm = _best_of(
            lambda: _analyze(edited, entry.root, entry.mode,
                             MemoryCertificateCache(
                                 entries=dict(seed.entries)))
        )

        assert warm.status == cold.status
        assert warm.proved
        # The edit touched the root SCC only: everything else reuses.
        assert warm.sccs_reproved == 1
        assert warm.sccs_reused == cold.sccs_reproved - 1
        assert warm.sccs_rejected == 0

        speedup = cold_s / warm_s
        rows.append("%-12s cold %7.1f ms   warm %7.1f ms   %5.1fx   "
                    "reused %d / re-proved %d"
                    % (name, cold_s * 1e3, warm_s * 1e3, speedup,
                       warm.sccs_reused, warm.sccs_reproved))
        records.append({
            "program": name,
            "cold_seconds": cold_s,
            "warm_seconds": warm_s,
            "speedup": speedup,
            "sccs_reused": warm.sccs_reused,
            "sccs_reproved": warm.sccs_reproved,
        })

    median_speedup = statistics.median(r["speedup"] for r in records)
    text = "\n".join(rows + [
        "",
        "median one-clause-edit speedup: %.1fx (threshold 5x)"
        % median_speedup,
    ])
    result = {
        "programs": records,
        "median_speedup": median_speedup,
        "repeats": REPEATS,
    }
    emit("F10_incremental", text, result)

    payload = {}
    if os.path.exists(HEADLINE_PATH):
        with open(HEADLINE_PATH) as handle:
            payload = json.load(handle)
    payload["one_clause_edit"] = result
    with open(HEADLINE_PATH, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    assert median_speedup >= 5.0
