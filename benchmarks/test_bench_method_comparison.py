"""Experiment E2: this paper's method vs the earlier literature.

Regenerates the comparative claims ("several programs that could not
be shown to terminate by earlier published methods are handled
successfully") as a verdict matrix over the corpus, and times each
method's full corpus sweep.

Shape to reproduce: the paper's method proves a strict superset of
every baseline; perm / merge-variant / expression-parser (the paper's
own examples) separate it from all of them.
"""

import pytest

from repro.baselines import ALL_BASELINES
from repro.core import analyze_program
from repro.core.report import render_verdict_table
from repro.corpus import all_programs
from repro.corpus.registry import load

from benchmarks.conftest import emit

METHODS = ["paper"] + [m.name for m in ALL_BASELINES]


def test_verdict_matrix(corpus_verdicts, benchmark):
    """The headline table; benchmark times the paper method's sweep."""

    def paper_sweep():
        for entry in all_programs():
            analyze_program(load(entry), entry.root, entry.mode)

    benchmark.pedantic(paper_sweep, rounds=1, iterations=1)

    rows = []
    for entry in all_programs():
        verdicts = corpus_verdicts[entry.name]
        for method in METHODS:
            assert verdicts[method] == entry.expected[method], (
                entry.name, method,
            )
        rows.append(
            [entry.name] + [verdicts[m] for m in METHODS]
        )
    table = render_verdict_table(rows, headers=tuple(["program"] + METHODS))

    proved = {
        m: sum(1 for entry in all_programs()
               if corpus_verdicts[entry.name][m] == "PROVED")
        for m in METHODS
    }
    summary = "proved counts: " + "  ".join(
        "%s=%d" % (m, proved[m]) for m in METHODS
    )
    only_paper = [
        entry.name
        for entry in all_programs()
        if corpus_verdicts[entry.name]["paper"] == "PROVED"
        and all(
            corpus_verdicts[entry.name][m.name] == "UNKNOWN"
            for m in ALL_BASELINES
        )
    ]
    emit(
        "E2_method_comparison",
        table
        + "\n\n" + summary
        + "\nproved ONLY by the paper's method: " + ", ".join(only_paper)
        + "\n",
        data={
            "verdicts": corpus_verdicts,
            "proved_counts": proved,
            "only_paper": only_paper,
        },
    )

    # Shape assertions: strict superset, and the paper's own examples
    # among the separators.
    for m in ALL_BASELINES:
        assert proved["paper"] >= proved[m.name]
    assert {"perm", "merge_variant", "expr_parser"} <= set(only_paper)


@pytest.mark.parametrize("method", ALL_BASELINES, ids=lambda m: m.name)
def test_baseline_sweep_time(method, benchmark):
    """Per-method sweep timing (baselines are far cheaper — they skip
    inter-argument inference entirely)."""

    def sweep():
        for entry in all_programs():
            method.analyze(load(entry), entry.root, entry.mode)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
