#!/usr/bin/env python
"""Compare fresh BENCH_*.json artifacts against checked-in baselines.

The headline artifacts mix three kinds of fields, and the checker
treats them differently:

- **invariants** — booleans (``verdicts_identical``,
  ``byte_identical``) and structural counts (``rows_out``,
  ``programs``, ``systems``, ``sccs_reused`` …).  These describe
  *correctness*, not the machine: they must match the baseline
  exactly.
- **quality ratios** — ``speedup``, ``*_speedup*``,
  ``cold_over_warm``, ``median_speedup``.  Dimensionless
  better-is-bigger numbers that survive a machine change but wobble
  with load: a fresh value may not fall below
  ``baseline * (1 - tolerance)``.  Improvements always pass.
- **absolute timings** — ``*_seconds``, ``*_ms``,
  ``*_per_second``, plus environment fields (``cores``, ``kernel``,
  ``host`` …).  Machine-dependent; ignored.

Usage::

    python benchmarks/check_bench_regression.py BASELINE FRESH
    python benchmarks/check_bench_regression.py baseline_dir fresh_dir \
        --tolerance 0.5

File arguments compare one pair; directory arguments compare every
``BENCH_*.json`` present in both (missing fresh twins are reported).
Exit 0 when nothing regressed, 1 otherwise, one problem per line.
Stdlib only — CI runs this in the bench-smoke job after regenerating
the artifacts.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

#: Leaf keys compared exactly (correctness facts).
INVARIANT_KEYS = {
    "verdicts_identical", "witnesses_identical", "byte_identical",
    "rows_out", "programs", "systems", "feasible",
    "sccs_reused", "sccs_reproved", "sccs_rejected", "repeats", "jobs",
    "workload", "program", "status", "verdict",
}

#: Leaf-key suffixes treated as better-is-bigger quality ratios.
RATIO_SUFFIXES = ("speedup", "cold_over_warm")

#: Leaf-key suffixes that are machine-dependent and ignored.
IGNORED_SUFFIXES = (
    "_seconds", "_ms", "_per_second", "timestamp", "revision",
    "cores", "host", "kernel", "scaling_measured",
)


def classify(key):
    """``invariant`` / ``ratio`` / ``ignored`` for one leaf key."""
    if key in INVARIANT_KEYS:
        return "invariant"
    if any(key == s or key.endswith(s) for s in RATIO_SUFFIXES) \
            or "speedup" in key:
        return "ratio"
    if any(key.endswith(s) or key == s.lstrip("_")
           for s in IGNORED_SUFFIXES):
        return "ignored"
    return "invariant"


def _leaves(obj, path=""):
    """Yield ``(path, leaf_key, value)`` for every scalar leaf."""
    if isinstance(obj, dict):
        for key in sorted(obj):
            yield from _leaves(obj[key], "%s.%s" % (path, key))
    elif isinstance(obj, list):
        for index, item in enumerate(obj):
            yield from _leaves(item, "%s[%d]" % (path, index))
    else:
        yield path, path.rsplit(".", 1)[-1].split("[")[0], obj


def compare_artifacts(baseline, fresh, tolerance, label=""):
    """Problems between one baseline/fresh artifact pair."""
    problems = []
    fresh_leaves = {
        path: (key, value) for path, key, value in _leaves(fresh)
    }
    for path, key, base_value in _leaves(baseline):
        kind = classify(key)
        if kind == "ignored":
            continue
        where = "%s%s" % (label, path)
        if path not in fresh_leaves:
            problems.append("%s: missing from fresh artifact" % where)
            continue
        fresh_value = fresh_leaves[path][1]
        if kind == "invariant":
            if fresh_value != base_value:
                problems.append(
                    "%s: invariant changed: baseline %r, fresh %r"
                    % (where, base_value, fresh_value)
                )
        else:  # ratio
            if not isinstance(base_value, (int, float)) \
                    or isinstance(base_value, bool):
                continue
            floor = base_value * (1.0 - tolerance)
            if not isinstance(fresh_value, (int, float)) \
                    or isinstance(fresh_value, bool):
                problems.append(
                    "%s: ratio is not numeric in fresh artifact (%r)"
                    % (where, fresh_value)
                )
            elif fresh_value < floor:
                problems.append(
                    "%s: regressed: baseline %.4g, fresh %.4g "
                    "(floor %.4g at tolerance %.0f%%)"
                    % (where, base_value, fresh_value, floor,
                       tolerance * 100)
                )
    return problems


def _pairs(baseline, fresh):
    """``(name, baseline_path, fresh_path_or_None)`` pairs to check."""
    if os.path.isdir(baseline):
        if not os.path.isdir(fresh):
            raise SystemExit(
                "baseline is a directory but fresh is not: %r" % fresh
            )
        pairs = []
        for path in sorted(
            glob.glob(os.path.join(baseline, "BENCH_*.json"))
        ):
            name = os.path.basename(path)
            twin = os.path.join(fresh, name)
            pairs.append(
                (name, path, twin if os.path.exists(twin) else None)
            )
        if not pairs:
            raise SystemExit(
                "no BENCH_*.json artifacts under %r" % baseline
            )
        return pairs
    return [(os.path.basename(baseline), baseline, fresh)]


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Check fresh benchmark artifacts against "
        "baselines: exact match on correctness invariants, bounded "
        "regression on quality ratios, timings ignored.",
    )
    parser.add_argument("baseline", help="baseline JSON file or dir")
    parser.add_argument("fresh", help="fresh JSON file or dir")
    parser.add_argument(
        "--tolerance", type=float, default=0.5, metavar="FRACTION",
        help="allowed relative drop in quality ratios (default 0.5: "
        "a fresh speedup may be at most 50%% below baseline)",
    )
    args = parser.parse_args(argv)
    if not 0 <= args.tolerance < 1:
        parser.error("--tolerance must be in [0, 1)")
    problems = []
    checked = 0
    for name, baseline_path, fresh_path in _pairs(
        args.baseline, args.fresh
    ):
        if fresh_path is None:
            problems.append(
                "%s: no fresh artifact was generated" % name
            )
            continue
        try:
            with open(baseline_path) as handle:
                baseline = json.load(handle)
            with open(fresh_path) as handle:
                fresh = json.load(handle)
        except (OSError, ValueError) as error:
            problems.append("%s: unreadable artifact: %s" % (name, error))
            continue
        problems.extend(
            compare_artifacts(
                baseline, fresh, args.tolerance, label="%s:" % name
            )
        )
        checked += 1
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print("FAIL: %d problem(s) across %d artifact(s)"
              % (len(problems), checked), file=sys.stderr)
        return 1
    print("OK: %d artifact(s) within tolerance" % checked)
    return 0


if __name__ == "__main__":
    sys.exit(main())
