"""Tests for the command-line front end."""

import pytest

from repro.cli import main, parse_root


@pytest.fixture
def perm_file(tmp_path):
    path = tmp_path / "perm.pl"
    path.write_text(
        "perm([], []).\n"
        "perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), "
        "perm(P1, L).\n"
        "append([], Ys, Ys).\n"
        "append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).\n"
    )
    return str(path)


@pytest.fixture
def loop_file(tmp_path):
    path = tmp_path / "loop.pl"
    path.write_text("p(X) :- p(X).\n")
    return str(path)


@pytest.fixture
def a1_file(tmp_path):
    path = tmp_path / "a1.pl"
    path.write_text(
        "p(g(X)) :- e(X).\n"
        "p(g(X)) :- q(f(X)).\n"
        "q(Y) :- p(Y).\n"
        "q(f(Z)) :- p(Z), q(Z).\n"
    )
    return str(path)


class TestParseRoot:
    def test_simple(self):
        assert parse_root("perm/2") == ("perm", 2)

    def test_bad_format(self):
        with pytest.raises(SystemExit):
            parse_root("perm")


class TestMain:
    def test_proved_exit_zero(self, perm_file, capsys):
        code = main([perm_file, "--root", "perm/2", "--mode", "bf"])
        assert code == 0
        out = capsys.readouterr().out
        assert "PROVED" in out

    def test_unknown_exit_one(self, loop_file, capsys):
        code = main([loop_file, "--root", "p/1", "--mode", "b"])
        assert code == 1
        assert "UNKNOWN" in capsys.readouterr().out

    def test_parse_error_exit_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.pl"
        bad.write_text("p(a")
        code = main([str(bad), "--root", "p/1", "--mode", "b"])
        assert code == 2

    def test_verify_flag(self, perm_file, capsys):
        code = main(
            [perm_file, "--root", "perm/2", "--mode", "bf", "--verify"]
        )
        assert code == 0
        assert "verified" in capsys.readouterr().out

    def test_verbose_shows_environment(self, perm_file, capsys):
        main([perm_file, "--root", "perm/2", "--mode", "bf", "--verbose"])
        out = capsys.readouterr().out
        assert "Inter-argument constraints" in out

    def test_transform_flag_on_a1(self, a1_file, capsys):
        without = main([a1_file, "--root", "p/1", "--mode", "b"])
        assert without == 1
        with_transform = main(
            [a1_file, "--root", "p/1", "--mode", "b", "--transform"]
        )
        assert with_transform == 0

    def test_no_interarg_flag(self, perm_file):
        code = main(
            [perm_file, "--root", "perm/2", "--mode", "bf", "--no-interarg"]
        )
        assert code == 1

    def test_stats_flag_prints_stage_table(self, perm_file, capsys):
        code = main(
            [perm_file, "--root", "perm/2", "--mode", "bf", "--stats"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Pipeline stage trace" in out
        for stage in ("adorn", "interarg", "dualize", "solve", "certify"):
            assert stage in out

    def test_stats_off_by_default(self, perm_file, capsys):
        main([perm_file, "--root", "perm/2", "--mode", "bf"])
        assert "Pipeline stage trace" not in capsys.readouterr().out

    def test_all_modes_stats_merges_traces(self, tmp_path, capsys):
        path = tmp_path / "modes.pl"
        path.write_text(
            ":- mode(append(b, b, f)).\n"
            ":- mode(append(f, f, b)).\n"
            "append([], Ys, Ys).\n"
            "append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).\n"
        )
        code = main([str(path), "--all-modes", "--stats"])
        assert code == 0
        out = capsys.readouterr().out
        assert "append/3 mode bbf: PROVED" in out
        assert "append/3 mode ffb: PROVED" in out
        assert "Pipeline stage trace" in out
        # One analyzer serves both modes: the second mode reuses the
        # inter-argument environment, so the merged trace shows a hit.
        adorn_row = [l for l in out.splitlines() if l.strip().startswith("interarg")][0]
        assert "1/1" in adorn_row  # cache h/m across the two modes

    def test_json_includes_trace(self, perm_file, capsys):
        import json

        code = main([perm_file, "--root", "perm/2", "--mode", "bf", "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["norm"] == "structural"
        stages = [entry["stage"] for entry in data["trace"]]
        assert "solve" in stages

    def test_bad_root_is_a_clear_error(self, perm_file, capsys):
        code = main([perm_file, "--root", "prem/2", "--mode", "bf"])
        assert code == 2
        err = capsys.readouterr().err
        assert "prem/2" in err
        assert "perm/2" in err  # names what IS defined

    def test_bad_mode_is_a_clear_error(self, perm_file, capsys):
        code = main([perm_file, "--root", "perm/2", "--mode", "bff"])
        assert code == 2
        assert "needs 2" in capsys.readouterr().err

    def test_norm_flag(self, tmp_path):
        path = tmp_path / "msort.pl"
        from repro.corpus.registry import get_program

        path.write_text(get_program("mergesort").source)
        structural = main(
            [str(path), "--root", "msort/2", "--mode", "bf"]
        )
        lengths = main(
            [str(path), "--root", "msort/2", "--mode", "bf",
             "--norm", "list_length"]
        )
        assert structural == 1
        assert lengths == 0


class TestTimeout:
    """--timeout: exit 3 on expiry, no effect when analysis is fast."""

    def test_generous_budget_is_a_no_op(self, perm_file, capsys):
        code = main(
            [perm_file, "--root", "perm/2", "--mode", "bf",
             "--timeout", "60"]
        )
        assert code == 0
        assert "PROVED" in capsys.readouterr().out

    def test_expired_budget_exits_three(self, perm_file, capsys,
                                        monkeypatch):
        import repro.methods as methods_module

        def stall(*args, **kwargs):
            import time

            time.sleep(10)

        monkeypatch.setattr(methods_module, "run_method", stall)
        code = main(
            [perm_file, "--root", "perm/2", "--mode", "bf",
             "--timeout", "0.2"]
        )
        assert code == 3
        assert "timed out" in capsys.readouterr().err

    def test_timeout_is_distinct_from_unknown(self, loop_file):
        # UNKNOWN stays 1 even under a (generous) deadline.
        code = main(
            [loop_file, "--root", "p/1", "--mode", "b",
             "--timeout", "60"]
        )
        assert code == 1


class TestMethodFlag:
    """--method / --list-methods: the pluggable prover front end."""

    def test_list_methods(self, capsys):
        code = main(["--list-methods"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("argsize", "sizechange", "nonterm", "portfolio"):
            assert name in out

    def test_source_still_required_without_list(self):
        with pytest.raises(SystemExit, match="source"):
            main(["--root", "p/1", "--mode", "b"])

    def test_unknown_method_exits_two_with_choices(self, loop_file,
                                                   capsys):
        code = main([loop_file, "--root", "p/1", "--mode", "b",
                     "--method", "magic"])
        assert code == 2
        err = capsys.readouterr().err
        assert "magic" in err
        assert "portfolio" in err

    def test_portfolio_disproves_loop(self, loop_file, capsys):
        code = main([loop_file, "--root", "p/1", "--mode", "b",
                     "--method", "portfolio"])
        assert code == 1
        out = capsys.readouterr().out
        assert "DISPROVED" in out
        assert "looping derivation" in out

    def test_sizechange_proves_ackermann(self, tmp_path, capsys):
        path = tmp_path / "ack.pl"
        path.write_text(
            "ack(0, N, s(N)).\n"
            "ack(s(M), 0, R) :- ack(M, s(0), R).\n"
            "ack(s(M), s(N), R) :- ack(s(M), N, R1), ack(M, R1, R).\n"
        )
        code = main([str(path), "--root", "ack/3", "--mode", "bbf",
                     "--method", "sizechange"])
        assert code == 0
        assert "PROVED" in capsys.readouterr().out

    def test_verify_with_proofless_certificate_notes_it(self, tmp_path,
                                                        capsys):
        path = tmp_path / "ack.pl"
        path.write_text(
            "ack(0, N, s(N)).\n"
            "ack(s(M), 0, R) :- ack(M, s(0), R).\n"
            "ack(s(M), s(N), R) :- ack(s(M), N, R1), ack(M, R1, R).\n"
        )
        code = main([str(path), "--root", "ack/3", "--mode", "bbf",
                     "--method", "sizechange", "--verify"])
        assert code == 0
        assert "no lambda certificate" in capsys.readouterr().err

    def test_method_json_includes_method(self, loop_file, capsys):
        import json

        code = main([loop_file, "--root", "p/1", "--mode", "b",
                     "--method", "nonterm", "--json"])
        assert code == 1
        data = json.loads(capsys.readouterr().out)
        assert data["method"] == "nonterm"
        assert data["status"] == "DISPROVED"


class TestCacheDir:
    """--cache-dir: the CLI face of the persistent result store."""

    def test_cold_then_warm(self, perm_file, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        base = [perm_file, "--root", "perm/2", "--mode", "bf",
                "--cache-dir", cache]
        assert main(base) == 0
        cold = capsys.readouterr()
        assert "served from store" not in cold.err
        assert main(base) == 0
        warm = capsys.readouterr()
        assert "served from store" in warm.err
        assert "PROVED" in warm.out

    def test_json_byte_identical_cold_and_warm(self, perm_file,
                                               tmp_path, capsys):
        cache = str(tmp_path / "cache")
        base = [perm_file, "--root", "perm/2", "--mode", "bf",
                "--json", "--cache-dir", cache]
        assert main(base) == 0
        cold = capsys.readouterr().out
        assert main(base) == 0
        warm = capsys.readouterr().out
        assert warm == cold

    def test_unknown_exit_code_preserved_on_hit(self, loop_file,
                                                tmp_path):
        cache = str(tmp_path / "cache")
        base = [loop_file, "--root", "p/1", "--mode", "b",
                "--cache-dir", cache]
        assert main(base) == 1  # cold miss solves
        assert main(base) == 1  # warm hit keeps the verdict's code

    def test_verify_skips_the_store_read(self, perm_file, tmp_path,
                                         capsys):
        cache = str(tmp_path / "cache")
        base = [perm_file, "--root", "perm/2", "--mode", "bf",
                "--cache-dir", cache]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--verify"]) == 0
        captured = capsys.readouterr()
        assert "served from store" not in captured.err
        assert "verified" in captured.out


@pytest.fixture
def chain_files(tmp_path):
    """A two-SCC program (OLD) and a one-clause edit of it (NEW)."""
    source = (
        "leq(z, X).\n"
        "leq(s(X), s(Y)) :- leq(X, Y).\n"
        "count([], z).\n"
        "count([H|T], s(N)) :- count(T, N), leq(N, N).\n"
    )
    old = tmp_path / "old.pl"
    old.write_text(source)
    new = tmp_path / "new.pl"
    new.write_text(source + "count([z], s(z)).\n")
    return str(old), str(new)


class TestDiff:
    def test_diff_reports_reuse_split(self, chain_files, capsys):
        from repro.core import clear_caches

        clear_caches()
        old, new = chain_files
        code = main([old, "--diff", new,
                     "--root", "count/2", "--mode", "bf"])
        assert code == 0
        out = capsys.readouterr().out
        assert "PROVED -> PROVED" in out
        # The edit touched count/2 only; leq/2's certificate survives.
        assert "1 reused, 1 re-proved" in out

    def test_diff_json_counts(self, chain_files, capsys):
        import json

        from repro.core import clear_caches

        clear_caches()
        old, new = chain_files
        code = main([old, "--diff", new,
                     "--root", "count/2", "--mode", "bf", "--json"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["new"]["status"] == "PROVED"
        assert data["new"]["sccs_reused"] == 1
        assert data["new"]["sccs_reproved"] == 1
        assert data["new"]["sccs_rejected"] == 0

    def test_diff_with_store_warms_across_runs(self, chain_files,
                                               tmp_path, capsys):
        from repro.core import clear_caches

        old, new = chain_files
        store = str(tmp_path / "store")
        clear_caches()
        main([old, "--diff", new, "--root", "count/2", "--mode", "bf",
              "--cache-dir", store, "--json"])
        capsys.readouterr()
        clear_caches()
        code = main([old, "--diff", new, "--root", "count/2",
                     "--mode", "bf", "--cache-dir", store, "--json"])
        assert code == 0
        import json

        data = json.loads(capsys.readouterr().out)
        # Second run: every certificate (both SCCs) comes from the
        # persistent store.
        assert data["new"]["sccs_reused"] == 2
        assert data["new"]["sccs_reproved"] == 0

    def test_diff_needs_root_and_mode(self, chain_files):
        old, new = chain_files
        with pytest.raises(SystemExit):
            main([old, "--diff", new, "--all-modes"])

    def test_diff_excludes_no_incremental(self, chain_files):
        old, new = chain_files
        with pytest.raises(SystemExit):
            main([old, "--diff", new, "--root", "count/2",
                  "--mode", "bf", "--no-incremental"])

    def test_diff_missing_new_file_is_usage_error(self, chain_files,
                                                  capsys):
        old, _ = chain_files
        code = main([old, "--diff", old + ".does-not-exist",
                     "--root", "count/2", "--mode", "bf"])
        assert code == 2


class TestNoIncremental:
    def test_no_incremental_reproves_under_warm_store(self, chain_files,
                                                      tmp_path, capsys):
        from repro.core import clear_caches

        old, _ = chain_files
        store = str(tmp_path / "store")
        clear_caches()
        assert main([old, "--root", "count/2", "--mode", "bf",
                     "--cache-dir", store]) == 0
        first = capsys.readouterr()
        # Different mode so the verdict store misses but certificates
        # would hit; --no-incremental must not consult them.
        clear_caches()
        assert main([old, "--root", "leq/2", "--mode", "bb",
                     "--cache-dir", store, "--no-incremental"]) == 0
        second = capsys.readouterr()
        assert "reused" not in second.err

    def test_incremental_flag_is_remote_only(self, chain_files):
        old, _ = chain_files
        with pytest.raises(SystemExit):
            main([old, "--root", "count/2", "--mode", "bf",
                  "--incremental"])
