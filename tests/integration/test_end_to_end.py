"""Cross-cutting integration tests: analyzer vs engine vs verifier.

Analyses are computed once per module (a couple of corpus entries take
tens of seconds); every test reads the shared cache.
"""

import pytest

from repro.lp import SLDEngine
from repro.lp.generate import TermGenerator
from repro.core import analyze_program, verify_proof
from repro.corpus import all_programs
from repro.corpus.registry import load, make_query


@pytest.fixture(scope="module")
def analyses():
    """{name: (entry, AnalysisResult)} for the whole corpus."""
    cache = {}
    for entry in all_programs():
        cache[entry.name] = (
            entry,
            analyze_program(load(entry), entry.root, entry.mode),
        )
    return cache


def proved_names():
    return [
        entry.name
        for entry in all_programs()
        if entry.expected["paper"] == "PROVED"
    ]


def nonterminating_names():
    return [
        entry.name for entry in all_programs() if entry.terminating is False
    ]


class TestExpectedVerdictMatrix:
    """The corpus's expected-verdict table *is* experiment E2; keep the
    library honest against it on every run."""

    def test_paper_method_verdicts(self, analyses):
        mismatches = {
            name: (result.status, entry.expected["paper"])
            for name, (entry, result) in analyses.items()
            if result.status != entry.expected["paper"]
        }
        assert mismatches == {}

    def test_paper_strictly_stronger_than_baselines(self):
        """Our method proves a strict superset of each baseline."""
        for entry in all_programs():
            for method in ("naish83", "uvg88_spine", "single_arg_structural"):
                if entry.expected[method] == "PROVED":
                    assert entry.expected["paper"] == "PROVED", (
                        "%s: %s proves it but the paper method should too"
                        % (entry.name, method)
                    )

    def test_separating_programs_exist(self):
        """The headline claim: programs no earlier method handles."""
        separating = [
            entry.name
            for entry in all_programs()
            if entry.expected["paper"] == "PROVED"
            and all(
                entry.expected[m] == "UNKNOWN"
                for m in ("naish83", "uvg88_spine", "single_arg_structural")
            )
        ]
        assert {"perm", "merge_variant", "expr_parser"} <= set(separating)


class TestSoundnessEndToEnd:
    """Every program we PROVE must empirically terminate (experiment
    F2's core claim, spot-checked here; the benchmark runs it at
    scale)."""

    @pytest.mark.parametrize("name", proved_names())
    def test_certificate_verifies(self, analyses, name):
        entry, result = analyses[name]
        assert result.proved, name
        verify_proof(result.proof)

    @pytest.mark.parametrize("name", proved_names())
    def test_terminates_empirically(self, analyses, name):
        entry, result = analyses[name]
        engine = SLDEngine(load(entry))
        generator = TermGenerator(seed=42)
        for _ in range(3):
            query = make_query(entry, generator)
            outcome = engine.solve(
                [query], max_depth=250, max_steps=200000
            )
            assert outcome.completed, "%s diverged on %s" % (name, query)


class TestNonterminatorsExhaustBudget:
    @pytest.mark.parametrize("name", nonterminating_names())
    def test_diverges(self, name):
        entry = next(e for e in all_programs() if e.name == name)
        engine = SLDEngine(load(entry))
        generator = TermGenerator(seed=7)
        query = make_query(entry, generator)
        outcome = engine.solve([query], max_depth=150, max_steps=20000)
        assert not outcome.completed, name

    @pytest.mark.parametrize("name", nonterminating_names())
    def test_never_proved(self, analyses, name):
        _, result = analyses[name]
        assert result.status == "UNKNOWN", name
