"""Full-corpus differential: warm incremental runs are byte-identical.

The acceptance gate for the per-SCC certificate cache: across the
whole 42-program corpus and every settings variant that changes the
solving route, re-analyzing a program with a warm cache must produce
the *byte-identical* wire payload the cold run produced, while every
recursive SCC's certificate comes from the cache (nothing re-proved,
nothing rejected).

The cache is shared across the corpus within one variant — identical
sub-SCCs in different programs (the corpus reuses append/leq/perm
building blocks) legitimately hit each other's certificates already in
the cold pass; the warm pass must then reuse everything.  Each variant
gets its own cache: fingerprints deliberately include the settings
digest, so certificates never leak between solving routes.
"""

import pytest

from repro.core import (
    AnalyzerSettings,
    MemoryCertificateCache,
    TerminationAnalyzer,
    clear_caches,
)
from repro.corpus import all_programs
from repro.lp import parse_program
from repro.serve.protocol import payload_from_result, payload_text

VARIANTS = {
    "default": AnalyzerSettings(),
    "fm-feasibility": AnalyzerSettings(feasibility="fm"),
    "no-eliminate-w": AnalyzerSettings(eliminate_w=False),
    "negative-theta": AnalyzerSettings(allow_negative_theta=True),
}


def _sweep(settings, cache):
    """Analyze the whole corpus; return ({name: payload_bytes},
    total reused, total reproved, total rejected)."""
    payloads = {}
    reused = reproved = rejected = 0
    for entry in all_programs():
        clear_caches()
        program = parse_program(entry.source)
        result = TerminationAnalyzer(
            program, settings, certificate_cache=cache
        ).analyze(entry.root, entry.mode)
        payloads[entry.name] = payload_text(payload_from_result(result))
        reused += result.sccs_reused
        reproved += result.sccs_reproved
        rejected += result.sccs_rejected
    return payloads, reused, reproved, rejected


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_warm_corpus_sweep_is_byte_identical(variant):
    entries = all_programs()
    assert len(entries) == 42

    settings = VARIANTS[variant]
    cache = MemoryCertificateCache(limit=65536)
    cold_payloads, _, cold_reproved, _ = _sweep(settings, cache)
    assert cold_reproved > 0  # the cold pass actually proved things

    warm_payloads, reused, reproved, rejected = _sweep(settings, cache)
    assert warm_payloads == cold_payloads
    assert reused > 0
    assert reproved == 0
    assert rejected == 0
