"""End-to-end reproduction of every worked example in the paper.

These tests pin the *numbers* the paper derives, not just the verdicts:

- Example 3.1/4.1 (perm): the single final constraint is 2*lambda >= 1
  and lambda = 1/2 proves termination;
- Example 5.1 (merge): lambda1 = lambda2 >= 1/2;
- Example 6.1 (parser): theta_et = theta_tn = 0, theta_ne = 1, and
  alpha = beta = gamma >= 1/2;
- Example A.1: unprovable as written, provable after the Appendix A
  transformation sequence.
"""

from fractions import Fraction

import pytest

from repro.core import analyze_program, verify_proof
from repro.core.adornment import AdornedPredicate
from repro.transform import normalize_program


class TestExample31Perm:
    def test_proved_with_half(self, perm_program):
        result = analyze_program(perm_program, ("perm", 2), "bf")
        assert result.proved
        node = AdornedPredicate(("perm", 2), "bf")
        weights = result.proof.proof_for(node).lambda_for(node)
        assert weights[1] >= Fraction(1, 2)  # "2 lambda >= 1"

    def test_certificate_verifies(self, perm_program):
        result = analyze_program(perm_program, ("perm", 2), "bf")
        assert verify_proof(result.proof)

    def test_append_interarg_constraint_used(self, perm_program):
        result = analyze_program(perm_program, ("perm", 2), "bf")
        from repro.linalg.constraints import Constraint
        from repro.linalg.linexpr import LinearExpr
        from repro.sizes.size_equations import arg_dimension

        poly = result.environment.get(("append", 3))
        assert poly.entails_constraint(
            Constraint.eq(
                LinearExpr.of(arg_dimension(1))
                + LinearExpr.of(arg_dimension(2)),
                LinearExpr.of(arg_dimension(3)),
            )
        )

    def test_subgoal_order_matters(self):
        # With the recursive subgoal FIRST, the appends no longer
        # precede it and contribute nothing: proof must fail —
        # evidence we respect the left-to-right semantics.
        from repro.lp import parse_program

        reordered = parse_program(
            """
            perm([], []).
            perm(P, [X|L]) :- perm(P1, L), append(E, [X|F], P),
                              append(E, F, P1).
            append([], Ys, Ys).
            append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
            """
        )
        result = analyze_program(reordered, ("perm", 2), "bf")
        assert not result.proved


class TestExample51Merge:
    def test_equal_half_weights(self, merge_program):
        result = analyze_program(merge_program, ("merge", 3), "bbf")
        assert result.proved
        node = AdornedPredicate(("merge", 3), "bbf")
        weights = result.proof.proof_for(node).lambda_for(node)
        assert weights[1] == weights[2] >= Fraction(1, 2)

    def test_paper_remark_no_single_argument(self, merge_program):
        """'There is no explicit relationship between the size of a
        bound argument in the head and the corresponding one in the
        subgoal' — single-argument methods must fail."""
        from repro.baselines import SingleArgumentMethod

        assert not SingleArgumentMethod().analyze(
            merge_program, ("merge", 3), "bbf"
        ).proved


class TestExample61Parser:
    def test_thetas_match_paper(self, parser_program):
        result = analyze_program(parser_program, ("e", 2), "bf")
        assert result.proved
        proof = [
            p for p in result.proof.scc_proofs
            if not p.trivially_nonrecursive
        ][0]
        e = AdornedPredicate(("e", 2), "bf")
        t = AdornedPredicate(("t", 2), "bf")
        n = AdornedPredicate(("n", 2), "bf")
        assert proof.thetas[(e, t)] == 0
        assert proof.thetas[(t, n)] == 0
        assert proof.thetas[(n, e)] == 1
        assert proof.thetas[(e, e)] == 1
        assert proof.thetas[(t, t)] == 1

    def test_lambdas_at_least_half(self, parser_program):
        result = analyze_program(parser_program, ("e", 2), "bf")
        proof = [
            p for p in result.proof.scc_proofs
            if not p.trivially_nonrecursive
        ][0]
        for name in ("e", "t", "n"):
            node = AdornedPredicate((name, 2), "bf")
            assert proof.lambda_for(node)[1] >= Fraction(1, 2)

    def test_verifies(self, parser_program):
        result = analyze_program(parser_program, ("e", 2), "bf")
        assert verify_proof(result.proof)

    def test_t_constraint_derived_not_supplied(self, parser_program):
        """Section 6.2's t1 >= 2 + t2 'found by Van Gelder's methods' —
        ours derives it automatically."""
        from repro.linalg.constraints import Constraint
        from repro.linalg.linexpr import LinearExpr
        from repro.sizes.size_equations import arg_dimension

        result = analyze_program(parser_program, ("e", 2), "bf")
        poly = result.environment.get(("t", 2))
        assert poly.entails_constraint(
            Constraint.ge(
                LinearExpr.of(arg_dimension(1)),
                LinearExpr.of(arg_dimension(2)) + 2,
            )
        )


class TestExampleA1:
    def test_full_pipeline(self, a1_program):
        before = analyze_program(a1_program, ("p", 1), "b")
        assert before.status == "UNKNOWN"
        transformed, log = normalize_program(a1_program, roots=[("p", 1)])
        after = analyze_program(transformed, ("p", 1), "b")
        assert after.status == "PROVED"
        assert verify_proof(after.proof)

    def test_final_measure_is_argument_size(self, a1_program):
        transformed, _ = normalize_program(a1_program, roots=[("p", 1)])
        result = analyze_program(transformed, ("p", 1), "b")
        recursive = [
            p for p in result.proof.scc_proofs
            if not p.trivially_nonrecursive
        ]
        assert len(recursive) == 1
        (node,) = recursive[0].members
        assert recursive[0].lambda_for(node)[1] > 0


class TestSufficiencyCaveat:
    """Section 7: terminating programs the method cannot prove."""

    @pytest.mark.parametrize(
        "name", ["ackermann", "bounded_counter", "seesaw"]
    )
    def test_known_limitations(self, name):
        from repro.corpus.registry import get_program, load

        entry = get_program(name)
        assert entry.terminating
        result = analyze_program(load(entry), entry.root, entry.mode)
        assert result.status == "UNKNOWN"
