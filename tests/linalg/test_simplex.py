"""Unit tests for the exact two-phase simplex."""

from fractions import Fraction

import pytest

from repro.errors import InfeasibleError, UnboundedError
from repro.linalg.constraints import Constraint, ConstraintSystem
from repro.linalg.linexpr import LinearExpr
from repro.linalg.simplex import (
    INFEASIBLE,
    OPTIMAL,
    UNBOUNDED,
    entails,
    feasible_point,
    is_feasible,
    minimum,
    solve_lp,
)


def x():
    return LinearExpr.of("x")


def y():
    return LinearExpr.of("y")


class TestBasicSolves:
    def test_simple_minimum(self):
        result = solve_lp(
            x() + y(),
            [Constraint.ge(x(), 1), Constraint.ge(y(), 2)],
        )
        assert result.status == OPTIMAL
        assert result.value == 3
        assert result.assignment == {"x": 1, "y": 2}

    def test_maximization(self):
        result = solve_lp(
            x(),
            [Constraint.le(x(), 7), Constraint.ge(x(), 0)],
            sense="max",
        )
        assert result.status == OPTIMAL
        assert result.value == 7

    def test_objective_constant_shift(self):
        result = solve_lp(x() + 10, [Constraint.ge(x(), 1)])
        assert result.value == 11

    def test_exact_fractions(self):
        # min x subject to 3x >= 1.
        result = solve_lp(x(), [Constraint.ge(x() * 3, 1)])
        assert result.value == Fraction(1, 3)

    def test_free_variables(self):
        # x is free: min x subject to x >= -5 is -5.
        result = solve_lp(x(), [Constraint.ge(x(), -5)])
        assert result.value == -5

    def test_equality_constraints(self):
        result = solve_lp(
            x() + y(),
            [Constraint.eq(x() + y(), 4), Constraint.ge(x(), 0),
             Constraint.ge(y(), 0)],
        )
        assert result.value == 4

    def test_nonnegative_option(self):
        result = solve_lp(x(), [], nonnegative=["x"])
        assert result.value == 0

    def test_nonnegative_all(self):
        result = solve_lp(x() + y(), [], nonnegative="all")
        assert result.value == 0

    def test_degenerate_no_constraints(self):
        result = solve_lp(LinearExpr.constant(5), [])
        assert result.status == OPTIMAL
        assert result.value == 5

    def test_invalid_sense(self):
        with pytest.raises(ValueError):
            solve_lp(x(), [], sense="best")


class TestStatuses:
    def test_infeasible(self):
        result = solve_lp(
            x(), [Constraint.ge(x(), 3), Constraint.le(x(), 2)]
        )
        assert result.status == INFEASIBLE

    def test_unbounded(self):
        result = solve_lp(-x(), [Constraint.ge(x(), 0)])
        assert result.status == UNBOUNDED

    def test_redundant_equalities_ok(self):
        result = solve_lp(
            x(),
            [Constraint.eq(x(), 2), Constraint.eq(x() * 2, 4)],
        )
        assert result.status == OPTIMAL
        assert result.value == 2


class TestDuality:
    def test_strong_duality_value(self):
        # min x + 2y s.t. x + y >= 3, x >= 0, y >= 0.
        constraints = ConstraintSystem(
            [
                Constraint.ge(x() + y(), 3),
                Constraint.ge(x(), 0),
                Constraint.ge(y(), 0),
            ]
        )
        result = solve_lp(x() + y() * 2, constraints)
        assert result.status == OPTIMAL
        assert result.value == 3
        # Dual: y.b where row i's "b" is -const of its expr.
        dual_value = sum(
            result.duals[i] * (-row.expr.const)
            for i, row in enumerate(constraints)
        )
        assert dual_value == result.value

    def test_dual_signs_for_min_ge(self):
        # For min with >= rows, dual multipliers are nonnegative.
        constraints = ConstraintSystem(
            [Constraint.ge(x(), 1), Constraint.ge(y(), 2)]
        )
        result = solve_lp(x() + y(), constraints)
        assert all(value >= 0 for value in result.duals.values())


class TestHelpers:
    def test_is_feasible(self):
        assert is_feasible([Constraint.ge(x(), 0)])
        assert not is_feasible(
            [Constraint.ge(x(), 1), Constraint.le(x(), 0)]
        )

    def test_feasible_point_satisfies(self):
        system = ConstraintSystem(
            [Constraint.ge(x() + y(), 2), Constraint.le(x(), 1)]
        )
        point = feasible_point(system)
        assert system.satisfied_by(point)

    def test_feasible_point_none(self):
        assert feasible_point(
            [Constraint.ge(x(), 1), Constraint.le(x(), 0)]
        ) is None

    def test_minimum_raises_infeasible(self):
        with pytest.raises(InfeasibleError):
            minimum(x(), [Constraint.ge(x(), 1), Constraint.le(x(), 0)])

    def test_minimum_raises_unbounded(self):
        with pytest.raises(UnboundedError):
            minimum(x(), [])

    def test_entails_true(self):
        system = [Constraint.ge(x(), 2)]
        assert entails(system, Constraint.ge(x(), 1))

    def test_entails_false(self):
        system = [Constraint.ge(x(), 1)]
        assert not entails(system, Constraint.ge(x(), 2))

    def test_entails_equality(self):
        system = [Constraint.eq(x(), 2)]
        assert entails(system, Constraint.eq(x() * 2, 4))
        assert not entails(system, Constraint.eq(x(), 3))

    def test_infeasible_entails_everything(self):
        system = [Constraint.ge(x(), 1), Constraint.le(x(), 0)]
        assert entails(system, Constraint.ge(x(), 100))


class TestAgainstScipy:
    """Cross-check random LPs against scipy.optimize.linprog."""

    def test_random_instances(self):
        import random

        import numpy
        from scipy.optimize import linprog

        rng = random.Random(7)
        for trial in range(25):
            num_vars = rng.randint(1, 4)
            num_rows = rng.randint(1, 5)
            names = ["v%d" % i for i in range(num_vars)]
            constraints = []
            a_ub, b_ub = [], []
            for _ in range(num_rows):
                coeffs = [rng.randint(-3, 3) for _ in names]
                const = rng.randint(-5, 5)
                # expr >= 0 with expr = coeffs.v + const
                constraints.append(
                    Constraint.ge(
                        LinearExpr(dict(zip(names, coeffs)), const)
                    )
                )
                a_ub.append([-c for c in coeffs])  # -coeffs.v <= const
                b_ub.append(const)
            objective_coeffs = [rng.randint(-2, 2) for _ in names]
            objective = LinearExpr(dict(zip(names, objective_coeffs)))

            ours = solve_lp(objective, constraints, nonnegative="all")
            theirs = linprog(
                numpy.array(objective_coeffs, dtype=float),
                A_ub=numpy.array(a_ub, dtype=float),
                b_ub=numpy.array(b_ub, dtype=float),
                bounds=[(0, None)] * num_vars,
                method="highs",
            )
            if ours.status == OPTIMAL:
                assert theirs.status == 0, "trial %d disagreement" % trial
                assert abs(float(ours.value) - theirs.fun) < 1e-7
            elif ours.status == INFEASIBLE:
                assert theirs.status == 2
            else:
                assert theirs.status == 3
