"""Unit tests for exact linear expressions."""

from fractions import Fraction

import pytest

from repro.linalg.linexpr import LinearExpr, variable


def x():
    return LinearExpr.of("x")


def y():
    return LinearExpr.of("y")


class TestConstruction:
    def test_zero(self):
        zero = LinearExpr()
        assert zero.is_constant()
        assert zero.const == 0

    def test_constant(self):
        assert LinearExpr.constant(5).const == 5

    def test_zero_coefficients_dropped(self):
        expr = LinearExpr({"x": 0, "y": 2})
        assert expr.variables() == {"y"}

    def test_floats_rejected(self):
        with pytest.raises(TypeError):
            LinearExpr({"x": 0.5})

    def test_string_fractions_accepted(self):
        assert LinearExpr.of("x", "1/2").coefficient("x") == Fraction(1, 2)

    def test_variable_shorthand(self):
        assert variable("x") == LinearExpr.of("x")

    def test_immutable(self):
        with pytest.raises(AttributeError):
            x()._constant = 3


class TestArithmetic:
    def test_addition(self):
        expr = x() + y()
        assert expr.coefficient("x") == 1
        assert expr.coefficient("y") == 1

    def test_addition_with_scalar(self):
        assert (x() + 3).const == 3
        assert (3 + x()).const == 3

    def test_cancellation(self):
        assert (x() - x()).is_constant()

    def test_negation(self):
        assert (-x()).coefficient("x") == -1

    def test_subtraction(self):
        expr = x() - y()
        assert expr.coefficient("y") == -1

    def test_rsub(self):
        assert (5 - x()).const == 5

    def test_scalar_multiplication(self):
        expr = (x() + 2) * 3
        assert expr.coefficient("x") == 3
        assert expr.const == 6

    def test_division(self):
        assert (x() / 2).coefficient("x") == Fraction(1, 2)

    def test_exact_fractions(self):
        third = x() / 3
        assert (third * 3).coefficient("x") == 1  # no rounding


class TestIdentity:
    def test_equality(self):
        assert x() + y() == y() + x()

    def test_equality_with_scalar(self):
        assert LinearExpr.constant(3) == 3

    def test_hash_consistent(self):
        assert hash(x() + y()) == hash(y() + x())

    def test_usable_in_sets(self):
        assert len({x() + 1, x() + 1, x() + 2}) == 2


class TestOperations:
    def test_substitute_variable(self):
        expr = (x() * 2 + y()).substitute({"x": y() + 1})
        assert expr.coefficient("y") == 3
        assert expr.const == 2

    def test_substitute_number(self):
        assert (x() + 1).substitute({"x": 4}).const == 5

    def test_substitute_leaves_others(self):
        expr = (x() + y()).substitute({"x": 0})
        assert expr.variables() == {"y"}

    def test_evaluate(self):
        value = (x() * 2 + y() + 1).evaluate({"x": 3, "y": 4})
        assert value == 11

    def test_evaluate_exact(self):
        value = (x() / 3).evaluate({"x": 1})
        assert value == Fraction(1, 3)

    def test_rename(self):
        expr = (x() + y()).rename({"x": "z"})
        assert expr.variables() == {"z", "y"}

    def test_scale_to_integers(self):
        expr = (x() / 2 + LinearExpr.of("y", Fraction(1, 3))).scale_to_integers()
        assert expr.coefficient("x") == 3
        assert expr.coefficient("y") == 2

    def test_items_deterministic(self):
        expr = LinearExpr({"b": 1, "a": 2, "c": 3})
        assert [var for var, _ in expr.items()] == ["a", "b", "c"]


class TestRendering:
    def test_simple(self):
        assert str(x() + 1) == "x + 1"

    def test_negative(self):
        assert str(-x()) == "- x"

    def test_fraction_coefficient(self):
        assert "1/2" in str(x() / 2)

    def test_zero(self):
        assert str(LinearExpr()) == "0"

    def test_tuple_variables(self):
        expr = LinearExpr.of(("arg", 1))
        assert "arg.1" in str(expr)
