"""The array kernel's availability gate and graceful degradation.

The vectorized kernel is an optional accelerator: numpy missing (or
too old), oversized coefficients, and potential int64 overflow are
all *routing signals* — the caller lands on the exact integer kernel
and the ``fm.array.fallbacks.*`` counters record the detour.  These
tests drive the gates directly, simulating a numpy-less process by
poisoning the lazy import cache.
"""

import pytest

from repro.linalg import array_kernel
from repro.linalg.array_kernel import (
    ArrayKernelUnavailable,
    numpy_available,
    require_numpy,
)
from repro.linalg.constraints import Constraint, ConstraintSystem
from repro.linalg.fourier_motzkin import eliminate, eliminate_all_tracked
from repro.linalg.linexpr import LinearExpr
from repro.obs import METRICS
from repro.solve import get_backend


def x(coeff=1):
    return LinearExpr.of("x", coeff)


def y(coeff=1):
    return LinearExpr.of("y", coeff)


SYSTEM = ConstraintSystem([
    Constraint(x() - y() - LinearExpr.constant(1), ">="),
    Constraint(y() - LinearExpr.constant(2), ">="),
    Constraint(-x(1) + LinearExpr.constant(10), ">="),
])


@pytest.fixture
def no_numpy(monkeypatch):
    """Make the lazy loader report numpy as missing."""
    monkeypatch.setattr(array_kernel, "_numpy", None)
    monkeypatch.setattr(array_kernel, "_numpy_checked", True)


@pytest.fixture
def fresh_metrics():
    previous = METRICS.set_enabled(True)
    before = METRICS.snapshot()["counters"]
    yield before
    METRICS.set_enabled(previous)


def _counter_delta(before, name):
    after = METRICS.snapshot()["counters"]
    return after.get(name, 0) - before.get(name, 0)


class TestAvailabilityGate:
    def test_require_numpy_signals_unavailable(self, no_numpy,
                                               fresh_metrics):
        assert not numpy_available()
        with pytest.raises(ArrayKernelUnavailable) as excinfo:
            require_numpy()
        assert excinfo.value.reason == "unavailable"
        assert _counter_delta(
            fresh_metrics, "fm.array.fallbacks.unavailable"
        ) == 1

    def test_eliminate_degrades_to_int_kernel(self, no_numpy,
                                              fresh_metrics):
        """``kernel="array"`` without numpy must not error: the call
        silently lands on the integer kernel and counts the detour."""
        from_array = eliminate(SYSTEM, "x", kernel="array")
        from_int = eliminate(SYSTEM, "x", kernel="int")
        assert list(from_array.constraints) == list(from_int.constraints)
        assert _counter_delta(
            fresh_metrics, "fm.array.fallbacks.unavailable"
        ) >= 1

    def test_tracked_elimination_degrades(self, no_numpy):
        from_array = eliminate_all_tracked(SYSTEM, ("x",), kernel="array")
        from_int = eliminate_all_tracked(SYSTEM, ("x",), kernel="int")
        assert list(from_array.constraints) == list(from_int.constraints)

    def test_fm_backend_degrades(self, no_numpy):
        from_array = get_backend("fm", kernel="array").feasible_point(SYSTEM)
        from_int = get_backend("fm").feasible_point(SYSTEM)
        assert from_array.feasible == from_int.feasible
        assert from_array.witness == from_int.witness

    def test_simplex_batch_degrades_to_serial(self, no_numpy,
                                              fresh_metrics):
        from repro.linalg.simplex import feasible_point_batch, solve_lp

        systems = [SYSTEM, SYSTEM]
        batched = feasible_point_batch(systems, kernel="array")
        serial = solve_lp(LinearExpr.constant(0), SYSTEM).assignment
        assert batched == [serial, serial]
        assert _counter_delta(
            fresh_metrics, "simplex.batch.serial_fallbacks"
        ) == 1


class TestOverflowGate:
    def test_oversized_input_coefficients_fall_back(self, fresh_metrics):
        if not numpy_available():
            pytest.skip("array kernel needs numpy >= 2.0")
        huge = 1 << 80
        system = ConstraintSystem([
            Constraint(x(huge) - LinearExpr.constant(1), ">="),
            Constraint(-x(1) + LinearExpr.constant(huge), ">="),
        ])
        from_array = eliminate(system, "x", kernel="array")
        from_int = eliminate(system, "x", kernel="int")
        assert list(from_array.constraints) == list(from_int.constraints)
        assert _counter_delta(
            fresh_metrics, "fm.array.fallbacks.overflow"
        ) >= 1
