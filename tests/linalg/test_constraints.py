"""Unit tests for constraints and constraint systems."""

import pytest

from repro.linalg.constraints import Constraint, ConstraintSystem, EQ, GE, LE
from repro.linalg.linexpr import LinearExpr


def x():
    return LinearExpr.of("x")


def y():
    return LinearExpr.of("y")


class TestNormalization:
    def test_le_flips_to_ge(self):
        constraint = Constraint(x() - 5, LE)
        assert constraint.relation == GE
        assert constraint.expr.coefficient("x") == -1

    def test_canonical_scaling(self):
        # 2x - 4 >= 0 and x - 2 >= 0 normalize identically.
        assert Constraint.ge(x() * 2, 4) == Constraint.ge(x(), 2)

    def test_fraction_scaling(self):
        assert Constraint.ge(x() / 2, 1) == Constraint.ge(x(), 2)

    def test_equality_sign_normalized(self):
        assert Constraint.eq(x() - y()) == Constraint.eq(y() - x())

    def test_invalid_relation(self):
        with pytest.raises(ValueError):
            Constraint(x(), "!=")


class TestConstructors:
    def test_ge(self):
        constraint = Constraint.ge(x(), 3)
        assert constraint.satisfied_by({"x": 3})
        assert not constraint.satisfied_by({"x": 2})

    def test_le(self):
        constraint = Constraint.le(x(), 3)
        assert constraint.satisfied_by({"x": 3})
        assert not constraint.satisfied_by({"x": 4})

    def test_eq(self):
        constraint = Constraint.eq(x(), y())
        assert constraint.satisfied_by({"x": 2, "y": 2})
        assert not constraint.satisfied_by({"x": 2, "y": 3})


class TestTriviality:
    def test_trivial_inequality(self):
        assert Constraint.ge(LinearExpr.constant(1)).is_trivial()

    def test_trivial_equality(self):
        assert Constraint.eq(LinearExpr.constant(0)).is_trivial()

    def test_contradiction(self):
        assert Constraint.ge(LinearExpr.constant(-1)).is_contradiction()
        assert Constraint.eq(LinearExpr.constant(2)).is_contradiction()

    def test_nontrivial(self):
        assert not Constraint.ge(x()).is_trivial()
        assert not Constraint.ge(x()).is_contradiction()


class TestOperations:
    def test_as_inequalities_for_equality(self):
        lower, upper = Constraint.eq(x(), 2).as_inequalities()
        assert lower.relation == GE
        assert upper.relation == GE
        assert lower != upper

    def test_as_inequalities_for_ge(self):
        constraint = Constraint.ge(x())
        assert constraint.as_inequalities() == (constraint,)

    def test_substitute(self):
        constraint = Constraint.ge(x(), 1).substitute({"x": y() + 1})
        assert constraint.satisfied_by({"y": 0})

    def test_rename(self):
        constraint = Constraint.ge(x()).rename({"x": "z"})
        assert constraint.variables() == {"z"}


class TestConstraintSystem:
    def test_deduplication(self):
        system = ConstraintSystem([Constraint.ge(x()), Constraint.ge(x())])
        assert len(system) == 1

    def test_scaled_duplicates_merge(self):
        system = ConstraintSystem(
            [Constraint.ge(x(), 1), Constraint.ge(x() * 3, 3)]
        )
        assert len(system) == 1

    def test_trivial_rows_dropped(self):
        system = ConstraintSystem([Constraint.ge(LinearExpr.constant(5))])
        assert len(system) == 0

    def test_contradiction_rows_kept(self):
        system = ConstraintSystem([Constraint.ge(LinearExpr.constant(-5))])
        assert system.has_contradiction_row()

    def test_variables(self):
        system = ConstraintSystem(
            [Constraint.ge(x()), Constraint.eq(y(), 2)]
        )
        assert system.variables() == {"x", "y"}

    def test_satisfied_by(self):
        system = ConstraintSystem(
            [Constraint.ge(x(), 1), Constraint.le(x(), 3)]
        )
        assert system.satisfied_by({"x": 2})
        assert not system.satisfied_by({"x": 0})

    def test_inequalities_split_equalities(self):
        system = ConstraintSystem([Constraint.eq(x(), 1)])
        assert len(system.inequalities()) == 2

    def test_copy_independent(self):
        system = ConstraintSystem([Constraint.ge(x())])
        clone = system.copy()
        clone.add(Constraint.ge(y()))
        assert len(system) == 1
        assert len(clone) == 2

    def test_rejects_non_constraint(self):
        with pytest.raises(TypeError):
            ConstraintSystem(["x >= 0"])
