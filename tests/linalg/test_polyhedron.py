"""Unit tests for the polyhedron abstract domain."""

from fractions import Fraction

import pytest

from repro.linalg.constraints import Constraint
from repro.linalg.linexpr import LinearExpr
from repro.linalg.polyhedron import Polyhedron


def a():
    return LinearExpr.of("a")


def b():
    return LinearExpr.of("b")


def make(constraints, dims=("a", "b")):
    return Polyhedron(dims, constraints)


class TestConstruction:
    def test_top(self):
        poly = Polyhedron.top(("a",))
        assert poly.is_top()
        assert not poly.is_empty()

    def test_bottom(self):
        poly = Polyhedron.bottom(("a",))
        assert poly.is_empty()

    def test_nonnegative_orthant(self):
        poly = Polyhedron.nonnegative_orthant(("a", "b"))
        assert poly.contains_point({"a": 0, "b": 5})
        assert not poly.contains_point({"a": -1, "b": 0})

    def test_rejects_foreign_variables(self):
        with pytest.raises(ValueError):
            Polyhedron(("a",), [Constraint.ge(b())])


class TestQueries:
    def test_emptiness_via_lp(self):
        poly = make([Constraint.ge(a(), 1), Constraint.le(a(), 0)])
        assert poly.is_empty()

    def test_entails_constraint(self):
        poly = make([Constraint.ge(a(), 2)])
        assert poly.entails_constraint(Constraint.ge(a(), 1))
        assert not poly.entails_constraint(Constraint.ge(a(), 3))

    def test_entails_polyhedron(self):
        smaller = make([Constraint.ge(a(), 2), Constraint.ge(b(), 0)])
        bigger = make([Constraint.ge(a(), 0), Constraint.ge(b(), 0)])
        assert smaller.entails(bigger)
        assert not bigger.entails(smaller)

    def test_empty_entails_everything(self):
        assert Polyhedron.bottom(("a", "b")).entails(
            make([Constraint.eq(a(), 99)])
        )

    def test_equivalent(self):
        first = make([Constraint.ge(a() * 2, 4)])
        second = make([Constraint.ge(a(), 2)])
        assert first.equivalent(second)


class TestMeetProject:
    def test_meet_intersects(self):
        left = make([Constraint.ge(a(), 1)])
        right = make([Constraint.le(a(), 3)])
        both = left.meet(right)
        assert both.contains_point({"a": 2, "b": 0})
        assert not both.contains_point({"a": 4, "b": 0})

    def test_meet_can_be_empty(self):
        left = make([Constraint.ge(a(), 5)])
        right = make([Constraint.le(a(), 1)])
        assert left.meet(right).is_empty()

    def test_project_drops_dimension(self):
        poly = make(
            [Constraint.eq(a(), b()), Constraint.ge(b(), 3)]
        )
        projected = poly.project(("a",))
        assert projected.dimensions == ("a",)
        assert projected.contains_point({"a": 3})
        assert not projected.contains_point({"a": 2})

    def test_rename(self):
        poly = make([Constraint.ge(a(), 1)]).rename({"a": "z"})
        assert "z" in poly.dimensions
        assert poly.contains_point({"z": 1, "b": 0})

    def test_rename_collision_rejected(self):
        with pytest.raises(ValueError):
            make([]).rename({"a": "b"})


class TestJoin:
    def test_hull_of_point_and_ray(self):
        # {a=0} U {a>=2} hulls to {a>=0} (1-d case from append).
        first = Polyhedron(("a",), [Constraint.eq(a(), 0)])
        second = Polyhedron(("a",), [Constraint.ge(a(), 2)])
        hull = first.join(second)
        assert hull.contains_point({"a": 0})
        assert hull.contains_point({"a": 1})  # between the pieces
        assert not hull.contains_point({"a": -1})

    def test_hull_preserves_common_equality(self):
        # Both satisfy a = b; the hull must keep it.
        first = make([Constraint.eq(a(), b()), Constraint.eq(a(), 0)])
        second = make([Constraint.eq(a(), b()), Constraint.ge(a(), 2)])
        hull = first.join(second)
        assert hull.entails_constraint(Constraint.eq(a(), b()))

    def test_hull_discovers_new_facets(self):
        # {a=0, b=1} U {a=1, b=2} hull contains the segment, i.e.
        # b = a + 1 — a direction in neither input.
        first = make([Constraint.eq(a(), 0), Constraint.eq(b(), 1)])
        second = make([Constraint.eq(a(), 1), Constraint.eq(b(), 2)])
        hull = first.join(second)
        assert hull.entails_constraint(Constraint.eq(b(), a() + 1))
        assert hull.contains_point({"a": Fraction(1, 2), "b": Fraction(3, 2)})

    def test_weak_join_overapproximates(self):
        first = make([Constraint.eq(a(), 0), Constraint.eq(b(), 1)])
        second = make([Constraint.eq(a(), 1), Constraint.eq(b(), 2)])
        exact = first.join_exact(second)
        weak = first.join_weak(second)
        assert exact.entails(weak)

    def test_join_with_bottom(self):
        poly = make([Constraint.ge(a(), 1)])
        assert poly.join(Polyhedron.bottom(("a", "b"))).equivalent(poly)
        assert Polyhedron.bottom(("a", "b")).join(poly).equivalent(poly)

    def test_join_is_upper_bound(self):
        first = make([Constraint.ge(a(), 1), Constraint.le(a(), 2)])
        second = make([Constraint.ge(a(), 5), Constraint.le(a(), 6)])
        hull = first.join(second)
        assert first.entails(hull)
        assert second.entails(hull)

    def test_join_dimension_mismatch(self):
        with pytest.raises(ValueError):
            make([]).join(Polyhedron(("z",), []))


class TestWiden:
    def test_widen_keeps_stable_constraints(self):
        old = make([Constraint.ge(a(), 0), Constraint.le(a(), 2)])
        new = make([Constraint.ge(a(), 0), Constraint.le(a(), 5)])
        widened = old.widen(new)
        assert widened.entails_constraint(Constraint.ge(a(), 0))
        # The growing upper bound must be dropped.
        assert widened.contains_point({"a": 100, "b": 0})

    def test_widen_from_bottom(self):
        new = make([Constraint.ge(a(), 1)])
        assert Polyhedron.bottom(("a", "b")).widen(new).equivalent(new)

    def test_widen_splits_equalities(self):
        # Old has a = 1; new has a >= 1: the lower half survives.
        old = make([Constraint.eq(a(), 1)])
        new = make([Constraint.ge(a(), 1)])
        widened = old.widen(new)
        assert widened.entails_constraint(Constraint.ge(a(), 1))
        assert widened.contains_point({"a": 5, "b": 0})


class TestWeakened:
    def test_small_unchanged(self):
        poly = make([Constraint.ge(a(), 1)])
        assert poly.weakened(10) is poly

    def test_row_count_bounded(self):
        rows = [
            Constraint.ge(a() * k + b(), k) for k in range(1, 20)
        ]
        weakened = make(rows).weakened(5)
        assert len(weakened.system) <= 5

    def test_weakened_is_superset(self):
        rows = [
            Constraint.ge(a() * k + b(), k) for k in range(1, 20)
        ]
        poly = make(rows)
        assert poly.entails(poly.weakened(5))
