"""Unit tests for Fourier–Motzkin elimination."""

from fractions import Fraction

import pytest

from repro.linalg.constraints import Constraint, ConstraintSystem
from repro.linalg.fourier_motzkin import (
    FMBlowupError,
    eliminate,
    eliminate_all,
    eliminate_all_tracked,
    project_onto,
    prune_redundant,
)
from repro.linalg.linexpr import LinearExpr
from repro.linalg.simplex import is_feasible


def x():
    return LinearExpr.of("x")


def y():
    return LinearExpr.of("y")


def z():
    return LinearExpr.of("z")


class TestEliminate:
    def test_transitivity(self):
        # x <= y, y <= 5 |- x <= 5 after eliminating y.
        system = ConstraintSystem(
            [Constraint.le(x(), y()), Constraint.le(y(), 5)]
        )
        result = eliminate(system, "y")
        assert "y" not in result.variables()
        assert result.satisfied_by({"x": 5})
        assert not result.satisfied_by({"x": 6})

    def test_equality_substitution(self):
        # y = x + 1, y <= 3 projects to x <= 2.
        system = ConstraintSystem(
            [Constraint.eq(y(), x() + 1), Constraint.le(y(), 3)]
        )
        result = eliminate(system, "y")
        assert result.satisfied_by({"x": 2})
        assert not result.satisfied_by({"x": 3})

    def test_one_sided_variable_drops_rows(self):
        # Only y >= x: choosing y large always works, projection is R.
        system = ConstraintSystem([Constraint.ge(y(), x())])
        result = eliminate(system, "y")
        assert len(result) == 0

    def test_infeasible_stays_infeasible(self):
        system = ConstraintSystem(
            [Constraint.ge(y(), x() + 1), Constraint.le(y(), x())]
        )
        result = eliminate(system, "y")
        assert result.has_contradiction_row()

    def test_feasibility_preserved(self):
        system = ConstraintSystem(
            [
                Constraint.ge(x() + y(), 2),
                Constraint.le(x() - y(), 0),
                Constraint.le(y(), 10),
            ]
        )
        result = eliminate(system, "y")
        assert is_feasible(result) == is_feasible(system)


class TestEliminateAll:
    def test_multiple_variables(self):
        system = ConstraintSystem(
            [
                Constraint.le(x(), y()),
                Constraint.le(y(), z()),
                Constraint.le(z(), 7),
            ]
        )
        result = eliminate_all(system, ["y", "z"])
        assert result.variables() == {"x"}
        assert result.satisfied_by({"x": 7})
        assert not result.satisfied_by({"x": 8})

    def test_missing_variables_ignored(self):
        system = ConstraintSystem([Constraint.ge(x(), 1)])
        result = eliminate_all(system, ["nope"])
        assert len(result) == 1

    def test_project_onto(self):
        system = ConstraintSystem(
            [Constraint.eq(y(), x()), Constraint.ge(y(), 3)]
        )
        result = project_onto(system, ["x"])
        assert result.variables() == {"x"}
        assert result.satisfied_by({"x": 3})
        assert not result.satisfied_by({"x": 2})


class TestPruneRedundant:
    def test_dominated_row_dropped(self):
        # x >= 1 makes x >= 0 redundant (same linear part).
        system = ConstraintSystem(
            [Constraint.ge(x(), 0), Constraint.ge(x(), 1)]
        )
        result = prune_redundant(system)
        assert len(result) == 1
        assert not result.satisfied_by({"x": Fraction(1, 2)})

    def test_lp_prune_removes_implied(self):
        # x >= 1 and y >= 1 imply x + y >= 2.
        system = ConstraintSystem(
            [
                Constraint.ge(x(), 1),
                Constraint.ge(y(), 1),
                Constraint.ge(x() + y(), 2),
            ]
        )
        result = prune_redundant(system, use_lp=True)
        assert len(result) == 2

    def test_lp_prune_keeps_needed(self):
        system = ConstraintSystem(
            [Constraint.ge(x(), 1), Constraint.ge(y(), 1)]
        )
        result = prune_redundant(system, use_lp=True)
        assert len(result) == 2


class TestTrackedElimination:
    def test_matches_untracked_projection(self):
        system = ConstraintSystem(
            [
                Constraint.ge(x() + y(), 2),
                Constraint.le(y(), z()),
                Constraint.ge(z(), 0),
                Constraint.le(z(), 4),
                Constraint.ge(y(), 0),
            ]
        )
        tracked = eliminate_all_tracked(system, ["y", "z"])
        plain = eliminate_all(system, ["y", "z"])
        # Same solution set over x: check entailment both ways on a
        # few witness points plus feasibility agreement.
        for point in ({"x": -3}, {"x": -2}, {"x": 0}, {"x": 5}):
            assert tracked.satisfied_by(point) == plain.satisfied_by(point)

    def test_handles_equalities(self):
        system = ConstraintSystem(
            [Constraint.eq(y(), x() + 1), Constraint.le(y(), 3)]
        )
        result = eliminate_all_tracked(system, ["y"])
        assert result.satisfied_by({"x": 2})
        assert not result.satisfied_by({"x": 3})

    def test_row_budget_raises(self):
        import itertools

        # Many constraints over shared variables force row growth.
        names = ["v%d" % i for i in range(8)]
        rows = []
        for a, b in itertools.combinations(names, 2):
            rows.append(
                Constraint.ge(LinearExpr.of(a) + LinearExpr.of(b), 1)
            )
            rows.append(
                Constraint.le(LinearExpr.of(a) - LinearExpr.of(b), 3)
            )
        system = ConstraintSystem(rows)
        with pytest.raises(FMBlowupError):
            eliminate_all_tracked(system, names[:-1], max_rows=5)

    def test_chernikov_pruning_preserves_projection(self):
        # A chain x <= v1 <= v2 <= ... <= 9; projection is x <= 9.
        names = ["v%d" % i for i in range(5)]
        rows = [Constraint.le(x(), LinearExpr.of(names[0]))]
        for a, b in zip(names, names[1:]):
            rows.append(Constraint.le(LinearExpr.of(a), LinearExpr.of(b)))
        rows.append(Constraint.le(LinearExpr.of(names[-1]), 9))
        result = eliminate_all_tracked(ConstraintSystem(rows), names)
        assert result.satisfied_by({"x": 9})
        assert not result.satisfied_by({"x": 10})
