"""Unit tests for the dense integer row kernel."""

from fractions import Fraction

import pytest

from repro.linalg.constraints import Constraint, ConstraintSystem, EQ, GE
from repro.linalg.fourier_motzkin import FMBlowupError
from repro.linalg.linexpr import LinearExpr
from repro.linalg.rows import (
    RowKernel,
    StagedEliminator,
    constraint_of_row,
    intern_variables,
    normalize_row,
    row_of_constraint,
    tracked_project,
)


def x():
    return LinearExpr.of("x")


def y():
    return LinearExpr.of("y")


def z():
    return LinearExpr.of("z")


class TestInterning:
    def test_variables_in_repr_order(self):
        system = ConstraintSystem(
            [Constraint.ge(z() + y()), Constraint.ge(x())]
        )
        assert intern_variables(system) == ("x", "y", "z")

    def test_row_round_trip(self):
        constraint = Constraint.ge(2 * x() - 3 * z() + 5)
        variables = ("x", "y", "z")
        row = row_of_constraint(constraint, variables)
        assert row == ((2, 0, -3), 5)
        assert constraint_of_row(row, variables) == constraint

    def test_round_trip_preserves_canonical_hash(self):
        # The trusted materialization path must produce objects that
        # hash and compare equal to constructor-built constraints.
        constraint = Constraint.ge(4 * x() - 2 * y() + 6)
        variables = ("x", "y")
        row = row_of_constraint(constraint, variables)
        rebuilt = constraint_of_row(row, variables)
        assert rebuilt == constraint
        assert hash(rebuilt) == hash(constraint)
        assert rebuilt in ConstraintSystem([constraint])


class TestNormalizeRow:
    def test_gcd_includes_constant(self):
        assert normalize_row((4, -6), 10) == ((2, -3), 5)

    def test_negative_constant_in_gcd(self):
        # abs() of the constant must seed the gcd: (0, 0, -5) is the
        # canonical contradiction row (0, 0, -1).
        assert normalize_row((0, 0), -5) == ((0, 0), -1)

    def test_trivially_true_rows_drop(self):
        assert normalize_row((0, 0), 3) is None
        assert normalize_row((0, 0), 0) is None

    def test_coprime_rows_untouched(self):
        assert normalize_row((2, 3), 7) == ((2, 3), 7)


class TestRowKernel:
    def make(self, constraints, track=False):
        return RowKernel.from_system(
            ConstraintSystem(constraints), track=track
        )

    def test_counters_match_rows(self):
        kernel = self.make(
            [Constraint.ge(x() - y()), Constraint.ge(y() - 3)]
        )
        assert kernel.pos == [1, 1]
        assert kernel.neg == [0, 1]

    def test_equalities_split_with_positional_histories(self):
        kernel = self.make([Constraint.eq(x(), y())], track=True)
        assert len(kernel) == 2
        assert kernel.histories == [1, 2]

    def test_choose_prefers_fewest_combinations(self):
        # x: 2 pos x 1 neg = 2 combinations; y: 1 x 1 = 1.
        kernel = self.make(
            [
                Constraint.ge(x() + y()),
                Constraint.ge(x() - y() + 1),
                Constraint.ge(3 - x()),
            ]
        )
        remaining = {kernel.index["x"], kernel.index["y"]}
        assert kernel.choose(remaining) == kernel.index["y"]

    def test_choose_skips_absent_variables(self):
        kernel = self.make([Constraint.ge(x() - 1)])
        assert kernel.choose({kernel.index["x"]}) == kernel.index["x"]
        kernel.eliminate(kernel.index["x"])
        assert kernel.choose({kernel.index["x"]}) is None

    def test_eliminate_updates_counters(self):
        kernel = self.make(
            [Constraint.le(x(), y()), Constraint.le(y(), 5)]
        )
        kernel.eliminate(kernel.index["y"])
        j = kernel.index["x"]
        assert kernel.pos[j] + kernel.neg[j] == 1
        system = kernel.to_system()
        assert system.satisfied_by({"x": 5})
        assert not system.satisfied_by({"x": 6})

    def test_dominance_keeps_tightest_constant(self):
        # x >= 2 dominates x >= 1 (tighter ">= 0" constant is smaller).
        kernel = self.make(
            [Constraint.ge(x() - 1), Constraint.ge(x() - 2)]
        )
        kernel._dominance(list(kernel.rows), None)
        assert kernel.rows == [((1,), -2)]

    def test_to_system_matches_object_path(self):
        constraints = [
            Constraint.ge(2 * x() - y() + 1),
            Constraint.ge(y() - z()),
        ]
        kernel = self.make(constraints)
        assert list(kernel.to_system().constraints) == constraints


class TestTrackedProject:
    def test_projection_is_exact(self):
        system = ConstraintSystem(
            [
                Constraint.le(x(), y()),
                Constraint.le(y(), z()),
                Constraint.le(z(), 4),
            ]
        )
        result = tracked_project(system, {"y", "z"})
        assert result.variables() == {"x"}
        assert result.satisfied_by({"x": 4})
        assert not result.satisfied_by({"x": 5})

    def test_blowup_raises(self):
        rows = []
        for i in range(8):
            rows.append(Constraint.ge(LinearExpr.of("e") - i * x() - i))
            rows.append(Constraint.ge(i * x() + 7 - LinearExpr.of("e")))
        system = ConstraintSystem(rows)
        with pytest.raises(FMBlowupError):
            tracked_project(system, {"e"}, max_rows=3)


class TestStagedEliminator:
    def test_feasible_system_has_witness(self):
        system = ConstraintSystem(
            [
                Constraint.ge(x() - 1),
                Constraint.le(x() + y(), 10),
                Constraint.eq(y(), 2 * x()),
            ]
        )
        eliminator = StagedEliminator(system)
        eliminator.run()
        assert not eliminator.has_contradiction()
        witness = eliminator.witness()
        assert system.satisfied_by(witness)

    def test_contradiction_detected(self):
        system = ConstraintSystem(
            [Constraint.ge(x() - 3), Constraint.le(x(), 1)]
        )
        eliminator = StagedEliminator(system)
        eliminator.run()
        assert eliminator.has_contradiction()

    def test_equality_substitution_stays_integral(self):
        # 2y = 3x forces fraction-valued substitution; integer Gaussian
        # elimination must reach the same canonical projection.
        system = ConstraintSystem(
            [Constraint.eq(2 * y(), 3 * x()), Constraint.le(y(), 3)]
        )
        eliminator = StagedEliminator(system)
        eliminator.run()
        assert not eliminator.has_contradiction()
        witness = eliminator.witness()
        assert system.satisfied_by(witness)

    def test_witness_uses_equality_bound(self):
        system = ConstraintSystem([Constraint.eq(x(), 7)])
        eliminator = StagedEliminator(system)
        eliminator.run()
        assert eliminator.witness() == {"x": Fraction(7)}
