"""Unit tests for safe unfolding."""

import pytest

from repro.errors import TransformError
from repro.lp import parse_program
from repro.transform.unfolding import (
    remove_unreachable,
    safe_unfold,
    safe_unfold_candidates,
)


class TestCandidates:
    def test_a1_candidate_is_p(self, a1_program):
        assert safe_unfold_candidates(a1_program) == [("p", 1)]

    def test_self_recursive_not_candidate(self, append_program):
        assert safe_unfold_candidates(append_program) == []

    def test_singleton_scc_not_candidate(self):
        # q calls p, p nonrecursive: no *mutual* recursion to break.
        program = parse_program("p(a).\nq(X) :- p(X), q(X).")
        assert safe_unfold_candidates(program) == []

    def test_negated_occurrence_blocks(self):
        program = parse_program(
            "p(X) :- q(X).\nq(X) :- \\+ p(X), q(X)."
        )
        assert ("p", 1) not in safe_unfold_candidates(program)


class TestSafeUnfold:
    def test_paper_a1_first_phase(self, a1_program):
        result = safe_unfold(a1_program, ("p", 1))
        text = str(result)
        # q(Y) :- p(Y) unfolds into the two p-rule bodies.
        assert "q(g(" in text
        # The SCC now contains only q.
        sccs = result.sccs()
        recursive = [c for c in sccs if len(c) > 1]
        assert recursive == []

    def test_own_rules_kept(self, a1_program):
        result = safe_unfold(a1_program, ("p", 1))
        assert len(result.clauses_for(("p", 1))) == 2

    def test_multiple_occurrences_product(self):
        program = parse_program(
            "p(a). p(b).\nq(X, Y) :- p(X), p(Y), q(X, Y)."
        )
        result = safe_unfold(program, ("p", 1))
        # 2 p-rules x 2 occurrences = 4 unfolded q rules.
        assert len(result.clauses_for(("q", 2))) == 4

    def test_non_unifiable_combination_dropped(self):
        program = parse_program(
            "p(a).\np(b).\nq(X) :- p(a), q(X)."
        )
        result = safe_unfold(program, ("p", 1))
        # Only the p(a) rule unifies with the p(a) subgoal.
        assert len(result.clauses_for(("q", 1))) == 1

    def test_substitution_applied_to_head(self):
        program = parse_program("p(g(X)) :- e(X).\nq(Y) :- p(Y), q(Y).")
        result = safe_unfold(program, ("p", 1))
        (clause,) = result.clauses_for(("q", 1))
        assert str(clause.head).startswith("q(g(")

    def test_self_recursive_rejected(self, append_program):
        with pytest.raises(TransformError):
            safe_unfold(append_program, ("append", 3))

    def test_undefined_rejected(self, append_program):
        with pytest.raises(TransformError):
            safe_unfold(append_program, ("nothing", 1))


class TestRemoveUnreachable:
    def test_prunes_dead_predicates(self):
        program = parse_program("p(X) :- q(X).\nq(a).\ndead(b).")
        result = remove_unreachable(program, [("p", 1)])
        assert result.predicate("dead", 1) is None
        assert result.predicate("q", 1) is not None

    def test_keeps_everything_reachable(self, perm_program):
        result = remove_unreachable(perm_program, [("perm", 2)])
        assert len(result) == len(perm_program)
