"""Unit tests for the alternating-phase transformation driver."""

from repro.lp import SLDEngine, parse_program
from repro.core import analyze_program
from repro.transform import normalize_program


class TestExampleA1:
    """The paper's Appendix A walkthrough, end to end."""

    def test_unprovable_before(self, a1_program):
        assert analyze_program(a1_program, ("p", 1), "b").status == "UNKNOWN"

    def test_provable_after(self, a1_program):
        transformed, _ = normalize_program(a1_program, roots=[("p", 1)])
        assert analyze_program(transformed, ("p", 1), "b").status == "PROVED"

    def test_transformation_sequence(self, a1_program):
        _, log = normalize_program(a1_program, roots=[("p", 1)])
        kinds = [kind for kind, _ in log.steps]
        # unfold p, split q, unfold the non-recursive split half —
        # exactly the paper's narrative.
        assert kinds.count("unfold") == 2
        assert kinds.count("split") == 1

    def test_phase_bound_respected(self, a1_program):
        _, log = normalize_program(a1_program, phases=3)
        # "halt after a fixed number of phases, say 3 of each".
        assert log.count("unfold") <= 3 * 25
        assert log.count("split") <= 3 * 25

    def test_final_form_matches_paper(self, a1_program):
        transformed, _ = normalize_program(a1_program, roots=[("p", 1)])
        text = str(transformed)
        # q2(f(g(X))) :- q2(f(X)), q2(f(X)). appears (modulo naming).
        assert "f(g(" in text
        recursive = [
            clause
            for clause in transformed.clauses
            if any(
                lit.indicator == clause.indicator for lit in clause.body
            )
        ]
        assert recursive, "the q2-style recursion must survive"

    def test_semantics_preserved(self, a1_program):
        transformed, _ = normalize_program(a1_program, roots=[("p", 1)])
        source = parse_program(str(a1_program) + "\ne(a).")
        target = parse_program(str(transformed) + "\ne(a).")
        for query in ("p(g(a))", "p(g(b))", "p(a)"):
            expected = SLDEngine(source).solve(query, max_depth=60)
            actual = SLDEngine(target).solve(query, max_depth=60)
            assert expected.succeeded == actual.succeeded, query


class TestDriverOnPlainPrograms:
    def test_no_changes_for_append(self, append_program):
        transformed, log = normalize_program(append_program)
        assert str(transformed) == str(append_program)
        assert log.count("unfold") == 0
        assert log.count("split") == 0

    def test_equality_always_eliminated(self):
        program = parse_program("r(Z) :- U = f(Z), p(U).")
        transformed, _ = normalize_program(program)
        assert str(transformed) == "r(Z) :- p(f(Z))."

    def test_prune_requires_roots(self):
        program = parse_program("p(a).\ndead(b).")
        kept, _ = normalize_program(program)
        assert kept.predicate("dead", 1) is not None
        pruned, _ = normalize_program(program, roots=[("p", 1)])
        assert pruned.predicate("dead", 1) is None

    def test_log_str(self, a1_program):
        _, log = normalize_program(a1_program)
        assert "unfold" in str(log)
