"""Unit tests for positive-equality elimination."""

from repro.lp import parse_program
from repro.transform.equality import eliminate_positive_equality


def normalize(text):
    return str(eliminate_positive_equality(parse_program(text)))


class TestEliminatePositiveEquality:
    def test_paper_example(self):
        # r(Z) :- U = f(Z), p(U)  ==>  r(Z) :- p(f(Z)).
        result = normalize("r(Z) :- U = f(Z), p(U).")
        assert result == "r(Z) :- p(f(Z))."

    def test_reversed_sides(self):
        result = normalize("r(Z) :- f(Z) = U, p(U).")
        assert result == "r(Z) :- p(f(Z))."

    def test_equality_after_use(self):
        result = normalize("r(Z) :- p(U), U = f(Z).")
        assert result == "r(Z) :- p(f(Z))."

    def test_multiple_equalities(self):
        result = normalize("r(X) :- U = a, V = b, p(U, V).")
        assert result == "r(X) :- p(a, b)."

    def test_chained_equalities(self):
        result = normalize("r(X) :- U = V, V = a, p(U).")
        assert result == "r(X) :- p(a)."

    def test_unsatisfiable_equality_drops_clause(self):
        program = eliminate_positive_equality(
            parse_program("p(a).\nq(X) :- a = b, p(X).")
        )
        assert len(program) == 1

    def test_occurs_check_drops_clause(self):
        program = eliminate_positive_equality(
            parse_program("q(X) :- X = f(X), p(X).")
        )
        assert len(program) == 0

    def test_negative_equality_untouched(self):
        result = normalize("r(X) :- \\+ X = a, p(X).")
        assert "\\+" in result
        assert "=" in result

    def test_head_variables_substituted(self):
        result = normalize("r(U) :- U = f(Z).")
        assert result == "r(f(Z))."

    def test_clauses_without_equality_unchanged(self):
        text = "p(a).\nq(X) :- p(X)."
        assert normalize(text) == str(parse_program(text))
