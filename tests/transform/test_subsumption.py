"""Unit tests for clause subsumption elimination."""

from repro.lp import SLDEngine, parse_program
from repro.transform.subsumption import eliminate_subsumed, subsumes


def clause(text):
    return parse_program(text).clauses[0]


class TestSubsumes:
    def test_more_general_fact(self):
        assert subsumes(clause("p(X)."), clause("p(a)."))
        assert not subsumes(clause("p(a)."), clause("p(X)."))

    def test_variants_subsume_each_other(self):
        assert subsumes(clause("p(X, Y)."), clause("p(A, B)."))
        assert subsumes(clause("p(A, B)."), clause("p(X, Y)."))

    def test_repeated_variable_more_specific(self):
        assert subsumes(clause("p(X, Y)."), clause("p(Z, Z)."))
        assert not subsumes(clause("p(Z, Z)."), clause("p(X, Y)."))

    def test_body_subset(self):
        general = clause("p(X) :- q(X).")
        specific = clause("p(X) :- q(X), r(X).")
        assert subsumes(general, specific)
        assert not subsumes(specific, general)

    def test_body_instantiation(self):
        general = clause("p(X) :- q(X, Y).")
        specific = clause("p(a) :- q(a, b).")
        assert subsumes(general, specific)

    def test_duplicate_literals(self):
        general = clause("p(X) :- q(X).")
        specific = clause("p(X) :- q(X), q(X).")
        assert subsumes(general, specific)

    def test_polarity_respected(self):
        general = clause("p(X) :- q(X).")
        specific = clause("p(X) :- \\+ q(X), r(X).")
        assert not subsumes(general, specific)

    def test_different_predicates(self):
        assert not subsumes(clause("p(X)."), clause("q(X)."))

    def test_shared_variable_consistency(self):
        general = clause("p(X) :- q(X, X).")
        specific = clause("p(a) :- q(a, b).")
        assert not subsumes(general, specific)


class TestEliminateSubsumed:
    def test_paper_a1_simplification(self):
        # The final A.1 program: q2 :- e, e collapses to q2 :- e and
        # q2 :- q2(f(X)), q2(f(X)) to a single recursive call; the
        # mixed rules are subsumed by the simpler ones.
        program = parse_program(
            """
            p(g(X)) :- e(X).
            p(g(X)) :- q2(f(X)).
            q2(f(g(X))) :- e(X), e(X).
            q2(f(g(X))) :- e(X), q2(f(X)).
            q2(f(g(X))) :- q2(f(X)), e(X).
            q2(f(g(X))) :- q2(f(X)), q2(f(X)).
            """
        )
        simplified = eliminate_subsumed(program)
        texts = [str(c) for c in simplified.clauses]
        assert "q2(f(g(X))) :- e(X)." in texts
        assert "q2(f(g(X))) :- q2(f(X))." in texts
        # The two mixed rules are subsumed away.
        assert len(simplified.clauses_for(("q2", 1))) == 2

    def test_generalization_wins(self):
        program = parse_program("p(a).\np(X).\np(b).")
        simplified = eliminate_subsumed(program)
        assert [str(c) for c in simplified.clauses] == ["p(X)."]

    def test_variants_keep_first(self):
        program = parse_program("p(X, Y).\np(A, B).")
        simplified = eliminate_subsumed(program)
        assert len(simplified) == 1

    def test_no_false_positives(self):
        program = parse_program("p(a).\np(b).\nq(X) :- p(X).")
        assert len(eliminate_subsumed(program)) == 3

    def test_semantics_preserved(self):
        source = parse_program(
            "e(a).\n"
            "q(f(X)) :- e(X), e(X).\n"
            "q(f(X)) :- e(X), q(X).\n"
            "q(X) :- e(X).\n"
        )
        simplified = eliminate_subsumed(source)
        assert len(simplified) < len(source)
        for query in ("q(a)", "q(f(a))", "q(b)"):
            assert (
                SLDEngine(source).solve(query, max_depth=40).succeeded
                == SLDEngine(simplified).solve(query, max_depth=40).succeeded
            ), query
