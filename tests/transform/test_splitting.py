"""Unit tests for predicate splitting."""

import pytest

from repro.errors import TransformError
from repro.lp import parse_program
from repro.transform.splitting import find_split_trigger, split_predicate
from repro.transform.unfolding import safe_unfold

#: The paper's Appendix A splitting example.
SIMPLE = """
p(a).
p(X) :- q(X, Y), p(Y).
r(Z) :- p(f(Z)), r(Z).
"""


class TestFindTrigger:
    def test_paper_example_triggers(self):
        program = parse_program(SIMPLE)
        trigger = find_split_trigger(program)
        assert trigger is not None
        clause = program.clauses[trigger[0]]
        literal = clause.body[trigger[1]]
        assert str(literal.atom) == "p(f(Z))"

    def test_no_trigger_when_all_unify(self, append_program):
        assert find_split_trigger(append_program) is None

    def test_single_rule_predicates_skipped(self):
        program = parse_program("p(a).\nq(X) :- p(b), q(X).")
        assert find_split_trigger(program) is None

    def test_negative_literals_ignored(self):
        program = parse_program(
            "p(a).\np(f(X)) :- p(X).\nq(X) :- \\+ p(g(X))."
        )
        # The only partitioning occurrence is under negation.
        assert find_split_trigger(program) is None


class TestSplitPredicate:
    def test_paper_example_structure(self):
        program = parse_program(SIMPLE)
        result = split_predicate(program, find_split_trigger(program))
        text = str(result)
        # Two bridge rules for p.
        bridges = [
            c for c in result.clauses_for(("p", 1))
            if not c.is_fact() and len(c.body) == 1
        ]
        assert len(bridges) == 2
        # The trigger subgoal is specialized to the unifying group.
        assert "p(f(Z))" not in text

    def test_rule_partition(self):
        program = parse_program(SIMPLE)
        result = split_predicate(program, find_split_trigger(program))
        group_names = {
            predicate.name
            for predicate in result.predicates
            if predicate.name.startswith("p__")
        }
        assert len(group_names) == 2
        # p(a) went to the non-unifying group, the recursive rule to
        # the unifying one.
        for name in group_names:
            clauses = result.clauses_for((name, 1))
            assert len(clauses) == 1

    def test_semantics_preserved(self):
        from repro.lp import SLDEngine

        source = parse_program(SIMPLE + "q(f(a), a).")
        split = split_predicate(source, find_split_trigger(source))
        for query in ("p(a)", "p(f(a))", "p(b)"):
            assert (
                SLDEngine(source).solve(query).succeeded
                == SLDEngine(split).solve(query).succeeded
            )

    def test_invalid_trigger_rejected(self, append_program):
        with pytest.raises(TransformError):
            split_predicate(append_program, (1, 0))


class TestA1Pipeline:
    def test_split_after_unfold(self, a1_program):
        unfolded = safe_unfold(a1_program, ("p", 1))
        trigger = find_split_trigger(unfolded)
        assert trigger is not None
        result = split_predicate(unfolded, trigger)
        # The paper's intermediate form: q split into two groups with
        # bridge rules, p's recursive rule redirected.
        q_groups = {
            p.name for p in result.predicates if p.name.startswith("q__")
        }
        assert len(q_groups) == 2
