"""Per-prover behavior on small hand-written programs."""

import pytest

from repro.core import AnalyzerSettings, DISPROVED, PROVED, UNKNOWN
from repro.core.export import result_to_dict
from repro.core.report import render_report, render_verdict_table
from repro.lp import parse_program
from repro.methods import is_pure_program, run_method

ACKERMANN = """
ack(0, N, s(N)).
ack(s(M), 0, R) :- ack(M, s(0), R).
ack(s(M), s(N), R) :- ack(s(M), N, R1), ack(M, R1, R).
"""

APPEND = """
append([], Ys, Ys).
append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
"""

LOOP = "p(X) :- p(X).\n"


def analyze(source, root, mode, method):
    return run_method(
        parse_program(source), root, mode,
        settings=AnalyzerSettings(method=method),
    )


class TestSizeChange:
    def test_proves_ackermann_where_argsize_cannot(self):
        # The lexicographic descent: no single linear combination of
        # the two bound arguments decreases on every recursive call,
        # but some bound argument does along every infinite sequence.
        assert analyze(ACKERMANN, ("ack", 3), "bbf", "argsize").status \
            == UNKNOWN
        result = analyze(ACKERMANN, ("ack", 3), "bbf", "sizechange")
        assert result.status == PROVED
        assert result.method == "sizechange"

    def test_proof_is_reason_only(self):
        # Size-change PROVED carries no lambda certificate.
        result = analyze(ACKERMANN, ("ack", 3), "bbf", "sizechange")
        assert result.proof is None
        scc = [s for s in result.scc_results if not s.proof][0]
        assert "size-change" in scc.reason

    def test_agrees_with_argsize_on_append(self):
        assert analyze(APPEND, ("append", 3), "bbf", "sizechange").status \
            == PROVED

    def test_loop_stays_unknown(self):
        # sizechange never disproves; an unrankable loop is UNKNOWN.
        assert analyze(LOOP, ("p", 1), "b", "sizechange").status == UNKNOWN


class TestNonTerm:
    def test_disproves_direct_loop_with_witness(self):
        result = analyze(LOOP, ("p", 1), "b", "nonterm")
        assert result.status == DISPROVED
        failing = result.scc_results[0]
        assert "looping derivation" in failing.reason
        assert failing.method == "nonterm"

    def test_terminating_program_is_unknown_not_proved(self):
        # nonterm is one-sided: it can only disprove.
        assert analyze(APPEND, ("append", 3), "bbf", "nonterm").status \
            == UNKNOWN

    def test_purity_gate_cut(self):
        # A cut can prune the looping branch, so the loop criteria are
        # unsound: the method must refuse to disprove.
        source = "p(X) :- !, p(X).\n"
        assert not is_pure_program(parse_program(source))
        result = analyze(source, ("p", 1), "b", "nonterm")
        assert result.status == UNKNOWN
        assert "unsound" in result.scc_results[0].reason

    def test_purity_gate_negation(self):
        source = "p(X) :- \\+ q(X), p(X).\nq(a).\n"
        assert not is_pure_program(parse_program(source))
        assert analyze(source, ("p", 1), "b", "nonterm").status == UNKNOWN


class TestPortfolio:
    def test_sizechange_rescues_ackermann(self):
        result = analyze(ACKERMANN, ("ack", 3), "bbf", "portfolio")
        assert result.status == PROVED
        assert result.method == "portfolio"
        assert [s.method for s in result.scc_results
                if not s.proof] == ["sizechange"]

    def test_nonterm_upgrades_loop_to_disproved(self):
        result = analyze(LOOP, ("p", 1), "b", "portfolio")
        assert result.status == DISPROVED
        assert result.scc_results[-1].method == "nonterm"

    def test_argsize_win_keeps_its_provenance(self):
        result = analyze(APPEND, ("append", 3), "bbf", "portfolio")
        assert result.status == PROVED
        assert all(s.method == "argsize" for s in result.scc_results)

    def test_zero_budget_skips_later_stages(self):
        result = run_method(
            parse_program(LOOP), ("p", 1), "b",
            settings=AnalyzerSettings(method="portfolio"),
            # the portfolio instance itself carries the budget
        )
        assert result.status == DISPROVED
        from repro.methods import PortfolioMethod

        broke = PortfolioMethod(budget=0.0).analyze(
            parse_program(LOOP), ("p", 1), "b",
            settings=AnalyzerSettings(method="portfolio"),
        )
        assert broke.status == UNKNOWN
        assert "budget exhausted" in broke.scc_results[0].reason


class TestRendering:
    def test_export_carries_method_and_disproved_reason(self):
        result = analyze(LOOP, ("p", 1), "b", "nonterm")
        data = result_to_dict(result)
        assert data["method"] == "nonterm"
        assert data["status"] == DISPROVED
        scc = data["sccs"][0]
        assert scc["method"] == "nonterm"
        assert "looping derivation" in scc["reason"]

    def test_export_handles_proofless_proved_scc(self):
        result = analyze(ACKERMANN, ("ack", 3), "bbf", "sizechange")
        data = result_to_dict(result)
        proved = [s for s in data["sccs"] if s["status"] == PROVED]
        assert any("proof" not in s for s in proved)

    def test_argsize_export_still_says_argsize(self):
        result = analyze(APPEND, ("append", 3), "bbf", "argsize")
        assert result_to_dict(result)["method"] == "argsize"

    def test_report_shows_method_and_reason(self):
        text = render_report(analyze(LOOP, ("p", 1), "b", "portfolio"))
        assert "Method: portfolio" in text
        assert "DISPROVED" in text
        assert "looping derivation" in text

    def test_report_handles_proofless_proved_scc(self):
        text = render_report(
            analyze(ACKERMANN, ("ack", 3), "bbf", "sizechange")
        )
        assert "Verdict: PROVED" in text
        assert "size-change" in text

    def test_verdict_table_pads_short_rows(self):
        table = render_verdict_table(
            [("p1", "bf", PROVED, "argsize"), ("p2", "bf", UNKNOWN)],
            headers=("program", "mode", "verdict", "method"),
        )
        assert "method" in table.splitlines()[0]
        assert "argsize" in table
