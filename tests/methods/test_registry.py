"""The method registry: lookup, validation, and driver plumbing."""

import pytest

from repro.core import AnalyzerSettings, TerminationAnalyzer
from repro.errors import AnalysisError
from repro.lp import parse_program
from repro.methods import (
    ArgSizeMethod,
    MethodRunner,
    TerminationMethod,
    available_methods,
    get_method,
)

LOOP = "p(X) :- p(X).\n"


class TestRegistry:
    def test_all_four_methods_registered(self):
        assert available_methods() == (
            "argsize", "nonterm", "portfolio", "sizechange"
        )

    def test_get_method_returns_instances(self):
        method = get_method("argsize")
        assert isinstance(method, ArgSizeMethod)
        assert method.name == "argsize"

    def test_instances_pass_through(self):
        method = ArgSizeMethod()
        assert get_method(method) is method

    def test_unknown_method_lists_choices(self):
        with pytest.raises(AnalysisError) as excinfo:
            get_method("magic")
        message = str(excinfo.value)
        assert "magic" in message
        for name in available_methods():
            assert name in message

    def test_options_forwarded_to_constructor(self):
        method = get_method("sizechange", closure_limit=7)
        assert method.closure_limit == 7

    def test_methods_are_cost_ordered(self):
        costs = [get_method(name).cost for name in
                 ("argsize", "sizechange", "nonterm", "portfolio")]
        assert costs == sorted(costs)

    def test_register_rejects_non_methods(self):
        from repro.methods.base import register_method

        with pytest.raises(TypeError):
            register_method(object)


class TestSettingsValidation:
    def test_settings_validate_rejects_unknown_method(self):
        with pytest.raises(AnalysisError) as excinfo:
            AnalyzerSettings(method="bogus").validate()
        assert "bogus" in str(excinfo.value)
        assert "portfolio" in str(excinfo.value)

    def test_analyzer_construction_rejects_unknown_method(self):
        program = parse_program(LOOP)
        with pytest.raises(AnalysisError):
            TerminationAnalyzer(
                program, settings=AnalyzerSettings(method="nope")
            )

    def test_runner_construction_rejects_unknown_method(self):
        with pytest.raises(AnalysisError):
            MethodRunner(settings=AnalyzerSettings(method="nope"))

    def test_method_participates_in_settings_fingerprint(self):
        from repro.serve.protocol import settings_fingerprint

        default = settings_fingerprint(AnalyzerSettings())
        other = settings_fingerprint(AnalyzerSettings(method="portfolio"))
        assert default["method"] == "argsize"
        assert other["method"] == "portfolio"
        assert default != other


class TestRunner:
    def test_runner_dispatches_on_settings_method(self):
        program = parse_program(LOOP)
        runner = MethodRunner(
            settings=AnalyzerSettings(method="nonterm")
        )
        result = runner.analyze(program, ("p", 1), "b")
        assert result.status == "DISPROVED"
        assert result.method == "nonterm"

    def test_runner_defaults_to_argsize(self):
        program = parse_program("q(a).\n")
        result = MethodRunner().analyze(program, ("q", 1), "b")
        assert result.status == "PROVED"
        assert result.method == "argsize"

    def test_custom_method_subclass_registers(self):
        from repro.methods.base import _METHODS, register_method

        @register_method
        class EchoMethod(TerminationMethod):
            name = "echo-test"

            def analyze(self, program, root, mode, **kwargs):
                return "echo"

        try:
            assert get_method("echo-test").analyze(None, None, None) == "echo"
        finally:
            _METHODS.pop("echo-test", None)
