"""Corpus-wide method guarantees.

One sweep of the 42-program corpus per method, shared module-wide:

- ``method="argsize"`` is byte-identical to driving the pipeline
  directly (the adapter changes nothing);
- the portfolio strictly reduces the UNKNOWN count vs argsize, with at
  least one program DISPROVED by the non-termination detector;
- nonterm DISPROVES every ``nonterminating``-tagged entry and never a
  terminating one — the empirical ground truth is never contradicted;
- no entry is PROVED by any method while DISPROVED by nonterm.
"""

import pytest

from repro.core import (
    AnalyzerSettings,
    DISPROVED,
    PROVED,
    TerminationAnalyzer,
    UNKNOWN,
)
from repro.corpus.registry import all_programs, load
from repro.methods import MethodRunner
from repro.serve.protocol import payload_text, payload_from_result

METHODS = ("argsize", "sizechange", "nonterm", "portfolio")


@pytest.fixture(scope="module")
def sweep():
    """{method: {entry name: AnalysisResult}} over the whole corpus."""
    results = {name: {} for name in METHODS}
    for entry in all_programs():
        program = load(entry)
        for name in METHODS:
            runner = MethodRunner(
                settings=AnalyzerSettings(method=name)
            )
            results[name][entry.name] = runner.analyze(
                program, entry.root, entry.mode
            )
    return results


def test_argsize_payload_identical_to_pipeline(sweep):
    for entry in all_programs():
        direct = TerminationAnalyzer(load(entry)).analyze(
            tuple(entry.root), entry.mode
        )
        via_method = sweep["argsize"][entry.name]
        assert payload_text(payload_from_result(via_method)) \
            == payload_text(payload_from_result(direct)), entry.name


def test_portfolio_strictly_reduces_unknowns(sweep):
    unknown_argsize = sum(
        1 for r in sweep["argsize"].values() if r.status == UNKNOWN
    )
    unknown_portfolio = sum(
        1 for r in sweep["portfolio"].values() if r.status == UNKNOWN
    )
    assert unknown_portfolio < unknown_argsize
    assert any(
        r.status == DISPROVED for r in sweep["portfolio"].values()
    )


def test_nonterm_disproves_every_tagged_looper(sweep):
    loopers = {e.name for e in all_programs() if "nonterminating" in e.tags}
    assert loopers  # the corpus ships known-diverging entries
    for name in loopers:
        assert sweep["nonterm"][name].status == DISPROVED, name
        assert sweep["portfolio"][name].status == DISPROVED, name


def test_nonterm_never_disproves_a_terminating_entry(sweep):
    for entry in all_programs():
        if "nonterminating" in entry.tags:
            continue
        assert sweep["nonterm"][entry.name].status != DISPROVED, entry.name


def test_no_entry_both_proved_and_disproved(sweep):
    for entry in all_programs():
        disproved = sweep["nonterm"][entry.name].status == DISPROVED
        proved = any(
            sweep[name][entry.name].status == PROVED for name in METHODS
        )
        assert not (proved and disproved), entry.name


def test_portfolio_agrees_with_winning_method(sweep):
    for entry in all_programs():
        portfolio = sweep["portfolio"][entry.name]
        if portfolio.status == DISPROVED:
            assert sweep["nonterm"][entry.name].status == DISPROVED
        if sweep["argsize"][entry.name].status == PROVED:
            assert portfolio.status == PROVED
        for scc in portfolio.scc_results:
            if scc.status == PROVED and scc.method == "sizechange":
                assert sweep["sizechange"][entry.name].status == PROVED


def test_portfolio_never_worse_than_argsize(sweep):
    for entry in all_programs():
        if sweep["argsize"][entry.name].status == PROVED:
            assert sweep["portfolio"][entry.name].status == PROVED, \
                entry.name
