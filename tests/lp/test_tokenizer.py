"""Unit tests for the Prolog tokenizer."""

import pytest

from repro.errors import PrologSyntaxError
from repro.lp.tokenizer import (
    ATOM,
    END,
    EOF,
    INTEGER,
    PUNCT,
    VARIABLE,
    tokenize,
)


def kinds(text):
    return [t.kind for t in tokenize(text)]


def texts(text):
    return [t.text for t in tokenize(text)][:-1]  # drop EOF


class TestBasicTokens:
    def test_empty_input(self):
        assert kinds("") == [EOF]

    def test_atom(self):
        tokens = tokenize("append")
        assert tokens[0].kind == ATOM
        assert tokens[0].text == "append"

    def test_variable(self):
        assert tokenize("Xs")[0].kind == VARIABLE
        assert tokenize("_Tail")[0].kind == VARIABLE
        assert tokenize("_")[0].kind == VARIABLE

    def test_integer(self):
        token = tokenize("42")[0]
        assert token.kind == INTEGER
        assert token.text == "42"

    def test_punctuation(self):
        assert texts("( ) [ ] , |") == ["(", ")", "[", "]", ",", "|"]

    def test_clause_end(self):
        tokens = tokenize("a.")
        assert [t.kind for t in tokens] == [ATOM, END, EOF]


class TestSymbolicAtoms:
    def test_neck(self):
        assert texts(":-") == [":-"]

    def test_comparison_operators(self):
        assert texts("=< >= == \\== \\= \\+") == [
            "=<", ">=", "==", "\\==", "\\=", "\\+",
        ]

    def test_symbolic_run_stops_before_clause_period(self):
        # "X=Y." must give '=', not '=.'.
        assert texts("X=Y.") == ["X", "=", "Y", "."]

    def test_period_inside_symbolic_not_end(self):
        # '=..' is one symbolic atom (univ).
        assert texts("X =.. L.") == ["X", "=..", "L", "."]


class TestQuotedAtoms:
    def test_simple(self):
        token = tokenize("'+'")[0]
        assert token.kind == ATOM
        assert token.text == "+"

    def test_spaces_inside(self):
        assert tokenize("'hello world'")[0].text == "hello world"

    def test_escaped_quote(self):
        assert tokenize("'it''s'")[0].text == "it's"

    def test_backslash_escape(self):
        assert tokenize(r"'a\nb'")[0].text == "a\nb"

    def test_unterminated(self):
        with pytest.raises(PrologSyntaxError):
            tokenize("'oops")


class TestComments:
    def test_line_comment(self):
        assert kinds("% a comment\nfoo") == [ATOM, EOF]

    def test_block_comment(self):
        assert kinds("/* skip */ foo") == [ATOM, EOF]

    def test_block_comment_multiline(self):
        assert kinds("/* a\nb\nc */ foo") == [ATOM, EOF]

    def test_unterminated_block(self):
        with pytest.raises(PrologSyntaxError):
            tokenize("/* forever")

    def test_period_before_comment_is_end(self):
        assert kinds("a.% trailing")[:2] == [ATOM, END]


class TestPositions:
    def test_line_and_column(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_carries_position(self):
        try:
            tokenize("a\n  {")
        except PrologSyntaxError as error:
            assert error.line == 2
        else:
            pytest.fail("expected PrologSyntaxError")


class TestRealisticClause:
    def test_merge_rule(self):
        text = "merge([X|Xs], [Y|Ys], [X|Zs]) :- X =< Y, merge([Y|Ys], Xs, Zs)."
        token_kinds = kinds(text)
        assert token_kinds[-1] == EOF
        assert token_kinds[-2] == END
        assert PUNCT in token_kinds
