"""Unit tests for the clause/program model."""

import pytest

from repro.errors import AnalysisError, PrologSyntaxError
from repro.lp.parser import parse_program, parse_term
from repro.lp.program import (
    BUILTIN_PREDICATES,
    Clause,
    Literal,
    Program,
    clause_from_term,
)
from repro.lp.terms import Atom, Struct, Var


class TestLiteral:
    def test_indicator(self):
        literal = Literal(parse_term("p(a, b)"))
        assert literal.indicator == ("p", 2)

    def test_propositional_indicator(self):
        assert Literal(Atom("halt")).indicator == ("halt", 0)

    def test_negation(self):
        literal = Literal(parse_term("p(X)"), positive=False)
        assert str(literal).startswith("\\+")
        assert literal.negate().positive

    def test_rejects_variable(self):
        with pytest.raises(AnalysisError):
            Literal(Var("X"))


class TestClause:
    def test_fact(self):
        clause = Clause(head=parse_term("p(a)"))
        assert clause.is_fact()
        assert clause.indicator == ("p", 1)

    def test_variables_in_order(self):
        clause = clause_from_term(parse_term("p(X, Y) :- q(Y, Z)"))
        assert [v.name for v in clause.variables()] == ["X", "Y", "Z"]

    def test_str_roundtrips_through_parser(self):
        program = parse_program("p(X) :- q(X), \\+ r(X).")
        again = parse_program(str(program))
        assert str(again) == str(program)


class TestProgramConstruction:
    def test_from_text(self):
        program = Program.from_text("p(a). p(b). q(X) :- p(X).")
        assert len(program) == 3
        assert len(program.predicates) == 2

    def test_clause_order_preserved(self):
        program = Program.from_text("p(b). p(a).")
        heads = [c.head.args[0].name for c in program.clauses_for(("p", 1))]
        assert heads == ["b", "a"]

    def test_body_conjunction_flattened(self):
        program = Program.from_text("p :- q, r, s.")
        (clause,) = program.clauses
        assert len(clause.body) == 3

    def test_negation_parsed(self):
        program = Program.from_text("p(X) :- \\+ q(X).")
        (clause,) = program.clauses
        assert not clause.body[0].positive

    def test_cannot_define_builtin(self):
        with pytest.raises(AnalysisError):
            Program.from_text("=(a, b).")

    def test_negated_variable_rejected(self):
        with pytest.raises(PrologSyntaxError):
            Program.from_text("p(X) :- \\+ X.")

    def test_variable_goal_rejected(self):
        with pytest.raises(PrologSyntaxError):
            Program.from_text("p(X) :- X.")


class TestProgramQueries:
    def test_edb_indicators(self, parser_program):
        assert parser_program.edb_indicators() == {("z", 1)}

    def test_defined_indicators(self, append_program):
        assert append_program.defined_indicators() == {("append", 3)}

    def test_builtins_not_edb(self):
        program = Program.from_text("p(X, Y) :- X =< Y.")
        assert program.edb_indicators() == set()


class TestDependencyGraph:
    def test_self_loop(self, append_program):
        graph = append_program.dependency_graph()
        assert graph.has_edge(("append", 3), ("append", 3))

    def test_cross_edges(self, perm_program):
        graph = perm_program.dependency_graph()
        assert graph.has_edge(("perm", 2), ("append", 3))
        assert not graph.has_edge(("append", 3), ("perm", 2))

    def test_builtins_excluded(self, merge_program):
        graph = merge_program.dependency_graph()
        assert ("=<", 2) not in graph

    def test_sccs_bottom_up(self, perm_program):
        sccs = perm_program.sccs()
        assert sccs.index((("append", 3),)) < sccs.index((("perm", 2),))

    def test_parser_scc_mutual(self, parser_program):
        sccs = parser_program.sccs()
        big = [c for c in sccs if len(c) == 3]
        assert len(big) == 1
        assert {indicator[0] for indicator in big[0]} == {"e", "t", "n"}


class TestBuiltins:
    def test_expected_builtins_present(self):
        for name in ("=<", "<", ">", ">=", "=", "\\=", "is"):
            assert (name, 2) in BUILTIN_PREDICATES
        assert ("true", 0) in BUILTIN_PREDICATES
