"""Unit tests for the semi-naive bottom-up evaluator."""

import pytest

from repro.errors import AnalysisError
from repro.lp import SLDEngine, parse_program
from repro.lp.bottomup import BottomUpEngine
from repro.lp.parser import parse_term

TC_LEFT = """
e(a, b).
e(b, c).
e(c, d).
tc(X, Y) :- e(X, Y).
tc(X, Y) :- tc(X, Z), e(Z, Y).
"""


class TestTransitiveClosure:
    def test_left_recursion_converges(self):
        result = BottomUpEngine(parse_program(TC_LEFT)).evaluate()
        assert result.converged
        assert result.count("tc", 2) == 6
        assert result.holds(parse_term("tc(a, d)"))
        assert not result.holds(parse_term("tc(d, a)"))

    def test_top_down_diverges_on_same_program(self):
        """The paper's capture-rule motivation in one assertion."""
        engine = SLDEngine(parse_program(TC_LEFT))
        outcome = engine.solve("tc(a, X)", max_depth=100, max_steps=5000)
        assert not outcome.completed

    def test_cyclic_graph(self):
        program = parse_program(
            "e(a, b).\ne(b, a).\n"
            "tc(X, Y) :- e(X, Y).\n"
            "tc(X, Y) :- tc(X, Z), e(Z, Y).\n"
        )
        result = BottomUpEngine(program).evaluate()
        assert result.converged
        assert result.count("tc", 2) == 4  # a-a, a-b, b-a, b-b


class TestSemantics:
    def test_matches_top_down_on_terminating_program(self):
        program = parse_program(
            "p(a). p(b).\nq(c).\nr(X) :- p(X).\nr(X) :- q(X)."
        )
        bottom_up = BottomUpEngine(program).evaluate()
        top_down = SLDEngine(program)
        for constant in "abcd":
            goal = "r(%s)" % constant
            assert bottom_up.holds(parse_term(goal)) == top_down.solve(
                goal
            ).succeeded

    def test_builtins_in_bodies(self):
        program = parse_program(
            "n(1). n(2). n(3).\nbig(X) :- n(X), X >= 2."
        )
        result = BottomUpEngine(program).evaluate()
        assert result.count("big", 1) == 2

    def test_stratified_negation(self):
        program = parse_program(
            "node(a). node(b). node(c).\n"
            "e(a, b).\n"
            "reached(b).\n"
            "unreached(X) :- node(X), \\+ reached(X).\n"
        )
        result = BottomUpEngine(program).evaluate()
        assert result.count("unreached", 1) == 2
        assert not result.holds(parse_term("unreached(b)"))

    def test_unstratified_rejected(self):
        program = parse_program("p(X) :- n(X), \\+ q(X).\nq(X) :- n(X), \\+ p(X).\nn(a).")
        with pytest.raises(AnalysisError):
            BottomUpEngine(program)

    def test_range_restriction_enforced(self):
        program = parse_program("p(a).\nq(X, Y) :- p(X).")
        with pytest.raises(AnalysisError):
            BottomUpEngine(program).evaluate()


class TestFunctionSymbols:
    def test_term_size_budget(self):
        # nat generates s(s(...)); without a budget it never converges.
        program = parse_program("nat(0).\nnat(s(N)) :- nat(N).")
        result = BottomUpEngine(program, max_term_size=10).evaluate()
        assert result.converged
        # The budget bounds the whole head atom: nat(s^k(0)) has
        # structural size k + 1, so k ranges over 0..9.
        assert result.count("nat", 1) == 10

    def test_fact_budget_reports_nonconvergence(self):
        program = parse_program("nat(0).\nnat(s(N)) :- nat(N).")
        result = BottomUpEngine(program, max_facts=50).evaluate()
        assert not result.converged

    def test_list_programs(self):
        program = parse_program(
            "item(a). item(b).\n"
            "lst([]).\n"
            "lst([X|L]) :- item(X), lst(L).\n"
        )
        result = BottomUpEngine(program, max_term_size=6).evaluate()
        assert result.converged
        # [], [a], [b], [a,a], [a,b], [b,a], [b,b] at size <= 6.
        assert result.count("lst", 1) == 7


class TestSemiNaive:
    def test_round_count_linear_in_path_length(self):
        edges = "\n".join(
            "e(n%d, n%d)." % (i, i + 1) for i in range(10)
        )
        program = parse_program(
            edges + "\ntc(X, Y) :- e(X, Y).\n"
            "tc(X, Y) :- tc(X, Z), e(Z, Y).\n"
        )
        result = BottomUpEngine(program).evaluate()
        assert result.converged
        assert result.count("tc", 2) == 55
        assert result.rounds <= 13
