"""Unit tests for mode declarations."""

import pytest

from repro.errors import PrologSyntaxError
from repro.lp import parse_program
from repro.lp.modes import ModeDeclaration, parse_mode_directive
from repro.lp.parser import parse_term


class TestParseDirective:
    def test_basic(self):
        declaration = parse_mode_directive(parse_term("mode(append(b, b, f))"))
        assert declaration == ModeDeclaration(("append", 3), "bbf")

    def test_plus_minus_spelling(self):
        declaration = parse_mode_directive(parse_term("mode(p(+, -))"))
        assert declaration.mode == "bf"

    def test_propositional(self):
        declaration = parse_mode_directive(parse_term("mode(go)"))
        assert declaration == ModeDeclaration(("go", 0), "")

    def test_non_mode_directive_returns_none(self):
        assert parse_mode_directive(parse_term("dynamic(foo/1)")) is None

    def test_bad_argument_rejected(self):
        with pytest.raises(PrologSyntaxError):
            parse_mode_directive(parse_term("mode(p(x))"))

    def test_str(self):
        text = str(ModeDeclaration(("append", 3), "bbf"))
        assert text == ":- mode(append(b, b, f))."


class TestProgramIntegration:
    def test_declarations_collected(self):
        program = parse_program(
            ":- mode(append(b, b, f)).\n"
            ":- mode(append(f, f, b)).\n"
            "append([], Ys, Ys).\n"
            "append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).\n"
        )
        assert len(program.mode_declarations) == 2
        assert program.mode_declarations[0].mode == "bbf"

    def test_unknown_directive_rejected(self):
        with pytest.raises(PrologSyntaxError):
            parse_program(":- table(foo/1).\nfoo(a).")

    def test_declared_modes_analyzable(self):
        from repro.core import analyze_program

        program = parse_program(
            ":- mode(append(b, b, f)).\n"
            "append([], Ys, Ys).\n"
            "append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).\n"
        )
        (declaration,) = program.mode_declarations
        result = analyze_program(
            program, declaration.indicator, declaration.mode
        )
        assert result.proved


class TestCLIAllModes:
    def test_all_modes_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "lib.pl"
        path.write_text(
            ":- mode(append(b, b, f)).\n"
            ":- mode(append(f, f, b)).\n"
            "append([], Ys, Ys).\n"
            "append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).\n"
        )
        code = main([str(path), "--all-modes"])
        out = capsys.readouterr().out
        assert code == 0
        assert "append/3 mode bbf: PROVED" in out
        assert "append/3 mode ffb: PROVED" in out

    def test_all_modes_failure_exit(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "bad.pl"
        path.write_text(":- mode(p(b)).\np(X) :- p(X).\n")
        code = main([str(path), "--all-modes"])
        assert code == 1
        assert "UNKNOWN" in capsys.readouterr().out

    def test_all_modes_requires_declarations(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "none.pl"
        path.write_text("p(a).\n")
        assert main([str(path), "--all-modes"]) == 2

    def test_all_modes_excludes_root(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "lib.pl"
        path.write_text(":- mode(p(b)).\np(a).\n")
        with pytest.raises(SystemExit):
            main([str(path), "--all-modes", "--root", "p/1"])

    def test_root_and_mode_still_required_without_flag(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "lib.pl"
        path.write_text("p(a).\n")
        with pytest.raises(SystemExit):
            main([str(path)])
