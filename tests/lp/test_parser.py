"""Unit tests for the Prolog parser."""

import pytest

from repro.errors import PrologSyntaxError
from repro.lp.parser import parse_clause_terms, parse_program, parse_query, parse_term
from repro.lp.terms import Atom, Struct, Var, make_list


class TestTerms:
    def test_atom(self):
        assert parse_term("foo") == Atom("foo")

    def test_variable(self):
        assert parse_term("Xs") == Var("Xs")

    def test_integer(self):
        assert parse_term("42") == Atom(42)

    def test_negative_integer(self):
        assert parse_term("-3") == Atom(-3)

    def test_compound(self):
        assert parse_term("f(a, X)") == Struct("f", (Atom("a"), Var("X")))

    def test_nested_compound(self):
        term = parse_term("f(g(h(a)))")
        assert term.functor == "f"
        assert term.args[0].functor == "g"

    def test_quoted_functor(self):
        assert parse_term("'my atom'") == Atom("my atom")

    def test_parenthesized(self):
        assert parse_term("(a)") == Atom("a")

    def test_anonymous_variables_distinct(self):
        term = parse_term("f(_, _)")
        assert term.args[0] != term.args[1]


class TestLists:
    def test_empty_list(self):
        assert parse_term("[]") == Atom("[]")

    def test_proper_list(self):
        assert parse_term("[a, b]") == make_list([Atom("a"), Atom("b")])

    def test_head_tail(self):
        term = parse_term("[X|Xs]")
        assert term.functor == "."
        assert term.args == (Var("X"), Var("Xs"))

    def test_multi_head_tail(self):
        term = parse_term("[a, b|T]")
        assert term == make_list([Atom("a"), Atom("b")], tail=Var("T"))

    def test_nested_lists(self):
        term = parse_term("[[a], [b, c]]")
        elements = term.args
        assert elements[0] == make_list([Atom("a")])

    def test_quoted_atoms_in_list(self):
        term = parse_term("['+'|C]")
        assert term.args[0] == Atom("+")

    def test_unclosed_list(self):
        with pytest.raises(PrologSyntaxError):
            parse_term("[a, b")


class TestOperators:
    def test_infix_comparison(self):
        term = parse_term("X =< Y")
        assert term == Struct("=<", (Var("X"), Var("Y")))

    def test_arithmetic_precedence(self):
        # 1 + 2 * 3 parses as 1 + (2 * 3).
        term = parse_term("1 + 2 * 3")
        assert term.functor == "+"
        assert term.args[1].functor == "*"

    def test_left_associativity(self):
        # 1 - 2 - 3 parses as (1 - 2) - 3.
        term = parse_term("1 - 2 - 3")
        assert term.args[0].functor == "-"

    def test_rule_operator(self):
        term = parse_term("h :- b")
        assert term.functor == ":-"

    def test_conjunction_right_assoc(self):
        term = parse_term("(a, b, c)")
        assert term.functor == ","
        assert term.args[1].functor == ","

    def test_negation_prefix(self):
        term = parse_term("\\+ p(X)")
        assert term == Struct("\\+", (Struct("p", (Var("X"),)),))

    def test_prefix_minus_on_term(self):
        term = parse_term("- X")
        assert term == Struct("-", (Var("X"),))

    def test_is_operator(self):
        term = parse_term("X is Y + 1")
        assert term.functor == "is"

    def test_comma_binds_looser_than_comparison(self):
        term = parse_term("(X =< Y, p(X))")
        assert term.functor == ","
        assert term.args[0].functor == "=<"


class TestClauses:
    def test_single_fact(self):
        terms = parse_clause_terms("p(a).")
        assert terms == [Struct("p", (Atom("a"),))]

    def test_multiple_clauses(self):
        terms = parse_clause_terms("p(a). p(b).")
        assert len(terms) == 2

    def test_rule(self):
        (term,) = parse_clause_terms("p(X) :- q(X).")
        assert term.functor == ":-"

    def test_missing_period(self):
        with pytest.raises(PrologSyntaxError):
            parse_clause_terms("p(a)")

    def test_comments_between_clauses(self):
        terms = parse_clause_terms("p(a). % fact\n/* block */ p(b).")
        assert len(terms) == 2


class TestQueries:
    def test_single_goal(self):
        goals = parse_query("p(X)")
        assert len(goals) == 1

    def test_conjunction_flattened(self):
        goals = parse_query("p(X), q(X), r(X)")
        assert len(goals) == 3

    def test_trailing_period_tolerated(self):
        assert len(parse_query("p(a).")) == 1


class TestPrograms:
    def test_parse_program_roundtrip(self):
        program = parse_program(
            "append([], Ys, Ys).\n"
            "append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).\n"
        )
        assert len(program) == 2
        assert program.predicate("append", 3) is not None

    def test_paper_perm_rule(self):
        program = parse_program(
            "perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), "
            "perm(P1, L)."
        )
        (clause,) = program.clauses
        assert len(clause.body) == 3
        assert clause.body[2].indicator == ("perm", 2)

    def test_error_position_reported(self):
        try:
            parse_program("p(a) :- .")
        except PrologSyntaxError as error:
            assert error.line == 1
        else:
            pytest.fail("expected syntax error")
