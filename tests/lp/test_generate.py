"""Unit tests for the term/query generators."""

from repro.lp.generate import TermGenerator
from repro.lp.terms import Atom, Struct, Var, list_elements


class TestTermGenerator:
    def test_deterministic_by_seed(self):
        first = TermGenerator(seed=1)
        second = TermGenerator(seed=1)
        assert [first.constant() for _ in range(10)] == [
            second.constant() for _ in range(10)
        ]

    def test_different_seeds_differ(self):
        lists_a = [str(TermGenerator(seed=1).ground_list()) for _ in range(3)]
        lists_b = [str(TermGenerator(seed=2).ground_list()) for _ in range(3)]
        assert lists_a != lists_b

    def test_ground_list_is_ground(self):
        generator = TermGenerator(seed=3)
        for _ in range(20):
            assert generator.ground_list().is_ground()

    def test_sorted_integer_list_ascending(self):
        generator = TermGenerator(seed=4)
        for _ in range(20):
            elements, tail = list_elements(generator.sorted_integer_list())
            values = [e.name for e in elements]
            assert values == sorted(values)
            assert tail == Atom("[]")

    def test_ground_tree_functor(self):
        generator = TermGenerator(seed=5)
        tree = generator.ground_tree(functor="node", max_depth=3)
        assert tree.is_ground()
        for name, arity in tree.functors():
            assert arity in (0, 2)

    def test_fresh_vars_distinct(self):
        generator = TermGenerator()
        assert generator.fresh_var() != generator.fresh_var()

    def test_query_atom_modes(self):
        generator = TermGenerator(seed=6)
        atom = generator.query_atom("p", "bfb")
        assert isinstance(atom, Struct)
        assert atom.args[0].is_ground()
        assert isinstance(atom.args[1], Var)
        assert atom.args[2].is_ground()

    def test_query_atom_zero_arity(self):
        generator = TermGenerator()
        assert generator.query_atom("go", "") == Atom("go")

    def test_integer_bounds(self):
        generator = TermGenerator(seed=7)
        for _ in range(50):
            value = generator.integer(low=2, high=5).name
            assert 2 <= value <= 5
