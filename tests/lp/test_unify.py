"""Unit tests for unification and substitutions."""

import pytest

from repro.lp.parser import parse_program, parse_term
from repro.lp.terms import Atom, Struct, Var
from repro.lp.unify import (
    apply_subst,
    apply_subst_clause,
    compose_subst,
    occurs_in,
    rename_apart,
    rename_term_apart,
    unify,
)


class TestUnify:
    def test_identical_atoms(self):
        assert unify(Atom("a"), Atom("a")) == {}

    def test_distinct_atoms_fail(self):
        assert unify(Atom("a"), Atom("b")) is None

    def test_variable_binding(self):
        subst = unify(Var("X"), Atom("a"))
        assert subst == {Var("X"): Atom("a")}

    def test_symmetric_binding(self):
        subst = unify(Atom("a"), Var("X"))
        assert subst == {Var("X"): Atom("a")}

    def test_compound(self):
        subst = unify(parse_term("f(X, b)"), parse_term("f(a, Y)"))
        assert subst[Var("X")] == Atom("a")
        assert subst[Var("Y")] == Atom("b")

    def test_functor_mismatch(self):
        assert unify(parse_term("f(a)"), parse_term("g(a)")) is None

    def test_arity_mismatch(self):
        assert unify(parse_term("f(a)"), parse_term("f(a, b)")) is None

    def test_shared_variable(self):
        subst = unify(parse_term("f(X, X)"), parse_term("f(a, Y)"))
        assert apply_subst(Var("Y"), subst) == Atom("a")

    def test_deep_propagation(self):
        subst = unify(
            parse_term("f(X, g(X))"), parse_term("f(a, Z)")
        )
        assert apply_subst(Var("Z"), subst) == parse_term("g(a)")

    def test_occurs_check_blocks_cycle(self):
        assert unify(Var("X"), parse_term("f(X)"), occurs_check=True) is None

    def test_occurs_check_off(self):
        # Prolog-style: binding succeeds (cyclic term).
        subst = unify(Var("X"), parse_term("f(X)"), occurs_check=False)
        assert subst is not None

    def test_input_subst_not_mutated(self):
        base = {Var("X"): Atom("a")}
        unify(Var("Y"), Atom("b"), base)
        assert base == {Var("X"): Atom("a")}

    def test_unify_under_existing_bindings(self):
        base = {Var("X"): Atom("a")}
        assert unify(Var("X"), Atom("b"), base) is None
        extended = unify(Var("X"), Var("Y"), base)
        assert apply_subst(Var("Y"), extended) == Atom("a")

    def test_idempotence(self):
        subst = unify(
            parse_term("f(X, g(Y), Y)"), parse_term("f(h(Z), W, c)")
        )
        for term in subst.values():
            assert apply_subst(term, subst) == term

    def test_lists(self):
        subst = unify(parse_term("[X|Xs]"), parse_term("[a, b, c]"))
        assert apply_subst(Var("Xs"), subst) == parse_term("[b, c]")


class TestApplySubst:
    def test_unbound_unchanged(self):
        assert apply_subst(Var("X"), {}) == Var("X")

    def test_identity_preserved_for_unchanged_struct(self):
        term = parse_term("f(a, b)")
        assert apply_subst(term, {Var("X"): Atom("q")}) is term

    def test_clause_application(self):
        program = parse_program("p(X) :- q(X, Y).")
        clause = program.clauses[0]
        new_clause = apply_subst_clause(clause, {Var("X"): Atom("a")})
        assert new_clause.head == parse_term("p(a)")
        assert new_clause.body[0].atom.args[0] == Atom("a")


class TestComposeSubst:
    def test_sequential_equivalence(self):
        first = {Var("X"): Struct("f", (Var("Y"),))}
        second = {Var("Y"): Atom("a")}
        composed = compose_subst(first, second)
        term = parse_term("g(X, Y)")
        assert apply_subst(term, composed) == apply_subst(
            apply_subst(term, first), second
        )

    def test_trivial_bindings_dropped(self):
        composed = compose_subst({Var("X"): Var("Y")}, {Var("Y"): Var("X")})
        assert Var("X") not in composed


class TestOccursIn:
    def test_direct(self):
        assert occurs_in(Var("X"), parse_term("f(X)"), {})

    def test_through_bindings(self):
        subst = {Var("Y"): parse_term("g(X)")}
        assert occurs_in(Var("X"), parse_term("f(Y)"), subst)

    def test_absent(self):
        assert not occurs_in(Var("X"), parse_term("f(a, Y)"), {})


class TestRenameApart:
    def test_fresh_names(self):
        program = parse_program("p(X) :- q(X, Y).")
        clause = program.clauses[0]
        renamed = rename_apart(clause)
        originals = {v.name for v in clause.variables()}
        fresh = {v.name for v in renamed.variables()}
        assert originals.isdisjoint(fresh)

    def test_structure_preserved(self):
        program = parse_program("p(X, X) :- q(X).")
        renamed = rename_apart(program.clauses[0])
        # The shared variable stays shared.
        head_vars = list(renamed.head.variables())
        assert head_vars[0] == head_vars[1]

    def test_distinct_invocations_differ(self):
        program = parse_program("p(X).")
        first = rename_apart(program.clauses[0])
        second = rename_apart(program.clauses[0])
        assert first.head != second.head

    def test_rename_term_apart(self):
        term = parse_term("f(X, Y)")
        renamed = rename_term_apart(term)
        assert renamed.functor == "f"
        assert {v.name for v in renamed.variables()}.isdisjoint({"X", "Y"})
