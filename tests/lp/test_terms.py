"""Unit tests for repro.lp.terms."""

import pytest

from repro.lp.terms import (
    Atom,
    NIL,
    Struct,
    Var,
    cons,
    integer,
    is_integer_atom,
    list_elements,
    make_list,
    term_variables,
    terms_variables,
    walk,
)


class TestVar:
    def test_equality_by_name(self):
        assert Var("X") == Var("X")
        assert Var("X") != Var("Y")

    def test_hashable(self):
        assert len({Var("X"), Var("X"), Var("Y")}) == 2

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Var("X").name = "Y"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Var("")

    def test_variables_yields_self(self):
        var = Var("X")
        assert list(var.variables()) == [var]

    def test_not_ground(self):
        assert not Var("X").is_ground()

    def test_structural_size_raises(self):
        with pytest.raises(ValueError):
            Var("X").structural_size()

    def test_str(self):
        assert str(Var("Xs")) == "Xs"


class TestAtom:
    def test_equality(self):
        assert Atom("a") == Atom("a")
        assert Atom("a") != Atom("b")

    def test_integer_atoms_distinct_from_string(self):
        assert Atom(1) != Atom("1")

    def test_ground(self):
        assert Atom("a").is_ground()

    def test_size_zero(self):
        assert Atom("a").structural_size() == 0

    def test_functors(self):
        assert list(Atom("a").functors()) == [("a", 0)]

    def test_integer_helper(self):
        assert integer(7) == Atom(7)
        assert is_integer_atom(integer(7))
        assert not is_integer_atom(Atom("x"))

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Atom("a").name = "b"


class TestStruct:
    def test_requires_args(self):
        with pytest.raises(ValueError):
            Struct("f", ())

    def test_rejects_non_terms(self):
        with pytest.raises(TypeError):
            Struct("f", ("not a term",))

    def test_equality(self):
        assert Struct("f", (Atom("a"),)) == Struct("f", (Atom("a"),))
        assert Struct("f", (Atom("a"),)) != Struct("g", (Atom("a"),))

    def test_arity(self):
        assert Struct("f", (Atom("a"), Var("X"))).arity == 2

    def test_ground(self):
        assert Struct("f", (Atom("a"),)).is_ground()
        assert not Struct("f", (Var("X"),)).is_ground()

    def test_variables_with_repetition(self):
        term = Struct("f", (Var("X"), Struct("g", (Var("X"), Var("Y")))))
        assert [v.name for v in term.variables()] == ["X", "X", "Y"]

    def test_subterms_preorder(self):
        term = Struct("f", (Atom("a"), Struct("g", (Atom("b"),))))
        subterms = list(term.subterms())
        assert subterms[0] == term
        assert Atom("b") in subterms
        assert len(subterms) == 4

    def test_immutable(self):
        term = Struct("f", (Atom("a"),))
        with pytest.raises(AttributeError):
            term.functor = "g"


class TestStructuralSize:
    def test_paper_example_list(self):
        # a . b . c . [] has structural term size 6 (Section 2.2).
        term = make_list([Atom("a"), Atom("b"), Atom("c")])
        assert term.structural_size() == 6

    def test_nested(self):
        # f(a, g(b)) has arities 2 + 1 = 3.
        term = Struct("f", (Atom("a"), Struct("g", (Atom("b"),))))
        assert term.structural_size() == 3

    def test_empty_list(self):
        assert NIL.structural_size() == 0

    def test_equals_sum_of_arities(self):
        term = make_list([Struct("f", (Atom("a"), Atom("b")))])
        total = sum(arity for _, arity in term.functors())
        assert term.structural_size() == total


class TestListHelpers:
    def test_make_and_unmake(self):
        elements = [Atom("a"), Atom("b")]
        term = make_list(elements)
        back, tail = list_elements(term)
        assert back == elements
        assert tail == NIL

    def test_partial_list(self):
        term = make_list([Atom("a")], tail=Var("T"))
        elements, tail = list_elements(term)
        assert elements == [Atom("a")]
        assert tail == Var("T")

    def test_non_list(self):
        elements, tail = list_elements(Atom("x"))
        assert elements == []
        assert tail == Atom("x")

    def test_cons_str_renders_prolog_list(self):
        assert str(make_list([Atom("a"), Atom("b")])) == "[a, b]"
        assert str(cons(Atom("a"), Var("T"))) == "[a|T]"


class TestVariableCollection:
    def test_term_variables_dedupes_in_order(self):
        term = Struct("f", (Var("X"), Var("Y"), Var("X")))
        assert [v.name for v in term_variables(term)] == ["X", "Y"]

    def test_terms_variables_across_terms(self):
        names = [
            v.name
            for v in terms_variables(
                [Struct("f", (Var("B"),)), Struct("g", (Var("A"), Var("B")))]
            )
        ]
        assert names == ["B", "A"]


class TestWalk:
    def test_identity(self):
        term = Struct("f", (Atom("a"), Var("X")))
        assert walk(term, lambda t: t) == term

    def test_replace_atoms(self):
        term = Struct("f", (Atom("a"),))
        swapped = walk(
            term, lambda t: Atom("b") if t == Atom("a") else t
        )
        assert swapped == Struct("f", (Atom("b"),))
