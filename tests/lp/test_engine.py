"""Unit tests for the SLD resolution engine."""

import pytest

from repro.errors import UnificationError
from repro.lp.engine import SLDEngine
from repro.lp.parser import parse_program, parse_term
from repro.lp.terms import Atom, Var


def engine(text):
    return SLDEngine(parse_program(text))


class TestBasicResolution:
    def test_fact_query(self):
        result = engine("p(a).").solve("p(a)")
        assert result.succeeded
        assert result.completed

    def test_fact_query_failure(self):
        result = engine("p(a).").solve("p(b)")
        assert not result.succeeded
        assert result.completed

    def test_variable_answers(self):
        result = engine("p(a). p(b).").solve("p(X)")
        values = [s[Var("X")] for s in result.solutions]
        assert values == [Atom("a"), Atom("b")]

    def test_clause_order_respected(self):
        result = engine("p(b). p(a).").solve("p(X)")
        values = [s[Var("X")] for s in result.solutions]
        assert values == [Atom("b"), Atom("a")]

    def test_conjunction(self):
        result = engine("p(a). q(a). q(b).").solve("p(X), q(X)")
        assert len(result.solutions) == 1

    def test_rule_chaining(self):
        result = engine(
            "gp(X, Z) :- par(X, Y), par(Y, Z). par(a, b). par(b, c)."
        ).solve("gp(a, Z)")
        assert result.solutions[0][Var("Z")] == Atom("c")

    def test_max_solutions(self):
        result = engine("p(a). p(b). p(c).").solve("p(X)", max_solutions=2)
        assert len(result.solutions) == 2


class TestListPrograms:
    APPEND = """
        append([], Ys, Ys).
        append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
    """

    def test_append_forward(self):
        result = engine(self.APPEND).solve("append([a, b], [c], Z)")
        assert str(result.solutions[0][Var("Z")]) == "[a, b, c]"

    def test_append_backward_enumerates_splits(self):
        result = engine(self.APPEND).solve("append(X, Y, [a, b])")
        assert len(result.solutions) == 3
        assert result.completed

    def test_perm_generates_all(self):
        program = self.APPEND + """
            perm([], []).
            perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1),
                              perm(P1, L).
        """
        result = engine(program).solve("perm([a, b, c], Q)")
        assert len(result.solutions) == 6
        assert result.completed


class TestBudgets:
    def test_infinite_loop_exhausts_depth(self):
        result = engine("p(X) :- p(X).").solve("p(a)", max_depth=50)
        assert not result.completed

    def test_growing_loop_exhausts(self):
        result = engine("q([X|L]) :- q([X, X|L]).").solve(
            "q([a])", max_steps=1000
        )
        assert not result.completed

    def test_terminates_helper(self):
        assert engine("p(a).").terminates("p(a)")
        assert not engine("p :- p.").terminates("p", max_steps=100)

    def test_steps_counted(self):
        result = engine("p(a).").solve("p(a)")
        assert result.steps >= 1


class TestBuiltins:
    def test_comparison(self):
        assert engine("ok :- 1 =< 2.").solve("ok").succeeded
        assert not engine("ok :- 2 =< 1.").solve("ok").succeeded

    def test_all_comparison_operators(self):
        e = engine("dummy.")
        assert e.solve("1 < 2").succeeded
        assert e.solve("2 > 1").succeeded
        assert e.solve("2 >= 2").succeeded
        assert not e.solve("1 > 2").succeeded

    def test_unify_builtin(self):
        result = engine("dummy.").solve("X = f(a)")
        assert result.solutions[0][Var("X")] == parse_term("f(a)")

    def test_not_unify(self):
        e = engine("dummy.")
        assert e.solve("a \\= b").succeeded
        assert not e.solve("a \\= a").succeeded

    def test_structural_equality(self):
        e = engine("dummy.")
        assert e.solve("f(a) == f(a)").succeeded
        assert not e.solve("X == Y").succeeded
        assert e.solve("X \\== Y").succeeded

    def test_is_evaluates(self):
        result = engine("dummy.").solve("X is 2 + 3 * 4")
        assert result.solutions[0][Var("X")] == Atom(14)

    def test_is_with_unbound_raises(self):
        with pytest.raises(UnificationError):
            engine("dummy.").solve("X is Y + 1")

    def test_true_fail(self):
        e = engine("dummy.")
        assert e.solve("true").succeeded
        assert not e.solve("fail").succeeded

    def test_merge_program_runs(self):
        program = """
            merge([], Ys, Ys).
            merge(Xs, [], Xs).
            merge([X|Xs], [Y|Ys], [X|Zs]) :- X =< Y, merge([Y|Ys], Xs, Zs).
            merge([X|Xs], [Y|Ys], [Y|Zs]) :- Y =< X, merge(Ys, [X|Xs], Zs).
        """
        result = engine(program).solve("merge([1, 3], [2, 4], Z)")
        assert str(result.solutions[0][Var("Z")]) == "[1, 2, 3, 4]"


class TestNegation:
    def test_negation_as_failure(self):
        program = "p(a). only(X) :- \\+ p(X)."
        e = engine(program)
        assert not e.solve("only(a)").succeeded
        assert e.solve("only(b)").succeeded

    def test_negation_binds_nothing(self):
        program = "p(a). q(b). r(X) :- q(X), \\+ p(X)."
        result = engine(program).solve("r(X)")
        assert result.solutions[0][Var("X")] == Atom("b")


class TestCut:
    def test_cut_commits_to_first_clause(self):
        program = "p(a) :- !. p(b)."
        result = engine(program).solve("p(X)")
        assert [s[Var("X")] for s in result.solutions] == [Atom("a")]

    def test_cut_local_to_predicate(self):
        program = """
            p(X) :- q(X), !.
            q(a). q(b).
            r(X) :- p(X).
            r(c).
        """
        result = engine(program).solve("r(X)")
        values = [s[Var("X")] for s in result.solutions]
        assert values == [Atom("a"), Atom("c")]

    def test_cut_prunes_left_choicepoints(self):
        program = """
            p(X, Y) :- q(X), r(Y), !.
            q(a). q(b).
            r(c). r(d).
        """
        result = engine(program).solve("p(X, Y)")
        assert len(result.solutions) == 1

    def test_if_then_else_idiom(self):
        program = """
            max(X, Y, X) :- X >= Y, !.
            max(_, Y, Y).
        """
        e = engine(program)
        assert e.solve("max(3, 2, M)").solutions[0][Var("M")] == Atom(3)
        assert e.solve("max(1, 2, M)").solutions[0][Var("M")] == Atom(2)


class TestValidation:
    def test_rejects_bad_program(self):
        with pytest.raises(TypeError):
            SLDEngine("p(a).")

    def test_rejects_bad_query_element(self):
        with pytest.raises(UnificationError):
            engine("p(a).").solve([42])
