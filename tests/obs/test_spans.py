"""Spans and tracers: nesting, exception safety, ambient attachment."""

import pickle

import pytest

from repro.obs import Span, Tracer, activate, active_tracer, span


class TestSpanBasics:
    def test_counters_accumulate(self):
        node = Span("work")
        node.inc("rows")
        node.inc("rows", 4)
        assert node.counters == {"rows": 5}

    def test_attrs_cleaned_to_json_atomic(self):
        node = Span("work", {"n": 3, "ok": True, "what": ("a", 1)})
        assert node.attrs["n"] == 3
        assert node.attrs["ok"] is True
        assert node.attrs["what"] == "('a', 1)"
        node.set(obj=object())
        assert isinstance(node.attrs["obj"], str)

    def test_walk_is_preorder(self):
        root = Span("r")
        a, b, c = Span("a"), Span("b"), Span("c")
        root.children = [a, b]
        a.children = [c]
        assert [s.name for s in root.walk()] == ["r", "a", "c", "b"]
        assert [s.name for s in root.find("c")] == ["c"]

    def test_self_time_excludes_children(self):
        root = Span("r")
        root.wall_s = 1.0
        child = Span("c")
        child.wall_s = 0.25
        root.children = [child]
        assert root.self_s == pytest.approx(0.75)

    def test_dict_round_trip(self):
        root = Span("r", {"k": "v"})
        root.started = 10.0
        root.wall_s = 1.0
        child = Span("c")
        child.started = 10.5
        child.wall_s = 0.25
        child.inc("rows", 3)
        root.children = [child]
        twin = Span.from_dict(root.to_dict())
        assert twin.name == "r"
        assert twin.attrs == {"k": "v"}
        assert twin.children[0].counters == {"rows": 3}
        assert twin.children[0].started == pytest.approx(0.5)
        assert twin.children[0].wall_s == pytest.approx(0.25)


class TestTracerNesting:
    def test_parent_child_links(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        assert [r.name for r in tracer.roots] == ["outer"]
        assert [c.name for c in tracer.roots[0].children] == [
            "inner", "sibling",
        ]

    def test_wall_time_recorded(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer, inner = tracer.roots[0], tracer.roots[0].children[0]
        assert outer.wall_s >= inner.wall_s >= 0.0

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert tracer._stack == []
        assert active_tracer() is None
        inner = tracer.roots[0].children[0]
        assert inner.wall_s > 0.0

    def test_pickle_drops_open_stack(self):
        tracer = Tracer()
        with tracer.span("done"):
            pass
        with tracer.span("open"):
            clone = pickle.loads(pickle.dumps(tracer))
        assert [r.name for r in clone.roots] == ["done", "open"]
        assert clone._stack == []

    def test_adopt_grafts_roots(self):
        ours, theirs = Tracer(), Tracer()
        with theirs.span("imported"):
            pass
        ours.adopt(theirs.roots)
        assert [s.name for s in ours.iter_spans()] == ["imported"]


class TestAmbientSpan:
    def test_detached_without_tracer(self):
        assert active_tracer() is None
        with span("orphan") as node:
            node.inc("rows", 2)
        assert node.counters == {"rows": 2}

    def test_attaches_under_open_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with span("library.work", kind="test") as node:
                node.inc("rows")
        child = tracer.roots[0].children[0]
        assert child is node
        assert child.attrs == {"kind": "test"}

    def test_activate_without_open_span(self):
        tracer = Tracer()
        with activate(tracer):
            with span("rootless"):
                pass
        assert active_tracer() is None
        assert [r.name for r in tracer.roots] == ["rootless"]

    def test_nested_tracers_restore_previous(self):
        outer_tracer, inner_tracer = Tracer(), Tracer()
        with outer_tracer.span("outer"):
            with inner_tracer.span("detour"):
                assert active_tracer() is inner_tracer
            assert active_tracer() is outer_tracer
            with span("back") as node:
                pass
        assert node in outer_tracer.roots[0].children
