"""The metrics registry: instruments, snapshots, merge algebra."""

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    merge_snapshots,
    render_metrics,
)


class TestInstruments:
    def test_counter_monotone(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        assert registry.snapshot()["counters"]["c"] == 5
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(3)
        registry.gauge("g").set(1)
        assert registry.snapshot()["gauges"]["g"] == 1

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.histogram("h") is registry.histogram("h")


class TestHistogramBucketing:
    def test_boundary_placement(self):
        """observe(v) lands in the first bucket with bound >= v."""
        h = Histogram("h", buckets=(1, 10, 100))
        for value in (0, 1):        # <= 1
            h.observe(value)
        for value in (2, 10):       # <= 10
            h.observe(value)
        h.observe(55)               # <= 100
        h.observe(101)              # overflow
        assert h.counts == [2, 2, 1, 1]
        assert h.count == 6
        assert h.sum == 169
        assert h.mean == pytest.approx(169 / 6)

    def test_overflow_slot_exists(self):
        h = Histogram("h")
        assert len(h.counts) == len(DEFAULT_BUCKETS) + 1

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(5, 1))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1, 1, 2))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_re_registration_must_agree(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1, 2))
        registry.histogram("h", buckets=(1, 2))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1, 2, 3))


def _sample(counter=0, observations=()):
    registry = MetricsRegistry()
    if counter:
        registry.counter("c").inc(counter)
    for value in observations:
        registry.histogram("h", buckets=(1, 10)).observe(value)
    return registry.snapshot()


class TestSnapshotAlgebra:
    def test_merge_is_associative_and_commutative(self):
        a = _sample(counter=1, observations=(0, 5))
        b = _sample(counter=2, observations=(100,))
        c = _sample(counter=4)
        left = merge_snapshots(merge_snapshots(a, b), c)
        right = merge_snapshots(a, merge_snapshots(b, c))
        shuffled = merge_snapshots(c, a, b)
        assert left == right == shuffled
        assert left["counters"]["c"] == 7
        assert left["histograms"]["h"]["counts"] == [1, 1, 1]

    def test_diff_recovers_the_delta(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.histogram("h", buckets=(1, 10)).observe(5)
        before = registry.snapshot()
        registry.counter("c").inc(2)
        registry.histogram("h").observe(0)
        delta = diff_snapshots(registry.snapshot(), before)
        assert delta["counters"] == {"c": 2}
        assert delta["histograms"]["h"]["counts"] == [1, 0, 0]
        assert merge_snapshots(before, delta) == registry.snapshot()

    def test_diff_drops_untouched_instruments(self):
        before = _sample(counter=3, observations=(5,))
        delta = diff_snapshots(before, before)
        assert delta["counters"] == {}
        assert delta["histograms"] == {}


class TestEnabledFlag:
    def test_set_enabled_returns_previous(self):
        registry = MetricsRegistry()
        assert registry.set_enabled(False) is True
        assert registry.enabled is False
        assert registry.set_enabled(True) is False

    def test_reset_drops_instruments(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot()["counters"] == {}


class TestRenderMetrics:
    def test_mentions_every_instrument(self):
        registry = MetricsRegistry()
        registry.counter("dualize.cache.hit").inc(7)
        registry.gauge("depth").set(3)
        registry.histogram("h", buckets=(1, 10)).observe(4)
        text = render_metrics(registry.snapshot())
        assert "dualize.cache.hit" in text
        assert "depth" in text
        assert "count=1" in text

    def test_empty_snapshot(self):
        assert "no metrics" in render_metrics(MetricsRegistry().snapshot())
