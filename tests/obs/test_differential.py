"""Observability must not change analysis results.

The acceptance gate: the full 42-program corpus produces byte-identical
verdicts — and identical structural stage totals — whether the metrics
registry is recording or switched off.  Wall times legitimately differ;
everything the paper's method computes must not.
"""

from repro.batch import analyze_many
from repro.core.pipeline import clear_caches
from repro.corpus import all_programs
from repro.obs import METRICS

STRUCTURAL = ("calls", "rows_in", "rows_out", "cache_hits",
              "cache_misses", "pivots", "eliminations")


def _sweep():
    clear_caches()
    report = analyze_many(all_programs(), jobs=1)
    verdicts = [(r.name, r.mode, r.status, tuple(r.reasons))
                for r in report.results]
    stages = {
        stage.stage: tuple(getattr(stage, field) for field in STRUCTURAL)
        for stage in report.trace.stages()
    }
    return verdicts, stages


def test_corpus_identical_with_observability_off():
    entries = all_programs()
    assert len(entries) == 42

    previous = METRICS.set_enabled(True)
    try:
        on_verdicts, on_stages = _sweep()
        METRICS.set_enabled(False)
        off_verdicts, off_stages = _sweep()
    finally:
        METRICS.set_enabled(previous)
        clear_caches()

    assert on_verdicts == off_verdicts
    assert on_stages == off_stages


def test_disabled_registry_records_nothing():
    """The kill switch really kills: an analysis with METRICS off
    leaves the registry's counters untouched."""
    from repro.core import analyze_program
    from repro.lp import parse_program

    program = parse_program(
        "append([], Y, Y).\n"
        "append([X|Xs], Y, [X|Zs]) :- append(Xs, Y, Zs).\n"
    )
    clear_caches()
    previous = METRICS.set_enabled(False)
    before = METRICS.snapshot()
    try:
        result = analyze_program(program, ("append", 3), "bbf")
    finally:
        METRICS.set_enabled(previous)
        clear_caches()
    assert result.proved
    assert METRICS.snapshot() == before
