"""Tests for the stdlib sampling profiler."""

import re
import threading
import time

import pytest

from repro.obs.profiler import SamplingProfiler


def spin_here(stop, marker="spin_here"):
    """A busy loop whose function name must show up in samples."""
    while not stop.is_set():
        sum(range(100))


def run_profiled(interval=0.001, duration=0.15):
    stop = threading.Event()
    worker = threading.Thread(target=spin_here, args=(stop,))
    worker.start()
    profiler = SamplingProfiler(interval=interval)
    try:
        with profiler:
            time.sleep(duration)
    finally:
        stop.set()
        worker.join(5)
    return profiler


class TestSamplingProfiler:
    def test_captures_the_busy_function(self):
        profiler = run_profiled()
        assert profiler.samples > 0
        assert any("spin_here" in stack for stack in profiler.counts)

    def test_stacks_are_root_first(self):
        profiler = run_profiled()
        spin_stacks = [s for s in profiler.counts if "spin_here" in s]
        assert spin_stacks
        # Root-first means callers precede callees: every sampled
        # stack opens with the thread bootstrap chain, and the busy
        # function sits below threading:run.  (A sample may catch the
        # loop inside stop.is_set(), so spin_here is not always the
        # leaf.)
        for stack in spin_stacks:
            frames = stack.split(";")
            assert "threading" in frames[0]
            run_at = frames.index("threading:run")
            spin_at = next(
                i for i, f in enumerate(frames) if "spin_here" in f
            )
            assert run_at < spin_at

    def test_collapsed_format_and_determinism(self):
        profiler = run_profiled()
        text = profiler.collapsed()
        assert text == profiler.collapsed()  # stable
        for line in text.splitlines():
            assert re.match(r"^\S.*? \d+$", line), line
        counts = [int(line.rsplit(" ", 1)[1])
                  for line in text.splitlines()]
        assert counts == sorted(counts, reverse=True)

    def test_write_emits_file_and_returns_stack_count(self, tmp_path):
        profiler = run_profiled()
        path = tmp_path / "profile.collapsed"
        stacks = profiler.write(str(path))
        assert stacks == len(profiler.counts)
        assert len(path.read_text().splitlines()) == stacks

    def test_own_sampler_thread_is_never_sampled(self):
        profiler = run_profiled()
        assert not any(
            "_sample_loop" in stack for stack in profiler.counts
        )

    def test_active_flag_and_idempotent_start_stop(self):
        profiler = SamplingProfiler(interval=0.001)
        assert not profiler.active
        profiler.start()
        profiler.start()  # no-op while running
        assert profiler.active
        profiler.stop()
        profiler.stop()  # no-op when stopped
        assert not profiler.active

    def test_only_thread_filter(self):
        stop = threading.Event()
        worker = threading.Thread(target=spin_here, args=(stop,))
        worker.start()
        profiler = SamplingProfiler(
            interval=0.001, only_thread=worker.ident
        )
        try:
            with profiler:
                time.sleep(0.1)
        finally:
            stop.set()
            worker.join(5)
        assert profiler.samples > 0
        # Every sampled stack belongs to the busy worker.
        assert all("spin_here" in stack for stack in profiler.counts)

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0)
