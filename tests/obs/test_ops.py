"""Unit tests for the operational-observability layer: Prometheus
exposition, rolling SLO windows, the bounded access-log writer, and
the quantile/label helpers they share."""

import io
import json
import re
import threading

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    histogram_quantile,
    labeled,
    split_labels,
)
from repro.obs.ops import (
    ACCESS_SCHEMA,
    CONTENT_TYPE,
    AccessLogWriter,
    RollingWindow,
    SloTracker,
    render_prometheus,
    validate_access_record,
)
from repro.obs.render import render_metrics


class TestLabelHelpers:
    def test_labeled_sorts_keys_deterministically(self):
        assert (labeled("m", b=1, a=2)
                == labeled("m", a=2, b=1)
                == 'm{a="2",b="1"}')

    def test_labeled_escapes_quotes_and_backslashes(self):
        name = labeled("m", path='say "hi"\\')
        assert name == 'm{path="say \\"hi\\"\\\\"}'

    def test_no_labels_is_identity(self):
        assert labeled("plain.name") == "plain.name"

    def test_split_round_trips(self):
        name = labeled("serve.responses", status=200)
        base, suffix = split_labels(name)
        assert base == "serve.responses"
        assert suffix == 'status="200"'
        assert split_labels("plain.name") == ("plain.name", "")


class TestHistogramQuantile:
    def test_empty_histogram_is_none(self):
        assert histogram_quantile((1, 2, 5), [0, 0, 0, 0], 0.5) is None

    def test_single_bucket_interpolates_from_zero(self):
        # 10 observations all in (0, 10]: p50 -> midpoint-ish of bucket
        assert histogram_quantile((10,), [10, 0], 0.5) == 5.0

    def test_interpolates_within_owning_bucket(self):
        # 5 in (0,10], 5 in (10,20]; p75 is midway through the second
        value = histogram_quantile((10, 20), [5, 5, 0], 0.75)
        assert value == pytest.approx(15.0)

    def test_overflow_bucket_reports_largest_finite_bound(self):
        assert histogram_quantile((1, 2), [0, 0, 9], 0.99) == 2.0

    def test_out_of_range_quantile_raises(self):
        with pytest.raises(ValueError):
            histogram_quantile((1,), [1, 0], 1.5)

    def test_monotone_in_quantile(self):
        buckets = (1, 2, 5, 10)
        counts = [3, 7, 4, 2, 1]
        values = [
            histogram_quantile(buckets, counts, q / 100)
            for q in range(0, 101, 5)
        ]
        assert values == sorted(values)


class TestRenderMetricsPercentiles:
    def test_histogram_block_reports_interpolated_percentiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_ms", (10, 20))
        for value in (1, 2, 3, 12, 13):
            histogram.observe(value)
        text = render_metrics(registry.snapshot())
        line = next(l for l in text.splitlines() if "p50~" in l)
        assert "p95~" in line and "p99~" in line
        assert "interpolated" in line

    def test_empty_histogram_has_no_percentile_line(self):
        registry = MetricsRegistry()
        registry.histogram("lat_ms", (10, 20))
        assert "p50~" not in render_metrics(registry.snapshot())


_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")


class TestPrometheusExposition:
    def make_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests").inc(7)
        registry.counter(labeled("serve.responses", status=200)).inc(5)
        registry.counter(labeled("serve.responses", status=404)).inc(2)
        registry.gauge("serve.inflight").set(3)
        registry.gauge("weird gauge").set("a-string")  # skipped
        histogram = registry.histogram("serve.request_ms", (1, 5, 10))
        for value in (0.5, 4, 6, 20):
            histogram.observe(value)
        return registry.snapshot()

    def test_counter_total_convention_and_value(self):
        text = render_prometheus(self.make_snapshot())
        assert "# TYPE serve_requests_total counter" in text
        assert "serve_requests_total 7" in text

    def test_labeled_series_grouped_under_one_type_line(self):
        text = render_prometheus(self.make_snapshot())
        assert text.count("# TYPE serve_responses_total counter") == 1
        assert 'serve_responses_total{status="200"} 5' in text
        assert 'serve_responses_total{status="404"} 2' in text

    def test_histogram_family_is_cumulative_with_inf(self):
        text = render_prometheus(self.make_snapshot())
        buckets = [
            line for line in text.splitlines()
            if line.startswith("serve_request_ms_bucket")
        ]
        values = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert values == sorted(values)  # cumulative
        assert buckets[-1].startswith(
            'serve_request_ms_bucket{le="+Inf"}'
        )
        assert values[-1] == 4
        assert "serve_request_ms_count 4" in text
        assert "serve_request_ms_sum" in text

    def test_non_numeric_gauges_are_skipped(self):
        text = render_prometheus(self.make_snapshot())
        assert "weird_gauge" not in text
        assert "serve_inflight 3" in text

    def test_every_family_name_is_spec_legal(self):
        text = render_prometheus(self.make_snapshot())
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name = line.split("{")[0].split(" ")[0]
            assert _NAME.match(name), name

    def test_type_line_precedes_samples(self):
        text = render_prometheus(self.make_snapshot())
        typed = set()
        for line in text.splitlines():
            if line.startswith("# TYPE"):
                typed.add(line.split()[2])
            elif line and not line.startswith("#"):
                family = line.split("{")[0].split(" ")[0]
                base = re.sub(r"_(bucket|sum|count)$", "", family)
                assert family in typed or base in typed, line

    def test_empty_snapshot_renders_to_newline(self):
        assert render_prometheus(
            {"counters": {}, "gauges": {}, "histograms": {}}
        ) == "\n"

    def test_content_type_names_the_text_format(self):
        assert CONTENT_TYPE.startswith("text/plain")
        assert "version=0.0.4" in CONTENT_TYPE


class TestRollingWindow:
    def test_empty_window_summary(self):
        window = RollingWindow(60)
        summary = window.summary(now=100.0)
        assert summary["count"] == 0
        assert summary["error_rate"] == 0.0
        assert summary["p95_ms"] is None

    def test_quantiles_over_live_samples(self):
        window = RollingWindow(60)
        for i in range(1, 101):
            window.observe(float(i), now=100.0)
        summary = window.summary(now=100.0)
        assert summary["count"] == 100
        assert summary["p50_ms"] == pytest.approx(50.5)
        assert summary["p99_ms"] == pytest.approx(99.01)

    def test_old_samples_are_evicted(self):
        window = RollingWindow(60)
        window.observe(1000.0, error=True, now=0.0)
        window.observe(10.0, now=100.0)
        summary = window.summary(now=100.0)
        assert summary["count"] == 1
        assert summary["error_count"] == 0
        assert summary["p50_ms"] == 10.0

    def test_error_rate(self):
        window = RollingWindow(60)
        for i in range(4):
            window.observe(1.0, error=(i == 0), now=50.0)
        assert window.summary(now=50.0)["error_rate"] == 0.25

    def test_max_samples_bounds_memory(self):
        window = RollingWindow(60, max_samples=8)
        for i in range(100):
            window.observe(float(i), now=10.0)
        assert len(window) == 8

    def test_nonpositive_window_rejected(self):
        with pytest.raises(ValueError):
            RollingWindow(0)


class TestSloTracker:
    def test_observe_feeds_every_window(self):
        tracker = SloTracker()
        tracker.observe(12.0, now=10.0)
        summary = tracker.summary(now=10.0)
        assert set(summary) == {"1m", "5m"}
        assert all(entry["count"] == 1 for entry in summary.values())

    def test_publish_exports_labeled_gauges(self):
        registry = MetricsRegistry()
        tracker = SloTracker()
        tracker.observe(40.0, now=10.0)
        tracker.observe(80.0, error=True, now=10.0)
        tracker.publish(registry, now=10.0)
        gauges = registry.snapshot()["gauges"]
        assert gauges['serve.slo.p50_ms{window="1m"}'] == 60.0
        assert gauges['serve.slo.error_rate{window="5m"}'] == 0.5

    def test_empty_windows_publish_counts_not_quantiles(self):
        registry = MetricsRegistry()
        SloTracker().publish(registry, now=10.0)
        gauges = registry.snapshot()["gauges"]
        assert gauges['serve.slo.count{window="1m"}'] == 0
        assert 'serve.slo.p50_ms{window="1m"}' not in gauges


def good_record(**overrides):
    record = {
        "schema": ACCESS_SCHEMA,
        "ts": 1700000000.0,
        "request_id": "abc123",
        "method": "POST",
        "path": "/v1/analyze",
        "status": 200,
        "bytes": 512,
        "total_ms": 12.5,
    }
    record.update(overrides)
    return record


class TestValidateAccessRecord:
    def test_minimal_record_is_valid(self):
        assert validate_access_record(good_record()) == []

    def test_full_analysis_record_is_valid(self):
        record = good_record(
            key="deadbeef", verdict="PROVED", cache="cert-reuse",
            sccs_reused=2, sccs_reproved=1, sccs_rejected=0,
            queue_ms=0.2, solve_ms=10.0, serialize_ms=0.8,
            root="append/3", mode="bbf",
        )
        assert validate_access_record(record) == []

    def test_missing_required_field_reported(self):
        record = good_record()
        del record["request_id"]
        problems = validate_access_record(record)
        assert any("request_id" in p for p in problems)

    def test_bad_status_and_cache_tier_reported(self):
        problems = validate_access_record(
            good_record(status=42, cache="warm")
        )
        assert any("status" in p for p in problems)
        assert any("cache" in p for p in problems)

    def test_bool_is_not_an_int_status(self):
        assert validate_access_record(good_record(status=True))

    def test_non_dict_rejected(self):
        assert validate_access_record(["not", "a", "dict"])


class TestAccessLogWriter:
    def test_writes_one_json_line_per_record(self):
        buffer = io.StringIO()
        with AccessLogWriter(buffer) as writer:
            writer.log(good_record())
            writer.log(good_record(status=404))
        lines = buffer.getvalue().splitlines()
        assert len(lines) == 2
        decoded = [json.loads(line) for line in lines]
        assert [validate_access_record(r) for r in decoded] == [[], []]
        assert decoded[1]["status"] == 404

    def test_writes_to_a_path_in_append_mode(self, tmp_path):
        path = tmp_path / "access.jsonl"
        with AccessLogWriter(str(path)) as writer:
            writer.log(good_record())
        with AccessLogWriter(str(path)) as writer:
            writer.log(good_record())
        assert len(path.read_text().splitlines()) == 2

    def test_full_queue_drops_and_counts(self):
        # A writer whose drain thread is wedged behind a lock: the
        # bounded queue must fill and then drop without blocking.
        gate = threading.Event()

        class Wedged(io.StringIO):
            def write(self, text):
                gate.wait(10)
                return super().write(text)

        writer = AccessLogWriter(Wedged(), max_pending=2)
        try:
            for _ in range(10):
                writer.log(good_record())
            assert writer.dropped >= 7  # 2 queued + <=1 in-flight
        finally:
            gate.set()
            writer.close()
        assert writer.written + writer.dropped == 10

    def test_log_after_close_is_refused(self):
        writer = AccessLogWriter(io.StringIO())
        writer.close()
        assert writer.log(good_record()) is False

    def test_close_is_idempotent(self):
        writer = AccessLogWriter(io.StringIO())
        writer.close()
        writer.close()
