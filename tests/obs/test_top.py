"""Tests for the repro-top dashboard rendering (pure function over
canned /v1/status + /v1/metrics payloads)."""

from repro.obs.top import build_top_parser, render_dashboard


def make_status(**overrides):
    status = {
        "status": "ok",
        "inflight": 1,
        "max_inflight": 8,
        "pool": {"jobs": 2, "lane": "process", "degraded": False},
        "slo": {
            "1m": {"count": 10, "error_count": 1, "error_rate": 0.1,
                   "throughput_rps": 0.17, "p50_ms": 12.0,
                   "p95_ms": 80.0, "p99_ms": 150.0},
            "5m": {"count": 40, "error_count": 1, "error_rate": 0.025,
                   "throughput_rps": 0.13, "p50_ms": 11.0,
                   "p95_ms": 70.0, "p99_ms": 300.0},
        },
        "accesslog": {"enabled": True, "dropped": 3},
        "profiler": {"active": False, "samples": 0},
        "store": {"entries": 5, "certificates": 9, "traces": 5},
    }
    status.update(overrides)
    return status


def make_snapshot(requests=100):
    return {
        "counters": {
            "serve.requests": requests,
            "serve.rejected": 2,
            "serve.timeouts": 1,
            "serve.errors": 0,
            "serve.store.hits": 30,
            "serve.store.misses": 70,
            "serve.store.cert.hits": 4,
            "serve.store.cert.misses": 6,
        },
        "gauges": {},
        "histograms": {
            "serve.request_ms": {
                "buckets": [1, 10, 100],
                "counts": [50, 30, 15, 5],
                "sum": 1500.0,
                "count": 100,
            }
        },
    }


class TestRenderDashboard:
    def test_header_shows_state_lane_and_inflight(self):
        text = render_dashboard(
            "http://x:1", make_status(), make_snapshot()
        )
        header = text.splitlines()[0]
        assert "state ok" in header
        assert "lane process" in header
        assert "inflight 1/8" in header

    def test_degraded_pool_is_flagged(self):
        status = make_status(
            pool={"jobs": 4, "lane": "serial", "degraded": True}
        )
        assert "degraded" in render_dashboard(
            "u", status, make_snapshot()
        )

    def test_throughput_from_snapshot_delta(self):
        text = render_dashboard(
            "u", make_status(), make_snapshot(150),
            previous=make_snapshot(100), elapsed=10.0,
        )
        assert "5.0 req/s" in text
        assert "(50 requests)" in text

    def test_first_frame_has_no_throughput_line(self):
        text = render_dashboard("u", make_status(), make_snapshot())
        assert "throughput" not in text

    def test_slo_windows_render_percentiles(self):
        text = render_dashboard("u", make_status(), make_snapshot())
        assert "slo windows" in text
        assert "1m" in text and "5m" in text
        assert "p95 80.0ms" in text

    def test_lifetime_percentiles_from_histogram(self):
        text = render_dashboard("u", make_status(), make_snapshot())
        lifetime = next(
            line for line in text.splitlines()
            if line.startswith("lifetime")
        )
        assert "(n=100)" in lifetime

    def test_cache_hit_rates(self):
        text = render_dashboard("u", make_status(), make_snapshot())
        caches = next(
            line for line in text.splitlines()
            if line.startswith("caches")
        )
        assert "30.0% (30/100)" in caches
        assert "40.0% (4/10)" in caches

    def test_pressure_line_includes_log_drops(self):
        text = render_dashboard("u", make_status(), make_snapshot())
        pressure = next(
            line for line in text.splitlines()
            if line.startswith("pressure")
        )
        assert "rejected(429) 2" in pressure
        assert "log drops 3" in pressure

    def test_active_profiler_is_surfaced(self):
        status = make_status(
            profiler={"active": True, "samples": 123}
        )
        assert "ACTIVE (123 samples" in render_dashboard(
            "u", status, make_snapshot()
        )

    def test_handles_minimal_payloads(self):
        # A daemon with no traffic yet: no windows, empty snapshot.
        text = render_dashboard(
            "u",
            {"status": "ok", "pool": {}, "slo": {}},
            {"counters": {}, "gauges": {}, "histograms": {}},
        )
        assert "repro-top" in text


class TestTopParser:
    def test_defaults(self):
        args = build_top_parser().parse_args([])
        assert args.url == "http://127.0.0.1:8421"
        assert args.interval == 2.0
        assert args.iterations == 0
        assert not args.no_clear

    def test_overrides(self):
        args = build_top_parser().parse_args(
            ["--url", "http://h:9", "--interval", "0.5",
             "--iterations", "3", "--no-clear"]
        )
        assert args.interval == 0.5
        assert args.iterations == 3
        assert args.no_clear
