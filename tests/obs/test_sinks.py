"""Sinks, the JSONL round trip, the schema checker, and repro-trace."""

import json

import pytest

from benchmarks.check_trace_schema import (
    coverage,
    load_events,
    validate_events,
)
from repro.obs import (
    SCHEMA,
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    Span,
    Tracer,
    read_trace,
    render_tree,
    span_events,
    write_trace,
)


def _sample_tracer():
    tracer = Tracer()
    with tracer.span("analyze", root="p/1") as root:
        with tracer.span("stage.solve") as solve:
            solve.inc("pivots", 7)
        solve.wall_s = 0.9
    root.wall_s = 1.0
    return tracer


class TestSinks:
    def test_memory_sink_collects_and_closes(self):
        sink = MemorySink()
        with sink:
            sink.emit({"event": "meta"})
        assert sink.events == [{"event": "meta"}]
        assert sink.closed

    def test_jsonl_sink_writes_one_object_per_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"event": "meta", "schema": SCHEMA})
            sink.emit({"event": "metric", "kind": "counter",
                       "name": "c", "value": 1})
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["schema"] == SCHEMA


class TestSpanEvents:
    def test_preorder_ids_and_parents(self):
        events = span_events(_sample_tracer().roots)
        assert [e["name"] for e in events] == ["analyze", "stage.solve"]
        assert events[0]["parent"] is None
        assert events[1]["parent"] == events[0]["id"]
        assert events[0]["id"] < events[1]["id"]
        assert events[1]["counters"] == {"pivots": 7}


class TestRoundTrip:
    def test_write_then_read_preserves_everything(self, tmp_path):
        tracer = _sample_tracer()
        registry = MetricsRegistry()
        registry.counter("simplex.pivots").inc(7)
        registry.histogram("h", buckets=(1, 10)).observe(3)
        path = tmp_path / "trace.jsonl"
        count = write_trace(
            path, tracer.roots, registry.snapshot(), meta={"source": "x.pl"}
        )
        meta, roots, snapshot = read_trace(path)
        assert count == 1 + 2 + 2
        assert meta["schema"] == SCHEMA
        assert meta["source"] == "x.pl"
        assert [r.name for r in roots] == ["analyze"]
        assert roots[0].children[0].counters == {"pivots": 7}
        assert roots[0].children[0].wall_s == pytest.approx(0.9)
        assert snapshot["counters"] == {"simplex.pivots": 7}
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_read_rejects_missing_meta(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "span", "id": 0, "parent": null, '
                        '"name": "x", "start_s": 0, "wall_s": 0, '
                        '"attrs": {}, "counters": {}}\n')
        with pytest.raises(ValueError):
            read_trace(path)

    def test_read_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError):
            read_trace(path)

    def test_unknown_events_ignored(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps({"event": "meta", "schema": SCHEMA}) + "\n"
            + json.dumps({"event": "future-thing", "x": 1}) + "\n"
        )
        meta, roots, snapshot = read_trace(path)
        assert roots == []


class TestSchemaChecker:
    """The CI validator accepts our own output and rejects mutations."""

    def _events(self, tmp_path, mutate=None):
        tracer = _sample_tracer()
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        path = tmp_path / "trace.jsonl"
        write_trace(path, tracer.roots, registry.snapshot())
        events = load_events(path)
        if mutate:
            mutate(events)
        return events

    def test_own_output_is_valid(self, tmp_path):
        events = self._events(tmp_path)
        assert validate_events(events) == []
        assert coverage(events) == pytest.approx(0.9)

    def test_rejects_wrong_schema(self, tmp_path):
        events = self._events(
            tmp_path, lambda e: e[0].update(schema="other/9")
        )
        assert validate_events(events)

    def test_rejects_orphan_child(self, tmp_path):
        events = self._events(tmp_path, lambda e: e[2].update(parent=99))
        assert any("parent" in p for p in validate_events(events))

    def test_rejects_negative_wall(self, tmp_path):
        events = self._events(tmp_path, lambda e: e[1].update(wall_s=-1))
        assert any("wall_s" in p for p in validate_events(events))

    def test_rejects_bad_histogram(self, tmp_path):
        events = self._events(tmp_path)
        events.append({
            "event": "metric", "kind": "histogram", "name": "h",
            "buckets": [5, 1], "counts": [0, 0, 0], "sum": 0, "count": 0,
        })
        assert any("buckets" in p for p in validate_events(events))


class TestTraceCli:
    def test_renders_real_analysis_trace(self, tmp_path, capsys):
        from repro.cli import main, trace_main

        program = tmp_path / "p.pl"
        program.write_text(
            "append([], Y, Y).\n"
            "append([X|Xs], Y, [X|Zs]) :- append(Xs, Y, Zs).\n"
        )
        trace = tmp_path / "trace.jsonl"
        rc = main([str(program), "--root", "append/3", "--mode", "bbf",
                   "--trace-out", str(trace)])
        assert rc == 0
        assert validate_events(load_events(trace)) == []

        rc = trace_main([str(trace)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "analyze" in out
        assert "stage.solve" in out
        assert "100.0%" in out

    def test_depth_and_min_ms_summarize(self, tmp_path):
        meta, roots, _ = _round_tripped(tmp_path)
        shallow = render_tree(roots, max_depth=1)
        assert "below --depth" in shallow
        pruned = render_tree(roots, min_ms=1e6)
        assert "under" in pruned

    def test_unreadable_trace_is_exit_2(self, tmp_path, capsys):
        from repro.cli import trace_main

        bad = tmp_path / "bad.jsonl"
        bad.write_text("{}\n")
        assert trace_main([str(bad)]) == 2
        assert "trace error" in capsys.readouterr().err


def _round_tripped(tmp_path):
    tracer = _sample_tracer()
    path = tmp_path / "t.jsonl"
    write_trace(path, tracer.roots)
    return read_trace(path)
