"""Unit tests for the baseline termination methods."""

import pytest

from repro.lp import parse_program
from repro.lp.parser import parse_term
from repro.baselines import (
    NaishMethod,
    SingleArgumentMethod,
    UVGSpineMethod,
)
from repro.baselines.naish import is_subterm
from repro.baselines.uvg_spine import spine_decrease
from repro.baselines.single_arg import structural_decrease


APPEND = """
append([], Ys, Ys).
append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
"""


class TestIsSubterm:
    def test_equal_is_subterm(self):
        term = parse_term("f(a)")
        assert is_subterm(term, term)
        assert not is_subterm(term, term, proper=True)

    def test_proper_subterm(self):
        outer = parse_term("[X|Xs]")
        assert is_subterm(parse_term("Xs"), outer, proper=True)

    def test_deep_subterm(self):
        outer = parse_term("f(g(h(X)))")
        assert is_subterm(parse_term("h(X)"), outer, proper=True)

    def test_variables_must_match(self):
        assert not is_subterm(parse_term("Ys"), parse_term("[X|Xs]"))

    def test_not_subterm(self):
        assert not is_subterm(parse_term("b"), parse_term("f(a)"))


class TestDecreaseMeasures:
    def test_spine_decrease_on_lists(self):
        head = parse_term("[X|Xs]")
        sub = parse_term("Xs")
        assert spine_decrease(head, sub) == 1

    def test_spine_decrease_fails_on_left_descent(self):
        head = parse_term("node(L, R)")
        assert spine_decrease(head, parse_term("L")) is None
        assert spine_decrease(head, parse_term("R")) == 1

    def test_structural_decrease_on_left_descent(self):
        head = parse_term("node(L, R)")
        assert structural_decrease(head, parse_term("L")) == 2

    def test_decrease_none_when_growing(self):
        assert structural_decrease(
            parse_term("X"), parse_term("f(X)")
        ) is None

    def test_unrelated_variables_fail(self):
        assert structural_decrease(
            parse_term("f(X)"), parse_term("Y")
        ) is None


class TestNaish:
    def test_append_proved(self):
        result = NaishMethod().analyze(parse_program(APPEND), ("append", 3), "bbf")
        assert result.proved

    def test_classic_merge_proved(self):
        program = parse_program(
            """
            merge([], Ys, Ys).
            merge(Xs, [], Xs).
            merge([X|Xs], [Y|Ys], [X|Zs]) :- X =< Y, merge(Xs, [Y|Ys], Zs).
            merge([X|Xs], [Y|Ys], [Y|Zs]) :- Y < X, merge([X|Xs], Ys, Zs).
            """
        )
        assert NaishMethod().analyze(program, ("merge", 3), "bbf").proved

    def test_swapping_merge_unknown(self, merge_program):
        # Example 5.1's variant swaps argument contents: Naish fails.
        result = NaishMethod().analyze(merge_program, ("merge", 3), "bbf")
        assert not result.proved
        assert result.failing_sccs

    def test_perm_unknown(self, perm_program):
        assert not NaishMethod().analyze(perm_program, ("perm", 2), "bf").proved

    def test_accumulator_growth_tolerated(self):
        # rev_acc grows arg2 but the subset {1} never mentions it.
        program = parse_program(
            """
            rev_acc([], A, A).
            rev_acc([X|Xs], A, R) :- rev_acc(Xs, [X|A], R).
            """
        )
        assert NaishMethod().analyze(program, ("rev_acc", 3), "bbf").proved

    def test_mutual_with_aligned_subsets(self):
        program = parse_program(
            "even(0).\neven(s(N)) :- odd(N).\nodd(s(N)) :- even(N)."
        )
        assert NaishMethod().analyze(program, ("even", 1), "b").proved


class TestUVGSpine:
    def test_append_proved(self):
        result = UVGSpineMethod().analyze(
            parse_program(APPEND), ("append", 3), "bbf"
        )
        assert result.proved

    def test_flatten_unknown(self):
        # Left-subtree descent defeats the right-spine measure — the
        # paper's "less natural for binary trees".
        program = parse_program(
            """
            append([], Ys, Ys).
            append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
            flatten(leaf(X), [X]).
            flatten(node(L, R), F) :- flatten(L, FL), flatten(R, FR),
                                      append(FL, FR, F).
            """
        )
        assert not UVGSpineMethod().analyze(program, ("flatten", 2), "bf").proved

    def test_parser_unknown(self, parser_program):
        assert not UVGSpineMethod().analyze(parser_program, ("e", 2), "bf").proved


class TestSingleArgument:
    def test_append_proved(self):
        result = SingleArgumentMethod().analyze(
            parse_program(APPEND), ("append", 3), "bbf"
        )
        assert result.proved

    def test_merge_variant_unknown(self, merge_program):
        # The decrease needs a *combination* of arguments.
        result = SingleArgumentMethod().analyze(
            merge_program, ("merge", 3), "bbf"
        )
        assert not result.proved

    def test_perm_unknown(self, perm_program):
        # The decrease needs *inter-argument constraints*.
        result = SingleArgumentMethod().analyze(
            perm_program, ("perm", 2), "bf"
        )
        assert not result.proved

    def test_nonrecursive_trivial(self):
        result = SingleArgumentMethod().analyze(
            parse_program("p(X) :- q(X).\nq(a)."), ("p", 1), "b"
        )
        assert result.proved


class TestUniformInterface:
    @pytest.mark.parametrize(
        "method", [NaishMethod(), UVGSpineMethod(), SingleArgumentMethod()]
    )
    def test_loop_unknown_everywhere(self, method):
        result = method.analyze(
            parse_program("p(X) :- p(X)."), ("p", 1), "b"
        )
        assert result.status == "UNKNOWN"

    @pytest.mark.parametrize(
        "method", [NaishMethod(), UVGSpineMethod(), SingleArgumentMethod()]
    )
    def test_text_program_accepted(self, method):
        assert method.analyze(APPEND, ("append", 3), "bbf").proved

    def test_method_names_distinct(self):
        from repro.baselines import ALL_BASELINES

        names = [m.name for m in ALL_BASELINES]
        assert len(names) == len(set(names)) == 3
