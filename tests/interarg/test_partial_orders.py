"""Unit tests for Appendix B partial-order constraints."""

import pytest

from repro.errors import AnalysisError
from repro.linalg.constraints import Constraint
from repro.linalg.linexpr import LinearExpr
from repro.sizes.size_equations import arg_dimension
from repro.interarg import infer_interargument_constraints
from repro.interarg.partial_orders import (
    is_partial_order_shaped,
    partial_order_constraint,
    partial_order_environment,
    restrict_to_partial_orders,
)


def dim(i):
    return LinearExpr.of(arg_dimension(i))


class TestPartialOrderConstraint:
    def test_strict_less(self):
        constraint = partial_order_constraint(2, 1, "<", 2)
        assert constraint.satisfied_by(
            {arg_dimension(1): 1, arg_dimension(2): 2}
        )
        assert not constraint.satisfied_by(
            {arg_dimension(1): 2, arg_dimension(2): 2}
        )

    def test_equality(self):
        constraint = partial_order_constraint(2, 1, "=", 2)
        assert constraint.is_equality()

    def test_greater(self):
        constraint = partial_order_constraint(3, 1, ">", 3)
        assert constraint.satisfied_by(
            {arg_dimension(1): 5, arg_dimension(3): 4}
        )

    def test_bad_relation(self):
        with pytest.raises(AnalysisError):
            partial_order_constraint(2, 1, "!=", 2)

    def test_bad_positions(self):
        with pytest.raises(AnalysisError):
            partial_order_constraint(2, 0, "<", 2)


class TestEnvironment:
    def test_paper_appendix_b_edb_example(self):
        # e(Y, X, R) from Y = [X|R]: e1 > e2 and e1 > e3.
        env = partial_order_environment(
            {("e", 3): [(1, ">", 2), (1, ">", 3)]}
        )
        poly = env.get(("e", 3))
        assert poly.entails_constraint(Constraint.ge(dim(1), dim(2) + 1))
        assert poly.entails_constraint(Constraint.ge(dim(1), dim(3) + 1))
        assert not poly.entails_constraint(
            Constraint.eq(dim(1), dim(2) + dim(3))
        )


class TestShapeClassifier:
    def test_difference_bounds_kept(self):
        assert is_partial_order_shaped(Constraint.ge(dim(1), dim(2)))
        assert is_partial_order_shaped(Constraint.ge(dim(1), dim(2) + 7))

    def test_single_argument_bounds_kept(self):
        assert is_partial_order_shaped(Constraint.ge(dim(2), 3))

    def test_three_variable_rows_dropped(self):
        assert not is_partial_order_shaped(
            Constraint.eq(dim(1) + dim(2), dim(3))
        )

    def test_sums_dropped(self):
        assert not is_partial_order_shaped(Constraint.ge(dim(1) + dim(2), 1))

    def test_scaled_rows_dropped(self):
        assert not is_partial_order_shaped(Constraint.ge(dim(1) * 2, dim(2)))


class TestRestriction:
    def test_append_loses_its_equality(self, append_program):
        env = infer_interargument_constraints(append_program)
        restricted = restrict_to_partial_orders(env, [("append", 3)])
        poly = restricted.get(("append", 3))
        assert not poly.entails_constraint(
            Constraint.eq(dim(1) + dim(2), dim(3))
        )
        # But the order shadow arg3 >= arg1 survives.
        assert poly.entails_constraint(Constraint.ge(dim(3), dim(1)))

    def test_parser_keeps_its_difference(self, parser_program):
        env = infer_interargument_constraints(parser_program)
        restricted = restrict_to_partial_orders(env, [("t", 2)])
        assert restricted.get(("t", 2)).entails_constraint(
            Constraint.ge(dim(1), dim(2) + 2)
        )
