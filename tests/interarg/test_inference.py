"""Integration tests for inter-argument constraint inference.

Pins the exact constraints the paper *imports* from [VG90]:
``append1 + append2 = append3`` (Example 3.1) and ``t1 >= 2 + t2``
(Example 6.1), plus the relations other corpus programs rely on.
"""

import pytest

from repro.lp import parse_program
from repro.linalg.constraints import Constraint
from repro.linalg.linexpr import LinearExpr
from repro.sizes.size_equations import arg_dimension
from repro.interarg import (
    InferenceSettings,
    SizeEnvironment,
    infer_interargument_constraints,
)


def dim(i):
    return LinearExpr.of(arg_dimension(i))


class TestAppend:
    def test_paper_constraint_derived(self, append_program):
        env = infer_interargument_constraints(append_program)
        poly = env.get(("append", 3))
        assert poly.entails_constraint(
            Constraint.eq(dim(1) + dim(2), dim(3))
        )

    def test_nonnegativity_retained(self, append_program):
        env = infer_interargument_constraints(append_program)
        poly = env.get(("append", 3))
        for i in (1, 2, 3):
            assert poly.entails_constraint(Constraint.ge(dim(i)))

    def test_no_spurious_lower_bound(self, append_program):
        env = infer_interargument_constraints(append_program)
        poly = env.get(("append", 3))
        # (0, 0, 0) is a derivable size vector (append([],[],[])).
        assert poly.contains_point(
            {arg_dimension(1): 0, arg_dimension(2): 0, arg_dimension(3): 0}
        )


class TestParserSCC:
    def test_paper_constraint_t1_ge_2_plus_t2(self, parser_program):
        env = infer_interargument_constraints(parser_program)
        for name in ("e", "t", "n"):
            poly = env.get((name, 2))
            assert poly.entails_constraint(
                Constraint.ge(dim(1), dim(2) + 2)
            ), "%s should satisfy arg1 >= 2 + arg2" % name


class TestPeanoRelations:
    LESS = """
        less(0, s(_)).
        less(s(X), s(Y)) :- less(X, Y).
    """

    def test_less_strict_inequality(self):
        env = infer_interargument_constraints(parse_program(self.LESS))
        poly = env.get(("less", 2))
        assert poly.entails_constraint(Constraint.ge(dim(2), dim(1) + 1))

    def test_sub_difference_equality(self):
        program = parse_program(
            """
            sub(X, 0, X).
            sub(s(X), s(Y), Z) :- sub(X, Y, Z).
            """
        )
        env = infer_interargument_constraints(program)
        poly = env.get(("sub", 3))
        assert poly.entails_constraint(
            Constraint.eq(dim(1), dim(2) + dim(3))
        )


class TestPartition:
    def test_quicksort_partition(self):
        program = parse_program(
            """
            part([], _, [], []).
            part([Y|Ys], X, [Y|L], G) :- Y =< X, part(Ys, X, L, G).
            part([Y|Ys], X, L, [Y|G]) :- X < Y, part(Ys, X, L, G).
            """
        )
        env = infer_interargument_constraints(program)
        poly = env.get(("part", 4))
        assert poly.entails_constraint(
            Constraint.eq(dim(1), dim(3) + dim(4))
        )


class TestExternalConstraints:
    def test_external_entries_trusted(self, perm_program):
        external = SizeEnvironment()
        external.set_from_constraints(
            ("append", 3),
            [Constraint.eq(dim(1) + dim(2), dim(3))],
        )
        env = infer_interargument_constraints(
            perm_program, external=external
        )
        # The supplied entry is used verbatim (not re-derived).
        assert env.get(("append", 3)).entails_constraint(
            Constraint.eq(dim(1) + dim(2), dim(3))
        )


class TestSoundness:
    """Inferred polyhedra must contain the sizes of actual answers."""

    @pytest.mark.parametrize(
        "text,query,indicator",
        [
            (
                "append([], Ys, Ys).\n"
                "append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).",
                "append([a, b], [c], Z)",
                ("append", 3),
            ),
            (
                "less(0, s(_)).\nless(s(X), s(Y)) :- less(X, Y).",
                "less(s(0), s(s(s(0))))",
                ("less", 2),
            ),
        ],
    )
    def test_answer_sizes_inside_polyhedron(self, text, query, indicator):
        from repro.lp import SLDEngine, parse_query
        from repro.lp.unify import apply_subst, unify
        from repro.sizes.norms import STRUCTURAL

        program = parse_program(text)
        env = infer_interargument_constraints(program)
        poly = env.get(indicator)

        engine = SLDEngine(program)
        result = engine.solve(query)
        assert result.succeeded
        (goal,) = parse_query(query)
        for solution in result.solutions:
            bound_goal = goal
            for var, term in solution.items():
                bound_goal = apply_subst(
                    bound_goal, {var: term}
                )
            sizes = {
                arg_dimension(i + 1): STRUCTURAL.ground_size(arg)
                for i, arg in enumerate(bound_goal.args)
            }
            assert poly.contains_point(sizes)


class TestSettings:
    def test_widening_cap_terminates(self):
        # count(N) :- count(s(N)) has no finite fixpoint without
        # widening: sizes of derivable... actually there are no
        # derivable facts at all (no base case) — bottom is the
        # fixpoint and iteration stops immediately.
        program = parse_program("c(N) :- c(s(N)).")
        env = infer_interargument_constraints(program)
        assert env.get(("c", 1)).is_empty()

    def test_growing_facts_widened(self):
        # nat(0). nat(s(N)) :- nat(N).  Sizes are unbounded; widening
        # must terminate with arg1 >= 0.
        program = parse_program("nat(0).\nnat(s(N)) :- nat(N).")
        env = infer_interargument_constraints(
            program, settings=InferenceSettings(widen_after=2)
        )
        poly = env.get(("nat", 1))
        assert not poly.is_empty()
        assert poly.contains_point({arg_dimension(1): 1000})

    def test_max_iterations_fallback_sound(self):
        program = parse_program("nat(0).\nnat(s(N)) :- nat(N).")
        env = infer_interargument_constraints(
            program,
            settings=InferenceSettings(widen_after=99, max_iterations=3),
        )
        poly = env.get(("nat", 1))
        # Fallback: plain nonnegative orthant.
        assert poly.contains_point({arg_dimension(1): 12345})
