"""Unit tests for size environments and instantiation."""

import pytest

from repro.lp.parser import parse_term
from repro.lp.terms import Var
from repro.linalg.constraints import Constraint
from repro.linalg.linexpr import LinearExpr
from repro.linalg.polyhedron import Polyhedron
from repro.sizes.norms import size_variable
from repro.sizes.size_equations import arg_dimension
from repro.interarg.domain import (
    SizeEnvironment,
    default_polyhedron,
    instantiate_on_args,
    variable_nonnegativity,
)


def append_polyhedron():
    """The paper's append constraint: arg1 + arg2 = arg3 (plus >= 0)."""
    dims = (arg_dimension(1), arg_dimension(2), arg_dimension(3))
    poly = Polyhedron.nonnegative_orthant(dims)
    poly.system.add(
        Constraint.eq(
            LinearExpr.of(dims[0]) + LinearExpr.of(dims[1]),
            LinearExpr.of(dims[2]),
        )
    )
    return poly


class TestSizeEnvironment:
    def test_default_is_orthant(self):
        env = SizeEnvironment()
        poly = env.get(("unknown", 2))
        assert poly.contains_point(
            {arg_dimension(1): 0, arg_dimension(2): 5}
        )
        assert not poly.contains_point(
            {arg_dimension(1): -1, arg_dimension(2): 0}
        )

    def test_set_and_get(self):
        env = SizeEnvironment()
        env.set(("append", 3), append_polyhedron())
        assert env.known(("append", 3))
        assert not env.known(("other", 1))

    def test_set_rejects_wrong_dimensions(self):
        env = SizeEnvironment()
        with pytest.raises(ValueError):
            env.set(("p", 2), append_polyhedron())

    def test_set_from_constraints(self):
        env = SizeEnvironment()
        env.set_from_constraints(
            ("t", 2),
            [
                Constraint.ge(
                    LinearExpr.of(arg_dimension(1)),
                    LinearExpr.of(arg_dimension(2)) + 2,
                )
            ],
        )
        poly = env.get(("t", 2))
        assert poly.contains_point({arg_dimension(1): 5, arg_dimension(2): 3})
        assert not poly.contains_point(
            {arg_dimension(1): 3, arg_dimension(2): 3}
        )

    def test_copy_independent(self):
        env = SizeEnvironment()
        env.set(("append", 3), append_polyhedron())
        clone = env.copy()
        clone.set(("p", 1), default_polyhedron(("p", 1)))
        assert not env.known(("p", 1))


class TestInstantiation:
    def test_paper_example_3_1(self):
        # append(E, [X|F], P) instantiates arg1+arg2=arg3 to
        # E + (2 + X + F) = P.
        atom = parse_term("append(E, [X|F], P)")
        constraints = instantiate_on_args(append_polyhedron(), atom)
        equality = [c for c in constraints if c.is_equality()]
        assert len(equality) == 1
        expr = equality[0].expr
        names = {var: coeff for var, coeff in expr.items()}
        assert abs(expr.const) == 2
        assert size_variable(Var("P")) in names

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            instantiate_on_args(append_polyhedron(), parse_term("p(A)"))

    def test_nonneg_orthant_instantiates_trivially(self):
        # size exprs are nonnegative polynomials; instantiated rows are
        # trivial and vanish in a ConstraintSystem, but must not error.
        poly = default_polyhedron(("p", 2))
        constraints = instantiate_on_args(poly, parse_term("p([a|T], X)"))
        assert isinstance(constraints, list)


class TestVariableNonnegativity:
    def test_one_row_per_distinct_variable(self):
        atoms = [parse_term("p(X, Y)"), parse_term("q(Y, Z)")]
        rows = variable_nonnegativity(atoms)
        assert len(rows) == 3

    def test_ground_atoms_contribute_nothing(self):
        assert variable_nonnegativity([parse_term("p(a, b)")]) == []
