"""Tests for the exception hierarchy and top-level API surface."""

import pytest

import repro
from repro.errors import (
    AnalysisError,
    EngineLimitError,
    InfeasibleError,
    LinAlgError,
    ModeError,
    PrologSyntaxError,
    ReproError,
    TransformError,
    UnboundedError,
    UnificationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            PrologSyntaxError,
            UnificationError,
            EngineLimitError,
            LinAlgError,
            InfeasibleError,
            UnboundedError,
            AnalysisError,
            ModeError,
            TransformError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_lp_errors_under_linalg(self):
        assert issubclass(InfeasibleError, LinAlgError)
        assert issubclass(UnboundedError, LinAlgError)

    def test_mode_error_is_analysis_error(self):
        assert issubclass(ModeError, AnalysisError)

    def test_syntax_error_position_formatting(self):
        error = PrologSyntaxError("bad token", line=3, column=7)
        assert "line 3" in str(error)
        assert error.line == 3 and error.column == 7

    def test_engine_limit_carries_budget_info(self):
        error = EngineLimitError("too deep", depth=12, steps=345)
        assert error.depth == 12
        assert error.steps == 345

    def test_fm_blowup_is_linalg_error(self):
        from repro.linalg.fourier_motzkin import FMBlowupError

        assert issubclass(FMBlowupError, LinAlgError)


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_analyze_alias(self):
        result = repro.analyze(
            "p(s(N)) :- p(N).\np(0).", ("p", 1), "b"
        )
        assert result.proved

    def test_one_reproerror_catches_everything(self):
        with pytest.raises(ReproError):
            repro.parse_program("p(a")
