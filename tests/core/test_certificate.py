"""Unit tests for certificate objects and rendering."""

from fractions import Fraction

from repro.core import analyze_program
from repro.core.adornment import AdornedPredicate
from repro.core.certificate import SCCProof, TerminationProof


def node(name="p", arity=1, mode="b"):
    return AdornedPredicate((name, arity), mode)


class TestSCCProof:
    def test_measure_description(self):
        proof = SCCProof(
            members=(node(),),
            norm="structural",
            lambdas={node(): {1: Fraction(1, 2)}},
            thetas={(node(), node()): Fraction(1)},
        )
        assert "1/2*|arg1|" in proof.measure_description(node())

    def test_zero_weights_render_as_zero(self):
        proof = SCCProof(
            members=(node(),),
            norm="structural",
            lambdas={node(): {1: Fraction(0)}},
            thetas={},
        )
        assert proof.measure_description(node()) == "0"

    def test_describe_nonrecursive(self):
        proof = SCCProof(
            members=(node(),), norm="structural", lambdas={}, thetas={},
            trivially_nonrecursive=True,
        )
        assert "non-recursive" in proof.describe()

    def test_describe_lists_thetas(self):
        a, b = node("a"), node("b")
        proof = SCCProof(
            members=(a, b),
            norm="structural",
            lambdas={a: {1: Fraction(1)}, b: {1: Fraction(1)}},
            thetas={(a, b): Fraction(0), (b, a): Fraction(1)},
        )
        text = proof.describe()
        assert "theta[a/1^b -> b/1^b] = 0" in text


class TestTerminationProof:
    def test_proof_for_lookup(self, perm_program):
        result = analyze_program(perm_program, ("perm", 2), "bf")
        proof = result.proof
        perm_node = AdornedPredicate(("perm", 2), "bf")
        assert proof.proof_for(perm_node) is not None
        assert proof.proof_for(node("nothere")) is None

    def test_describe_headers(self, perm_program):
        result = analyze_program(perm_program, ("perm", 2), "bf")
        text = result.proof.describe()
        assert "perm/2" in text
        assert "structural" in text

    def test_unproved_has_no_proof(self):
        result = analyze_program("p(X) :- p(X).", ("p", 1), "b")
        assert result.proof is None
