"""Tests for the per-SCC incremental-analysis layer.

The contract under test: with a certificate cache attached, analysis
is *observably identical* to a cold run — same verdicts, same export
payload — while `SCCResult.cache` records where each SCC's proof came
from (``miss``, ``hit``, or ``rejected`` when a cached certificate
failed the independent verifier and was re-proved from scratch).
"""

import json

import pytest

from repro.core import (
    MemoryCertificateCache,
    TerminationAnalyzer,
    clear_caches,
)
from repro.core.certcache import (
    decode_scc_certificate,
    encode_env_entries,
)
from repro.core.export import result_to_dict
from repro.lp import parse_program

PERM = (
    "perm([], []).\n"
    "perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), "
    "perm(P1, L).\n"
    "append([], Ys, Ys).\n"
    "append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).\n"
)

LOOP = "p(X) :- p(X).\n"


def analyze(source, root, mode, cache):
    clear_caches()
    program = parse_program(source)
    return TerminationAnalyzer(
        program, certificate_cache=cache
    ).analyze(root, mode)


class TestCacheStates:
    def test_cold_run_records_misses_and_publishes(self):
        cache = MemoryCertificateCache()
        result = analyze(PERM, ("perm", 2), "bf", cache)
        assert result.proved
        recursive = [s for s in result.scc_results
                     if not s.proof.trivially_nonrecursive]
        assert recursive
        assert all(s.cache == "miss" for s in recursive)
        assert all(s.fingerprint.startswith("scc1:") for s in recursive)
        assert result.sccs_reused == 0
        assert result.sccs_reproved == len(recursive)
        kinds = {kind for _, kind in cache.entries.values()}
        assert kinds == {"env", "cert"}

    def test_warm_run_reuses_every_certificate(self):
        cache = MemoryCertificateCache()
        cold = analyze(PERM, ("perm", 2), "bf", cache)
        warm = analyze(PERM, ("perm", 2), "bf", cache)
        recursive = [s for s in warm.scc_results
                     if not s.proof.trivially_nonrecursive]
        assert all(s.cache == "hit" for s in recursive)
        assert warm.sccs_reused == len(recursive)
        assert warm.sccs_reproved == 0
        # The reused proof is a real certificate, not a stub: same
        # members, and it passes the independent verifier.
        from repro.core import verify_proof

        verify_proof(warm.proof)
        assert result_to_dict(warm)["sccs"] == result_to_dict(cold)["sccs"]

    def test_no_cache_leaves_cache_field_empty(self):
        result = analyze(PERM, ("perm", 2), "bf", None)
        assert all(s.cache == "" for s in result.scc_results)
        assert result.sccs_reused == 0

    def test_unknown_is_replayed_with_its_reason(self):
        cache = MemoryCertificateCache()
        cold = analyze(LOOP, ("p", 1), "b", cache)
        warm = analyze(LOOP, ("p", 1), "b", cache)
        assert cold.status == warm.status == "UNKNOWN"
        assert warm.sccs_reused == 1
        (cold_scc,) = cold.failing_sccs()
        (warm_scc,) = warm.failing_sccs()
        assert warm_scc.reason == cold_scc.reason


class TestSoundnessGuard:
    def _poison_lambdas(self, cache):
        """Flip every cached lambda negative: still well-formed, but
        no longer a valid certificate."""
        poisoned = 0
        for key, (payload, kind) in list(cache.entries.items()):
            if kind != "cert":
                continue
            data = json.loads(payload)
            if data.get("status") != "PROVED" or not data.get("lambdas"):
                continue
            data["lambdas"] = [
                [idx, {pos: "-1" for pos in coeffs}]
                for idx, coeffs in data["lambdas"]
            ]
            cache.entries[key] = (json.dumps(data), kind)
            poisoned += 1
        return poisoned

    def test_poisoned_certificate_is_rejected_and_reproved(self):
        cache = MemoryCertificateCache()
        analyze(PERM, ("perm", 2), "bf", cache)
        assert self._poison_lambdas(cache) > 0
        warm = analyze(PERM, ("perm", 2), "bf", cache)
        # The verifier refused the tampered certificates; analysis
        # fell back to a fresh solve and still proved everything.
        assert warm.proved
        assert warm.sccs_reused == 0
        assert warm.sccs_rejected > 0
        rejected = [s for s in warm.scc_results if s.cache == "rejected"]
        assert len(rejected) == warm.sccs_rejected
        from repro.core import verify_proof

        verify_proof(warm.proof)

    def test_corrupt_payload_is_a_miss_not_an_error(self):
        cache = MemoryCertificateCache()
        analyze(PERM, ("perm", 2), "bf", cache)
        for key, (payload, kind) in list(cache.entries.items()):
            cache.entries[key] = ("{not json", kind)
        warm = analyze(PERM, ("perm", 2), "bf", cache)
        assert warm.proved
        assert warm.sccs_reused == 0

    def test_decode_rejects_malformed_shapes(self):
        assert decode_scc_certificate("[]", []) is None
        assert decode_scc_certificate(
            json.dumps({"schema": "other", "kind": "cert"}), []
        ) is None


class TestExportStability:
    def test_payload_is_byte_identical_cold_vs_warm(self):
        from repro.serve.protocol import payload_from_result, payload_text

        cache = MemoryCertificateCache()
        cold = analyze(PERM, ("perm", 2), "bf", cache)
        warm = analyze(PERM, ("perm", 2), "bf", cache)
        assert payload_text(payload_from_result(warm)) == \
            payload_text(payload_from_result(cold))

    def test_cache_fields_never_reach_the_payload(self):
        """The wire payload must stay a pure function of the request:
        per-SCC cache provenance (hit/miss) and fingerprints may not
        appear in it.  (The *trace* may mention the fingerprint stage —
        it is stripped from the payload precisely because it varies.)"""
        from repro.serve.protocol import payload_from_result, payload_text

        cache = MemoryCertificateCache()
        analyze(PERM, ("perm", 2), "bf", cache)
        warm = analyze(PERM, ("perm", 2), "bf", cache)
        text = payload_text(payload_from_result(warm))
        assert "fingerprint" not in text
        assert "scc1:" not in text
        assert '"cache"' not in text
        assert '"hit"' not in text


class TestEnvEncoding:
    def test_env_roundtrip_is_exact(self):
        from repro.core.certcache import decode_env_entries
        from repro.interarg import infer_interargument_constraints

        program = parse_program(PERM)
        env = infer_interargument_constraints(program)
        order = [("append", 3), ("perm", 2)]
        payload = encode_env_entries(env, order)
        decoded = decode_env_entries(payload, order)
        for indicator in order:
            assert decoded[indicator].equivalent(env.get(indicator))
