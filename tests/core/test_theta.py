"""Unit tests for theta selection (Section 6.1, Appendix C)."""

from fractions import Fraction

from repro.linalg.constraints import Constraint, ConstraintSystem
from repro.linalg.linexpr import LinearExpr
from repro.linalg.simplex import is_feasible
from repro.core.adornment import AdornedPredicate
from repro.core.dual import theta_var
from repro.core.theta import (
    choose_thetas,
    path_constraints,
    substitute_thetas,
    zero_weight_cycle,
)


def node(name):
    return AdornedPredicate((name, 1), "b")


A, B, C = node("a"), node("b"), node("c")


class TestChooseThetas:
    def test_self_loop_always_one(self):
        thetas = choose_thetas(
            [(A, A)], ConstraintSystem(), ConstraintSystem()
        )
        assert thetas[(A, A)] == 1

    def test_unforced_edge_gets_one(self):
        thetas = choose_thetas(
            [(A, B)], ConstraintSystem(), ConstraintSystem()
        )
        assert thetas[(A, B)] == 1

    def test_forced_zero(self):
        # A constraint 0 >= theta forces theta = 0 (the paper's
        # "dual constraint with theta as the constant and only zeros").
        forced = ConstraintSystem(
            [Constraint.le(LinearExpr.of(theta_var(A, B)), 0)]
        )
        thetas = choose_thetas([(A, B)], forced, ConstraintSystem())
        assert thetas[(A, B)] == 0

    def test_parser_pattern(self):
        # theta_et, theta_tn forced 0; theta_ne free (Example 6.1).
        e, t, n = node("e"), node("t"), node("n")
        combined = ConstraintSystem(
            [
                Constraint.le(LinearExpr.of(theta_var(e, t)), 0),
                Constraint.le(LinearExpr.of(theta_var(t, n)), 0),
            ]
        )
        edges = [(e, e), (t, t), (e, t), (t, n), (n, e)]
        thetas = choose_thetas(edges, combined, ConstraintSystem())
        assert thetas[(e, t)] == 0
        assert thetas[(t, n)] == 0
        assert thetas[(n, e)] == 1
        assert thetas[(e, e)] == 1


class TestZeroWeightCycle:
    def test_parser_thetas_pass(self):
        e, t, n = node("e"), node("t"), node("n")
        thetas = {
            (e, e): Fraction(1), (t, t): Fraction(1),
            (e, t): Fraction(0), (t, n): Fraction(0),
            (n, e): Fraction(1),
        }
        assert zero_weight_cycle([e, t, n], thetas) is None

    def test_mutual_zero_loop_detected(self):
        thetas = {(A, B): Fraction(0), (B, A): Fraction(0)}
        cycle = zero_weight_cycle([A, B], thetas)
        assert cycle is not None

    def test_self_zero_detected(self):
        cycle = zero_weight_cycle([A], {(A, A): Fraction(0)})
        assert cycle == [A, A]


class TestSubstituteThetas:
    def test_replaces_variables(self):
        system = ConstraintSystem(
            [
                Constraint.ge(
                    LinearExpr.of("lam") - LinearExpr.of(theta_var(A, A))
                )
            ]
        )
        result = substitute_thetas(system, {(A, A): Fraction(1)})
        assert theta_var(A, A) not in result.variables()
        assert result.satisfied_by({"lam": 1})
        assert not result.satisfied_by({"lam": 0})


class TestPathConstraints:
    """Appendix C: positivity of all cycles, sigma eliminated."""

    def test_two_cycle(self):
        system = path_constraints([A, B], [(A, B), (B, A)])
        tab = theta_var(A, B)
        tba = theta_var(B, A)
        # theta_ab = theta_ba = 1/2 gives cycle weight 1: feasible.
        good = ConstraintSystem(
            list(system)
            + [
                Constraint.eq(LinearExpr.of(tab), Fraction(1, 2)),
                Constraint.eq(LinearExpr.of(tba), Fraction(1, 2)),
            ]
        )
        assert is_feasible(good)
        # Zero-weight cycle must be rejected.
        bad = ConstraintSystem(
            list(system)
            + [
                Constraint.eq(LinearExpr.of(tab), 0),
                Constraint.eq(LinearExpr.of(tba), 0),
            ]
        )
        assert not is_feasible(bad)

    def test_negative_weight_allowed_if_cycles_positive(self):
        # Appendix C's point: theta_ab = -1 is fine when theta_ba = 3.
        system = path_constraints([A, B], [(A, B), (B, A)])
        probe = ConstraintSystem(
            list(system)
            + [
                Constraint.eq(LinearExpr.of(theta_var(A, B)), -1),
                Constraint.eq(LinearExpr.of(theta_var(B, A)), 3),
            ]
        )
        assert is_feasible(probe)

    def test_self_loop_must_be_at_least_one(self):
        system = path_constraints([A], [(A, A)])
        low = ConstraintSystem(
            list(system)
            + [Constraint.eq(LinearExpr.of(theta_var(A, A)), Fraction(1, 2))]
        )
        assert not is_feasible(low)
        ok = ConstraintSystem(
            list(system)
            + [Constraint.eq(LinearExpr.of(theta_var(A, A)), 1)]
        )
        assert is_feasible(ok)

    def test_triangle_cycle(self):
        edges = [(A, B), (B, C), (C, A)]
        system = path_constraints([A, B, C], edges)
        zero_total = ConstraintSystem(
            list(system)
            + [
                Constraint.eq(LinearExpr.of(theta_var(*edge)), 0)
                for edge in edges
            ]
        )
        assert not is_feasible(zero_total)
        positive_total = ConstraintSystem(
            list(system)
            + [
                Constraint.eq(
                    LinearExpr.of(theta_var(A, B)), 2
                ),
                Constraint.eq(LinearExpr.of(theta_var(B, C)), 0),
                Constraint.eq(LinearExpr.of(theta_var(C, A)), -1),
            ]
        )
        assert is_feasible(positive_total)
