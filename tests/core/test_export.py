"""Unit tests for JSON certificate export."""

import json

from repro.core import analyze_program
from repro.core.export import result_to_dict, result_to_json


class TestExport:
    def test_proved_roundtrip(self, merge_program):
        result = analyze_program(merge_program, ("merge", 3), "bbf")
        data = json.loads(result_to_json(result))
        assert data["status"] == "PROVED"
        assert data["root"] == {"predicate": "merge", "arity": 3}
        assert data["mode"] == "bbf"

    def test_lambda_fractions_exact(self, merge_program):
        result = analyze_program(merge_program, ("merge", 3), "bbf")
        data = result_to_dict(result)
        (scc,) = data["sccs"]
        (entry,) = scc["proof"]["lambdas"]
        assert entry["weights"]["1"] == "1/2"
        assert entry["weights"]["2"] == "1/2"

    def test_thetas_serialized(self, parser_program):
        result = analyze_program(parser_program, ("e", 2), "bf")
        data = result_to_dict(result)
        recursive = [
            scc for scc in data["sccs"]
            if scc.get("proof", {}).get("thetas")
        ]
        assert recursive
        thetas = {
            (t["from"]["predicate"], t["to"]["predicate"]): t["value"]
            for t in recursive[0]["proof"]["thetas"]
        }
        assert thetas[("e", "t")] == "0"
        assert thetas[("n", "e")] == "1"

    def test_unknown_includes_reason(self):
        result = analyze_program("p(X) :- p(X).", ("p", 1), "b")
        data = result_to_dict(result)
        assert data["status"] == "UNKNOWN"
        (scc,) = data["sccs"]
        assert "infeasible" in scc["reason"]

    def test_nonrecursive_marked(self):
        result = analyze_program("p(X) :- q(X).\nq(a).", ("p", 1), "b")
        data = result_to_dict(result)
        assert all(
            scc["proof"]["trivially_nonrecursive"] for scc in data["sccs"]
        )

    def test_cli_json_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "m.pl"
        path.write_text(
            "merge([], Ys, Ys).\n"
            "merge(Xs, [], Xs).\n"
            "merge([X|Xs], [Y|Ys], [X|Zs]) :- X =< Y, "
            "merge([Y|Ys], Xs, Zs).\n"
            "merge([X|Xs], [Y|Ys], [Y|Zs]) :- Y =< X, "
            "merge(Ys, [X|Xs], Zs).\n"
        )
        code = main(
            [str(path), "--root", "merge/3", "--mode", "bbf", "--json"]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["status"] == "PROVED"
