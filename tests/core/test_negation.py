"""Appendix D end-to-end: negation in termination analysis."""

import pytest

from repro.errors import PrologSyntaxError
from repro.lp import parse_program
from repro.core import analyze_program, verify_proof


class TestPrecedingNegation:
    def test_negative_subgoal_discarded(self):
        """A negative subgoal before the recursion neither helps nor
        hinders (it binds nothing)."""
        program = parse_program(
            """
            member(X, [X|_]).
            member(X, [_|T]) :- member(X, T).
            diff([], _, []).
            diff([X|Xs], Ys, [X|Zs]) :- \\+ member(X, Ys),
                                        diff(Xs, Ys, Zs).
            diff([X|Xs], Ys, Zs) :- member(X, Ys), diff(Xs, Ys, Zs).
            """
        )
        result = analyze_program(program, ("diff", 3), "bbf")
        assert result.proved
        verify_proof(result.proof)

    def test_helpful_constraints_not_imported_from_negation(self):
        """\\+ q(X) must NOT import q's inter-argument constraints —
        when q fails nothing is known about X's size.  A program whose
        proof would need exactly that must stay UNKNOWN."""
        program = parse_program(
            """
            big(s(s(X))).
            p(0).
            p(X) :- \\+ big(X), p(X).
            """
        )
        # p recurses with an UNCHANGED argument: no measure decreases
        # whether or not big's size information is visible.
        result = analyze_program(program, ("p", 1), "b")
        assert not result.proved


class TestNegativeRecursiveSubgoal:
    def test_treated_as_positive(self):
        program = parse_program(
            "even_n(0).\neven_n(s(N)) :- \\+ even_n(N)."
        )
        result = analyze_program(program, ("even_n", 1), "b")
        assert result.proved
        verify_proof(result.proof)

    def test_negative_loop_still_unknown(self):
        program = parse_program("p(X) :- \\+ p(X).")
        result = analyze_program(program, ("p", 1), "b")
        assert not result.proved


class TestDisjunctionRejected:
    def test_clear_error(self):
        with pytest.raises(PrologSyntaxError):
            parse_program("p(X) :- q(X) ; r(X).")

    def test_if_then_else_rejected(self):
        with pytest.raises(PrologSyntaxError):
            parse_program("p(X) :- q(X) -> r(X) ; s(X).")
