"""Unit/integration tests for the full analyzer pipeline."""

from fractions import Fraction

import pytest

from repro.errors import AnalysisError
from repro.lp import parse_program
from repro.core import (
    AnalyzerSettings,
    TerminationAnalyzer,
    analyze_program,
)
from repro.core.adornment import AdornedPredicate
from repro.core.analyzer import PROVED, UNKNOWN
from repro.interarg import SizeEnvironment
from repro.linalg.constraints import Constraint
from repro.linalg.linexpr import LinearExpr
from repro.sizes.size_equations import arg_dimension


class TestSimplePrograms:
    def test_append_bbf(self, append_program):
        result = analyze_program(append_program, ("append", 3), "bbf")
        assert result.status == PROVED

    def test_append_all_free_unknown(self, append_program):
        result = analyze_program(append_program, ("append", 3), "fff")
        assert result.status == UNKNOWN
        (failing,) = result.failing_sccs()
        assert "no bound arguments" in failing.reason

    def test_text_program_accepted(self):
        result = analyze_program(
            "p(s(N)) :- p(N).\np(0).", ("p", 1), "b"
        )
        assert result.proved

    def test_nonrecursive_trivial(self):
        result = analyze_program("p(X) :- q(X).\nq(a).", ("p", 1), "b")
        assert result.proved
        assert all(
            r.proof.trivially_nonrecursive for r in result.scc_results
        )

    def test_direct_loop_unknown(self):
        result = analyze_program("p(X) :- p(X).", ("p", 1), "b")
        assert result.status == UNKNOWN

    def test_growing_loop_unknown(self):
        result = analyze_program("q([X|L]) :- q([X, X|L]).", ("q", 1), "b")
        assert result.status == UNKNOWN


class TestCertificateContents:
    def test_append_lambda_on_first_argument(self, append_program):
        result = analyze_program(append_program, ("append", 3), "bbf")
        node = AdornedPredicate(("append", 3), "bbf")
        proof = result.proof.proof_for(node)
        weights = proof.lambda_for(node)
        # The decrease comes through argument 1 (possibly with weight
        # on argument 2 as well); weight 1 must be positive.
        assert weights[1] > 0

    def test_merge_equal_weights(self, merge_program):
        result = analyze_program(merge_program, ("merge", 3), "bbf")
        node = AdornedPredicate(("merge", 3), "bbf")
        proof = result.proof.proof_for(node)
        weights = proof.lambda_for(node)
        # Example 5.1: lambda1 = lambda2 >= 1/2.
        assert weights[1] == weights[2]
        assert weights[1] >= Fraction(1, 2)

    def test_theta_matrix_recorded(self, parser_program):
        result = analyze_program(parser_program, ("e", 2), "bf")
        scc_proof = [
            p for p in result.proof.scc_proofs
            if not p.trivially_nonrecursive
        ][0]
        e = AdornedPredicate(("e", 2), "bf")
        t = AdornedPredicate(("t", 2), "bf")
        n = AdornedPredicate(("n", 2), "bf")
        assert scc_proof.thetas[(e, t)] == 0
        assert scc_proof.thetas[(t, n)] == 0
        assert scc_proof.thetas[(n, e)] == 1


class TestZeroCycleRejection:
    def test_mutual_loop_reports_cycle(self):
        result = analyze_program(
            "p(X) :- q(X).\nq(X) :- p(X).", ("p", 1), "b"
        )
        assert result.status == UNKNOWN
        (failing,) = result.failing_sccs()
        assert "zero-weight cycle" in failing.reason


class TestSettings:
    def test_interarg_toggle_changes_perm(self, perm_program):
        with_interarg = analyze_program(perm_program, ("perm", 2), "bf")
        without = analyze_program(
            perm_program,
            ("perm", 2),
            "bf",
            settings=AnalyzerSettings(use_interarg=False),
        )
        assert with_interarg.proved
        assert not without.proved

    def test_fm_feasibility_path(self, merge_program):
        result = analyze_program(
            merge_program,
            ("merge", 3),
            "bbf",
            settings=AnalyzerSettings(feasibility="fm"),
        )
        assert result.proved
        node = AdornedPredicate(("merge", 3), "bbf")
        weights = result.proof.proof_for(node).lambda_for(node)
        assert weights[1] == weights[2] >= Fraction(1, 2)

    def test_invalid_feasibility_rejected(self, merge_program):
        with pytest.raises(AnalysisError):
            analyze_program(
                merge_program,
                ("merge", 3),
                "bbf",
                settings=AnalyzerSettings(feasibility="newton"),
            )

    def test_norm_selection(self):
        # Mergesort: UNKNOWN under structural, PROVED under list_length.
        from repro.corpus.registry import get_program, load

        entry = get_program("mergesort")
        program = load(entry)
        structural = analyze_program(program, entry.root, entry.mode)
        lengths = analyze_program(
            program, entry.root, entry.mode,
            settings=AnalyzerSettings(norm="list_length"),
        )
        assert structural.status == UNKNOWN
        assert lengths.status == PROVED

    def test_negative_theta_mode_on_parser(self, parser_program):
        result = analyze_program(
            parser_program,
            ("e", 2),
            "bf",
            settings=AnalyzerSettings(allow_negative_theta=True),
        )
        assert result.proved
        scc_proof = [
            p for p in result.proof.scc_proofs
            if not p.trivially_nonrecursive
        ][0]
        # All cycles must still be positive.
        from repro.graph.minplus import find_nonpositive_cycle

        assert find_nonpositive_cycle(
            list(scc_proof.members), dict(scc_proof.thetas)
        ) is None

    def test_eq8_route_same_verdicts(self, merge_program, perm_program):
        """The paper's theoretical variant (keep the w multipliers,
        'stop with Eq. 8') must agree with the practical FM route."""
        settings = AnalyzerSettings(eliminate_w=False)
        assert analyze_program(
            merge_program, ("merge", 3), "bbf", settings=settings
        ).proved
        assert analyze_program(
            perm_program, ("perm", 2), "bf", settings=settings
        ).proved
        assert not analyze_program(
            "p(X) :- q(X).\nq(X) :- p(X).", ("p", 1), "b",
            settings=settings,
        ).proved

    def test_negative_theta_rejects_loops(self):
        result = analyze_program(
            "p(X) :- q(X).\nq(X) :- p(X).",
            ("p", 1),
            "b",
            settings=AnalyzerSettings(allow_negative_theta=True),
        )
        assert result.status == UNKNOWN


class TestExternalConstraints:
    def test_hand_supplied_constraints(self, perm_program):
        analyzer = TerminationAnalyzer(perm_program)
        env = SizeEnvironment()
        env.set_from_constraints(
            ("append", 3),
            [
                Constraint.eq(
                    LinearExpr.of(arg_dimension(1))
                    + LinearExpr.of(arg_dimension(2)),
                    LinearExpr.of(arg_dimension(3)),
                )
            ],
        )
        analyzer.use_external_constraints(env)
        result = analyzer.analyze(("perm", 2), "bf")
        assert result.proved


class TestMultiModeAnalysis:
    def test_perm_proves_both_append_modes(self, perm_program):
        result = analyze_program(perm_program, ("perm", 2), "bf")
        proved_nodes = {
            str(node)
            for scc in result.scc_results
            if scc.proved
            for node in scc.members
        }
        assert "append/3^ffb" in proved_nodes
        assert "append/3^bbf" in proved_nodes

    def test_reanalysis_reuses_analyzer(self, append_program):
        analyzer = TerminationAnalyzer(append_program)
        first = analyzer.analyze(("append", 3), "bbf")
        second = analyzer.analyze(("append", 3), "ffb")
        assert first.proved and second.proved


class TestDescribe:
    def test_describe_contains_verdict(self, merge_program):
        result = analyze_program(merge_program, ("merge", 3), "bbf")
        text = result.describe()
        assert "PROVED" in text
        assert "merge/3^bbf" in text

    def test_describe_failure_reason(self):
        result = analyze_program("p(X) :- p(X).", ("p", 1), "b")
        assert "infeasible" in result.describe()
