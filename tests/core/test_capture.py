"""Unit tests for the capture-rule planner."""

import pytest

from repro.lp import parse_program
from repro.core.capture import (
    BOTTOM_UP,
    TOP_DOWN,
    TOP_DOWN_REORDERED,
    body_reorderings,
    plan_capture_rules,
)

PERM = """
perm([], []).
perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).
append([], Ys, Ys).
append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
"""


@pytest.fixture(scope="module")
def perm_plan():
    return plan_capture_rules(parse_program(PERM), ("perm", 2))


class TestPermPlanning:
    def test_bf_safe_as_written(self, perm_plan):
        assert perm_plan.decision("bf").strategy == TOP_DOWN

    def test_bb_safe(self, perm_plan):
        assert perm_plan.decision("bb").top_down_safe

    def test_fb_needs_reordering(self, perm_plan):
        decision = perm_plan.decision("fb")
        assert decision.strategy == TOP_DOWN_REORDERED
        # The reordered program genuinely differs and genuinely proves.
        assert decision.analysis.proved
        assert str(decision.program) != str(parse_program(PERM))

    def test_ff_falls_back(self, perm_plan):
        assert perm_plan.decision("ff").strategy == BOTTOM_UP

    def test_describe(self, perm_plan):
        text = perm_plan.describe()
        assert "perm(bf): top-down" in text
        assert "perm(ff): bottom-up" in text


class TestReorderings:
    def test_count(self):
        program = parse_program("p(X) :- a(X), b(X), p(X).")
        candidates = list(body_reorderings(program, ("p", 1)))
        assert len(candidates) == 6  # 3! permutations of one body

    def test_limit_respected(self):
        program = parse_program("p(X) :- a(X), b(X), c(X), d(X), p(X).")
        candidates = list(body_reorderings(program, ("p", 1), limit=10))
        assert len(candidates) == 10

    def test_other_predicates_untouched(self):
        program = parse_program("p(X) :- a(X), b(X).\nq(X) :- p(X), r(X).")
        for candidate in body_reorderings(program, ("p", 1)):
            assert str(candidate.clauses_for(("q", 1))[0]) == str(
                program.clauses_for(("q", 1))[0]
            )


class TestDatalogFallback:
    def test_tc_gets_guaranteed_bottom_up(self):
        from repro.core.capture import BOTTOM_UP_SAFE

        program = parse_program(
            "e(a, b).\n"
            "tc(X, Y) :- e(X, Y).\n"
            "tc(X, Y) :- tc(X, Z), e(Z, Y).\n"
        )
        plan = plan_capture_rules(program, ("tc", 2), modes=["bf"])
        assert plan.decision("bf").strategy == BOTTOM_UP_SAFE

    def test_function_programs_get_plain_bottom_up(self, perm_plan):
        assert perm_plan.decision("ff").strategy == BOTTOM_UP


class TestIsDatalog:
    def test_function_free(self):
        from repro.lp import is_datalog

        assert is_datalog(
            parse_program("e(a, b).\ntc(X, Y) :- e(X, Y).")
        )

    def test_lists_are_not_datalog(self, perm_plan):
        from repro.lp import is_datalog

        assert not is_datalog(parse_program(PERM))

    def test_builtins_ignored(self):
        from repro.lp import is_datalog

        assert is_datalog(
            parse_program("p(X, Y) :- q(X), q(Y), X \\= Y.\nq(a). q(b).")
        )


class TestNoReorderMode:
    def test_classification_only(self):
        plan = plan_capture_rules(
            parse_program(PERM), ("perm", 2), modes=["fb"], reorder=False
        )
        assert plan.decision("fb").strategy == BOTTOM_UP
