"""Unit tests for adornment inference and adorned call graphs."""

import pytest

from repro.errors import ModeError
from repro.lp import parse_program
from repro.core.adornment import (
    Adornment,
    AdornedPredicate,
    adorned_call_graph,
    clause_call_adornments,
    infer_adornments,
)


class TestAdornment:
    def test_parse(self):
        adornment = Adornment.parse("bfb")
        assert adornment.arity == 3
        assert adornment.bound_positions() == (1, 3)

    def test_parse_rejects_bad_chars(self):
        with pytest.raises(ModeError):
            Adornment.parse("bx")

    def test_is_bound(self):
        adornment = Adornment.parse("bf")
        assert adornment.is_bound(1)
        assert not adornment.is_bound(2)

    def test_meet(self):
        meet = Adornment.parse("bb").meet(Adornment.parse("bf"))
        assert str(meet) == "bf"

    def test_meet_arity_mismatch(self):
        with pytest.raises(ModeError):
            Adornment.parse("b").meet(Adornment.parse("bb"))


class TestAdornedPredicate:
    def test_equality_and_hash(self):
        first = AdornedPredicate(("p", 2), "bf")
        second = AdornedPredicate(("p", 2), Adornment.parse("bf"))
        assert first == second
        assert hash(first) == hash(second)
        assert first != AdornedPredicate(("p", 2), "bb")

    def test_str(self):
        assert str(AdornedPredicate(("append", 3), "bbf")) == "append/3^bbf"

    def test_bound_positions(self):
        node = AdornedPredicate(("p", 3), "fbf")
        assert node.bound_positions() == (2,)


class TestClauseCallAdornments:
    def test_head_bindings_propagate(self, append_program):
        clause = append_program.clauses[1]
        (call,) = clause_call_adornments(clause, Adornment.parse("bbf"))
        assert str(call) == "bbf"

    def test_left_to_right_binding(self, perm_program):
        # perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), ...
        clause = perm_program.clauses_for(("perm", 2))[1]
        calls = clause_call_adornments(clause, Adornment.parse("bf"))
        assert [str(c) for c in calls] == ["ffb", "bbf", "bf"]

    def test_builtins_bind_nothing_via_comparison(self, merge_program):
        clause = merge_program.clauses_for(("merge", 3))[2]
        calls = clause_call_adornments(clause, Adornment.parse("bbf"))
        # =< then the recursive call: the call pattern stays bbf.
        assert str(calls[1]) == "bbf"

    def test_equals_binds_one_side(self):
        program = parse_program("p(X, Y) :- X = f(Z), q(Z, Y).")
        clause = program.clauses[0]
        calls = clause_call_adornments(clause, Adornment.parse("bf"))
        # X bound => Z becomes bound through X = f(Z).
        assert str(calls[1]) == "bf"

    def test_negation_binds_nothing(self):
        program = parse_program("p(X) :- \\+ q(X, Y), r(Y).")
        clause = program.clauses[0]
        calls = clause_call_adornments(clause, Adornment.parse("b"))
        assert str(calls[1]) == "f"


class TestInferAdornments:
    def test_merge_single_mode(self, merge_program):
        adornments = infer_adornments(merge_program, ("merge", 3), "bbf")
        assert str(adornments[("merge", 3)]) == "bbf"

    def test_meet_on_conflicting_calls(self, perm_program):
        adornments = infer_adornments(perm_program, ("perm", 2), "bf")
        # append is called as ffb and bbf; the meet is fff.
        assert str(adornments[("append", 3)]) == "fff"

    def test_mode_arity_checked(self, merge_program):
        with pytest.raises(ModeError):
            infer_adornments(merge_program, ("merge", 3), "bf")


class TestAdornedCallGraph:
    def test_perm_splits_append_modes(self, perm_program):
        graph, nodes = adorned_call_graph(perm_program, ("perm", 2), "bf")
        names = {str(n) for n in nodes}
        assert "append/3^ffb" in names
        assert "append/3^bbf" in names
        assert "perm/2^bf" in names

    def test_self_loops_present(self, append_program):
        graph, _ = adorned_call_graph(append_program, ("append", 3), "bbf")
        node = AdornedPredicate(("append", 3), "bbf")
        assert graph.has_edge(node, node)

    def test_parser_keeps_one_mode_each(self, parser_program):
        _, nodes = adorned_call_graph(parser_program, ("e", 2), "bf")
        by_name = {}
        for node in nodes:
            by_name.setdefault(node.name, set()).add(str(node.adornment))
        assert by_name["e"] == {"bf"}
        assert by_name["t"] == {"bf"}
        assert by_name["n"] == {"bf"}

    def test_edb_leaves_included(self, parser_program):
        _, nodes = adorned_call_graph(parser_program, ("e", 2), "bf")
        assert any(node.name == "z" for node in nodes)

    def test_mode_arity_checked(self, append_program):
        with pytest.raises(ModeError):
            adorned_call_graph(append_program, ("append", 3), "bb")
