"""The staged pipeline: traces, memoization, eager validation, and
norm threading."""

import pytest

from repro.errors import AnalysisError
from repro.lp import parse_program
from repro.core import (
    STAGES,
    AnalysisPipeline,
    AnalysisTrace,
    AnalyzerSettings,
    TerminationAnalyzer,
    analyze_program,
    clear_caches,
)
from repro.core.pipeline import (
    cached_pair_constraints,
    rule_system_fingerprint,
)

PERM = """
perm([], []).
perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).
append([], Ys, Ys).
append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
"""


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestTraces:
    def test_every_result_carries_a_trace(self):
        result = analyze_program(PERM, ("perm", 2), "bf")
        assert result.trace is not None
        ran = [s.stage for s in result.trace.stages()]
        # The fingerprint stage only runs when a certificate cache is
        # installed; everything else runs in pipeline order.
        assert ran == [s for s in STAGES if s != "fingerprint"]

    def test_a_certificate_cache_adds_the_fingerprint_stage(self):
        from repro.core import MemoryCertificateCache

        result = TerminationAnalyzer(
            parse_program(PERM),
            certificate_cache=MemoryCertificateCache(),
        ).analyze(("perm", 2), "bf")
        ran = [s.stage for s in result.trace.stages()]
        assert ran == list(STAGES)  # every stage ran, in pipeline order

    def test_stage_counters_populated(self):
        result = analyze_program(PERM, ("perm", 2), "bf")
        trace = result.trace
        assert trace.stage("adorn").calls == 1
        assert trace.stage("interarg").cache_misses == 1
        # perm reaches 3 recursive SCCs (perm^bf, append^bbf, append^ffb).
        assert trace.stage("solve").calls == 3
        assert trace.stage("solve").rows_in > 0
        assert trace.stage("solve").pivots > 0  # default simplex backend
        assert trace.stage("dualize").rows_out > 0
        assert trace.total_time > 0

    def test_fm_backend_reports_eliminations_in_trace(self):
        result = analyze_program(
            PERM, ("perm", 2), "bf",
            settings=AnalyzerSettings(feasibility="fm"),
        )
        assert result.trace.stage("solve").eliminations > 0
        assert result.trace.stage("solve").pivots == 0

    def test_failed_analysis_still_traced(self):
        result = analyze_program("p(X) :- p(X).", ("p", 1), "b")
        assert not result.proved
        assert result.trace.stage("solve").calls == 1

    def test_merge_accumulates(self):
        first = analyze_program(PERM, ("perm", 2), "bf").trace
        second = analyze_program(PERM, ("perm", 2), "bf").trace
        merged = AnalysisTrace().merge(first).merge(second)
        assert merged.stage("adorn").calls == 2
        assert merged.total_time >= first.total_time

    def test_describe_lists_stages_and_totals(self):
        trace = analyze_program(PERM, ("perm", 2), "bf").trace
        text = trace.describe()
        for name in STAGES:
            if name == "fingerprint":
                continue  # only runs with a certificate cache
            assert name in text
        assert "total" in text
        assert "cache h/m" in text


class TestEnvironmentCache:
    def test_second_mode_reuses_environment(self):
        program = parse_program(PERM)
        analyzer = TerminationAnalyzer(program)
        first = analyzer.analyze(("perm", 2), "bf")
        second = analyzer.analyze(("append", 3), "bbf")
        assert first.trace.stage("interarg").cache_misses == 1
        assert second.trace.stage("interarg").cache_hits == 1
        assert second.trace.stage("interarg").cache_misses == 0
        assert first.environment is second.environment

    def test_fresh_analyzer_hits_process_cache(self):
        program = parse_program(PERM)
        TerminationAnalyzer(program).analyze(("perm", 2), "bf")
        rerun = TerminationAnalyzer(program).analyze(("perm", 2), "bf")
        assert rerun.trace.stage("interarg").cache_hits == 1

    def test_reparsed_program_hits_process_cache(self):
        analyze_program(PERM, ("perm", 2), "bf")
        rerun = analyze_program(parse_program(PERM), ("perm", 2), "bf")
        assert rerun.trace.stage("interarg").cache_hits == 1

    def test_norm_isolates_cache_entries(self):
        analyze_program(PERM, ("perm", 2), "bf")
        other = analyze_program(
            PERM, ("perm", 2), "bf",
            settings=AnalyzerSettings(norm="list_length"),
        )
        assert other.trace.stage("interarg").cache_misses == 1

    def test_external_constraints_bypass_cache(self):
        from repro.interarg import SizeEnvironment

        program = parse_program(PERM)
        analyzer = TerminationAnalyzer(program)
        env = SizeEnvironment()
        analyzer.use_external_constraints(env)
        assert analyzer.environment is env


class TestDualizationCache:
    def test_same_scc_via_two_modes_hits(self):
        program = parse_program(PERM)
        analyzer = TerminationAnalyzer(program)
        first = analyzer.analyze(("perm", 2), "bf")
        # perm^bf already dualized append^bbf and append^ffb pairs;
        # analyzing append directly must reuse them.
        second = analyzer.analyze(("append", 3), "bbf")
        assert first.trace.stage("dualize").cache_misses > 0
        assert second.trace.stage("dualize").cache_hits > 0
        assert second.trace.stage("dualize").cache_misses == 0

    def test_verdicts_unchanged_by_cache(self):
        cold = analyze_program(PERM, ("perm", 2), "bf")
        warm = analyze_program(PERM, ("perm", 2), "bf")
        assert warm.trace.stage("dualize").cache_hits > 0
        assert cold.status == warm.status == "PROVED"
        node_weights = lambda r: {
            str(node): sorted(weights.items())
            for scc in r.scc_results if scc.proved
            for node, weights in scc.proof.lambdas.items()
        }
        assert node_weights(cold) == node_weights(warm)

    def test_fingerprint_ignores_clause_identity(self):
        from repro.core.adornment import AdornedPredicate
        from repro.core.rule_system import build_rule_systems
        from repro.interarg import SizeEnvironment

        def systems():
            program = parse_program(PERM)
            node = AdornedPredicate(("append", 3), "bbf")
            (clause,) = [
                c for c in program.clauses_for(("append", 3)) if c.body
            ]
            return build_rule_systems(
                clause, node, {node}, SizeEnvironment(), "structural"
            )

        (first,), (second,) = systems(), systems()
        assert rule_system_fingerprint(first) == rule_system_fingerprint(
            second
        )

    def test_eliminate_w_false_not_cached(self):
        from repro.core.adornment import AdornedPredicate
        from repro.core.rule_system import build_rule_systems
        from repro.interarg import SizeEnvironment

        program = parse_program(PERM)
        node = AdornedPredicate(("append", 3), "bbf")
        (clause,) = [
            c for c in program.clauses_for(("append", 3)) if c.body
        ]
        (system,) = build_rule_systems(
            clause, node, {node}, SizeEnvironment(), "structural"
        )
        _, hit1 = cached_pair_constraints(system, eliminate_w=False)
        _, hit2 = cached_pair_constraints(system, eliminate_w=False)
        assert not hit1 and not hit2
        _, miss = cached_pair_constraints(system, eliminate_w=True)
        _, hit = cached_pair_constraints(system, eliminate_w=True)
        assert not miss and hit


class TestEagerValidation:
    def test_unknown_feasibility_fails_at_construction(self):
        program = parse_program(PERM)
        with pytest.raises(AnalysisError) as info:
            TerminationAnalyzer(
                program, settings=AnalyzerSettings(feasibility="newton")
            )
        assert "newton" in str(info.value)

    def test_unknown_norm_fails_at_construction_same_shape(self):
        program = parse_program(PERM)
        with pytest.raises(AnalysisError) as info:
            TerminationAnalyzer(
                program, settings=AnalyzerSettings(norm="weight")
            )
        assert "weight" in str(info.value)

    def test_settings_validate_directly(self):
        norm, backend = AnalyzerSettings().validate()
        assert norm.name == "structural"
        assert backend.name == "simplex"
        with pytest.raises(AnalysisError):
            AnalyzerSettings(norm="weight").validate()
        with pytest.raises(AnalysisError):
            AnalyzerSettings(feasibility="newton").validate()

    def test_non_program_rejected(self):
        with pytest.raises(AnalysisError):
            AnalysisPipeline(["not", "a", "program"], AnalyzerSettings())


class TestNormThreading:
    def test_result_records_actual_norm(self):
        result = analyze_program(
            "p([_|T]) :- p(T).\np([]).", ("p", 1), "b",
            settings=AnalyzerSettings(norm="list_length"),
        )
        assert result.norm == "list_length"
        assert result.proof.norm == "list_length"

    def test_trivially_nonrecursive_proof_keeps_norm(self):
        # The old AnalysisResult.proof scanned SCC proofs and fell back
        # to "structural"; a program whose only SCCs are non-recursive
        # must still report the configured norm.
        result = analyze_program(
            "p(X) :- q(X).\nq(a).", ("p", 1), "b",
            settings=AnalyzerSettings(norm="right_spine"),
        )
        assert result.proved
        assert result.proof.norm == "right_spine"


class TestPipelineDirectly:
    def test_pipeline_is_reusable_across_modes(self):
        pipeline = AnalysisPipeline(parse_program(PERM), AnalyzerSettings())
        forward = pipeline.run(("append", 3), "bbf")
        backward = pipeline.run(("append", 3), "ffb")
        assert forward.proved and backward.proved

    def test_analyze_scc_accepts_shared_trace(self):
        from repro.core.adornment import AdornedPredicate

        pipeline = AnalysisPipeline(parse_program(PERM), AnalyzerSettings())
        trace = AnalysisTrace()
        node = AdornedPredicate(("append", 3), "bbf")
        result = pipeline.analyze_scc((node,), trace=trace)
        assert result.proved
        assert trace.stage("solve").calls == 1
