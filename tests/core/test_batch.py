"""Tests for the batch / parallel analysis layer."""

import pytest

from repro.batch import BatchItem, BatchReport, analyze_many, as_batch_item
from repro.core import AnalyzerSettings
from repro.errors import AnalysisError

APPEND = (
    "append([], Y, Y).\n"
    "append([X|Xs], Y, [X|Zs]) :- append(Xs, Y, Zs).\n"
)
LOOP = "p(X) :- p(X).\n"


class TestItemCoercion:
    def test_tuple(self):
        item = as_batch_item((APPEND, ("append", 3), "bbf"), 4)
        assert item.root == ("append", 3)
        assert item.name == "item4"

    def test_dict(self):
        item = as_batch_item(
            {"name": "ap", "source": APPEND,
             "root": ("append", 3), "mode": "bbf"}
        )
        assert item.name == "ap"

    def test_corpus_entry(self):
        from repro.corpus import get_program

        entry = get_program("perm")
        item = as_batch_item(entry)
        assert item.name == "perm"
        assert item.root == ("perm", 2)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            as_batch_item(42)


class TestSerialBatch:
    def test_verdicts_and_order(self):
        report = analyze_many(
            [
                (APPEND, ("append", 3), "bbf"),
                (LOOP, ("p", 1), "b"),
                (APPEND, ("append", 3), "ffb"),
            ]
        )
        assert [r.status for r in report.results] == [
            "PROVED", "UNKNOWN", "PROVED",
        ]
        assert not report.all_proved
        assert report.jobs == 1

    def test_error_item_reported_not_raised(self):
        report = analyze_many(
            [("p(X :- broken", ("p", 1), "b")]
        )
        result = report.results[0]
        assert result.status == "ERROR"
        assert result.error

    def test_reasons_surface_for_unknown(self):
        report = analyze_many([(LOOP, ("p", 1), "b")])
        assert report.results[0].reasons

    def test_merged_trace_counts_analyses(self):
        report = analyze_many(
            [
                (APPEND, ("append", 3), "bbf"),
                (APPEND, ("append", 3), "ffb"),
            ]
        )
        assert report.trace.stage("adorn").calls == 2

    def test_bad_jobs_rejected(self):
        with pytest.raises(AnalysisError):
            analyze_many([(APPEND, ("append", 3), "bbf")], jobs=0)

    def test_backend_instances_rejected_in_parallel(self):
        from repro.solve import get_backend

        settings = AnalyzerSettings(feasibility=get_backend("simplex"))
        with pytest.raises(AnalysisError):
            analyze_many(
                [(APPEND, ("append", 3), "bbf")] * 2,
                jobs=2, settings=settings,
            )


class TestParallelMatchesSerial:
    def test_full_corpus_jobs4_matches_serial(self):
        """The acceptance check: 42 programs, 4 methods, identical
        verdicts at jobs=4, and the merged traces agree on every
        structural counter.  (Cache hit/miss totals legitimately
        differ — workers have their own memoization caches.)"""
        from repro.baselines import ALL_BASELINES
        from repro.corpus import all_programs

        entries = all_programs()
        assert len(entries) == 42
        serial = analyze_many(entries, jobs=1, baselines=ALL_BASELINES)
        parallel = analyze_many(entries, jobs=4, baselines=ALL_BASELINES)

        assert [
            (r.name, r.status, r.baselines) for r in serial.results
        ] == [
            (r.name, r.status, r.baselines) for r in parallel.results
        ]
        for stage in serial.trace.stages():
            twin = parallel.trace.stage(stage.stage)
            assert (
                stage.calls, stage.rows_in, stage.rows_out,
                stage.pivots, stage.eliminations,
            ) == (
                twin.calls, twin.rows_in, twin.rows_out,
                twin.pivots, twin.eliminations,
            ), stage.stage

    def test_single_program_modes_split_across_workers(self):
        """The --all-modes shape: one program, several modes, jobs=2."""
        items = [
            BatchItem("bbf", APPEND, ("append", 3), "bbf"),
            BatchItem("ffb", APPEND, ("append", 3), "ffb"),
            BatchItem("bff", APPEND, ("append", 3), "bff"),
        ]
        serial = analyze_many(items, jobs=1)
        parallel = analyze_many(items, jobs=2)
        assert [r.status for r in serial.results] == [
            r.status for r in parallel.results
        ]


class TestBatchTelemetry:
    def test_results_carry_worker_and_elapsed(self):
        report = analyze_many(
            [
                (APPEND, ("append", 3), "bbf"),
                (LOOP, ("p", 1), "b"),
            ],
            jobs=2,
        )
        workers = {r.worker for r in report.results}
        # Compact ids starting at 0, at most one per pool process.
        assert workers == set(range(len(workers)))
        assert len(workers) <= 2
        for result in report.results:
            assert result.elapsed_s == result.wall_time
            assert result.elapsed_s >= 0.0

    def test_serial_results_are_worker_zero(self):
        report = analyze_many([(APPEND, ("append", 3), "bbf")])
        assert report.results[0].worker == 0

    def test_report_metrics_cover_the_batch(self):
        from repro.obs import METRICS

        items = [
            (APPEND, ("append", 3), "bbf"),
            (APPEND, ("append", 3), "ffb"),
        ]
        previous = METRICS.set_enabled(True)
        try:
            report = analyze_many(items)
        finally:
            METRICS.set_enabled(previous)
        counters = report.metrics.get("counters", {})
        assert counters.get("simplex.pivots", 0) > 0

    def test_parallel_metrics_reach_the_parent(self):
        """Worker registries die with their processes; the merged
        snapshot and the parent registry must both see their counts."""
        from repro.obs import METRICS

        items = [
            (APPEND, ("append", 3), "bbf"),
            (LOOP, ("p", 1), "b"),
        ]
        previous = METRICS.set_enabled(True)
        before = METRICS.snapshot()
        try:
            report = analyze_many(items, jobs=2)
        finally:
            METRICS.set_enabled(previous)
        batch_pivots = report.metrics["counters"].get("simplex.pivots", 0)
        assert batch_pivots > 0
        parent_pivots = METRICS.snapshot()["counters"].get(
            "simplex.pivots", 0
        )
        assert parent_pivots >= (
            before["counters"].get("simplex.pivots", 0) + batch_pivots
        )

    def test_merged_trace_has_span_roots(self):
        # Two *distinct* items: identical ones are deduplicated and
        # solved once (see TestDedup).
        report = analyze_many(
            [(APPEND, ("append", 3), "bbf"),
             (APPEND, ("append", 3), "ffb")],
            jobs=2,
        )
        names = [root.name for root in report.trace.roots]
        assert names.count("analyze") == 2


class TestValidation:
    """Bad roots fail loudly instead of proving vacuously."""

    def test_undefined_root_is_a_clear_error(self):
        report = analyze_many([(APPEND, ("appendd", 3), "bbf")])
        result = report.results[0]
        assert result.status == "ERROR"
        assert "appendd/3" in result.error
        assert "append/3" in result.error  # names what IS defined

    def test_wrong_arity_names_the_right_one(self):
        report = analyze_many([(APPEND, ("append", 2), "bb")])
        result = report.results[0]
        assert result.status == "ERROR"
        assert "arity" in result.error

    def test_bad_mode_length(self):
        report = analyze_many([(APPEND, ("append", 3), "bb")])
        assert report.results[0].status == "ERROR"
        assert "3 positions" not in report.results[0].error  # msg says 2
        assert "needs 3" in report.results[0].error

    def test_bad_mode_characters(self):
        report = analyze_many([(APPEND, ("append", 3), "bxf")])
        assert report.results[0].status == "ERROR"
        assert "'b'" in report.results[0].error

    def test_parallel_path_reports_the_same_error(self):
        report = analyze_many(
            [(APPEND, ("appendd", 3), "bbf"),
             (APPEND, ("append", 3), "bbf")],
            jobs=2,
        )
        assert report.results[0].status == "ERROR"
        assert report.results[1].status == "PROVED"


class TestDedup:
    """Identical (source, root, mode) items are solved exactly once."""

    def test_every_requested_item_is_reported(self):
        report = analyze_many(
            [
                BatchItem("first", APPEND, ("append", 3), "bbf"),
                BatchItem("again", APPEND, ("append", 3), "bbf"),
                BatchItem("loop", LOOP, ("p", 1), "b"),
                BatchItem("thrice", APPEND, ("append", 3), "bbf"),
            ]
        )
        assert [r.name for r in report.results] == [
            "first", "again", "loop", "thrice",
        ]
        assert [r.status for r in report.results] == [
            "PROVED", "PROVED", "UNKNOWN", "PROVED",
        ]

    def test_duplicates_analyzed_once(self):
        report = analyze_many(
            [(APPEND, ("append", 3), "bbf")] * 5
        )
        # One adorn pass per *unique* analysis, not per requested item.
        assert report.trace.stage("adorn").calls == 1
        assert len(report.results) == 5

    def test_distinct_modes_not_conflated(self):
        report = analyze_many(
            [
                (APPEND, ("append", 3), "bbf"),
                (APPEND, ("append", 3), "ffb"),
            ]
        )
        assert report.trace.stage("adorn").calls == 2

    def test_parallel_dedup_matches_serial(self):
        items = [(APPEND, ("append", 3), "bbf")] * 4 + [
            (LOOP, ("p", 1), "b"),
            (APPEND, ("append", 3), "ffb"),
        ]
        serial = analyze_many(items, jobs=1)
        parallel = analyze_many(items, jobs=2)
        assert [r.status for r in serial.results] == [
            r.status for r in parallel.results
        ]

    def test_single_unique_item_skips_the_pool(self):
        # 5 requested, 1 unique: takes the in-process path even with
        # jobs=2 (nothing to parallelize).
        report = analyze_many(
            [(APPEND, ("append", 3), "bbf")] * 5, jobs=2
        )
        assert all(r.status == "PROVED" for r in report.results)


class TestChunking:
    def test_groups_by_source(self):
        from repro.batch import _make_chunks

        items = list(enumerate([
            BatchItem("a1", APPEND, ("append", 3), "bbf"),
            BatchItem("l1", LOOP, ("p", 1), "b"),
            BatchItem("a2", APPEND, ("append", 3), "ffb"),
        ]))
        chunks = _make_chunks(items, jobs=2)
        assert len(chunks) == 2
        assert [item.name for _, item in chunks[0]] == ["a1", "a2"]

    def test_splits_when_fewer_programs_than_workers(self):
        from repro.batch import _make_chunks

        items = list(enumerate([
            BatchItem(str(i), APPEND, ("append", 3), "bbf")
            for i in range(6)
        ]))
        chunks = _make_chunks(items, jobs=3)
        assert len(chunks) >= 3
        flattened = [index for chunk in chunks for index, _ in chunk]
        assert sorted(flattened) == list(range(6))
