"""Kernel selection through the analyzer: settings, batched per-SCC
dispatch, and kernel-independent certificate fingerprints.

``fm_kernel="array"`` is a pure accelerator — every verdict,
certificate, and stage count must match the ``"int"`` run, the
batched solve dispatch included.  Certificates are keyed without the
kernel, so a cache warmed under one kernel serves the others.
"""

import pytest

from repro.errors import AnalysisError
from repro.lp import parse_program
from repro.core import (
    AnalysisPipeline,
    AnalyzerSettings,
    MemoryCertificateCache,
    TerminationAnalyzer,
    clear_caches,
)
from repro.core.pipeline import resolve_settings
from repro.linalg.array_kernel import numpy_available
from repro.obs import METRICS
from repro.solve import BatchLPBackend

PERM = """
perm([], []).
perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).
append([], Ys, Ys).
append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
"""


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


def _analyze(kernel, **kwargs):
    return TerminationAnalyzer(
        parse_program(PERM),
        AnalyzerSettings(fm_kernel=kernel, **kwargs),
    ).analyze(("perm", 2), "bf")


def _certificate_view(result):
    return [
        (
            tuple(str(m) for m in scc.members),
            scc.status,
            scc.reason,
            None if scc.proof is None
            else (repr(scc.proof.lambdas), repr(scc.proof.thetas)),
        )
        for scc in result.scc_results
    ]


class TestSettings:
    def test_array_kernel_accepted(self):
        settings = AnalyzerSettings(fm_kernel="array")
        norm, backend = resolve_settings(settings)
        assert backend.options["kernel"] == "array"

    def test_unknown_kernel_rejected_eagerly(self):
        with pytest.raises(AnalysisError, match="unknown fm_kernel"):
            TerminationAnalyzer(
                parse_program(PERM), AnalyzerSettings(fm_kernel="simd")
            )


class TestKernelEquivalence:
    @pytest.mark.parametrize("feasibility", ["simplex", "fm"])
    def test_array_matches_int(self, feasibility):
        from_int = _analyze("int", feasibility=feasibility)
        clear_caches()
        from_array = _analyze("array", feasibility=feasibility)
        assert from_array.status == from_int.status
        assert _certificate_view(from_array) == _certificate_view(from_int)

    def test_stage_totals_match(self):
        """The batched dispatch must not change what the stages did:
        same calls, same rows, same pivot totals."""
        structural = ("calls", "rows_in", "rows_out", "pivots",
                      "eliminations")
        from_int = _analyze("int")
        clear_caches()
        from_array = _analyze("array")
        for name in ("rule_systems", "dualize", "theta", "solve",
                     "certify"):
            got = from_array.trace.stage(name)
            want = from_int.trace.stage(name)
            for field in structural:
                assert getattr(got, field) == getattr(want, field), (
                    name, field)


class TestBatchedDispatch:
    def test_default_backend_is_batched(self):
        pipeline = AnalysisPipeline(
            parse_program(PERM), AnalyzerSettings()
        )
        assert isinstance(pipeline.backend, BatchLPBackend)

    def test_array_run_dispatches_one_batch(self):
        if not numpy_available():
            pytest.skip("array kernel needs numpy >= 2.0")
        previous = METRICS.set_enabled(True)
        before = METRICS.snapshot()["counters"]
        try:
            result = _analyze("array")
        finally:
            after = METRICS.snapshot()["counters"]
            METRICS.set_enabled(previous)
        assert result.proved

        def delta(name):
            return after.get(name, 0) - before.get(name, 0)

        assert delta("simplex.batch.dispatches") == 1
        assert delta("simplex.batch.requests") == len(
            [scc for scc in result.scc_results if scc.proof is None
             or not scc.proof.trivially_nonrecursive]
        )


class TestFingerprintKernelIndependence:
    def test_certificates_shared_across_kernels(self):
        """The certificate fingerprint excludes ``fm_kernel`` by
        design — byte-identical kernels may share certificates.  A
        cache warmed under "int" must serve the "array" run."""
        cache = MemoryCertificateCache()
        program = parse_program(PERM)
        warm = TerminationAnalyzer(
            program, AnalyzerSettings(fm_kernel="int"),
            certificate_cache=cache,
        ).analyze(("perm", 2), "bf")
        assert warm.proved
        clear_caches()
        reuse = TerminationAnalyzer(
            program, AnalyzerSettings(fm_kernel="array"),
            certificate_cache=cache,
        ).analyze(("perm", 2), "bf")
        assert reuse.proved
        assert reuse.trace.stage("fingerprint").cache_hits > 0
        assert reuse.trace.stage("solve").calls == 0
