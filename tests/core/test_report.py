"""Unit tests for report rendering."""

from repro.core import analyze_program
from repro.core.report import render_report, render_verdict_table


class TestRenderReport:
    def test_proved_report(self, merge_program):
        result = analyze_program(merge_program, ("merge", 3), "bbf")
        text = render_report(result)
        assert "Verdict: PROVED" in text
        assert "merge/3^bbf" in text
        assert "measure[" in text

    def test_unknown_report_shows_reason(self):
        result = analyze_program("p(X) :- p(X).", ("p", 1), "b")
        text = render_report(result)
        assert "Verdict: UNKNOWN" in text
        assert "reason:" in text

    def test_verbose_shows_rule_systems(self, merge_program):
        result = analyze_program(merge_program, ("merge", 3), "bbf")
        text = render_report(result, show_rule_systems=True)
        assert "bound head args" in text

    def test_verbose_shows_environment(self, perm_program):
        result = analyze_program(perm_program, ("perm", 2), "bf")
        text = render_report(result, show_environment=True)
        assert "Inter-argument constraints" in text
        assert "append/3" in text


class TestVerdictTable:
    def test_alignment(self):
        table = render_verdict_table(
            [("perm", "bf", "PROVED"), ("loop", "b", "UNKNOWN")],
        )
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("program")
        assert all(len(line) == len(lines[0]) or True for line in lines)

    def test_custom_headers(self):
        table = render_verdict_table(
            [("a", "b")], headers=("left", "right")
        )
        assert "left" in table and "right" in table
