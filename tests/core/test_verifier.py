"""Unit tests for the independent certificate verifier."""

from fractions import Fraction

import pytest

from repro.lp import parse_program
from repro.core import analyze_program, verify_proof
from repro.core.adornment import AdornedPredicate
from repro.core.verifier import VerificationError


class TestAcceptsValidProofs:
    @pytest.mark.parametrize(
        "name",
        ["perm", "merge_variant", "expr_parser", "quicksort",
         "gcd_euclid", "even_odd", "fib_peano"],
    )
    def test_corpus_proofs_verify(self, name):
        from repro.corpus.registry import get_program, load

        entry = get_program(name)
        result = analyze_program(load(entry), entry.root, entry.mode)
        assert result.proved
        assert verify_proof(result.proof)

    def test_single_scc_proof_accepted(self, merge_program):
        result = analyze_program(merge_program, ("merge", 3), "bbf")
        (scc_result,) = [
            r for r in result.scc_results
            if not r.proof.trivially_nonrecursive
        ]
        assert verify_proof(scc_result.proof)


class TestRejectsTamperedProofs:
    def _merge_proof(self, merge_program):
        result = analyze_program(merge_program, ("merge", 3), "bbf")
        (scc,) = [
            r for r in result.scc_results
            if not r.proof.trivially_nonrecursive
        ]
        return scc.proof

    def test_zeroed_lambda_rejected(self, merge_program):
        proof = self._merge_proof(merge_program)
        node = AdornedPredicate(("merge", 3), "bbf")
        proof.lambdas[node] = {1: Fraction(0), 2: Fraction(0)}
        with pytest.raises(VerificationError):
            verify_proof(proof)

    def test_single_weight_rejected_for_merge(self, merge_program):
        # Example 5.1's whole point: one argument alone cannot work.
        proof = self._merge_proof(merge_program)
        node = AdornedPredicate(("merge", 3), "bbf")
        proof.lambdas[node] = {1: Fraction(1), 2: Fraction(0)}
        with pytest.raises(VerificationError):
            verify_proof(proof)

    def test_negative_lambda_rejected(self, merge_program):
        proof = self._merge_proof(merge_program)
        node = AdornedPredicate(("merge", 3), "bbf")
        proof.lambdas[node] = {1: Fraction(1), 2: Fraction(-1)}
        with pytest.raises(VerificationError):
            verify_proof(proof)

    def test_zero_theta_cycle_rejected(self, merge_program):
        proof = self._merge_proof(merge_program)
        node = AdornedPredicate(("merge", 3), "bbf")
        proof.thetas[(node, node)] = Fraction(0)
        with pytest.raises(VerificationError):
            verify_proof(proof)

    def test_missing_theta_rejected(self, merge_program):
        proof = self._merge_proof(merge_program)
        node = AdornedPredicate(("merge", 3), "bbf")
        del proof.thetas[(node, node)]
        with pytest.raises(VerificationError):
            verify_proof(proof)

    def test_inflated_theta_rejected(self, merge_program):
        # The decrease is exactly 2 for lambda = (1, 1); claiming a
        # drop of 3 per call must fail the primal check.
        proof = self._merge_proof(merge_program)
        node = AdornedPredicate(("merge", 3), "bbf")
        proof.lambdas[node] = {1: Fraction(1), 2: Fraction(1)}
        proof.thetas[(node, node)] = Fraction(3)
        with pytest.raises(VerificationError):
            verify_proof(proof)

    def test_exact_theta_two_accepted_for_merge(self, merge_program):
        # ... while a drop of exactly 2 is genuine.
        proof = self._merge_proof(merge_program)
        node = AdornedPredicate(("merge", 3), "bbf")
        proof.lambdas[node] = {1: Fraction(1), 2: Fraction(1)}
        proof.thetas[(node, node)] = Fraction(2)
        assert verify_proof(proof)


class TestVacuousDecrease:
    def test_unreachable_recursion_verifies(self):
        # The imported constraints are contradictory: the recursive
        # call can never be reached, so any lambda verifies.
        program = parse_program("p(s(X)) :- q(X), p(X).")
        from repro.core.analyzer import TerminationAnalyzer
        from repro.interarg import SizeEnvironment
        from repro.linalg.constraints import Constraint
        from repro.linalg.linexpr import LinearExpr
        from repro.sizes.size_equations import arg_dimension

        env = SizeEnvironment()
        env.set_from_constraints(
            ("q", 1),
            [Constraint.le(LinearExpr.of(arg_dimension(1)), -1)],
        )
        analyzer = TerminationAnalyzer(program)
        analyzer.use_external_constraints(env)
        result = analyzer.analyze(("p", 1), "b")
        assert result.proved
        assert verify_proof(result.proof)
