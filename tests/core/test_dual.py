"""Unit tests for the dual construction (Eqs. 5-9)."""

from fractions import Fraction

from repro.lp import parse_program
from repro.linalg.constraints import Constraint, ConstraintSystem
from repro.linalg.linexpr import LinearExpr
from repro.linalg.simplex import feasible_point, is_feasible
from repro.core.adornment import AdornedPredicate
from repro.core.dual import (
    lam_var,
    lambda_nonnegativity,
    pair_constraints,
    theta_var,
)
from repro.core.rule_system import build_rule_systems
from repro.interarg import SizeEnvironment
from repro.sizes.size_equations import arg_dimension


def merge_pair():
    program = parse_program(
        """
        merge([X|Xs], [Y|Ys], [X|Zs]) :- X =< Y, merge([Y|Ys], Xs, Zs).
        """
    )
    node = AdornedPredicate(("merge", 3), "bbf")
    (system,) = build_rule_systems(
        program.clauses[0], node, {node}, SizeEnvironment()
    )
    return node, system


class TestMergeDual:
    """Example 5.1's matrix, rederived through the dual."""

    def test_paper_constraint_rows(self):
        node, system = merge_pair()
        constraints = pair_constraints(system)
        l1, l2 = lam_var(node, 1), lam_var(node, 2)
        theta = theta_var(node, node)

        # Expected (paper): l1 >= 0 is separate (Eq. 7); the pair gives
        # l1 - l2 >= 0 is NOT there (swap makes l2 - l1 >= 0 and
        # l1 - l2 >= 0 from Xs and Y rows), and 2*l2 >= theta.
        def entails(expr):
            probe = ConstraintSystem(constraints)
            probe.extend(
                lambda_nonnegativity([(node, (1, 2))])
            )
            return not is_feasible(
                ConstraintSystem(
                    list(probe) + [Constraint.ge(-expr, Fraction(1, 1000))]
                )
            )

        # From the X row: l1 >= 0; from Xs: l1 >= l2; from Y/Ys: l2 >= l1.
        assert entails(LinearExpr.of(l1) - LinearExpr.of(l2))
        assert entails(LinearExpr.of(l2) - LinearExpr.of(l1))
        # Constant row: 2*l2 - theta >= 0.
        assert entails(LinearExpr.of(l2, 2) - LinearExpr.of(theta))

    def test_feasible_with_half(self):
        node, system = merge_pair()
        constraints = ConstraintSystem(pair_constraints(system))
        constraints.extend(lambda_nonnegativity([(node, (1, 2))]))
        constraints.add(
            Constraint.eq(LinearExpr.of(theta_var(node, node)), 1)
        )
        point = feasible_point(constraints)
        assert point is not None
        # lambda1 = lambda2 >= 1/2 (the paper's solution).
        assert point[lam_var(node, 1)] == point[lam_var(node, 2)]
        assert point[lam_var(node, 1)] >= Fraction(1, 2)

    def test_infeasible_with_theta_2_excluded(self):
        # Decrease by 2 per call IS possible for merge (sum drops by
        # exactly 2): lambda = (1, 1) gives it, so theta = 2 stays
        # feasible; theta = 3 must fail (lambda can scale, actually...
        # scaling lambda scales the decrease, so any positive theta is
        # feasible).  What must fail is theta > 0 with lambda pinned
        # small.
        node, system = merge_pair()
        constraints = ConstraintSystem(pair_constraints(system))
        constraints.extend(lambda_nonnegativity([(node, (1, 2))]))
        constraints.add(
            Constraint.eq(LinearExpr.of(theta_var(node, node)), 1)
        )
        constraints.add(
            Constraint.le(LinearExpr.of(lam_var(node, 2)), Fraction(1, 4))
        )
        assert not is_feasible(constraints)


class TestPermDual:
    def test_paper_single_constraint(self):
        """Example 4.1 boils down to 2*lambda >= 1."""
        program = parse_program(
            """
            perm([], []).
            perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1),
                              perm(P1, L).
            """
        )
        node = AdornedPredicate(("perm", 2), "bf")
        env = SizeEnvironment()
        env.set_from_constraints(
            ("append", 3),
            [
                Constraint.eq(
                    LinearExpr.of(arg_dimension(1))
                    + LinearExpr.of(arg_dimension(2)),
                    LinearExpr.of(arg_dimension(3)),
                )
            ],
        )
        (system,) = build_rule_systems(
            program.clauses_for(("perm", 2))[1], node, {node}, env
        )
        constraints = ConstraintSystem(pair_constraints(system))
        lam = lam_var(node, 1)
        theta = theta_var(node, node)
        constraints.extend(lambda_nonnegativity([(node, (1,))]))
        constraints.add(Constraint.eq(LinearExpr.of(theta), 1))

        point = feasible_point(constraints)
        assert point is not None
        assert point[lam] >= Fraction(1, 2)  # 2*lambda >= 1

        # lambda < 1/2 must be infeasible.
        pinned = ConstraintSystem(constraints)
        pinned.add(Constraint.le(LinearExpr.of(lam), Fraction(1, 3)))
        assert not is_feasible(pinned)

    def test_without_interarg_infeasible(self):
        """Without append's constraint the dual has no solution —
        exactly why perm defeated earlier methods."""
        program = parse_program(
            "perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), "
            "perm(P1, L)."
        )
        node = AdornedPredicate(("perm", 2), "bf")
        (system,) = build_rule_systems(
            program.clauses[0], node, {node}, SizeEnvironment()
        )
        constraints = ConstraintSystem(pair_constraints(system))
        constraints.extend(lambda_nonnegativity([(node, (1,))]))
        constraints.add(
            Constraint.eq(LinearExpr.of(theta_var(node, node)), 1)
        )
        assert not is_feasible(constraints)


class TestVariableNames:
    def test_lam_var_distinct_per_adornment(self):
        bbf = AdornedPredicate(("p", 3), "bbf")
        bfb = AdornedPredicate(("p", 3), "bfb")
        assert lam_var(bbf, 1) != lam_var(bfb, 1)

    def test_theta_var_directional(self):
        a = AdornedPredicate(("a", 1), "b")
        b = AdornedPredicate(("b", 1), "b")
        assert theta_var(a, b) != theta_var(b, a)

    def test_same_predicate_shares_lambda(self):
        # When head and subgoal are the same node, mu IS lambda.
        node = AdornedPredicate(("p", 1), "b")
        assert lam_var(node, 1) == lam_var(node, 1)


class TestEliminateWOption:
    def test_raw_system_contains_w(self):
        node, system = merge_pair()
        # merge has no imports, so give it one artificially.
        program = parse_program(
            "p(s(X), Y) :- q(X, Z), p(X, Z)."
        )
        pnode = AdornedPredicate(("p", 2), "bb")
        env = SizeEnvironment()
        env.set_from_constraints(
            ("q", 2),
            [
                Constraint.ge(
                    LinearExpr.of(arg_dimension(1)),
                    LinearExpr.of(arg_dimension(2)),
                )
            ],
        )
        (rule_system,) = build_rule_systems(
            program.clauses[0], pnode, {pnode}, env
        )
        raw = pair_constraints(rule_system, eliminate_w=False)
        w_vars = [
            v for v in raw.variables()
            if isinstance(v, tuple) and v[0] == "w"
        ]
        assert w_vars
        reduced = pair_constraints(rule_system)
        assert not [
            v for v in reduced.variables()
            if isinstance(v, tuple) and v[0] == "w"
        ]

    def test_elimination_preserves_lambda_feasibility(self):
        node, system = merge_pair()
        raw = ConstraintSystem(pair_constraints(system, eliminate_w=False))
        reduced = ConstraintSystem(pair_constraints(system))
        for extra in (
            [],
            [Constraint.eq(LinearExpr.of(theta_var(node, node)), 1)],
        ):
            raw_probe = ConstraintSystem(list(raw) + extra)
            reduced_probe = ConstraintSystem(list(reduced) + extra)
            raw_probe.extend(lambda_nonnegativity([(node, (1, 2))]))
            reduced_probe.extend(lambda_nonnegativity([(node, (1, 2))]))
            assert is_feasible(raw_probe) == is_feasible(reduced_probe)
