"""Unit tests for Eq. 1 rule-system construction."""

import pytest

from repro.lp import parse_program
from repro.lp.terms import Var
from repro.linalg.constraints import Constraint
from repro.linalg.linexpr import LinearExpr
from repro.sizes.norms import size_variable
from repro.sizes.size_equations import arg_dimension
from repro.core.adornment import AdornedPredicate
from repro.core.rule_system import build_rule_systems
from repro.interarg import SizeEnvironment


def sz(name):
    return size_variable(Var(name))


def append_env():
    env = SizeEnvironment()
    env.set_from_constraints(
        ("append", 3),
        [
            Constraint.eq(
                LinearExpr.of(arg_dimension(1))
                + LinearExpr.of(arg_dimension(2)),
                LinearExpr.of(arg_dimension(3)),
            )
        ],
    )
    return env


class TestMergeExample51:
    """Example 5.1: a, A, b, B for the third merge rule."""

    def setup_method(self):
        program = parse_program(
            """
            merge([], Ys, Ys).
            merge(Xs, [], Xs).
            merge([X|Xs], [Y|Ys], [X|Zs]) :- X =< Y,
                                             merge([Y|Ys], Xs, Zs).
            merge([X|Xs], [Y|Ys], [Y|Zs]) :- Y =< X,
                                             merge(Ys, [X|Xs], Zs).
            """
        )
        self.node = AdornedPredicate(("merge", 3), "bbf")
        self.rule3 = program.clauses[2]
        self.program = program

    def system(self):
        (system,) = build_rule_systems(
            self.rule3, self.node, {self.node}, SizeEnvironment()
        )
        return system

    def test_x_matches_paper(self):
        # a = (2, 2); A rows: x1 = 2 + X + Xs, x2 = 2 + Y + Ys.
        system = self.system()
        x1, x2 = system.x_exprs
        assert x1.const == 2 and x2.const == 2
        assert x1.coefficient(sz("X")) == 1
        assert x1.coefficient(sz("Xs")) == 1
        assert x2.coefficient(sz("Y")) == 1

    def test_y_matches_paper(self):
        # b = (2, 0); B rows: y1 = 2 + Y + Ys, y2 = Xs.
        system = self.system()
        y1, y2 = system.y_exprs
        assert y1.const == 2 and y2.const == 0
        assert y1.coefficient(sz("Y")) == 1
        assert y2.coefficient(sz("Xs")) == 1

    def test_comparison_contributes_nothing(self):
        # "The matrices c and C are empty because X =< Y does not
        # supply any contribution."
        assert self.system().imported == []

    def test_bound_positions(self):
        system = self.system()
        assert system.x_positions == (1, 2)
        assert system.y_positions == (1, 2)


class TestPermExample31:
    def setup_method(self):
        program = parse_program(
            """
            perm([], []).
            perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1),
                              perm(P1, L).
            append([], Ys, Ys).
            append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
            """
        )
        self.program = program
        self.node = AdornedPredicate(("perm", 2), "bf")
        self.rule = program.clauses_for(("perm", 2))[1]

    def test_imported_constraints_from_both_appends(self):
        (system,) = build_rule_systems(
            self.rule, self.node, {self.node}, append_env()
        )
        equalities = [c for c in system.imported if c.is_equality()]
        # One instantiated equality per append subgoal.
        assert len(equalities) == 2

    def test_x_and_y_are_single_sizes(self):
        (system,) = build_rule_systems(
            self.rule, self.node, {self.node}, append_env()
        )
        (x,) = system.x_exprs
        (y,) = system.y_exprs
        assert x.coefficient(sz("P")) == 1
        assert y.coefficient(sz("P1")) == 1

    def test_without_env_no_equalities(self):
        (system,) = build_rule_systems(
            self.rule, self.node, {self.node}, SizeEnvironment()
        )
        assert [c for c in system.imported if c.is_equality()] == []


class TestNonlinearRecursion:
    def test_earlier_recursive_subgoal_contributes(self):
        # Section 6.2: when analyzing the SECOND recursive subgoal, the
        # first contributes its inter-argument constraints.
        program = parse_program(
            "f(n(L, R), s(S)) :- f(L, S1), f(R, S2)."
        )
        node = AdornedPredicate(("f", 2), "bf")
        env = SizeEnvironment()
        env.set_from_constraints(
            ("f", 2),
            [
                Constraint.ge(
                    LinearExpr.of(arg_dimension(1)),
                    LinearExpr.of(arg_dimension(2)),
                )
            ],
        )
        systems = build_rule_systems(
            program.clauses[0], node, {node}, env
        )
        assert len(systems) == 2
        first, second = systems
        assert first.imported == []
        assert len(second.imported) >= 1  # from the first f subgoal


class TestNegation:
    def test_preceding_negative_discarded(self):
        program = parse_program(
            "p(s(X)) :- \\+ q(X), p(X)."
        )
        node = AdornedPredicate(("p", 1), "b")
        env = SizeEnvironment()
        env.set_from_constraints(
            ("q", 1),
            [Constraint.ge(LinearExpr.of(arg_dimension(1)), 5)],
        )
        (system,) = build_rule_systems(
            program.clauses[0], node, {node}, env
        )
        # Appendix D: the negated q contributes nothing.
        assert system.imported == []

    def test_negative_recursive_subgoal_analyzed_as_positive(self):
        program = parse_program("p(s(X)) :- \\+ p(X).")
        node = AdornedPredicate(("p", 1), "b")
        systems = build_rule_systems(
            program.clauses[0], node, {node}, SizeEnvironment()
        )
        assert len(systems) == 1
        assert systems[0].subgoal_node == node


class TestEqualityContribution:
    def test_positive_equals_adds_size_equation(self):
        program = parse_program("p(X, Y) :- X = f(Y), p(Y, Y).")
        node = AdornedPredicate(("p", 2), "bb")
        (system,) = build_rule_systems(
            program.clauses[0], node, {node}, SizeEnvironment()
        )
        equalities = [c for c in system.imported if c.is_equality()]
        assert len(equalities) == 1


class TestDescribe:
    def test_describe_mentions_rule(self, merge_program):
        node = AdornedPredicate(("merge", 3), "bbf")
        clause = merge_program.clauses[2]
        (system,) = build_rule_systems(
            clause, node, {node}, SizeEnvironment()
        )
        text = system.describe()
        assert "merge" in text
        assert "bound head args" in text
