"""Unit tests for well-modedness checking."""

from repro.lp import parse_program
from repro.core.wellmoded import check_well_moded


class TestWellModedPrograms:
    def test_append_bbf(self, append_program):
        report = check_well_moded(append_program, ("append", 3), "bbf")
        assert report.well_moded

    def test_perm_bf(self, perm_program):
        report = check_well_moded(perm_program, ("perm", 2), "bf")
        assert report.well_moded

    def test_merge_bbf(self, merge_program):
        report = check_well_moded(merge_program, ("merge", 3), "bbf")
        assert report.well_moded

    def test_parser_bf(self, parser_program):
        report = check_well_moded(parser_program, ("e", 2), "bf")
        assert report.well_moded


class TestViolations:
    def test_unground_answer(self):
        # p(X, Y) :- q(X).  leaves Y unbound in the free answer slot.
        program = parse_program("p(X, Y) :- q(X).\nq(a).")
        report = check_well_moded(program, ("p", 2), "bf")
        assert not report.well_moded
        (violation,) = report.violations
        assert violation.kind == "unground-answer"
        assert "Y" in violation.detail

    def test_floundering_negation(self):
        program = parse_program("p(X) :- \\+ q(X, Y), r(Y).\nq(a, b).\nr(b).")
        report = check_well_moded(program, ("p", 1), "b")
        kinds = {v.kind for v in report.violations}
        assert "floundering" in kinds

    def test_negation_after_binding_is_fine(self):
        program = parse_program(
            "p(X) :- r(X, Y), \\+ q(X, Y).\nq(a, b).\nr(a, b)."
        )
        report = check_well_moded(program, ("p", 1), "b")
        assert report.well_moded

    def test_describe_mentions_clause(self):
        program = parse_program("p(X, Y) :- q(X).\nq(a).")
        report = check_well_moded(program, ("p", 2), "bf")
        assert "unground-answer" in report.describe()


class TestCorpusWellModed:
    def test_every_corpus_program_is_well_moded(self):
        from repro.corpus import all_programs
        from repro.corpus.registry import load

        for entry in all_programs():
            report = check_well_moded(load(entry), entry.root, entry.mode)
            assert report.well_moded, "%s: %s" % (
                entry.name, report.describe(),
            )
