"""Property tests for the certificate verifier.

The verifier must accept exactly the valid certificates: random
weakenings of a genuine certificate (raising theta, shrinking or
zeroing lambda) that break the decrease condition must be rejected,
while harmless transformations (scaling lambda and theta together)
must stay accepted.
"""

import copy
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import analyze_program, verify_proof
from repro.core.adornment import AdornedPredicate
from repro.core.verifier import VerificationError
from repro.lp import parse_program

MERGE = parse_program(
    """
    merge([], Ys, Ys).
    merge(Xs, [], Xs).
    merge([X|Xs], [Y|Ys], [X|Zs]) :- X =< Y, merge([Y|Ys], Xs, Zs).
    merge([X|Xs], [Y|Ys], [Y|Zs]) :- Y =< X, merge(Ys, [X|Xs], Zs).
    """
)

NODE = AdornedPredicate(("merge", 3), "bbf")


@pytest.fixture(scope="module")
def merge_proof():
    result = analyze_program(MERGE, ("merge", 3), "bbf")
    assert result.proved
    (scc,) = [
        r for r in result.scc_results
        if not r.proof.trivially_nonrecursive
    ]
    return scc.proof


def clone(proof):
    twin = copy.copy(proof)
    twin.lambdas = {k: dict(v) for k, v in proof.lambdas.items()}
    twin.thetas = dict(proof.thetas)
    return twin


@given(st.fractions(min_value=1, max_value=10))
@settings(max_examples=25, deadline=None)
def test_joint_scaling_preserved(merge_proof, factor):
    """lambda' = c*lambda with theta' = c*theta stays a certificate."""
    scaled = clone(merge_proof)
    scaled.lambdas[NODE] = {
        k: v * factor for k, v in scaled.lambdas[NODE].items()
    }
    scaled.thetas[(NODE, NODE)] = scaled.thetas[(NODE, NODE)] * factor
    assert verify_proof(scaled)


@given(st.fractions(min_value=0, max_value=10))
@settings(max_examples=25, deadline=None)
def test_inflated_theta_rejected(merge_proof, extra):
    """Any theta above the certified decrease must be rejected."""
    tampered = clone(merge_proof)
    weights = tampered.lambdas[NODE]
    # The genuine decrease for merge is exactly 2 * weight (the two
    # bound sizes shed one cons cell each per call).
    genuine = 2 * weights[1]
    tampered.thetas[(NODE, NODE)] = genuine + extra + 1
    with pytest.raises(VerificationError):
        verify_proof(tampered)


@given(
    st.fractions(min_value=0, max_value=2),
    st.fractions(min_value=0, max_value=2),
)
@settings(max_examples=50, deadline=None)
def test_lambda_balance_is_exactly_what_verifies(merge_proof, w1, w2):
    """Example 5.1's essence, sharpened: the recursive calls SWAP the
    arguments, so any imbalance makes the decrease unbounded below
    (the surplus side can grow without bound).  A weight pair verifies
    iff w1 == w2 >= theta/2."""
    tampered = clone(merge_proof)
    tampered.lambdas[NODE] = {1: Fraction(w1), 2: Fraction(w2)}
    tampered.thetas[(NODE, NODE)] = Fraction(1)
    if w1 == w2 and w1 >= Fraction(1, 2):
        assert verify_proof(tampered)
    else:
        with pytest.raises(VerificationError):
            verify_proof(tampered)


@given(st.integers(min_value=0, max_value=1))
@settings(max_examples=10, deadline=None)
def test_zero_lambda_always_rejected(merge_proof, position_bit):
    tampered = clone(merge_proof)
    tampered.lambdas[NODE] = {1: Fraction(0), 2: Fraction(0)}
    with pytest.raises(VerificationError):
        verify_proof(tampered)
