"""Property tests for the SLD engine against executable semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp import SLDEngine, parse_program
from repro.lp.terms import Atom, Var, list_elements, make_list

from tests.property.strategies import atoms, ground_lists

APPEND = parse_program(
    """
    append([], Ys, Ys).
    append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
    """
)

REVERSE = parse_program(
    """
    rev(L, R) :- rev_acc(L, [], R).
    rev_acc([], A, A).
    rev_acc([X|Xs], A, R) :- rev_acc(Xs, [X|A], R).
    """
)


def to_python(term):
    elements, tail = list_elements(term)
    assert tail == Atom("[]")
    return [element.name for element in elements]


@given(ground_lists(), ground_lists())
@settings(max_examples=60, deadline=None)
def test_append_computes_concatenation(left, right):
    engine = SLDEngine(APPEND)
    result = engine.solve(
        [parse_goal("append", left, right, Var("Z"))]
    )
    assert result.completed
    (solution,) = result.solutions
    assert to_python(solution[Var("Z")]) == to_python(left) + to_python(right)


@given(ground_lists())
@settings(max_examples=50, deadline=None)
def test_append_backward_finds_all_splits(whole):
    engine = SLDEngine(APPEND)
    result = engine.solve(
        [parse_goal("append", Var("A"), Var("B"), whole)]
    )
    assert result.completed
    length = len(to_python(whole))
    assert len(result.solutions) == length + 1
    for solution in result.solutions:
        assert (
            to_python(solution[Var("A")]) + to_python(solution[Var("B")])
            == to_python(whole)
        )


@given(ground_lists())
@settings(max_examples=50, deadline=None)
def test_reverse_matches_python(items):
    engine = SLDEngine(REVERSE)
    result = engine.solve([parse_goal("rev", items, Var("R"))])
    assert result.completed
    (solution,) = result.solutions
    assert to_python(solution[Var("R")]) == list(reversed(to_python(items)))


@given(ground_lists(max_length=5), ground_lists(max_length=5))
@settings(max_examples=40, deadline=None)
def test_double_reverse_is_identity(first, second):
    engine = SLDEngine(REVERSE)
    result = engine.solve([parse_goal("rev", first, Var("R"))])
    (solution,) = result.solutions
    back = engine.solve(
        [parse_goal("rev", solution[Var("R")], Var("B"))]
    )
    assert back.solutions[0][Var("B")] == first


def parse_goal(name, *args):
    from repro.lp.program import Literal
    from repro.lp.terms import Struct

    return Literal(Struct(name, tuple(args)))
