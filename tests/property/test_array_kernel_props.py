"""Differential properties: vectorized array kernel vs integer kernel.

The array kernel inherits the byte-identity contract the integer row
kernel holds against the reference pipeline: for every projection the
same constraint rows, in the same canonical form, in the same
insertion order — and identical backend verdicts, witnesses, and
pivot counts on top.  Near-int64 coefficients must *fall back*, never
wrap: the guarded paths still return the exact integer kernel's rows.

With numpy absent the whole module degrades to the integer kernel;
those tests run regardless (the fallback path is the subject).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FMBlowupError
from repro.linalg.array_kernel import numpy_available
from repro.linalg.constraints import Constraint, ConstraintSystem
from repro.linalg.fourier_motzkin import (
    eliminate,
    eliminate_all,
    eliminate_all_tracked,
)
from repro.linalg.linexpr import LinearExpr
from repro.linalg.simplex import OPTIMAL, feasible_point_batch, solve_lp
from repro.solve import get_backend

from tests.property.strategies import constraint_systems

POOL = ("x", "y", "z", "w")

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="array kernel needs numpy >= 2.0"
)


def identical(first, second):
    """Order-sensitive row-for-row equality of two systems."""
    return list(first.constraints) == list(second.constraints)


@needs_numpy
@given(constraint_systems(POOL), st.sampled_from(POOL))
@settings(max_examples=120)
def test_eliminate_byte_identical(system, var):
    assert identical(
        eliminate(system, var, kernel="array"),
        eliminate(system, var, kernel="int"),
    )


@needs_numpy
@given(
    constraint_systems(POOL),
    st.lists(st.sampled_from(POOL), min_size=1, max_size=4, unique=True),
)
@settings(max_examples=80, deadline=None)
def test_eliminate_all_byte_identical(system, targets):
    assert identical(
        eliminate_all(system, targets, kernel="array"),
        eliminate_all(system, targets, kernel="int"),
    )


@needs_numpy
@given(
    constraint_systems(POOL),
    st.lists(st.sampled_from(POOL), min_size=1, max_size=4, unique=True),
)
@settings(max_examples=60, deadline=None)
def test_tracked_elimination_byte_identical(system, targets):
    """Same projection — or the same blow-up — from both kernels."""
    try:
        from_array = eliminate_all_tracked(system, targets, kernel="array")
    except FMBlowupError:
        from_array = None
    try:
        from_int = eliminate_all_tracked(system, targets, kernel="int")
    except FMBlowupError:
        from_int = None
    if from_array is None or from_int is None:
        assert from_array is None and from_int is None
    else:
        assert identical(from_array, from_int)


@given(constraint_systems(POOL))
@settings(max_examples=80, deadline=None)
def test_fm_backend_verdicts_identical(system):
    """The ``fm`` backend under ``kernel="array"``: same verdict, same
    witness.  Runs with or without numpy — without, the degradation
    path itself is what must produce the identical outcome."""
    from_array = get_backend("fm", kernel="array").feasible_point(system)
    from_int = get_backend("fm").feasible_point(system)
    assert from_array.feasible == from_int.feasible
    if from_array.feasible:
        assert from_array.witness == from_int.witness
        assert system.satisfied_by(from_array.witness)


@given(constraint_systems(POOL))
@settings(max_examples=60, deadline=None)
def test_simplex_array_tableau_identical(system):
    """``solve_lp`` on the fraction-free int64 tableau: identical
    status, optimum, assignment, and pivot count."""
    objective = LinearExpr.constant(0)
    from_array = solve_lp(objective, system, kernel="array")
    from_int = solve_lp(objective, system)
    assert from_array.status == from_int.status
    assert from_array.value == from_int.value
    assert from_array.assignment == from_int.assignment
    assert from_array.pivots == from_int.pivots


@given(st.lists(constraint_systems(POOL), min_size=2, max_size=6))
@settings(max_examples=40, deadline=None)
def test_batched_solves_match_serial(systems):
    """Lockstep multi-tableau dispatch returns exactly the witnesses
    a serial loop over ``solve_lp`` produces, in order."""
    batched = feasible_point_batch(systems, kernel="array")
    objective = LinearExpr.constant(0)
    for system, witness in zip(systems, batched):
        serial = solve_lp(objective, system, kernel="array")
        if serial.status == OPTIMAL:
            assert witness == serial.assignment
        else:
            assert witness is None


@needs_numpy
@given(
    constraint_systems(POOL, max_rows=4),
    st.integers(min_value=2**60, max_value=2**62),
)
@settings(max_examples=40, deadline=None)
def test_near_overflow_falls_back_identically(system, big):
    """Rows with near-int64 coefficients must route through the exact
    fallback and still match the integer kernel byte for byte."""
    spiked = ConstraintSystem(system)
    spiked.add(
        Constraint(
            LinearExpr.of("x", big) + LinearExpr.of("y", -big + 7)
            + LinearExpr.constant(big - 1),
            ">=",
        )
    )
    for var in ("x", "y"):
        assert identical(
            eliminate(spiked, var, kernel="array"),
            eliminate(spiked, var, kernel="int"),
        )
    from_array = get_backend("fm", kernel="array").feasible_point(spiked)
    from_int = get_backend("fm").feasible_point(spiked)
    assert from_array.feasible == from_int.feasible
    assert from_array.witness == from_int.witness
