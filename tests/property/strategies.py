"""Shared hypothesis strategies for terms, expressions, constraints."""

from fractions import Fraction

from hypothesis import strategies as st

from repro.lp.terms import Atom, Struct, Var, make_list
from repro.linalg.constraints import Constraint, ConstraintSystem, EQ, GE
from repro.linalg.linexpr import LinearExpr

ATOM_NAMES = ("a", "b", "c", "nil")
VAR_NAMES = ("X", "Y", "Z", "W")
FUNCTORS = (("f", 1), ("g", 2), ("h", 3), (".", 2))


def atoms():
    return st.sampled_from([Atom(name) for name in ATOM_NAMES])


def variables():
    return st.sampled_from([Var(name) for name in VAR_NAMES])


def terms(max_leaves=12, allow_vars=True):
    """Random terms built bottom-up over a fixed signature."""
    leaves = atoms() if not allow_vars else st.one_of(atoms(), variables())

    def extend(children):
        def build(args_and_functor):
            functor, arity = args_and_functor[0]
            return Struct(functor, tuple(args_and_functor[1]))

        return st.tuples(
            st.sampled_from(FUNCTORS),
            st.lists(children, min_size=1, max_size=3),
        ).map(
            lambda pair: Struct(
                pair[0][0],
                tuple(
                    (pair[1] + [Atom("a")] * pair[0][1])[: pair[0][1]]
                ),
            )
        )

    return st.recursive(leaves, extend, max_leaves=max_leaves)


def ground_terms(max_leaves=12):
    return terms(max_leaves=max_leaves, allow_vars=False)


def ground_lists(max_length=6):
    return st.lists(atoms(), max_size=max_length).map(make_list)


def fractions(max_num=6, max_den=3):
    return st.builds(
        Fraction,
        st.integers(min_value=-max_num, max_value=max_num),
        st.integers(min_value=1, max_value=max_den),
    )


def linear_exprs(var_pool=("x", "y", "z"), max_terms=3):
    """Random small linear expressions with exact coefficients."""

    def build(items, const):
        coeffs = {}
        for name, coeff in items:
            coeffs[name] = coeffs.get(name, Fraction(0)) + coeff
        return LinearExpr(coeffs, const)

    return st.builds(
        build,
        st.lists(
            st.tuples(st.sampled_from(var_pool), fractions()),
            max_size=max_terms,
        ),
        fractions(),
    )


def constraints(var_pool=("x", "y", "z")):
    return st.builds(
        Constraint,
        linear_exprs(var_pool),
        st.sampled_from([GE, EQ]),
    )


def constraint_systems(var_pool=("x", "y", "z"), max_rows=6):
    return st.lists(constraints(var_pool), max_size=max_rows).map(
        ConstraintSystem
    )


def assignments(var_pool=("x", "y", "z")):
    return st.fixed_dictionaries(
        {name: fractions(max_num=8) for name in var_pool}
    )


def pure_programs(max_clauses=4):
    """Small pure logic programs over ``p/1`` and ``q/1``.

    No cut, negation, or builtins — exactly the fragment where every
    registered termination method's verdict is sound, so cross-method
    properties (never PROVED *and* DISPROVED) can quantify over them.
    A ``p(a).`` fact is always appended so the root ``p/1`` is defined.
    """
    from repro.lp.program import Clause, Literal, Program

    heads = st.tuples(st.sampled_from(("p", "q")), terms(max_leaves=4))
    clauses = st.tuples(heads, st.lists(heads, max_size=2))

    def build(drawn):
        built = [
            Clause(
                head=Struct(name, (argument,)),
                body=tuple(
                    Literal(Struct(body_name, (body_argument,)))
                    for body_name, body_argument in body
                ),
            )
            for (name, argument), body in drawn
        ]
        built.append(Clause(head=Struct("p", (Atom("a"),))))
        return Program(tuple(built))

    return st.lists(clauses, max_size=max_clauses).map(build)
