"""Property tests for the syntactic-transformation layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp.program import Clause, Literal, Program
from repro.lp.terms import Struct, Var
from repro.lp.unify import apply_subst_clause
from repro.transform.equality import eliminate_positive_equality
from repro.transform.subsumption import eliminate_subsumed, subsumes

from tests.property.strategies import ground_terms, terms


def clauses(max_body=3):
    """Random clauses p(t) :- q_i(t_i) over a tiny signature."""

    def build(head_arg, body_args):
        return Clause(
            head=Struct("p", (head_arg,)),
            body=tuple(
                Literal(Struct("q", (arg,))) for arg in body_args
            ),
        )

    return st.builds(
        build,
        terms(max_leaves=6),
        st.lists(terms(max_leaves=4), max_size=max_body),
    )


@given(clauses())
def test_subsumption_reflexive(clause):
    assert subsumes(clause, clause)


@given(clauses(), ground_terms(max_leaves=4))
@settings(max_examples=80)
def test_clause_subsumes_its_instances(clause, replacement):
    variables = clause.variables()
    if not variables:
        return
    instance = apply_subst_clause(clause, {variables[0]: replacement})
    assert subsumes(clause, instance)


@given(st.lists(clauses(), min_size=1, max_size=5))
@settings(max_examples=60)
def test_eliminate_subsumed_keeps_a_generalization(clause_list):
    program = Program()
    for clause in clause_list:
        program.add_clause(clause)
    simplified = eliminate_subsumed(program)
    # Every removed clause is subsumed by some survivor.
    survivors = list(simplified.clauses)
    for clause in program.clauses:
        assert any(subsumes(keeper, clause) for keeper in survivors)


@given(st.lists(clauses(), min_size=1, max_size=4))
@settings(max_examples=40)
def test_eliminate_subsumed_idempotent(clause_list):
    program = Program()
    for clause in clause_list:
        program.add_clause(clause)
    once = eliminate_subsumed(program)
    twice = eliminate_subsumed(once)
    assert str(once) == str(twice)


@given(terms(max_leaves=5), terms(max_leaves=5))
@settings(max_examples=60)
def test_equality_elimination_removes_all_equalities(left, right):
    clause = Clause(
        head=Struct("p", (Var("Z"),)),
        body=(
            Literal(Struct("=", (left, right))),
            Literal(Struct("q", (Var("Z"),))),
        ),
    )
    program = Program()
    program.add_clause(clause)
    result = eliminate_positive_equality(program)
    for out in result.clauses:
        assert all(lit.indicator != ("=", 2) or not lit.positive
                   for lit in out.body)
