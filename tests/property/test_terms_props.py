"""Property tests for terms and size norms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp.terms import term_variables
from repro.lp.unify import apply_subst
from repro.sizes.norms import LIST_LENGTH, RIGHT_SPINE, STRUCTURAL, size_variable

from tests.property.strategies import ground_terms, terms, variables


@given(ground_terms())
def test_structural_size_nonnegative(term):
    assert term.structural_size() >= 0


@given(ground_terms())
def test_structural_size_is_sum_of_arities(term):
    assert term.structural_size() == sum(a for _, a in term.functors())


@given(ground_terms())
def test_norms_agree_with_symbolic_on_ground(term):
    for norm in (STRUCTURAL, LIST_LENGTH, RIGHT_SPINE):
        expr = norm.size_expr(term)
        assert expr.is_constant()
        assert expr.const == norm.ground_size(term)


@given(terms())
def test_size_polynomial_nonnegative_coefficients(term):
    # Eq. 1 requires nonnegative (a, A) for every atom.
    for norm in (STRUCTURAL, LIST_LENGTH, RIGHT_SPINE):
        expr = norm.size_expr(term)
        assert expr.const >= 0
        assert all(coeff >= 0 for _, coeff in expr.items())


@given(terms(), ground_terms(max_leaves=6))
@settings(max_examples=60)
def test_size_compositional_under_substitution(template, replacement):
    """size(t[x := g]) = size-polynomial evaluated at size(g)."""
    variables_of = term_variables(template)
    if not variables_of:
        return
    var = variables_of[0]
    substituted = apply_subst(template, {var: replacement})

    expr = STRUCTURAL.size_expr(template)
    values = {
        size_variable(v): (
            STRUCTURAL.ground_size(replacement) if v == var else 0
        )
        for v in variables_of
    }
    # Remaining variables valued at 0 corresponds to substituting a
    # size-0 constant; do that for the comparison term too.
    from repro.lp.terms import Atom

    fully_ground = substituted
    for other in term_variables(substituted):
        fully_ground = apply_subst(fully_ground, {other: Atom("a")})
    assert STRUCTURAL.ground_size(fully_ground) == expr.evaluate(values)


@given(ground_terms())
def test_subterms_include_self_and_leaves(term):
    subterms = list(term.subterms())
    assert subterms[0] == term
    assert all(not list(leaf.variables()) for leaf in subterms)


@given(terms())
def test_term_variables_deduplicated(term):
    collected = term_variables(term)
    assert len(collected) == len(set(collected))
