"""Property tests for unification."""

from hypothesis import given, settings

from repro.lp.unify import apply_subst, unify

from tests.property.strategies import ground_terms, terms


@given(terms())
def test_unify_with_self_succeeds(term):
    subst = unify(term, term, occurs_check=True)
    assert subst == {}


@given(terms(), terms())
@settings(max_examples=120)
def test_mgu_is_a_unifier(left, right):
    subst = unify(left, right, occurs_check=True)
    if subst is not None:
        assert apply_subst(left, subst) == apply_subst(right, subst)


@given(terms(), terms())
@settings(max_examples=120)
def test_mgu_idempotent(left, right):
    subst = unify(left, right, occurs_check=True)
    if subst is not None:
        for value in subst.values():
            assert apply_subst(value, subst) == value


@given(terms(), terms())
def test_unify_symmetric_in_success(left, right):
    forward = unify(left, right, occurs_check=True)
    backward = unify(right, left, occurs_check=True)
    assert (forward is None) == (backward is None)


@given(ground_terms(), ground_terms())
def test_ground_unification_is_equality(left, right):
    subst = unify(left, right, occurs_check=True)
    if left == right:
        assert subst == {}
    else:
        assert subst is None


@given(terms(), ground_terms())
@settings(max_examples=80)
def test_unify_against_ground_grounds_term(template, ground):
    subst = unify(template, ground, occurs_check=True)
    if subst is not None:
        assert apply_subst(template, subst) == ground
