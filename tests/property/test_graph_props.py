"""Property tests for the graph substrate (DESIGN.md section 7)."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.digraph import Digraph
from repro.graph.minplus import (
    find_nonpositive_cycle,
    has_nonpositive_cycle,
    min_plus_closure,
)
from repro.graph.scc import condensation, strongly_connected_components


def small_graphs(max_nodes=5):
    return st.integers(min_value=1, max_value=max_nodes).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(
                    st.integers(0, n - 1), st.integers(0, n - 1)
                ),
                max_size=2 * n,
            ),
        )
    )


def weighted_graphs(max_nodes=4):
    return st.integers(min_value=1, max_value=max_nodes).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.dictionaries(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                st.integers(min_value=-3, max_value=5),
                max_size=n * n,
            ),
        )
    )


def brute_force_shortest(nodes, weights, source, target, max_hops):
    """Shortest walk weight with at most *max_hops* edges."""
    best = None
    frontier = {source: 0}
    for _ in range(max_hops):
        next_frontier = {}
        for node, cost in frontier.items():
            for (u, v), w in weights.items():
                if u != node:
                    continue
                candidate = cost + w
                if v == target and (best is None or candidate < best):
                    best = candidate
                if (
                    v not in next_frontier
                    or candidate < next_frontier[v]
                ):
                    next_frontier[v] = candidate
        frontier = next_frontier
    return best


@given(weighted_graphs())
@settings(max_examples=60, deadline=None)
def test_minplus_matches_brute_force_without_negative_cycles(data):
    n, weights = data
    nodes = list(range(n))
    if has_nonpositive_cycle(nodes, weights):
        return  # Floyd-Warshall distances are not walks' infima then
    dist = min_plus_closure(nodes, weights)
    for source in nodes:
        for target in nodes:
            brute = brute_force_shortest(nodes, weights, source, target, n)
            assert dist[(source, target)] == brute


@given(weighted_graphs())
@settings(max_examples=60, deadline=None)
def test_witness_cycle_is_genuine(data):
    n, weights = data
    nodes = list(range(n))
    cycle = find_nonpositive_cycle(nodes, weights)
    if cycle is None:
        return
    assert cycle[0] == cycle[-1]
    total = sum(weights[(u, v)] for u, v in zip(cycle, cycle[1:]))
    assert total <= 0


@given(small_graphs())
@settings(max_examples=80, deadline=None)
def test_sccs_partition_nodes(data):
    n, edges = data
    graph = Digraph.from_edges(edges, nodes=range(n))
    components = strongly_connected_components(graph)
    seen = list(itertools.chain.from_iterable(components))
    assert sorted(seen) == sorted(graph.nodes)
    assert len(seen) == len(set(seen))


@given(small_graphs())
@settings(max_examples=80, deadline=None)
def test_condensation_is_acyclic(data):
    n, edges = data
    graph = Digraph.from_edges(edges, nodes=range(n))
    components, dag = condensation(graph)
    # No self loops, and topological order exists.
    from repro.graph.scc import topological_order

    for node in dag.nodes:
        assert not dag.has_edge(node, node)
    order = topological_order(dag)
    assert len(order) == len(components)


@given(small_graphs())
@settings(max_examples=80, deadline=None)
def test_scc_order_is_bottom_up(data):
    n, edges = data
    graph = Digraph.from_edges(edges, nodes=range(n))
    components = strongly_connected_components(graph)
    index_of = {}
    for i, component in enumerate(components):
        for node in component:
            index_of[node] = i
    for source, target in graph.edges():
        # A dependency (edge source -> target) means target's component
        # must come first (lower SCCs first).
        assert index_of[target] <= index_of[source]
