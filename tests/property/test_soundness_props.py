"""Property tests of the headline soundness invariant.

If the analyzer PROVES a (program, mode) pair, then every well-moded
query must terminate in the SLD engine — randomized over query inputs.
Also: the measure claimed by a certificate must actually decrease along
observed recursive calls.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp import SLDEngine, parse_program
from repro.lp.program import Literal
from repro.lp.terms import Struct, Var
from repro.core import analyze_program
from repro.core.adornment import AdornedPredicate
from repro.sizes.norms import STRUCTURAL

from tests.property.strategies import ground_lists, pure_programs

PERM = parse_program(
    """
    perm([], []).
    perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).
    append([], Ys, Ys).
    append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
    """
)

MERGE = parse_program(
    """
    merge([], Ys, Ys).
    merge(Xs, [], Xs).
    merge([X|Xs], [Y|Ys], [X|Zs]) :- X =< Y, merge([Y|Ys], Xs, Zs).
    merge([X|Xs], [Y|Ys], [Y|Zs]) :- Y =< X, merge(Ys, [X|Xs], Zs).
    """
)


@given(ground_lists(max_length=5))
@settings(max_examples=25, deadline=None)
def test_perm_terminates_on_any_ground_list(items):
    engine = SLDEngine(PERM)
    result = engine.solve(
        [Literal(Struct("perm", (items, Var("Q"))))],
        max_depth=300,
        max_steps=400000,
    )
    assert result.completed


@given(
    st.lists(st.integers(min_value=0, max_value=9), max_size=5),
    st.lists(st.integers(min_value=0, max_value=9), max_size=5),
)
@settings(max_examples=30, deadline=None)
def test_merge_terminates_and_decreases_measure(left, right):
    from repro.lp.terms import Atom, make_list

    left_term = make_list(Atom(v) for v in sorted(left))
    right_term = make_list(Atom(v) for v in sorted(right))

    engine = SLDEngine(MERGE)
    result = engine.solve(
        [Literal(Struct("merge", (left_term, right_term, Var("Z"))))],
        max_depth=200,
        max_steps=100000,
    )
    assert result.completed
    assert result.succeeded

    # Certificate invariant: with lambda = (1/2, 1/2), the weighted
    # size of (arg1, arg2) strictly decreases from the merge call to
    # its recursive sub-call, by >= 1.  The two recursive rules map
    # (xs, ys) to either ([y|ys], xs-tail) or (ys-tail, [x|xs]); check
    # the decrease directly on the ground pair.
    analysis = analyze_program(MERGE, ("merge", 3), "bbf")
    node = AdornedPredicate(("merge", 3), "bbf")
    weights = analysis.proof.proof_for(node).lambda_for(node)

    def measure(a, b):
        return (
            weights[1] * STRUCTURAL.ground_size(a)
            + weights[2] * STRUCTURAL.ground_size(b)
        )

    def simulate(a, b):
        from repro.lp.terms import list_elements, Atom as A

        elements_a, _ = list_elements(a)
        elements_b, _ = list_elements(b)
        if not elements_a or not elements_b:
            return None
        x, y = elements_a[0], elements_b[0]
        from repro.lp.terms import cons

        tail_a, _ = list_elements(a)
        if x.name <= y.name:
            return (b, _tail(a))
        return (_tail(b), a)

    def _tail(term):
        return term.args[1]

    current = (left_term, right_term)
    for _ in range(20):
        next_pair = simulate(*current)
        if next_pair is None:
            break
        assert measure(*current) >= measure(*next_pair) + 1
        current = next_pair


@given(ground_lists(max_length=4))
@settings(max_examples=20, deadline=None)
def test_certificate_measure_nonnegative(items):
    analysis = analyze_program(PERM, ("perm", 2), "bf")
    node = AdornedPredicate(("perm", 2), "bf")
    weights = analysis.proof.proof_for(node).lambda_for(node)
    value = weights[1] * STRUCTURAL.ground_size(items)
    assert value >= 0


@given(pure_programs())
@settings(max_examples=15, deadline=None)
def test_methods_never_prove_and_disprove(program):
    """The three-valued soundness invariant across provers: no program
    is PROVED terminating by any method while the non-termination
    detector DISPROVES it, and the portfolio's verdict agrees with the
    standalone run of whichever method decided it."""
    from repro.core import AnalyzerSettings, DISPROVED, PROVED
    from repro.methods import run_method

    verdicts = {}
    for name in ("argsize", "sizechange", "nonterm", "portfolio"):
        verdicts[name] = run_method(
            program, ("p", 1), "b",
            settings=AnalyzerSettings(method=name),
        ).status

    proved_any = any(
        verdicts[name] == PROVED
        for name in ("argsize", "sizechange", "portfolio")
    )
    assert not (proved_any and verdicts["nonterm"] == DISPROVED)

    # Portfolio agreement with the winning method standalone.
    if verdicts["portfolio"] == DISPROVED:
        assert verdicts["nonterm"] == DISPROVED
    if verdicts["argsize"] == PROVED:
        assert verdicts["portfolio"] == PROVED
