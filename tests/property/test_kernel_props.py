"""Differential properties: integer row kernel vs reference pipeline.

The kernel's contract is *byte-identity*, not mere equivalence: for
every projection the two paths must produce the same constraint rows,
in the same canonical form, in the same insertion order.  These tests
compare ``.constraints`` tuples directly (order-sensitive) on random
systems, and the ``fm`` backend's verdicts and witnesses on top.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FMBlowupError
from repro.linalg.fourier_motzkin import (
    eliminate,
    eliminate_all,
    eliminate_all_tracked,
)
from repro.solve import get_backend

from tests.property.strategies import constraint_systems

POOL = ("x", "y", "z", "w")


def identical(first, second):
    """Order-sensitive row-for-row equality of two systems."""
    return list(first.constraints) == list(second.constraints)


@given(constraint_systems(POOL), st.sampled_from(POOL))
@settings(max_examples=120)
def test_eliminate_byte_identical(system, var):
    assert identical(
        eliminate(system, var, kernel="int"),
        eliminate(system, var, kernel="reference"),
    )


@given(constraint_systems(POOL), st.sampled_from(POOL))
@settings(max_examples=80)
def test_eliminate_unpruned_byte_identical(system, var):
    assert identical(
        eliminate(system, var, prune=False, kernel="int"),
        eliminate(system, var, prune=False, kernel="reference"),
    )


@given(
    constraint_systems(POOL),
    st.lists(st.sampled_from(POOL), min_size=1, max_size=4, unique=True),
)
@settings(max_examples=80, deadline=None)
def test_eliminate_all_byte_identical(system, targets):
    assert identical(
        eliminate_all(system, targets, kernel="int"),
        eliminate_all(system, targets, kernel="reference"),
    )


@given(
    constraint_systems(POOL),
    st.lists(st.sampled_from(POOL), min_size=1, max_size=4, unique=True),
)
@settings(max_examples=60, deadline=None)
def test_eliminate_all_with_lp_prune_byte_identical(system, targets):
    assert identical(
        eliminate_all(system, targets, lp_prune_threshold=8, kernel="int"),
        eliminate_all(
            system, targets, lp_prune_threshold=8, kernel="reference"
        ),
    )


@given(
    constraint_systems(POOL),
    st.lists(st.sampled_from(POOL), min_size=1, max_size=4, unique=True),
)
@settings(max_examples=60, deadline=None)
def test_tracked_elimination_byte_identical(system, targets):
    """Same projection — or the same blow-up — from both kernels."""
    try:
        from_int = eliminate_all_tracked(system, targets, kernel="int")
    except FMBlowupError:
        from_int = None
    try:
        from_ref = eliminate_all_tracked(system, targets,
                                         kernel="reference")
    except FMBlowupError:
        from_ref = None
    if from_int is None or from_ref is None:
        assert from_int is None and from_ref is None
    else:
        assert identical(from_int, from_ref)


@given(constraint_systems(POOL))
@settings(max_examples=80, deadline=None)
def test_fm_backend_verdicts_identical(system):
    """The ``fm`` backend: same feasibility verdict, same surviving
    row count, the same witness — and the witness satisfies the
    system."""
    from_int = get_backend("fm").feasible_point(system)
    from_ref = get_backend("fm", kernel="reference").feasible_point(system)
    assert from_int.feasible == from_ref.feasible
    assert from_int.stats.rows_out == from_ref.stats.rows_out
    if from_int.feasible:
        assert from_int.witness == from_ref.witness
        assert system.satisfied_by(from_int.witness)
