"""Property tests for the canonical per-SCC fingerprints.

The incremental layer is sound only if its fingerprints are exactly
as discriminating as re-analysis: two SCCs with the same fingerprint
must be the same analysis problem.  These tests pin the equivalences
the canonicalization promises —

- renaming every variable (fingerprints alpha-number variables per
  clause, so names never enter the digest);
- renaming every predicate (member references go through
  Weisfeiler–Leman color tokens, callee references through
  content-addressed polyhedron tokens — never through names);
- reordering clauses (per-member clause renderings are sorted);

— and the locality the invalidation story relies on: editing one
SCC's clauses changes that SCC's certificate fingerprint and no
other's (callees below it are untouched; independent SCCs never see
it).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    MemoryCertificateCache,
    TerminationAnalyzer,
    clear_caches,
)
from repro.lp import parse_program

# One program, four dependency SCCs of distinct shapes: a direct
# recursion (leq), a two-member mutual recursion (even/odd — exercises
# the color-refinement tie-breaking), a recursion importing a lower
# SCC (count calls leq), and a nonrecursive root composing them.
TEMPLATE = "\n".join([
    "{leq}(z, {A}).",
    "{leq}(s({X}), s({Y})) :- {leq}({X}, {Y}).",
    "{even}(z).",
    "{even}(s({X})) :- {odd}({X}).",
    "{odd}(s({X})) :- {even}({X}).",
    "{count}([], z).",
    "{count}([{H}|{T}], s({N})) :- {count}({T}, {N}), {leq}({N}, {N}).",
    "{main}({L}, {N}) :- {count}({L}, {N}), {even}({N}).",
])

BASE_NAMES = {
    "leq": "leq", "even": "even", "odd": "odd",
    "count": "count", "main": "main",
    "A": "A", "X": "X", "Y": "Y", "H": "H", "T": "T",
    "N": "N", "L": "L",
}

VAR_POOL = ["X", "Y", "Z", "W", "U", "V", "Acc", "Out", "In1", "Tmp"]
PRED_POOL = ["p", "q", "r", "aux", "loop", "walk", "step", "probe"]


def fingerprint_sets(text, root_name):
    """Analyze *text* with a fresh cache; return its (env keys, cert
    keys) — the exact fingerprints the incremental layer would store."""
    # The process-wide environment memo would otherwise satisfy a
    # repeated program without running inference — and publish nothing.
    clear_caches()
    cache = MemoryCertificateCache()
    program = parse_program(text)
    result = TerminationAnalyzer(
        program, certificate_cache=cache
    ).analyze((root_name, 2), "bf")
    assert result.status in ("PROVED", "UNKNOWN")
    env_keys = {k for k, (_, kind) in cache.entries.items()
                if kind == "env"}
    cert_keys = {k for k, (_, kind) in cache.entries.items()
                 if kind == "cert"}
    assert cert_keys, "no recursive SCC produced a certificate"
    return env_keys, cert_keys


def render(names):
    return TEMPLATE.format(**names)


BASE_ENV, BASE_CERT = fingerprint_sets(render(BASE_NAMES), "main")


@settings(max_examples=10, deadline=None)
@given(st.permutations(VAR_POOL))
def test_variable_renaming_preserves_fingerprints(pool):
    names = dict(BASE_NAMES)
    for placeholder, fresh in zip(("A", "X", "Y", "H", "T", "N", "L"),
                                  pool):
        names[placeholder] = fresh
    env_keys, cert_keys = fingerprint_sets(render(names), "main")
    assert env_keys == BASE_ENV
    assert cert_keys == BASE_CERT


@settings(max_examples=10, deadline=None)
@given(st.permutations(PRED_POOL))
def test_predicate_renaming_preserves_fingerprints(pool):
    names = dict(BASE_NAMES)
    for placeholder, fresh in zip(("leq", "even", "odd", "count",
                                   "main"), pool):
        names[placeholder] = fresh
    env_keys, cert_keys = fingerprint_sets(render(names), names["main"])
    assert env_keys == BASE_ENV
    assert cert_keys == BASE_CERT


@settings(max_examples=10, deadline=None)
@given(st.permutations(list(range(8))))
def test_clause_reordering_preserves_fingerprints(order):
    lines = render(BASE_NAMES).split("\n")
    shuffled = "\n".join(lines[i] for i in order)
    env_keys, cert_keys = fingerprint_sets(shuffled, "main")
    assert env_keys == BASE_ENV
    assert cert_keys == BASE_CERT


def test_editing_one_scc_changes_only_its_certificate():
    """Append a clause to the count SCC: count's certificate
    fingerprint rotates; leq's and even/odd's — which count depends on
    or ignores, but which never see count — survive verbatim."""
    edited = render(BASE_NAMES) + "\ncount([z], s(z)).\n"
    _, cert_keys = fingerprint_sets(edited, "main")
    assert len(BASE_CERT) == 3  # leq, even+odd, count
    assert len(cert_keys) == 3
    # Exactly one certificate fingerprint differs (count's: one key
    # dropped, one key added).
    assert len(BASE_CERT ^ cert_keys) == 2


def test_editing_a_leaf_invalidates_dependents_via_content():
    """Editing leq so its *proved relation* changes must rotate the
    fingerprints of SCCs importing it (count embeds leq's polyhedron
    token), not just leq's own — the firewall is content-addressed,
    not name-addressed."""
    weakened = render(BASE_NAMES).replace(
        "leq(z, A).", "leq(z, A).\nleq(s(z), z).\n"
    )
    _, cert_keys = fingerprint_sets(weakened, "main")
    # leq's own fingerprint changed (clauses differ) and count's
    # changed too (its imported leq polyhedron differs); even/odd is
    # independent and survives.
    assert len(BASE_CERT & cert_keys) == 1
