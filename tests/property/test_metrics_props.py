"""Property tests: the snapshot merge algebra.

``merge_snapshots`` is the contract that lets batch and serve workers
ship their metrics home in *any* completion order: over counters and
histogram bucket counts it must be associative and commutative with
the empty snapshot as identity.  (Gauges are excluded on purpose —
they are last-write-wins and therefore order-dependent by design; the
float histogram ``sum`` is only associative up to IEEE rounding, so
it is compared to relative tolerance rather than bit-for-bit.)  The
final test exercises the same law end to end through a real
:class:`~repro.serve.pool.SolverPool` with two worker processes.
"""

import math

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.obs.metrics import (  # noqa: E402
    MetricsRegistry,
    labeled,
    merge_snapshots,
)

#: Fixed bucket layouts per histogram name — merge requires agreeing
#: boundaries, exactly as the process-wide registry guarantees.
_HISTOGRAMS = {
    "fm.rows_ms": (1, 5, 25),
    "serve.request_ms": (1, 10, 100, 1000),
}

_COUNTER_NAMES = st.sampled_from([
    "serve.requests",
    "fm.rows.generated",
    labeled("serve.responses", status=200),
    labeled("serve.responses", status=404),
])


@st.composite
def snapshots(draw):
    """One worker's plausible metrics snapshot."""
    registry = MetricsRegistry()
    for name in draw(st.lists(_COUNTER_NAMES, max_size=4)):
        registry.counter(name).inc(draw(st.integers(0, 1000)))
    for name, buckets in _HISTOGRAMS.items():
        if not draw(st.booleans()):
            continue
        histogram = registry.histogram(name, buckets)
        for value in draw(st.lists(
            st.floats(0, 5000, allow_nan=False), max_size=8
        )):
            histogram.observe(value)
    return registry.snapshot()


def mergeable(snapshot):
    """The order-independent part of a snapshot (drop gauges)."""
    return {
        "counters": snapshot["counters"],
        "histograms": snapshot["histograms"],
    }


def assert_equivalent(a, b):
    """Exact equality on counters and bucket counts; the float
    histogram ``sum`` up to relative tolerance (addition reassociates
    across merge orders)."""
    a, b = mergeable(a), mergeable(b)
    assert a["counters"] == b["counters"]
    assert set(a["histograms"]) == set(b["histograms"])
    for name, left in a["histograms"].items():
        right = b["histograms"][name]
        assert left["buckets"] == right["buckets"]
        assert left["counts"] == right["counts"]
        assert left["count"] == right["count"]
        assert math.isclose(
            left["sum"], right["sum"], rel_tol=1e-9, abs_tol=1e-9
        )


@settings(max_examples=60, deadline=None)
@given(snapshots(), snapshots())
def test_merge_is_commutative(a, b):
    assert_equivalent(merge_snapshots(a, b), merge_snapshots(b, a))


@settings(max_examples=60, deadline=None)
@given(snapshots(), snapshots(), snapshots())
def test_merge_is_associative(a, b, c):
    left = merge_snapshots(merge_snapshots(a, b), c)
    right = merge_snapshots(a, merge_snapshots(b, c))
    assert_equivalent(left, right)


@settings(max_examples=60, deadline=None)
@given(snapshots())
def test_empty_snapshot_is_the_identity(a):
    empty = MetricsRegistry().snapshot()
    assert_equivalent(merge_snapshots(a, empty), a)
    assert_equivalent(merge_snapshots(empty, a), a)


@settings(max_examples=40, deadline=None)
@given(st.lists(snapshots(), min_size=2, max_size=5),
       st.randoms(use_true_random=False))
def test_any_merge_order_gives_one_answer(parts, rng):
    reference = merge_snapshots(*parts)
    shuffled = list(parts)
    rng.shuffle(shuffled)
    assert_equivalent(merge_snapshots(*shuffled), reference)


@settings(max_examples=60, deadline=None)
@given(snapshots(), snapshots())
def test_merged_histogram_counts_stay_coherent(a, b):
    merged = merge_snapshots(a, b)
    for name, data in merged["histograms"].items():
        assert sum(data["counts"]) == data["count"]
        assert data["buckets"] == list(_HISTOGRAMS[name])


def test_concurrent_pool_workers_merge_order_independently():
    """The law, live: two worker processes solve different programs;
    whatever order their deltas land in, the merged registry agrees."""
    from repro.serve.pool import SolverPool
    from repro.serve.protocol import AnalyzeRequest

    append = (
        "append([], Y, Y).\n"
        "append([X|Xs], Y, [X|Zs]) :- append(Xs, Y, Zs).\n"
    )
    requests = [
        AnalyzeRequest(source=append, root=("append", 3), mode=mode)
        for mode in ("bbf", "ffb", "bff")
    ]
    pool = SolverPool(jobs=2)
    try:
        futures = [pool.submit(request) for request in requests]
        deltas = [future.result(120)[2] for future in futures]
    finally:
        pool.shutdown()
    forward = merge_snapshots(*deltas)
    backward = merge_snapshots(*reversed(deltas))
    assert mergeable(forward) == mergeable(backward)
    # And the merged totals are the per-worker sums, not approximations.
    for name in forward["counters"]:
        assert forward["counters"][name] == sum(
            delta["counters"].get(name, 0) for delta in deltas
        )
