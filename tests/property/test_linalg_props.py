"""Property tests for the linear-algebra substrate.

Invariants:

- FM elimination preserves satisfiability and computes the exact
  projection (any solution of the projection extends; any solution of
  the original restricts);
- the tracked (Chernikov) elimination agrees with plain FM;
- the simplex agrees with brute-force checks and satisfies weak/strong
  duality on random instances;
- polyhedron joins are upper bounds and widening over-approximates.
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FMBlowupError
from repro.linalg.constraints import Constraint, ConstraintSystem
from repro.linalg.fourier_motzkin import (
    eliminate,
    eliminate_all_tracked,
    prune_redundant,
)
from repro.linalg.linexpr import LinearExpr
from repro.linalg.polyhedron import Polyhedron
from repro.linalg.simplex import OPTIMAL, feasible_point, is_feasible, solve_lp

from tests.property.strategies import (
    assignments,
    constraint_systems,
    linear_exprs,
)

POOL = ("x", "y", "z")


@given(constraint_systems(POOL), assignments(POOL))
@settings(max_examples=120)
def test_fm_projection_contains_restrictions(system, point):
    """If point satisfies the system, its restriction satisfies the
    projection (soundness of elimination)."""
    if not system.satisfied_by(point):
        return
    projected = eliminate(system, "z")
    assert projected.satisfied_by(point)


@given(constraint_systems(POOL))
@settings(max_examples=80)
def test_fm_preserves_satisfiability(system):
    projected = eliminate(system, "z")
    assert is_feasible(system) == is_feasible(projected)


@given(constraint_systems(POOL))
@settings(max_examples=60)
def test_tracked_elimination_agrees_with_plain(system):
    plain = eliminate(eliminate(system, "z"), "y")
    tracked = eliminate_all_tracked(system, ["z", "y"], final_lp_prune=False)
    assert is_feasible(plain) == is_feasible(tracked)
    point = feasible_point(plain)
    if point is not None:
        full = dict(point)
        full.setdefault("x", Fraction(0))
        assert tracked.satisfied_by(full) == plain.satisfied_by(full)


@given(constraint_systems(POOL), assignments(POOL))
@settings(max_examples=80)
def test_prune_redundant_preserves_solutions(system, point):
    pruned = prune_redundant(system, use_lp=True)
    assert system.satisfied_by(point) == pruned.satisfied_by(point)


@given(linear_exprs(POOL), constraint_systems(POOL))
@settings(max_examples=80, deadline=None)
def test_simplex_optimum_is_lower_bound(objective, system):
    result = solve_lp(objective, system)
    if result.status != OPTIMAL:
        return
    # The optimal point satisfies the constraints and attains the value.
    assert system.satisfied_by(result.assignment)
    assert objective.evaluate(result.assignment) == result.value


@given(linear_exprs(POOL), constraint_systems(POOL), assignments(POOL))
@settings(max_examples=80, deadline=None)
def test_simplex_minimum_below_any_feasible_point(objective, system, point):
    if not system.satisfied_by(point):
        return
    result = solve_lp(objective, system)
    assert result.status != "infeasible"
    if result.status == OPTIMAL:
        assert result.value <= objective.evaluate(point)


@given(constraint_systems(POOL))
@settings(max_examples=60, deadline=None)
def test_feasible_point_satisfies(system):
    point = feasible_point(system)
    if point is not None:
        full = {name: point.get(name, Fraction(0)) for name in POOL}
        assert system.satisfied_by(full)
    else:
        assert not is_feasible(system)


def _poly(system):
    kept = ConstraintSystem(
        c for c in system if c.variables() <= set(POOL)
    )
    return Polyhedron(POOL, kept)


@given(constraint_systems(POOL), constraint_systems(POOL))
@settings(max_examples=40, deadline=None)
def test_join_is_upper_bound(first, second):
    left, right = _poly(first), _poly(second)
    hull = left.join(right)
    assert left.entails(hull)
    assert right.entails(hull)


@given(constraint_systems(POOL), constraint_systems(POOL), assignments(POOL))
@settings(max_examples=60, deadline=None)
def test_join_contains_both_inputs_pointwise(first, second, point):
    left, right = _poly(first), _poly(second)
    hull = left.join(right)
    if left.contains_point(point) or right.contains_point(point):
        assert hull.contains_point(point)


@given(constraint_systems(POOL), constraint_systems(POOL))
@settings(max_examples=30, deadline=None)
def test_weak_join_above_exact_join(first, second):
    left, right = _poly(first), _poly(second)
    if left.is_empty() or right.is_empty():
        return
    try:
        exact = left.join_exact(right)
    except FMBlowupError:
        # The row-budget guard firing is a documented outcome of
        # join_exact on adversarial inputs (Polyhedron.join then falls
        # back to the weak join) — nothing to compare on this example.
        return
    weak = left.join_weak(right)
    assert exact.entails(weak)


@given(constraint_systems(POOL), constraint_systems(POOL))
@settings(max_examples=40, deadline=None)
def test_widen_over_approximates_newer(first, second):
    old, new = _poly(first), _poly(second)
    grown = old.join(new)  # ensure old entails grown
    widened = old.widen(grown)
    assert grown.entails(widened)
    assert old.entails(widened)
