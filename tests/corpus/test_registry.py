"""Unit tests for the corpus registry and query generation."""

import pytest

from repro.lp import SLDEngine
from repro.lp.generate import TermGenerator
from repro.corpus import all_programs, get_program, programs_with_tag
from repro.corpus.registry import load, make_bound_term, make_query


class TestRegistry:
    def test_all_programs_nonempty(self):
        assert len(all_programs()) >= 30

    def test_names_unique(self):
        names = [p.name for p in all_programs()]
        assert len(names) == len(set(names))

    def test_get_program(self):
        assert get_program("perm").root == ("perm", 2)

    def test_get_unknown_raises_with_listing(self):
        with pytest.raises(KeyError) as info:
            get_program("nope")
        assert "perm" in str(info.value)

    def test_tags(self):
        headline = programs_with_tag("headline")
        assert {p.name for p in headline} >= {
            "perm", "merge_variant", "expr_parser", "example_a1",
        }

    def test_every_entry_parses(self):
        for entry in all_programs():
            program = load(entry)
            assert len(program) >= 1

    def test_mode_matches_arity(self):
        for entry in all_programs():
            assert len(entry.mode) == entry.root[1], entry.name

    def test_bound_kinds_match_mode(self):
        for entry in all_programs():
            assert len(entry.bound_kinds) == entry.mode.count("b"), entry.name

    def test_expected_covers_all_methods(self):
        required = {
            "paper", "naish83", "uvg88_spine", "single_arg_structural",
        }
        for entry in all_programs():
            assert set(entry.expected) == required, entry.name


class TestQueryGeneration:
    def test_bound_term_kinds(self):
        generator = TermGenerator(seed=3)
        for kind in (
            "list", "list_nonempty", "int_list", "peano", "peano_small",
            "peano_list", "tree", "ternary_tree", "int_tree", "const",
            "int", "g_term",
        ):
            term = make_bound_term(kind, generator)
            assert term.is_ground(), kind

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_bound_term("widget", TermGenerator())

    def test_make_query_well_moded(self):
        generator = TermGenerator(seed=1)
        entry = get_program("merge_variant")
        query = make_query(entry, generator)
        assert query.functor == "merge"
        assert query.args[0].is_ground()
        assert query.args[1].is_ground()
        assert not query.args[2].is_ground()

    def test_queries_actually_run(self):
        generator = TermGenerator(seed=5)
        for name in ("append_bbf", "merge_variant", "even_odd"):
            entry = get_program(name)
            engine = SLDEngine(load(entry))
            query = make_query(entry, generator)
            result = engine.solve([query], max_depth=200, max_steps=50000)
            assert result.completed, name
