"""Unit tests for argument size equations."""

import pytest

from repro.lp.parser import parse_term
from repro.lp.terms import Var
from repro.sizes.norms import size_variable
from repro.sizes.size_equations import (
    arg_dimension,
    argument_size_exprs,
    atom_size_equations,
)


class TestArgumentSizeExprs:
    def test_paper_section_2_2(self):
        # p(f(V1, g(V2), V2), V1): x(1) = 4 + v1 + 2 v2, x(2) = v1.
        atom = parse_term("p(f(V1, g(V2), V2), V1)")
        first, second = argument_size_exprs(atom)
        assert first.const == 4
        assert first.coefficient(size_variable(Var("V1"))) == 1
        assert first.coefficient(size_variable(Var("V2"))) == 2
        assert second.const == 0
        assert second.coefficient(size_variable(Var("V1"))) == 1

    def test_atom_without_args(self):
        assert argument_size_exprs(parse_term("true")) == []

    def test_list_argument(self):
        # perm(P, [X|L]): sizes P and 2 + X + L (Example 3.1).
        atom = parse_term("perm(P, [X|L])")
        first, second = argument_size_exprs(atom)
        assert first.coefficient(size_variable(Var("P"))) == 1
        assert second.const == 2

    def test_norm_selection(self):
        atom = parse_term("p([a, b, c])")
        (structural,) = argument_size_exprs(atom, "structural")
        (length,) = argument_size_exprs(atom, "list_length")
        assert structural.const == 6
        assert length.const == 3

    def test_rejects_variables(self):
        with pytest.raises(TypeError):
            argument_size_exprs(Var("X"))


class TestAtomSizeEquations:
    def test_links_dimensions(self):
        atom = parse_term("append(Xs, Ys, Zs)")
        equations = atom_size_equations(atom)
        assert len(equations) == 3
        for position, equation in enumerate(equations, start=1):
            assert equation.is_equality()
            assert arg_dimension(position) in equation.variables()

    def test_dimension_names(self):
        assert arg_dimension(1) == ("arg", 1)
        assert arg_dimension(3) == ("arg", 3)
