"""Unit tests for term norms."""

import pytest

from repro.lp.parser import parse_term
from repro.sizes.norms import (
    LIST_LENGTH,
    RIGHT_SPINE,
    STRUCTURAL,
    get_norm,
    size_variable,
)


class TestStructural:
    def test_paper_list_example(self):
        # a . b . c . [] has structural term size 6 (Section 2.2).
        assert STRUCTURAL.ground_size(parse_term("[a, b, c]")) == 6

    def test_paper_polynomial_example(self):
        # size(f(u, v, a)) = 3 + u + v (Section 2.2).
        expr = STRUCTURAL.size_expr(parse_term("f(U, V, a)"))
        assert expr.const == 3
        assert expr.coefficient(size_variable_for("U")) == 1
        assert expr.coefficient(size_variable_for("V")) == 1

    def test_paper_repeated_variable(self):
        # p(f(V1, g(V2), V2), V1): x1 = 4 + v1 + 2*v2 (Section 2.2).
        expr = STRUCTURAL.size_expr(parse_term("f(V1, g(V2), V2)"))
        assert expr.const == 4
        assert expr.coefficient(size_variable_for("V1")) == 1
        assert expr.coefficient(size_variable_for("V2")) == 2

    def test_constant_size_zero(self):
        assert STRUCTURAL.ground_size(parse_term("a")) == 0

    def test_variable_is_its_own_size(self):
        expr = STRUCTURAL.size_expr(parse_term("X"))
        assert expr.coefficient(size_variable_for("X")) == 1
        assert expr.const == 0

    def test_nonnegative_coefficients(self):
        # Eq. 1 requires a, A >= 0 for any term.
        expr = STRUCTURAL.size_expr(
            parse_term("f(g(X, X, h(Y)), [a, Z|T])")
        )
        assert expr.const >= 0
        assert all(coeff >= 0 for _, coeff in expr.items())

    def test_ground_size_requires_ground(self):
        with pytest.raises(ValueError):
            STRUCTURAL.ground_size(parse_term("f(X)"))


class TestListLength:
    def test_list(self):
        assert LIST_LENGTH.ground_size(parse_term("[a, b, c]")) == 3

    def test_nested_elements_ignored(self):
        assert LIST_LENGTH.ground_size(parse_term("[[a, b], [c]]")) == 2

    def test_non_list_is_zero(self):
        assert LIST_LENGTH.ground_size(parse_term("f(a, b)")) == 0

    def test_partial_list(self):
        expr = LIST_LENGTH.size_expr(parse_term("[a, b|T]"))
        assert expr.const == 2
        assert expr.coefficient(size_variable_for("T")) == 1


class TestRightSpine:
    def test_list_equals_length(self):
        assert RIGHT_SPINE.ground_size(parse_term("[a, b, c]")) == 3

    def test_left_subtree_ignored(self):
        # Spine follows only rightmost children — the "less natural
        # for binary trees" property.
        assert RIGHT_SPINE.ground_size(parse_term("node(node(a, b), c)")) == 1

    def test_variable_tail(self):
        expr = RIGHT_SPINE.size_expr(parse_term("f(X, Y)"))
        assert expr.const == 1
        assert expr.coefficient(size_variable_for("Y")) == 1
        assert expr.coefficient(size_variable_for("X")) == 0


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_norm("structural") is STRUCTURAL
        assert get_norm("list_length") is LIST_LENGTH
        assert get_norm("right_spine") is RIGHT_SPINE

    def test_norm_instance_passthrough(self):
        assert get_norm(STRUCTURAL) is STRUCTURAL

    def test_unknown_norm(self):
        with pytest.raises(ValueError):
            get_norm("levenshtein")


def size_variable_for(name):
    from repro.lp.terms import Var

    return size_variable(Var(name))
