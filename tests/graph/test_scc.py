"""Unit tests for Tarjan SCC and condensation."""

import pytest

from repro.graph.digraph import Digraph
from repro.graph.scc import (
    condensation,
    is_recursive_component,
    strongly_connected_components,
    topological_order,
)


class TestSCC:
    def test_single_node(self):
        graph = Digraph.from_edges([], nodes=["a"])
        assert strongly_connected_components(graph) == [("a",)]

    def test_cycle(self):
        graph = Digraph.from_edges([("a", "b"), ("b", "a")])
        components = strongly_connected_components(graph)
        assert len(components) == 1
        assert set(components[0]) == {"a", "b"}

    def test_chain_order_bottom_up(self):
        # a -> b -> c: c is lowest, must come first.
        graph = Digraph.from_edges([("a", "b"), ("b", "c")])
        components = strongly_connected_components(graph)
        assert components.index(("c",)) < components.index(("b",))
        assert components.index(("b",)) < components.index(("a",))

    def test_mixed(self):
        # perm -> append (append lower).
        graph = Digraph.from_edges(
            [
                (("perm", 2), ("append", 3)),
                (("perm", 2), ("perm", 2)),
                (("append", 3), ("append", 3)),
            ]
        )
        components = strongly_connected_components(graph)
        assert components[0] == (("append", 3),)

    def test_two_cycles_joined(self):
        graph = Digraph.from_edges(
            [
                ("a", "b"), ("b", "a"),      # SCC {a, b}
                ("b", "c"),
                ("c", "d"), ("d", "c"),      # SCC {c, d}
            ]
        )
        components = strongly_connected_components(graph)
        sets = [frozenset(c) for c in components]
        assert frozenset({"a", "b"}) in sets
        assert frozenset({"c", "d"}) in sets
        assert sets.index(frozenset({"c", "d"})) < sets.index(
            frozenset({"a", "b"})
        )

    def test_matches_networkx_on_random_graphs(self):
        import random

        import networkx

        rng = random.Random(11)
        for _ in range(20):
            n = rng.randint(1, 12)
            edges = [
                (rng.randrange(n), rng.randrange(n))
                for _ in range(rng.randint(0, 3 * n))
            ]
            ours = strongly_connected_components(
                Digraph.from_edges(edges, nodes=range(n))
            )
            nx_graph = networkx.DiGraph(edges)
            nx_graph.add_nodes_from(range(n))
            theirs = {
                frozenset(c)
                for c in networkx.strongly_connected_components(nx_graph)
            }
            assert {frozenset(c) for c in ours} == theirs


class TestRecursiveComponent:
    def test_self_loop_recursive(self):
        graph = Digraph.from_edges([("a", "a")])
        assert is_recursive_component(graph, ("a",))

    def test_singleton_nonrecursive(self):
        graph = Digraph.from_edges([("a", "b")])
        assert not is_recursive_component(graph, ("a",))

    def test_multi_member_recursive(self):
        graph = Digraph.from_edges([("a", "b"), ("b", "a")])
        assert is_recursive_component(graph, ("a", "b"))


class TestCondensation:
    def test_dag_structure(self):
        graph = Digraph.from_edges(
            [("a", "b"), ("b", "a"), ("b", "c")]
        )
        components, dag = condensation(graph)
        assert len(components) == 2
        assert len(list(dag.edges())) == 1

    def test_topological_order(self):
        graph = Digraph.from_edges([("a", "b"), ("b", "c"), ("a", "c")])
        _, dag = condensation(graph)
        order = topological_order(dag)
        assert len(order) == 3

    def test_topological_order_rejects_cycles(self):
        graph = Digraph.from_edges([("a", "b"), ("b", "a")])
        with pytest.raises(ValueError):
            topological_order(graph)
