"""Unit tests for the digraph type."""

from repro.graph.digraph import Digraph


def sample():
    return Digraph.from_edges(
        [("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")]
    )


class TestConstruction:
    def test_from_edges(self):
        graph = sample()
        assert set(graph.nodes) == {"a", "b", "c", "d"}

    def test_isolated_nodes(self):
        graph = Digraph.from_edges([], nodes=["x"])
        assert graph.has_node("x")
        assert graph.successors("x") == frozenset()

    def test_parallel_edges_collapse(self):
        graph = Digraph.from_edges([("a", "b"), ("a", "b")])
        assert len(list(graph.edges())) == 1

    def test_self_loop(self):
        graph = Digraph.from_edges([("a", "a")])
        assert graph.has_edge("a", "a")


class TestAccess:
    def test_successors_predecessors(self):
        graph = sample()
        assert graph.successors("c") == {"a", "d"}
        assert graph.predecessors("a") == {"c"}

    def test_has_edge(self):
        graph = sample()
        assert graph.has_edge("a", "b")
        assert not graph.has_edge("b", "a")

    def test_len_and_contains(self):
        graph = sample()
        assert len(graph) == 4
        assert "a" in graph
        assert "z" not in graph


class TestDerived:
    def test_subgraph(self):
        sub = sample().subgraph({"a", "b"})
        assert set(sub.nodes) == {"a", "b"}
        assert sub.has_edge("a", "b")
        assert not sub.has_node("c")

    def test_reversed(self):
        rev = sample().reversed()
        assert rev.has_edge("b", "a")
        assert not rev.has_edge("a", "b")

    def test_hashable_tuple_nodes(self):
        graph = Digraph.from_edges([(("p", 1), ("q", 2))])
        assert graph.has_edge(("p", 1), ("q", 2))
