"""Unit tests for min-plus closure and cycle detection."""

from fractions import Fraction

from repro.graph.minplus import (
    find_nonpositive_cycle,
    has_nonpositive_cycle,
    min_plus_closure,
)


class TestClosure:
    def test_shortest_paths(self):
        nodes = ["a", "b", "c"]
        weights = {("a", "b"): 1, ("b", "c"): 2, ("a", "c"): 10}
        dist = min_plus_closure(nodes, weights)
        assert dist[("a", "c")] == 3

    def test_unreachable_is_none(self):
        dist = min_plus_closure(["a", "b"], {("a", "b"): 1})
        assert dist[("b", "a")] is None

    def test_negative_edges(self):
        nodes = ["a", "b"]
        weights = {("a", "b"): -2, ("b", "a"): 3}
        dist = min_plus_closure(nodes, weights)
        assert dist[("a", "a")] == 1

    def test_fractional_weights(self):
        nodes = ["a", "b"]
        weights = {("a", "b"): Fraction(1, 2), ("b", "a"): Fraction(1, 2)}
        dist = min_plus_closure(nodes, weights)
        assert dist[("a", "a")] == 1


class TestCycleDetection:
    def test_positive_cycle_ok(self):
        nodes = ["a", "b"]
        weights = {("a", "b"): 1, ("b", "a"): 0}
        assert not has_nonpositive_cycle(nodes, weights)

    def test_zero_cycle_detected(self):
        nodes = ["a", "b"]
        weights = {("a", "b"): 0, ("b", "a"): 0}
        assert has_nonpositive_cycle(nodes, weights)

    def test_negative_cycle_detected(self):
        nodes = ["a", "b"]
        weights = {("a", "b"): 1, ("b", "a"): -2}
        assert has_nonpositive_cycle(nodes, weights)

    def test_strict_zero_mode(self):
        nodes = ["a"]
        assert has_nonpositive_cycle(
            nodes, {("a", "a"): 0}, strict_zero=True
        )
        assert not has_nonpositive_cycle(
            nodes, {("a", "a"): 1}, strict_zero=True
        )

    def test_self_loop_zero(self):
        assert has_nonpositive_cycle(["a"], {("a", "a"): 0})

    def test_no_edges_no_cycles(self):
        assert not has_nonpositive_cycle(["a", "b"], {})


class TestWitness:
    def test_witness_returned(self):
        nodes = ["a", "b", "c"]
        weights = {("a", "b"): 0, ("b", "a"): 0, ("b", "c"): 5}
        cycle = find_nonpositive_cycle(nodes, weights)
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert set(cycle) <= {"a", "b"}

    def test_no_witness_when_positive(self):
        nodes = ["a", "b"]
        weights = {("a", "b"): 1, ("b", "a"): 1}
        assert find_nonpositive_cycle(nodes, weights) is None

    def test_witness_weight_nonpositive(self):
        nodes = ["a", "b", "c"]
        weights = {
            ("a", "b"): 2, ("b", "c"): -3, ("c", "a"): 0,
            ("a", "a"): 5,
        }
        cycle = find_nonpositive_cycle(nodes, weights)
        total = sum(
            weights[(u, v)] for u, v in zip(cycle, cycle[1:])
        )
        assert total <= 0

    def test_paper_parser_thetas_pass(self):
        # Example 6.1: theta_et = theta_tn = 0, theta_ne = 1 plus
        # self-loops of 1: no zero-weight cycle.
        nodes = ["e", "t", "n"]
        weights = {
            ("e", "e"): 1, ("t", "t"): 1,
            ("e", "t"): 0, ("t", "n"): 0, ("n", "e"): 1,
        }
        assert find_nonpositive_cycle(nodes, weights) is None
