"""The solver backend layer: registry, statistics, and a differential
property test — SimplexBackend and FourierMotzkinBackend must agree on
feasibility over randomized small constraint systems, and every
returned witness must actually satisfy the system."""

import random
from fractions import Fraction

import pytest

from repro.errors import AnalysisError
from repro.linalg.constraints import Constraint, ConstraintSystem
from repro.linalg.linexpr import LinearExpr
from repro.solve import (
    FourierMotzkinBackend,
    LPBackend,
    SimplexBackend,
    SolveOutcome,
    available_backends,
    get_backend,
    register_backend,
)


def random_system(rng):
    """A small random system over <= 4 variables, mixing relations.

    Half the draws are anchored on a random integer point (guaranteed
    feasible); the rest are unconstrained draws, which are frequently
    infeasible — so both branches of the agreement property get
    exercised.
    """
    variables = ["v%d" % i for i in range(rng.randint(1, 4))]
    anchored = rng.random() < 0.5
    point = {v: Fraction(rng.randint(-3, 3)) for v in variables}
    system = ConstraintSystem()
    for _ in range(rng.randint(1, 6)):
        expr = LinearExpr()
        for var in variables:
            coeff = rng.randint(-3, 3)
            if coeff:
                expr = expr + LinearExpr.of(var, coeff)
        relation_roll = rng.random()
        if anchored:
            # Shift the row so the anchor point satisfies it.
            value = expr.evaluate(point)
            if relation_roll < 0.25:
                system.add(Constraint.eq(expr, value))
            elif relation_roll < 0.625:
                system.add(Constraint.ge(expr, value - rng.randint(0, 2)))
            else:
                system.add(Constraint.le(expr, value + rng.randint(0, 2)))
        else:
            constant = rng.randint(-4, 4)
            if relation_roll < 0.25:
                system.add(Constraint.eq(expr, constant))
            elif relation_roll < 0.625:
                system.add(Constraint.ge(expr, constant))
            else:
                system.add(Constraint.le(expr, constant))
    return system


class TestRegistry:
    def test_builtins_registered(self):
        assert "simplex" in available_backends()
        assert "fm" in available_backends()

    def test_get_backend_resolves(self):
        assert isinstance(get_backend("simplex"), SimplexBackend)
        assert isinstance(get_backend("fm"), FourierMotzkinBackend)

    def test_unknown_backend_is_analysis_error(self):
        with pytest.raises(AnalysisError) as info:
            get_backend("newton")
        assert "newton" in str(info.value)
        assert "simplex" in str(info.value)  # lists the alternatives

    def test_instance_passthrough(self):
        backend = FourierMotzkinBackend(prune=False)
        assert get_backend(backend) is backend

    def test_register_rejects_non_backend(self):
        with pytest.raises(TypeError):
            register_backend(object)

    def test_options_are_kept(self):
        assert get_backend("fm", prune=False).options == {"prune": False}


class TestOutcomes:
    def test_feasible_witness_satisfies(self):
        system = ConstraintSystem([
            Constraint.ge(LinearExpr.of("x"), 2),
            Constraint.le(LinearExpr.of("x"), 5),
            Constraint.eq(LinearExpr.of("y"), LinearExpr.of("x", 2)),
        ])
        for name in ("simplex", "fm"):
            outcome = get_backend(name).feasible_point(system)
            assert isinstance(outcome, SolveOutcome)
            assert outcome.feasible
            assert system.satisfied_by(outcome.witness)
            assert outcome.stats.backend == name
            assert outcome.stats.rows_in == len(system)

    def test_infeasible_has_no_witness(self):
        system = ConstraintSystem([
            Constraint.ge(LinearExpr.of("x"), 3),
            Constraint.le(LinearExpr.of("x"), 1),
        ])
        for name in ("simplex", "fm"):
            outcome = get_backend(name).feasible_point(system)
            assert not outcome.feasible
            assert outcome.witness is None

    def test_simplex_counts_pivots(self):
        system = ConstraintSystem([
            Constraint.ge(LinearExpr.of("x"), 1),
            Constraint.ge(LinearExpr.of("y") - LinearExpr.of("x"), 1),
        ])
        outcome = SimplexBackend().feasible_point(system)
        assert outcome.feasible
        assert outcome.stats.pivots > 0

    def test_fm_counts_eliminations(self):
        system = ConstraintSystem([
            Constraint.ge(LinearExpr.of("x") + LinearExpr.of("y"), 1),
            Constraint.le(LinearExpr.of("x"), 4),
        ])
        outcome = FourierMotzkinBackend().feasible_point(system)
        assert outcome.feasible
        assert outcome.stats.eliminations == 2
        assert outcome.stats.wall_time >= 0


class TestDifferential:
    """The two backends are different decision procedures for the same
    question; they must never disagree."""

    @pytest.mark.parametrize("seed", range(60))
    def test_backends_agree_and_witnesses_hold(self, seed):
        rng = random.Random(seed)
        system = random_system(rng)
        outcomes = {
            name: get_backend(name).feasible_point(system)
            for name in ("simplex", "fm")
        }
        verdicts = {name: o.feasible for name, o in outcomes.items()}
        assert verdicts["simplex"] == verdicts["fm"], str(system)
        for name, outcome in outcomes.items():
            if outcome.feasible:
                assert system.satisfied_by(outcome.witness), (
                    name, str(system), outcome.witness,
                )

    @pytest.mark.parametrize("seed", range(20))
    def test_fm_prune_toggle_preserves_verdict(self, seed):
        rng = random.Random(1000 + seed)
        system = random_system(rng)
        pruned = FourierMotzkinBackend(prune=True).feasible_point(system)
        unpruned = FourierMotzkinBackend(prune=False).feasible_point(system)
        assert pruned.feasible == unpruned.feasible


class TestCustomBackend:
    def test_registered_custom_backend_reaches_analyzer(self):
        calls = []

        @register_backend
        class CountingBackend(SimplexBackend):
            name = "counting-test"

            def feasible_point(self, system):
                calls.append(len(system))
                return super().feasible_point(system)

        try:
            from repro.core import AnalyzerSettings, analyze_program

            result = analyze_program(
                "p(s(N)) :- p(N).\np(0).", ("p", 1), "b",
                settings=AnalyzerSettings(feasibility="counting-test"),
            )
            assert result.proved
            assert calls  # the analyzer solved through the custom backend
        finally:
            from repro.solve.backend import _BACKENDS

            _BACKENDS.pop("counting-test", None)

    def test_abstract_backend_raises(self):
        with pytest.raises(NotImplementedError):
            LPBackend().feasible_point(ConstraintSystem())
