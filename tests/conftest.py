"""Shared fixtures for the test suite."""

import pytest

from repro.lp import parse_program


APPEND = """
append([], Ys, Ys).
append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
"""

PERM = APPEND + """
perm([], []).
perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).
"""

MERGE_VARIANT = """
merge([], Ys, Ys).
merge(Xs, [], Xs).
merge([X|Xs], [Y|Ys], [X|Zs]) :- X =< Y, merge([Y|Ys], Xs, Zs).
merge([X|Xs], [Y|Ys], [Y|Zs]) :- Y =< X, merge(Ys, [X|Xs], Zs).
"""

EXPR_PARSER = """
e(L, T) :- t(L, ['+'|C]), e(C, T).
e(L, T) :- t(L, T).
t(L, T) :- n(L, ['*'|C]), t(C, T).
t(L, T) :- n(L, T).
n(['('|A], T) :- e(A, [')'|T]).
n([L|T], T) :- z(L).
"""

EXAMPLE_A1 = """
p(g(X)) :- e(X).
p(g(X)) :- q(f(X)).
q(Y) :- p(Y).
q(f(Z)) :- p(Z), q(Z).
"""


@pytest.fixture
def append_program():
    return parse_program(APPEND)


@pytest.fixture
def perm_program():
    return parse_program(PERM)


@pytest.fixture
def merge_program():
    return parse_program(MERGE_VARIANT)


@pytest.fixture
def parser_program():
    return parse_program(EXPR_PARSER)


@pytest.fixture
def a1_program():
    return parse_program(EXAMPLE_A1)
