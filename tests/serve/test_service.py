"""Integration tests: the daemon end to end on an ephemeral port.

Each test boots a real :class:`~repro.serve.app.ServeApp` on a
background-thread event loop and talks to it through the thin
:class:`~repro.serve.client.ServeClient` — the same wire path
``repro-analyze --remote`` takes.
"""

import asyncio
import concurrent.futures
import json
import threading
import time
from contextlib import contextmanager

import pytest

from repro.batch import as_batch_item
from repro.core import TerminationAnalyzer
from repro.corpus import all_programs
from repro.errors import ServeError
from repro.lp import parse_program
from repro.serve.app import ServeApp
from repro.serve.client import ServeClient
from repro.serve.pool import SolverPool, solve_wire
from repro.serve.protocol import payload_from_result, payload_text
from repro.serve.store import ResultStore

APPEND = (
    "append([], Y, Y).\n"
    "append([X|Xs], Y, [X|Zs]) :- append(Xs, Y, Zs).\n"
)


class SlowPool(SolverPool):
    """A serial pool that stalls before solving — makes 'in flight'
    a state the tests can hold open long enough to observe."""

    def __init__(self, delay=0.4):
        super().__init__(jobs=1)
        self.delay = delay

    def submit(self, wire, timeout=None, cache_dir=None,
               request_id=None):
        def stalled():
            time.sleep(self.delay)
            return solve_wire(wire, timeout, cache_dir, request_id)

        return self._serial.submit(stalled)


@contextmanager
def running_app(store, pool, **app_kwargs):
    """Boot *store*/*pool* behind a live listener; yield (app, client)."""
    app = ServeApp(store, pool, **app_kwargs)
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    asyncio.run_coroutine_threadsafe(app.start(port=0), loop).result(10)
    try:
        yield app, ServeClient("127.0.0.1:%d" % app.port)
    finally:
        asyncio.run_coroutine_threadsafe(app.shutdown(), loop).result(30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        loop.close()


@contextmanager
def serve(tmp_path, *, jobs=1, pool=None, **app_kwargs):
    with ResultStore(str(tmp_path / "cache")) as store:
        with running_app(
            store, pool or SolverPool(jobs=jobs), **app_kwargs
        ) as (app, client):
            yield app, client


def local_payload_text(source, root, mode):
    """What serial in-process analysis would answer, canonically."""
    result = TerminationAnalyzer(parse_program(source)).analyze(
        root, mode
    )
    return payload_text(payload_from_result(result))


class TestEndpoints:
    def test_health(self, tmp_path):
        with serve(tmp_path) as (app, client):
            health = client.health()
            assert health["status"] == "ok"
            assert health["store"]["entries"] == 0
            assert health["pool"]["lane"] == "serial"

    def test_analyze_matches_serial_byte_for_byte(self, tmp_path):
        with serve(tmp_path) as (app, client):
            answer = client.analyze(APPEND, ("append", 3), "bbf")
            assert answer.proved
            assert not answer.cached
            assert answer.text == local_payload_text(
                APPEND, ("append", 3), "bbf"
            )

    def test_metrics_snapshot_shape(self, tmp_path):
        with serve(tmp_path) as (app, client):
            client.analyze(APPEND, ("append", 3), "bbf")
            snapshot = client.metrics()
            assert "counters" in snapshot

    def test_trace_for_solved_request(self, tmp_path):
        with serve(tmp_path) as (app, client):
            answer = client.analyze(APPEND, ("append", 3), "bbf")
            lines = client.trace(answer.key).splitlines()
            meta = json.loads(lines[0])
            assert meta["event"] == "meta"
            assert meta["schema"] == "repro.trace/1"
            assert meta["request"] == answer.key
            names = {
                json.loads(line)["name"] for line in lines[1:]
                if json.loads(line)["event"] == "span"
            }
            assert "serve.request" in names

    def test_trace_missing_is_404(self, tmp_path):
        with serve(tmp_path) as (app, client):
            with pytest.raises(ServeError) as excinfo:
                client.trace("no-such-key")
            assert excinfo.value.status == 404

    def test_unknown_route_is_404(self, tmp_path):
        with serve(tmp_path) as (app, client):
            with pytest.raises(ServeError) as excinfo:
                client._get_json("/v2/nothing")
            assert excinfo.value.status == 404

    def test_bad_json_is_400(self, tmp_path):
        with serve(tmp_path) as (app, client):
            status, _, _ = client._request(
                "POST", "/v1/analyze", b"not json"
            )
            assert status == 400

    def test_undefined_root_is_400_with_message(self, tmp_path):
        with serve(tmp_path) as (app, client):
            with pytest.raises(ServeError) as excinfo:
                client.analyze(APPEND, ("appendd", 3), "bbf")
            assert excinfo.value.status == 400
            assert "appendd/3" in str(excinfo.value)


class TestStoreIntegration:
    def test_second_identical_request_is_a_warm_hit(self, tmp_path):
        with serve(tmp_path) as (app, client):
            cold = client.analyze(APPEND, ("append", 3), "bbf")
            warm = client.analyze(APPEND, ("append", 3), "bbf")
            assert not cold.cached and warm.cached
            assert warm.text == cold.text  # byte-identical
            assert warm.key == cold.key

    def test_hit_survives_a_server_restart(self, tmp_path):
        store_dir = tmp_path / "cache"
        with ResultStore(str(store_dir)) as store:
            with running_app(store, SolverPool()) as (app, client):
                cold = client.analyze(APPEND, ("append", 3), "bbf")
        with ResultStore(str(store_dir)) as store:
            with running_app(store, SolverPool()) as (app, client):
                warm = client.analyze(APPEND, ("append", 3), "bbf")
        assert warm.cached
        assert warm.text == cold.text

    def test_layout_variant_hits_the_same_entry(self, tmp_path):
        with serve(tmp_path) as (app, client):
            cold = client.analyze(APPEND, ("append", 3), "bbf")
            warm = client.analyze(
                APPEND.replace("\n", "\r\n") + "\n\n",
                ("append", 3), "bbf",
            )
            assert warm.cached
            assert warm.key == cold.key

    def test_distinct_modes_are_distinct_entries(self, tmp_path):
        with serve(tmp_path) as (app, client):
            first = client.analyze(APPEND, ("append", 3), "bbf")
            second = client.analyze(APPEND, ("append", 3), "ffb")
            assert not second.cached
            assert second.key != first.key


class TestConcurrency:
    def test_concurrent_mixed_mode_requests(self, tmp_path):
        """The acceptance shape: a corpus slice, mixed modes, many
        client threads, every verdict byte-identical to serial."""
        items = [as_batch_item(e) for e in all_programs()[:6]]
        expected = {
            item.name: local_payload_text(
                item.source, item.root, item.mode
            )
            for item in items
        }
        with serve(tmp_path, jobs=2, max_inflight=32) as (app, client):
            with concurrent.futures.ThreadPoolExecutor(6) as executor:
                answers = list(executor.map(
                    lambda item: (item.name, client.analyze(
                        item.source, item.root, item.mode
                    )),
                    items,
                ))
            for name, answer in answers:
                assert answer.text == expected[name], name
            # And a full warm replay hits the store for every item.
            for item in items:
                assert client.analyze(
                    item.source, item.root, item.mode
                ).cached

    def test_backpressure_429_at_capacity(self, tmp_path):
        with serve(
            tmp_path, pool=SlowPool(delay=0.8), max_inflight=1
        ) as (app, client):
            with concurrent.futures.ThreadPoolExecutor(1) as executor:
                first = executor.submit(
                    client.analyze, APPEND, ("append", 3), "bbf"
                )
                time.sleep(0.2)  # let the first request occupy the slot
                with pytest.raises(ServeError) as excinfo:
                    client.analyze(APPEND, ("append", 3), "ffb")
                assert excinfo.value.status == 429
                assert first.result(30).proved
            # Capacity frees once the first solve lands.
            assert client.analyze(APPEND, ("append", 3), "ffb").proved

    def test_request_timeout_is_504(self, tmp_path):
        with serve(
            tmp_path, pool=SlowPool(delay=5.0), request_timeout=0.3
        ) as (app, client):
            with pytest.raises(ServeError) as excinfo:
                client.analyze(APPEND, ("append", 3), "bbf")
            assert excinfo.value.status == 504

    def test_graceful_drain_finishes_inflight_work(self, tmp_path):
        """Shutdown mid-solve: the in-flight request completes and its
        verdict is persisted; the listener refuses new work."""
        store_dir = tmp_path / "cache"
        store = ResultStore(str(store_dir))
        app = ServeApp(store, SlowPool(delay=0.6))
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        try:
            asyncio.run_coroutine_threadsafe(
                app.start(port=0), loop
            ).result(10)
            client = ServeClient("127.0.0.1:%d" % app.port)
            with concurrent.futures.ThreadPoolExecutor(1) as executor:
                inflight = executor.submit(
                    client.analyze, APPEND, ("append", 3), "bbf"
                )
                time.sleep(0.2)  # request admitted, solve under way
                drain = asyncio.run_coroutine_threadsafe(
                    app.shutdown(), loop
                )
                answer = inflight.result(30)
                drain.result(30)
            assert answer.proved and not answer.cached
            # No half-written entries: the drained verdict is readable
            # from a fresh handle on the same store.
            with ResultStore(str(store_dir)) as reopened:
                assert reopened.get(answer.key) == answer.text
            with pytest.raises(ServeError):
                client.health()  # listener is gone
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(10)
            loop.close()


class TestRemoteCli:
    def test_remote_flag_round_trips(self, tmp_path, capsys):
        from repro.cli import main
        from repro.corpus import get_program

        entry = get_program("perm")
        source_file = tmp_path / "perm.pl"
        source_file.write_text(entry.source)
        with serve(tmp_path) as (app, client):
            url = "http://127.0.0.1:%d" % app.port
            code = main([
                str(source_file), "--root", "perm/2", "--mode", "bf",
                "--remote", url,
            ])
            assert code == 0
            out = capsys.readouterr().out
            assert "PROVED" in out

    def test_remote_json_matches_local_cache_dir_json(
        self, tmp_path, capsys
    ):
        """The end-to-end byte-identity promise: --remote --json and
        --cache-dir --json print the same canonical payload."""
        from repro.cli import main

        source_file = tmp_path / "append.pl"
        source_file.write_text(APPEND)
        base = [
            str(source_file), "--root", "append/3", "--mode", "bbf",
            "--json",
        ]
        with serve(tmp_path) as (app, client):
            url = "http://127.0.0.1:%d" % app.port
            assert main(base + ["--remote", url]) == 0
            remote_out = capsys.readouterr().out
        assert main(
            base + ["--cache-dir", str(tmp_path / "cli-cache")]
        ) == 0
        local_out = capsys.readouterr().out
        assert remote_out == local_out

    def test_remote_rejects_local_only_flags(self, tmp_path):
        from repro.cli import main

        source_file = tmp_path / "append.pl"
        source_file.write_text(APPEND)
        with pytest.raises(SystemExit):
            main([
                str(source_file), "--root", "append/3",
                "--mode", "bbf", "--remote", "http://127.0.0.1:1",
                "--jobs", "2",
            ])


GCD = None


def _gcd_sources():
    """The multi-SCC corpus program and a one-clause edit of it."""
    global GCD
    if GCD is None:
        from repro.corpus import get_program

        entry = get_program("gcd_euclid")
        GCD = (entry.source, entry.source + "\ngcd(zzz, zzz, zzz).\n")
    return GCD


class TestIncremental:
    def test_incremental_request_populates_and_reuses(self, tmp_path):
        old, new = _gcd_sources()
        with serve(tmp_path) as (app, client):
            cold = client.analyze(old, ("gcd", 3), "bbf",
                                  incremental=True)
            assert cold.proved and not cold.cached
            assert cold.sccs_reused == 0
            assert cold.sccs_reproved > 1
            assert client.health()["store"]["certificates"] > 0
            # The edited program misses the verdict store but reuses
            # every untouched SCC's certificate.
            warm = client.analyze(new, ("gcd", 3), "bbf",
                                  incremental=True)
            assert warm.proved and not warm.cached
            assert warm.sccs_reused == cold.sccs_reproved - 1
            assert warm.sccs_reproved == 1

    def test_incremental_body_matches_full_solve(self, tmp_path):
        old, _ = _gcd_sources()
        with serve(tmp_path) as (app, client):
            incremental = client.analyze(old, ("gcd", 3), "bbf",
                                         incremental=True)
            assert incremental.text == local_payload_text(
                old, ("gcd", 3), "bbf"
            )
            # Same content address: the full-solve replay is a store
            # hit on the incremental run's verdict.
            replay = client.analyze(old, ("gcd", 3), "bbf")
            assert replay.cached
            assert replay.text == incremental.text

    def test_plain_request_reports_no_scc_counts(self, tmp_path):
        with serve(tmp_path) as (app, client):
            answer = client.analyze(APPEND, ("append", 3), "bbf")
            assert answer.sccs_reused == 0
            assert answer.sccs_reproved == 0
