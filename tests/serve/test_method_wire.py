"""``method`` over the wire: request validation, keys, and solving."""

import pytest

from repro.errors import AnalysisError
from repro.serve.pool import solve_wire
from repro.serve.protocol import AnalyzeRequest, request_key

LOOP = "p(X) :- p(X).\n"
APPEND = """
append([], Ys, Ys).
append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
"""


def wire(**overrides):
    body = {"source": APPEND, "root": "append/3", "mode": "bbf"}
    body.update(overrides)
    return body


class TestMethodOnTheWire:
    def test_method_is_a_settable_setting(self):
        request = AnalyzeRequest.from_wire(
            wire(settings={"method": "portfolio"})
        )
        assert request.settings.method == "portfolio"
        assert request.to_wire()["settings"] == {"method": "portfolio"}

    def test_unknown_method_is_a_400_not_a_solve(self):
        with pytest.raises(AnalysisError, match="magic"):
            AnalyzeRequest.from_wire(wire(settings={"method": "magic"}))

    def test_method_rotates_the_request_key(self):
        base = request_key(APPEND, ("append", 3), "bbf")
        from repro.core import AnalyzerSettings

        other = request_key(
            APPEND, ("append", 3), "bbf",
            AnalyzerSettings(method="portfolio"),
        )
        assert base != other


class TestSolveWireDispatch:
    def test_portfolio_disproves_over_the_wire(self):
        payload, _, _, _, _ = solve_wire(
            wire(source=LOOP, root="p/1", mode="b",
                 settings={"method": "portfolio"}),
            timeout=None, cache_dir=None, request_id="t-1",
        )
        assert payload["status"] == "DISPROVED"
        assert payload["method"] == "portfolio"
        assert any(
            scc.get("method") == "nonterm" for scc in payload["sccs"]
        )

    def test_default_method_payload_unchanged_shape(self):
        payload, _, _, _, _ = solve_wire(
            wire(), timeout=None, cache_dir=None, request_id="t-2",
        )
        assert payload["status"] == "PROVED"
        assert payload["method"] == "argsize"
