"""Unit tests for the content-addressed persistent result store."""

import sqlite3

import pytest

from repro.serve import store as store_module
from repro.serve.store import ResultStore


@pytest.fixture
def store(tmp_path):
    with ResultStore(str(tmp_path / "cache")) as s:
        yield s


class TestRoundTrip:
    def test_get_miss_then_hit(self, store):
        assert store.get("k1") is None
        store.put("k1", '{"status":"PROVED"}', root="p/1", mode="b")
        assert store.get("k1") == '{"status":"PROVED"}'

    def test_payload_returned_byte_identically(self, store):
        text = '{"a":1,"b":[2,3],"c":"\\u00e9"}'
        store.put("k", text)
        assert store.get("k") == text
        assert store.get("k") == text  # repeated hits don't mutate

    def test_first_write_wins(self, store):
        # Content addressing guarantees identical payloads per key, so
        # a racing second put is a no-op, never an overwrite.
        store.put("k", "first")
        store.put("k", "second")
        assert store.get("k") == "first"

    def test_stats(self, store):
        store.put("k1", "x")
        store.put("k2", "y")
        store.get("k1")
        store.get("missing")
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["hits"] == 1
        assert stats["schema_version"] == store_module.SCHEMA_VERSION


class TestPersistence:
    def test_survives_reopen(self, tmp_path):
        root = str(tmp_path / "cache")
        with ResultStore(root) as store:
            store.put("k1", "payload-1")
        with ResultStore(root) as store:
            assert store.get("k1") == "payload-1"

    def test_traces_survive_reopen(self, tmp_path):
        root = str(tmp_path / "cache")
        with ResultStore(root) as store:
            store.put_trace("k1", '{"event":"meta"}\n')
        with ResultStore(root) as store:
            assert store.get_trace("k1") == '{"event":"meta"}\n'

    def test_two_handles_share_one_store(self, tmp_path):
        # The offline CLI and a daemon may point at the same directory.
        root = str(tmp_path / "cache")
        with ResultStore(root) as writer, ResultStore(root) as reader:
            writer.put("k", "shared")
            assert reader.get("k") == "shared"


class TestEviction:
    def test_lru_eviction_over_bound(self, tmp_path):
        with ResultStore(str(tmp_path), max_entries=3) as store:
            for i in range(3):
                store.put("k%d" % i, "v%d" % i)
            store.get("k0")          # k0 becomes most recent
            store.put("k3", "v3")    # evicts k1, the least recent
            assert store.get("k1") is None
            assert store.get("k0") == "v0"
            assert store.get("k2") == "v2"
            assert store.get("k3") == "v3"

    def test_entry_count_never_exceeds_bound(self, tmp_path):
        with ResultStore(str(tmp_path), max_entries=4) as store:
            for i in range(20):
                store.put("k%d" % i, "v")
            assert store.stats()["entries"] == 4

    def test_trace_eviction_independent(self, tmp_path):
        with ResultStore(str(tmp_path), max_entries=2,
                         max_traces=2) as store:
            for i in range(4):
                store.put_trace("t%d" % i, "line\n")
            assert store.stats()["traces"] == 2
            assert store.get_trace("t3") == "line\n"
            assert store.get_trace("t0") is None

    def test_bounds_validated(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(str(tmp_path), max_entries=0)


class TestSchemaVersioning:
    def test_version_mismatch_wipes_the_store(self, tmp_path,
                                              monkeypatch):
        root = str(tmp_path / "cache")
        with ResultStore(root) as store:
            store.put("k1", "old-layout")
            store.put_trace("k1", "old-trace\n")
        monkeypatch.setattr(
            store_module, "SCHEMA_VERSION",
            store_module.SCHEMA_VERSION + 1,
        )
        with ResultStore(root) as store:
            assert store.get("k1") is None
            assert store.get_trace("k1") is None
            assert store.stats()["schema_version"] == (
                store_module.SCHEMA_VERSION
            )

    def test_same_version_preserves_the_store(self, tmp_path):
        root = str(tmp_path / "cache")
        with ResultStore(root) as store:
            store.put("k1", "kept")
        with ResultStore(root) as store:
            assert store.get("k1") == "kept"

    def test_version_recorded_in_meta_table(self, tmp_path):
        root = str(tmp_path / "cache")
        ResultStore(root).close()
        db = sqlite3.connect(str(tmp_path / "cache" / "results.sqlite"))
        row = db.execute(
            "SELECT value FROM meta WHERE key='schema_version'"
        ).fetchone()
        db.close()
        assert int(row[0]) == store_module.SCHEMA_VERSION


class TestCertificates:
    def test_certificate_roundtrip(self, store):
        assert store.get_certificate("scc1:abc") is None
        store.put_certificate("scc1:abc", '{"kind":"cert"}', kind="cert")
        assert store.get_certificate("scc1:abc") == '{"kind":"cert"}'

    def test_certificates_survive_reopen(self, tmp_path):
        root = str(tmp_path / "cache")
        with ResultStore(root) as store:
            store.put_certificate("env1:k", "payload", kind="env")
        with ResultStore(root) as store:
            assert store.get_certificate("env1:k") == "payload"

    def test_certificate_eviction_independent(self, tmp_path):
        with ResultStore(str(tmp_path / "c"), max_certificates=3) as s:
            s.put("verdict", "stays")
            for i in range(5):
                s.put_certificate("k%d" % i, "p%d" % i)
            stats = s.stats()
            assert stats["certificates"] == 3
            # Verdicts and certificates evict on separate bounds.
            assert s.get("verdict") == "stays"
            assert s.get_certificate("k4") == "p4"
            assert s.get_certificate("k0") is None

    def test_stats_reports_certificates(self, store):
        store.put_certificate("k", "p", kind="cert")
        stats = store.stats()
        assert stats["certificates"] == 1
        assert stats["max_certificates"] == store.max_certificates

    def test_v1_store_self_wipes_to_v2(self, tmp_path):
        """Opening a store written under schema v1 (no certificates
        table) must rebuild cleanly rather than error."""
        root = tmp_path / "cache"
        root.mkdir()
        db = sqlite3.connect(str(root / "results.sqlite"))
        with db:
            db.execute(
                "CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT)"
            )
            db.execute("INSERT INTO meta VALUES ('schema_version', '1')")
            db.execute("INSERT INTO meta VALUES ('clock', '7')")
            db.execute(
                "CREATE TABLE results (key TEXT PRIMARY KEY, "
                "payload TEXT NOT NULL, root TEXT, mode TEXT, "
                "created REAL, last_access INTEGER, hits INTEGER)"
            )
            db.execute(
                "INSERT INTO results VALUES ('k', 'v1-era', '', '', "
                "0.0, 1, 0)"
            )
            db.execute(
                "CREATE TABLE traces (key TEXT PRIMARY KEY, "
                "jsonl TEXT NOT NULL, last_access INTEGER)"
            )
        db.close()
        with ResultStore(str(root)) as store:
            assert store.get("k") is None  # v1 verdicts wiped
            store.put_certificate("c", "p")  # v2 table exists
            assert store.get_certificate("c") == "p"
            assert store.stats()["schema_version"] == (
                store_module.SCHEMA_VERSION
            )


class TestStoreCertificateCache:
    def test_adapts_store_to_cache_protocol(self, store):
        from repro.serve.store import StoreCertificateCache

        cache = StoreCertificateCache(store)
        assert cache.get("scc1:deadbeef") is None
        cache.put("scc1:deadbeef", "payload", kind="cert")
        assert cache.get("scc1:deadbeef") == "payload"

    def test_keys_are_revision_prefixed(self, store):
        from repro.serve.protocol import code_revision
        from repro.serve.store import StoreCertificateCache

        cache = StoreCertificateCache(store)
        cache.put("scc1:k", "p")
        assert store.get_certificate(
            code_revision() + ":scc1:k"
        ) == "p"
        # A different revision's entries are invisible.
        assert store.get_certificate("scc1:k") is None
