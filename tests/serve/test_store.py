"""Unit tests for the content-addressed persistent result store."""

import sqlite3

import pytest

from repro.serve import store as store_module
from repro.serve.store import ResultStore


@pytest.fixture
def store(tmp_path):
    with ResultStore(str(tmp_path / "cache")) as s:
        yield s


class TestRoundTrip:
    def test_get_miss_then_hit(self, store):
        assert store.get("k1") is None
        store.put("k1", '{"status":"PROVED"}', root="p/1", mode="b")
        assert store.get("k1") == '{"status":"PROVED"}'

    def test_payload_returned_byte_identically(self, store):
        text = '{"a":1,"b":[2,3],"c":"\\u00e9"}'
        store.put("k", text)
        assert store.get("k") == text
        assert store.get("k") == text  # repeated hits don't mutate

    def test_first_write_wins(self, store):
        # Content addressing guarantees identical payloads per key, so
        # a racing second put is a no-op, never an overwrite.
        store.put("k", "first")
        store.put("k", "second")
        assert store.get("k") == "first"

    def test_stats(self, store):
        store.put("k1", "x")
        store.put("k2", "y")
        store.get("k1")
        store.get("missing")
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["hits"] == 1
        assert stats["schema_version"] == store_module.SCHEMA_VERSION


class TestPersistence:
    def test_survives_reopen(self, tmp_path):
        root = str(tmp_path / "cache")
        with ResultStore(root) as store:
            store.put("k1", "payload-1")
        with ResultStore(root) as store:
            assert store.get("k1") == "payload-1"

    def test_traces_survive_reopen(self, tmp_path):
        root = str(tmp_path / "cache")
        with ResultStore(root) as store:
            store.put_trace("k1", '{"event":"meta"}\n')
        with ResultStore(root) as store:
            assert store.get_trace("k1") == '{"event":"meta"}\n'

    def test_two_handles_share_one_store(self, tmp_path):
        # The offline CLI and a daemon may point at the same directory.
        root = str(tmp_path / "cache")
        with ResultStore(root) as writer, ResultStore(root) as reader:
            writer.put("k", "shared")
            assert reader.get("k") == "shared"


class TestEviction:
    def test_lru_eviction_over_bound(self, tmp_path):
        with ResultStore(str(tmp_path), max_entries=3) as store:
            for i in range(3):
                store.put("k%d" % i, "v%d" % i)
            store.get("k0")          # k0 becomes most recent
            store.put("k3", "v3")    # evicts k1, the least recent
            assert store.get("k1") is None
            assert store.get("k0") == "v0"
            assert store.get("k2") == "v2"
            assert store.get("k3") == "v3"

    def test_entry_count_never_exceeds_bound(self, tmp_path):
        with ResultStore(str(tmp_path), max_entries=4) as store:
            for i in range(20):
                store.put("k%d" % i, "v")
            assert store.stats()["entries"] == 4

    def test_trace_eviction_independent(self, tmp_path):
        with ResultStore(str(tmp_path), max_entries=2,
                         max_traces=2) as store:
            for i in range(4):
                store.put_trace("t%d" % i, "line\n")
            assert store.stats()["traces"] == 2
            assert store.get_trace("t3") == "line\n"
            assert store.get_trace("t0") is None

    def test_bounds_validated(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(str(tmp_path), max_entries=0)


class TestSchemaVersioning:
    def test_version_mismatch_wipes_the_store(self, tmp_path,
                                              monkeypatch):
        root = str(tmp_path / "cache")
        with ResultStore(root) as store:
            store.put("k1", "old-layout")
            store.put_trace("k1", "old-trace\n")
        monkeypatch.setattr(
            store_module, "SCHEMA_VERSION",
            store_module.SCHEMA_VERSION + 1,
        )
        with ResultStore(root) as store:
            assert store.get("k1") is None
            assert store.get_trace("k1") is None
            assert store.stats()["schema_version"] == (
                store_module.SCHEMA_VERSION
            )

    def test_same_version_preserves_the_store(self, tmp_path):
        root = str(tmp_path / "cache")
        with ResultStore(root) as store:
            store.put("k1", "kept")
        with ResultStore(root) as store:
            assert store.get("k1") == "kept"

    def test_version_recorded_in_meta_table(self, tmp_path):
        root = str(tmp_path / "cache")
        ResultStore(root).close()
        db = sqlite3.connect(str(tmp_path / "cache" / "results.sqlite"))
        row = db.execute(
            "SELECT value FROM meta WHERE key='schema_version'"
        ).fetchone()
        db.close()
        assert int(row[0]) == store_module.SCHEMA_VERSION
