"""Unit tests for the wire protocol and content addressing."""

import json

import pytest

from repro.core import AnalyzerSettings, TerminationAnalyzer
from repro.errors import AnalysisError
from repro.lp import parse_program
from repro.serve.protocol import (
    PAYLOAD_SCHEMA,
    AnalyzeRequest,
    code_revision,
    normalize_source,
    payload_from_result,
    payload_text,
    request_key,
    settings_fingerprint,
)

APPEND = (
    "append([], Y, Y).\n"
    "append([X|Xs], Y, [X|Zs]) :- append(Xs, Y, Zs).\n"
)


class TestNormalizeSource:
    def test_line_endings_fold(self):
        assert normalize_source("a.\r\nb.\r") == normalize_source(
            "a.\nb.\n"
        )

    def test_trailing_whitespace_folds(self):
        assert normalize_source("a.   \nb.\t\n") == "a.\nb.\n"

    def test_blank_edges_fold(self):
        assert normalize_source("\n\na.\n\n\n") == "a.\n"

    def test_interior_blank_lines_preserved(self):
        # Erring toward distinct keys is safe; collisions are not.
        assert normalize_source("a.\n\nb.\n") == "a.\n\nb.\n"

    def test_empty(self):
        assert normalize_source("") == ""
        assert normalize_source("\n  \n") == ""


class TestRequestKey:
    def test_layout_variants_share_a_key(self):
        base = request_key(APPEND, ("append", 3), "bbf")
        assert request_key(
            APPEND.replace("\n", "\r\n") + "\n\n", ("append", 3), "bbf"
        ) == base

    def test_mode_and_root_distinguish(self):
        base = request_key(APPEND, ("append", 3), "bbf")
        assert request_key(APPEND, ("append", 3), "ffb") != base

    def test_settings_distinguish(self):
        base = request_key(APPEND, ("append", 3), "bbf")
        assert request_key(
            APPEND, ("append", 3), "bbf",
            AnalyzerSettings(use_interarg=False),
        ) != base

    def test_code_revision_rotates_every_key(self):
        base = request_key(APPEND, ("append", 3), "bbf")
        rotated = request_key(
            APPEND, ("append", 3), "bbf", revision="deadbeef"
        )
        assert rotated != base

    def test_deterministic(self):
        assert request_key(APPEND, ("append", 3), "bbf") == request_key(
            APPEND, ("append", 3), "bbf"
        )

    def test_backend_instances_rejected(self):
        from repro.solve import get_backend

        with pytest.raises(AnalysisError):
            request_key(
                APPEND, ("append", 3), "bbf",
                AnalyzerSettings(feasibility=get_backend("simplex")),
            )

    def test_fingerprint_covers_every_knob(self):
        from dataclasses import fields

        fingerprint = settings_fingerprint(AnalyzerSettings())
        assert set(fingerprint) == {
            f.name for f in fields(AnalyzerSettings)
        }

    def test_revision_is_stable_and_short(self):
        assert code_revision() == code_revision()
        assert len(code_revision()) == 16


class TestFromWire:
    def wire(self, **overrides):
        body = {"source": APPEND, "root": "append/3", "mode": "bbf"}
        body.update(overrides)
        return body

    def test_round_trip(self):
        request = AnalyzeRequest.from_wire(self.wire())
        assert request.root == ("append", 3)
        again = AnalyzeRequest.from_wire(request.to_wire())
        assert again == request

    def test_root_as_pair(self):
        request = AnalyzeRequest.from_wire(
            self.wire(root=["append", 3])
        )
        assert request.root == ("append", 3)

    def test_non_object_body(self):
        with pytest.raises(AnalysisError, match="JSON object"):
            AnalyzeRequest.from_wire([1, 2])

    def test_missing_field(self):
        body = self.wire()
        del body["mode"]
        with pytest.raises(AnalysisError, match="mode"):
            AnalyzeRequest.from_wire(body)

    def test_unknown_field(self):
        with pytest.raises(AnalysisError, match="queue"):
            AnalyzeRequest.from_wire(self.wire(queue=7))

    def test_bad_root_string(self):
        with pytest.raises(AnalysisError, match="name/arity"):
            AnalyzeRequest.from_wire(self.wire(root="append"))

    def test_unknown_setting(self):
        with pytest.raises(AnalysisError, match="jobs"):
            AnalyzeRequest.from_wire(
                self.wire(settings={"jobs": 4})
            )

    def test_bad_setting_value(self):
        with pytest.raises(AnalysisError):
            AnalyzeRequest.from_wire(
                self.wire(settings={"norm": "sideways"})
            )

    def test_settings_round_trip_only_overrides(self):
        request = AnalyzeRequest.from_wire(
            self.wire(settings={"use_interarg": False})
        )
        body = request.to_wire()
        assert body["settings"] == {"use_interarg": False}

    def test_parse_rejects_undefined_root(self):
        request = AnalyzeRequest.from_wire(self.wire(root="appendd/3"))
        with pytest.raises(AnalysisError, match="appendd/3"):
            request.parse()


class TestPayload:
    def result(self):
        program = parse_program(APPEND)
        return TerminationAnalyzer(program).analyze(("append", 3), "bbf")

    def test_payload_has_schema_and_no_trace(self):
        payload = payload_from_result(self.result())
        assert payload["schema"] == PAYLOAD_SCHEMA
        assert "trace" not in payload
        assert payload["status"] == "PROVED"

    def test_text_is_canonical_json(self):
        payload = payload_from_result(self.result())
        text = payload_text(payload)
        assert json.loads(text) == payload
        assert text == json.dumps(
            json.loads(text), sort_keys=True, separators=(",", ":")
        )

    def test_two_runs_serialize_identically(self):
        # The byte-identity invariant, minus the transport.
        first = payload_text(payload_from_result(self.result()))
        second = payload_text(payload_from_result(self.result()))
        assert first == second


class TestIncrementalFlag:
    def test_from_wire_default_false(self):
        request = AnalyzeRequest.from_wire(
            {"source": APPEND, "root": "append/3", "mode": "bbf"}
        )
        assert request.incremental is False

    def test_wire_round_trip(self):
        request = AnalyzeRequest.from_wire({
            "source": APPEND, "root": "append/3", "mode": "bbf",
            "incremental": True,
        })
        assert request.incremental is True
        wire = request.to_wire()
        assert wire["incremental"] is True
        assert AnalyzeRequest.from_wire(wire) == request

    def test_to_wire_omits_default(self):
        request = AnalyzeRequest(
            source=APPEND, root=("append", 3), mode="bbf"
        )
        assert "incremental" not in request.to_wire()

    def test_excluded_from_content_address(self):
        """An execution hint, not an input: incremental and full
        solves of the same request share one verdict-store key."""
        plain = AnalyzeRequest(
            source=APPEND, root=("append", 3), mode="bbf"
        )
        hinted = AnalyzeRequest(
            source=APPEND, root=("append", 3), mode="bbf",
            incremental=True,
        )
        assert plain.key() == hinted.key()
