"""Integration tests for the daemon's operational surface: the
/v1/status endpoint, Prometheus content negotiation, request-id
correlation, structured access logs, and the SIGUSR2 profiler toggle
(driven directly through :meth:`ServeApp.toggle_profiler`)."""

import io
import json
import re

from repro.obs import METRICS
from repro.obs.ops import (
    ACCESS_SCHEMA,
    AccessLogWriter,
    validate_access_record,
)
from tests.serve.test_service import (
    APPEND,
    _gcd_sources,
    local_payload_text,
    serve,
)


class TestStatusEndpoint:
    def test_status_shape(self, tmp_path):
        with serve(tmp_path) as (app, client):
            client.analyze(APPEND, ("append", 3), "bbf")
            status = client.status()
            assert status["status"] == "ok"
            assert status["overloaded"] is False
            assert status["draining"] is False
            assert status["pool"]["degraded"] is False
            assert set(status["slo"]) == {"1m", "5m"}
            assert status["slo"]["1m"]["count"] == 1
            assert status["slo"]["1m"]["p95_ms"] > 0
            assert status["accesslog"] == {
                "enabled": False, "dropped": 0
            }
            assert status["profiler"]["active"] is False
            assert status["store"]["entries"] == 1

    def test_slo_counts_errors(self, tmp_path):
        with serve(tmp_path) as (app, client):
            client.analyze(APPEND, ("append", 3), "bbf")
            # A 400 is a client error, not an SLO error (only 5xx).
            client._request("POST", "/v1/analyze", b"not json")
            status = client.status()
            assert status["slo"]["1m"]["count"] == 2
            assert status["slo"]["1m"]["error_count"] == 0


class TestPrometheusEndpoint:
    def test_query_param_negotiates_text_format(self, tmp_path):
        with serve(tmp_path) as (app, client):
            client.analyze(APPEND, ("append", 3), "bbf")
            code, headers, text = client._request(
                "GET", "/v1/metrics?format=prometheus"
            )
            assert code == 200
            assert headers["Content-Type"].startswith("text/plain")
            assert "version=0.0.4" in headers["Content-Type"]
            assert "# TYPE serve_requests_total counter" in text
            assert 'serve_request_ms_bucket{le="+Inf"}' in text
            # Scrape-time gauges are refreshed on demand.
            assert "serve_inflight 0" in text
            assert re.search(
                r'serve_slo_count\{window="1m"\} 1', text
            )

    def test_accept_header_negotiates_text_format(self, tmp_path):
        import http.client

        with serve(tmp_path) as (app, client):
            connection = http.client.HTTPConnection(
                client.host, client.port, timeout=10
            )
            try:
                connection.request(
                    "GET", "/v1/metrics",
                    headers={"Accept": "text/plain"},
                )
                response = connection.getresponse()
                body = response.read().decode()
            finally:
                connection.close()
            assert response.status == 200
            assert response.getheader(
                "Content-Type"
            ).startswith("text/plain")
            assert "# TYPE" in body

    def test_default_remains_json(self, tmp_path):
        with serve(tmp_path) as (app, client):
            snapshot = client.metrics()
            assert "counters" in snapshot

    def test_client_prometheus_helper(self, tmp_path):
        with serve(tmp_path) as (app, client):
            text = client.metrics(format="prometheus")
            assert isinstance(text, str)
            assert text.endswith("\n")

    def test_exposition_passes_the_ci_linter(self, tmp_path):
        import importlib.util
        import pathlib

        spec = importlib.util.spec_from_file_location(
            "check_prom_exposition",
            str(
                pathlib.Path(__file__).resolve().parents[2]
                / "benchmarks" / "check_prom_exposition.py"
            ),
        )
        linter = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(linter)
        with serve(tmp_path) as (app, client):
            client.analyze(APPEND, ("append", 3), "bbf")
            text = client.metrics(format="prometheus")
        assert linter.lint_exposition(text) == []


class TestRequestIds:
    def test_every_response_carries_a_request_id(self, tmp_path):
        with serve(tmp_path) as (app, client):
            _, headers, _ = client._request("GET", "/v1/health")
            first = headers["X-Repro-Request-Id"]
            _, headers, _ = client._request("GET", "/v1/health")
            assert re.fullmatch(r"[0-9a-f]{16}", first)
            assert headers["X-Repro-Request-Id"] != first

    def test_analyze_answer_exposes_request_id(self, tmp_path):
        with serve(tmp_path) as (app, client):
            answer = client.analyze(APPEND, ("append", 3), "bbf")
            assert re.fullmatch(r"[0-9a-f]{16}", answer.request_id)

    def test_request_id_lands_in_the_stored_trace(self, tmp_path):
        with serve(tmp_path) as (app, client):
            answer = client.analyze(APPEND, ("append", 3), "bbf")
            lines = client.trace(answer.key).splitlines()
            meta = json.loads(lines[0])
            assert meta["request_id"] == answer.request_id
            spans = [
                json.loads(line) for line in lines[1:]
                if json.loads(line)["event"] == "span"
            ]
            by_name = {span["name"]: span for span in spans}
            assert by_name["serve.request"]["attrs"]["request_id"] \
                == answer.request_id
            # The worker-side root span carries the same id: the
            # cross-process join key.
            assert by_name["analyze"]["attrs"]["request_id"] \
                == answer.request_id


class TestAccessLog:
    def run_records(self, tmp_path):
        buffer = io.StringIO()
        writer = AccessLogWriter(buffer)
        with serve(tmp_path, access_log=writer) as (app, client):
            fresh = client.analyze(APPEND, ("append", 3), "bbf")
            hit = client.analyze(APPEND, ("append", 3), "bbf")
            client.health()
        records = [
            json.loads(line)
            for line in buffer.getvalue().splitlines()
        ]
        return records, fresh, hit

    def test_one_valid_line_per_request(self, tmp_path):
        records, _, _ = self.run_records(tmp_path)
        assert len(records) == 3
        for record in records:
            assert validate_access_record(record) == [], record
            assert record["schema"] == ACCESS_SCHEMA

    def test_cache_tiers_and_verdicts(self, tmp_path):
        records, fresh, hit = self.run_records(tmp_path)
        first, second, health = records
        assert first["cache"] == "fresh"
        assert first["verdict"] == "PROVED"
        assert first["key"] == fresh.key
        assert first["root"] == "append/3"
        assert first["mode"] == "bbf"
        assert second["cache"] == "store-hit"
        assert second["verdict"] == "PROVED"
        assert "cache" not in health

    def test_latency_breakdown_on_fresh_solves(self, tmp_path):
        records, _, _ = self.run_records(tmp_path)
        first, second, _ = records
        for field in ("queue_ms", "solve_ms", "serialize_ms"):
            assert first[field] >= 0
        assert first["solve_ms"] <= first["total_ms"]
        # Store hits never solved, so carry no breakdown.
        assert "solve_ms" not in second

    def test_request_ids_join_log_to_responses(self, tmp_path):
        records, fresh, hit = self.run_records(tmp_path)
        logged = {record["request_id"] for record in records}
        assert fresh.request_id in logged
        assert hit.request_id in logged

    def test_cert_reuse_tier_and_scc_counts(self, tmp_path):
        old, new = _gcd_sources()
        buffer = io.StringIO()
        writer = AccessLogWriter(buffer)
        with serve(tmp_path, access_log=writer) as (app, client):
            client.analyze(old, ("gcd", 3), "bbf", incremental=True)
            client.analyze(new, ("gcd", 3), "bbf", incremental=True)
        records = [
            json.loads(line)
            for line in buffer.getvalue().splitlines()
        ]
        cold, warm = records
        assert cold["cache"] == "fresh"
        assert cold["sccs_reused"] == 0 and cold["sccs_reproved"] > 1
        assert warm["cache"] == "cert-reuse"
        assert warm["sccs_reused"] > 0
        for record in records:
            assert validate_access_record(record) == [], record

    def test_errors_are_logged_with_status(self, tmp_path):
        buffer = io.StringIO()
        writer = AccessLogWriter(buffer)
        with serve(tmp_path, access_log=writer) as (app, client):
            client._request("POST", "/v1/analyze", b"not json")
        (record,) = [
            json.loads(line)
            for line in buffer.getvalue().splitlines()
        ]
        assert record["status"] == 400
        assert record["error"] == "body is not valid JSON"
        assert validate_access_record(record) == []


class TestObsOffEquivalence:
    def test_ops_machinery_never_changes_the_verdict_bytes(
        self, tmp_path
    ):
        expected = local_payload_text(APPEND, ("append", 3), "bbf")
        # Plain daemon.
        with serve(tmp_path / "plain") as (app, client):
            plain = client.analyze(APPEND, ("append", 3), "bbf").text
        # Fully instrumented daemon: access log + live profiler.
        writer = AccessLogWriter(io.StringIO())
        with serve(
            tmp_path / "ops",
            access_log=writer,
            profile_out=str(tmp_path / "ops.collapsed"),
        ) as (app, client):
            app.toggle_profiler()
            instrumented = client.analyze(
                APPEND, ("append", 3), "bbf"
            ).text
        assert plain == expected
        assert instrumented == expected

    def test_metrics_disabled_still_serves(self, tmp_path):
        previous = METRICS.set_enabled(False)
        try:
            with serve(tmp_path) as (app, client):
                answer = client.analyze(APPEND, ("append", 3), "bbf")
                assert answer.proved
                status = client.status()
                assert status["status"] == "ok"
                client.metrics(format="prometheus")
        finally:
            METRICS.set_enabled(previous)


class TestProfilerToggle:
    def test_toggle_starts_and_stops_with_dump(self, tmp_path):
        out = tmp_path / "serve.collapsed"
        with serve(tmp_path, profile_out=str(out)) as (app, client):
            message = app.toggle_profiler()
            assert "started" in message
            assert client.status()["profiler"]["active"] is True
            client.analyze(APPEND, ("append", 3), "bbf")
            message = app.toggle_profiler()
            assert "stopped" in message
            assert str(out) in message
            assert out.exists()
            assert client.status()["profiler"]["active"] is False

    def test_shutdown_stops_an_active_profiler(self, tmp_path):
        out = tmp_path / "drain.collapsed"
        with serve(tmp_path, profile_out=str(out)) as (app, client):
            app.toggle_profiler()
            client.analyze(APPEND, ("append", 3), "bbf")
        # The context manager drained the app; the dump happened.
        assert out.exists()
