#!/usr/bin/env python
"""Capture rules: pick an evaluation strategy per query mode.

The paper's database motivation (Section 1): "top-down capture rules
require a proof of termination to justify use of top-down rule
evaluation ... the system can attempt to choose an order for subgoals
and rules that assures termination; not only does this remove the
burden from the user, but different orders can be chosen for different
bound-free query patterns."

:func:`repro.core.capture.plan_capture_rules` plays query planner: for
each bound/free pattern of a predicate it asks the analyzer whether
top-down evaluation is provably safe, and — when the given subgoal
order fails — searches reorderings of the rule bodies for one that is.

Run:  python examples/capture_rules.py
"""

from repro import parse_program
from repro.core import plan_capture_rules

PROGRAM = """
perm([], []).
perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).
append([], Ys, Ys).
append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
"""


def main():
    program = parse_program(PROGRAM)

    plan = plan_capture_rules(program, ("perm", 2))
    print(plan.describe())

    # Show the reordering the planner found for perm(fb): with only
    # the second argument bound, running the recursive call FIRST
    # makes the appends well-behaved.
    decision = plan.decision("fb")
    if decision.strategy.endswith("(reordered)"):
        print("\nreordered perm rules for mode fb:")
        for clause in decision.program.clauses_for(("perm", 2)):
            print("  %s" % clause)

    print()
    print(plan_capture_rules(program, ("append", 3)).describe())


if __name__ == "__main__":
    main()
