#!/usr/bin/env python
"""Method-comparison sweep over the whole program corpus.

Regenerates the paper's comparative claims as a table: which classic
programs each method proves terminating.  "Several programs that could
not be shown to terminate by earlier published methods are handled
successfully" — the rows where only the `paper` column reads PROVED.

The sweep runs through :func:`repro.batch.analyze_many`, so it can fan
out over worker processes; the verdicts are identical at any job count.

Run:  python examples/corpus_sweep.py [--jobs N]
"""

import argparse

from repro.baselines import ALL_BASELINES
from repro.batch import analyze_many
from repro.core.report import render_stage_table, render_verdict_table
from repro.corpus import all_programs


def render_worker_summary(report):
    """Load-balance table: items and analysis seconds per worker."""
    loads = {}
    for result in report.results:
        items, elapsed = loads.get(result.worker, (0, 0.0))
        loads[result.worker] = (items + 1, elapsed + result.elapsed_s)
    busiest = max(elapsed for _, elapsed in loads.values()) or 1.0
    lines = ["worker load balance:"]
    for worker in sorted(loads):
        items, elapsed = loads[worker]
        lines.append(
            "  worker %-2d  %3d items  %7.2fs  %s"
            % (worker, items, elapsed,
               "#" * max(1, round(20 * elapsed / busiest)))
        )
    return "\n".join(lines)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default 1: in-process)",
    )
    args = parser.parse_args()

    entries = all_programs()
    report = analyze_many(entries, jobs=args.jobs, baselines=ALL_BASELINES)

    headers = ["program", "truth", "paper"] + [
        method.name for method in ALL_BASELINES
    ]
    rows = []
    for entry, result in zip(entries, report.results):
        truth = {True: "halts", False: "loops", None: "?"}[entry.terminating]
        rows.append(
            [entry.name, truth, result.status]
            + [result.baselines[m.name] for m in ALL_BASELINES]
        )

    print(render_verdict_table(rows, headers=tuple(headers)))
    print("\n%d programs analyzed by %d methods in %.1fs (%d jobs)"
          % (len(rows), 1 + len(ALL_BASELINES), report.wall_time,
             report.jobs))

    if report.jobs > 1:
        print("\n" + render_worker_summary(report))

    # Where the paper's method spent its time, aggregated over the
    # whole corpus (the baseline columns are not instrumented).
    print("\n" + render_stage_table(report.trace))

    only_paper = [
        row[0]
        for row in rows
        if row[2] == "PROVED" and all(v == "UNKNOWN" for v in row[3:])
    ]
    print("\nproved ONLY by the paper's method: %s" % ", ".join(only_paper))


if __name__ == "__main__":
    main()
