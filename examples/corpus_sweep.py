#!/usr/bin/env python
"""Method-comparison sweep over the whole program corpus.

Regenerates the paper's comparative claims as a table: which classic
programs each method proves terminating.  "Several programs that could
not be shown to terminate by earlier published methods are handled
successfully" — the rows where only the `paper` column reads PROVED.

Run:  python examples/corpus_sweep.py
"""

import time

from repro.baselines import ALL_BASELINES
from repro.core import AnalysisTrace, TerminationAnalyzer
from repro.core.report import render_stage_table, render_verdict_table
from repro.corpus import all_programs
from repro.corpus.registry import load


def main():
    headers = ["program", "truth", "paper"] + [
        m.name for m in ALL_BASELINES
    ]
    rows = []
    merged = AnalysisTrace()
    started = time.time()
    for entry in all_programs():
        program = load(entry)
        result = TerminationAnalyzer(program).analyze(entry.root, entry.mode)
        merged.merge(result.trace)
        verdicts = [result.status]
        for method in ALL_BASELINES:
            verdicts.append(
                method.analyze(program, entry.root, entry.mode).status
            )
        truth = {True: "halts", False: "loops", None: "?"}[entry.terminating]
        rows.append([entry.name, truth] + verdicts)

    print(render_verdict_table(rows, headers=tuple(headers)))
    print("\n%d programs analyzed by 4 methods in %.1fs"
          % (len(rows), time.time() - started))

    # Where the paper's method spent its time, aggregated over the
    # whole corpus (the baseline columns are not instrumented).
    print("\n" + render_stage_table(merged))

    only_paper = [
        row[0]
        for row in rows
        if row[2] == "PROVED" and all(v == "UNKNOWN" for v in row[3:])
    ]
    print("\nproved ONLY by the paper's method: %s" % ", ".join(only_paper))


if __name__ == "__main__":
    main()
