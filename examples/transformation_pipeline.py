#!/usr/bin/env python
"""The paper's Appendix A on Example A.1: transform, then prove.

The rules

    p(g(X)) :- e(X).
    p(g(X)) :- q(f(X)).
    q(Y) :- p(Y).
    q(f(Z)) :- p(Z), q(Z).

exhibit "an apparent mutual recursion in which the argument size does
not change", and the analyzer cannot prove them as written.  Alternating
phases of *safe unfolding* and *predicate splitting* expose the real
structure — "the fact that p is not genuinely recursive" — after which
the proof is immediate.

Run:  python examples/transformation_pipeline.py
"""

from repro import analyze, parse_program, verify_proof
from repro.transform import normalize_program

PROGRAM = """
p(g(X)) :- e(X).
p(g(X)) :- q(f(X)).
q(Y) :- p(Y).
q(f(Z)) :- p(Z), q(Z).
"""


def main():
    program = parse_program(PROGRAM)

    print("== Original program ==")
    print(program)
    before = analyze(program, ("p", 1), "b")
    print("\nanalyzer verdict as written:", before.status)
    for failing in before.failing_sccs():
        print("  reason:", failing.reason)

    print("\n== Appendix A transformation phases ==")
    transformed, log = normalize_program(program, roots=[("p", 1)])
    for kind, detail in log.steps:
        print("  [%s] %s" % (kind, detail))

    print("\n== Transformed program ==")
    print(transformed)

    after = analyze(transformed, ("p", 1), "b")
    print("\nanalyzer verdict after transformation:", after.status)
    for proof in after.proof.scc_proofs:
        print(" ", proof.describe().replace("\n", "\n  "))
    verify_proof(after.proof)
    print("\ncertificate independently verified")


if __name__ == "__main__":
    main()
