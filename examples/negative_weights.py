#!/usr/bin/env python
"""Appendix C: proofs where the measure grows before it shrinks.

The paper sketches how to drop the nonnegativity restriction on the
theta offsets: "intuitively, this allows for the possibility that the
critical bound subgoals get larger before getting smaller, in such a
way that they are smaller by the time a cycle around the dependency
graph has been completed", enforced through Papadimitriou's
shortest-path constraints sigma_ij <= theta_ik + sigma_kj with
sigma_ii >= 1.  "We are aware of no natural examples of such rules" —
so here is a synthetic one:

    p(0).
    p(X) :- q(s(X)).          % the argument GROWS by one
    q(s(s(s(X)))) :- p(X).    % ... and shrinks by three coming back

Every p -> q -> p cycle shrinks the argument by two, yet no
nonnegative theta assignment works: theta_pq would need to be
negative.

Run:  python examples/negative_weights.py
"""

from repro import SLDEngine, analyze, parse_program, verify_proof
from repro.core import AnalyzerSettings

PROGRAM = """
p(0).
p(X) :- q(s(X)).
q(s(s(s(X)))) :- p(X).
"""


def main():
    program = parse_program(PROGRAM)

    print("== Standard Section 6 analysis (theta in {0, 1}) ==")
    standard = analyze(program, ("p", 1), "b")
    print("verdict:", standard.status)
    for failing in standard.failing_sccs():
        print("  reason:", failing.reason)

    print("\n== Appendix C analysis (rational thetas + path constraints) ==")
    negative = analyze(
        program, ("p", 1), "b",
        settings=AnalyzerSettings(allow_negative_theta=True),
    )
    print("verdict:", negative.status)
    proof = [
        p for p in negative.proof.scc_proofs
        if not p.trivially_nonrecursive
    ][0]
    for line in proof.describe().splitlines():
        print(" ", line)
    verify_proof(negative.proof)
    print("  certificate independently verified")

    print("\n== Empirical check ==")
    engine = SLDEngine(program)
    for depth in (0, 2, 5, 9):
        numeral = "0"
        for _ in range(depth):
            numeral = "s(%s)" % numeral
        outcome = engine.solve("p(%s)" % numeral)
        print(
            "  p(%-24s -> %s, search complete: %s"
            % (numeral + ")", "succeeds" if outcome.succeeded else "fails",
               outcome.completed)
        )


if __name__ == "__main__":
    main()
