#!/usr/bin/env python
"""The full capture-rule story on left-recursive transitive closure.

Section 1 of the paper: "There exist two approaches to rule
evaluation: top-down and bottom-up.  Typically, one converges
naturally and the other does not on a given set of interdependent
rules ... top-down capture rules require a proof of termination to
justify use of top-down rule evaluation."

The classic case:

    tc(X, Y) :- e(X, Y).
    tc(X, Y) :- tc(X, Z), e(Z, Y).

Left recursion loops forever under Prolog, so the analyzer must NOT
prove it — and it doesn't (the recursive call repeats the bound
argument unchanged).  The planner therefore falls back to bottom-up,
notes the program is function-free Datalog (convergence guaranteed on
a finite EDB), and the semi-naive engine computes the closure.

Run:  python examples/transitive_closure.py
"""

from repro import parse_program
from repro.lp import BottomUpEngine, SLDEngine, is_datalog
from repro.core import analyze_program, plan_capture_rules

PROGRAM = """
e(a, b).
e(b, c).
e(c, d).
e(d, b).
tc(X, Y) :- e(X, Y).
tc(X, Y) :- tc(X, Z), e(Z, Y).
"""


def main():
    program = parse_program(PROGRAM)

    print("== Step 1: top-down is genuinely unsafe ==")
    engine = SLDEngine(program)
    outcome = engine.solve("tc(a, X)", max_depth=100, max_steps=5000)
    print("  Prolog on tc(a, X): search complete within budget: %s"
          % outcome.completed)

    print("\n== Step 2: the analyzer correctly refuses a proof ==")
    result = analyze_program(program, ("tc", 2), "bf")
    print("  verdict:", result.status)
    for failing in result.failing_sccs():
        print("  reason:", failing.reason)

    print("\n== Step 3: the capture planner picks bottom-up ==")
    plan = plan_capture_rules(program, ("tc", 2), modes=["bf", "bb"])
    print(plan.describe())
    print("  function-free (Datalog):", is_datalog(program))

    print("\n== Step 4: semi-naive bottom-up evaluation converges ==")
    bottom_up = BottomUpEngine(program).evaluate()
    print("  converged: %s in %d rounds, %d tc facts"
          % (bottom_up.converged, bottom_up.rounds,
             bottom_up.count("tc", 2)))
    for fact in sorted(bottom_up.relation("tc", 2), key=str):
        print("   ", fact)


if __name__ == "__main__":
    main()
