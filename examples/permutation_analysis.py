#!/usr/bin/env python
"""Deep dive into the paper's Example 3.1 / 4.1: the `perm` procedure.

The permutation generator

    perm([], []).
    perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).

"cannot be shown to terminate (with the first argument bound) by any of
the previous methods" — no pairwise order relation proves P1 < P.  The
paper's method imports the inter-argument constraint

    append1 + append2 = append3

from both append subgoals and finds that lambda = 1/2 on perm's first
argument decreases by at least 1 on every recursive call.

Run:  python examples/permutation_analysis.py
"""

from repro import SLDEngine, analyze, parse_program, verify_proof
from repro.core import AnalyzerSettings
from repro.core.adornment import AdornedPredicate
from repro.baselines import ALL_BASELINES

PROGRAM = """
perm([], []).
perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1), perm(P1, L).
append([], Ys, Ys).
append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
"""


def main():
    program = parse_program(PROGRAM)

    print("== Step 1: the earlier methods all fail ==")
    for baseline in ALL_BASELINES:
        verdict = baseline.analyze(program, ("perm", 2), "bf")
        print("  %-22s -> %s" % (baseline.name, verdict.status))

    print("\n== Step 2: so does this paper's method WITHOUT the")
    print("   inter-argument constraints (the [VG90] import) ==")
    crippled = analyze(
        program, ("perm", 2), "bf",
        settings=AnalyzerSettings(use_interarg=False),
    )
    print("  paper method, no interarg -> %s" % crippled.status)

    print("\n== Step 3: with them, the proof goes through ==")
    result = analyze(program, ("perm", 2), "bf")
    print("  paper method              -> %s" % result.status)

    print("\nInter-argument constraints inferred for append/3:")
    for line in str(result.environment.get(("append", 3))).splitlines():
        print("   ", line)

    node = AdornedPredicate(("perm", 2), "bf")
    proof = result.proof.proof_for(node)
    print("\nCertificate (paper: 'termination can be demonstrated using"
          " lambda = 1/2'):")
    print("  measure[perm] =", proof.measure_description(node))
    print("  theta[perm -> perm] =", proof.thetas[(node, node)])

    verify_proof(result.proof)
    print("  independently verified via the primal LP (Eq. 4)")

    print("\n== Step 4: empirical sanity check ==")
    engine = SLDEngine(program)
    outcome = engine.solve("perm([a, b, c, d], Q)")
    print("  perm([a,b,c,d], Q): %d solutions, complete search: %s"
          % (len(outcome.solutions), outcome.completed))


if __name__ == "__main__":
    main()
