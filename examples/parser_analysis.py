#!/usr/bin/env python
"""The paper's Example 6.1: mutual + nonlinear recursion.

An arithmetic expression parser over three mutually recursive
predicates (e -> t -> n -> e).  Earlier work (Pluemer) had to merge the
predicates into one and still needed ad hoc assumptions; the paper
handles the mutual recursion directly by choosing theta weights per
dependency edge and rejecting zero-weight cycles with a min-plus
closure.

Run:  python examples/parser_analysis.py
"""

from repro import SLDEngine, analyze, parse_program, verify_proof
from repro.core.adornment import AdornedPredicate

PROGRAM = """
e(L, T) :- t(L, ['+'|C]), e(C, T).
e(L, T) :- t(L, T).
t(L, T) :- n(L, ['*'|C]), t(C, T).
t(L, T) :- n(L, T).
n(['('|A], T) :- e(A, [')'|T]).
n([L|T], T) :- z(L).
"""


def main():
    program = parse_program(PROGRAM)
    result = analyze(program, ("e", 2), "bf")
    print("verdict:", result.status)

    print("\nInter-argument constraint the analysis hinges on")
    print("(paper, Section 6.2: 't1 >= 2 + t2 ... found by Van")
    print(" Gelder's methods' — here derived automatically):")
    for line in str(result.environment.get(("t", 2))).splitlines():
        print("   ", line)

    scc_proof = [
        p for p in result.proof.scc_proofs if not p.trivially_nonrecursive
    ][0]
    e = AdornedPredicate(("e", 2), "bf")
    t = AdornedPredicate(("t", 2), "bf")
    n = AdornedPredicate(("n", 2), "bf")

    print("\nTheta assignment (paper: theta_et and theta_tn forced to 0,")
    print("theta_ne = 1 leaves no zero-weight cycle):")
    for (i, j), value in sorted(scc_proof.thetas.items(), key=repr):
        print("  theta[%s -> %s] = %s" % (i.name, j.name, value))

    print("\nMeasures (paper: alpha = beta = gamma >= 1/2):")
    for node in (e, t, n):
        print("  measure[%s] = %s"
              % (node, scc_proof.measure_description(node)))

    verify_proof(result.proof)
    print("\ncertificate independently verified")

    # Parse some real token lists with the engine, supplying a token
    # relation z for identifiers.
    runnable = parse_program(PROGRAM + "\nz(x).\nz(y).\n")
    engine = SLDEngine(runnable)
    for text, tokens in (
        ("x + y", "[x, '+', y]"),
        ("(x + y) * x", "['(', x, '+', y, ')', '*', x]"),
        ("x + +", "[x, '+', '+']"),
    ):
        outcome = engine.solve("e(%s, [])" % tokens)
        print("  parse %-14r -> %s (search complete: %s)"
              % (text, "accepted" if outcome.succeeded else "rejected",
                 outcome.completed))


if __name__ == "__main__":
    main()
