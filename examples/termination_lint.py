#!/usr/bin/env python
"""A termination linter for a small Prolog code base.

Real deployment shape for the paper's method: library files declare
their supported query modes with ``:- mode(...)`` directives, and a CI
gate analyzes every declaration, failing the build when a mode has no
termination proof.  This example writes a three-file mini-library to a
temp directory and lints it.

Run:  python examples/termination_lint.py
"""

import os
import sys
import tempfile

from repro import parse_program
from repro.core import TerminationAnalyzer, check_well_moded

LIBRARY = {
    "lists.pl": """
        :- mode(append(b, b, f)).
        :- mode(append(f, f, b)).
        :- mode(rev(b, f)).

        append([], Ys, Ys).
        append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).

        rev(L, R) :- rev_acc(L, [], R).
        rev_acc([], A, A).
        rev_acc([X|Xs], A, R) :- rev_acc(Xs, [X|A], R).
    """,
    "sorting.pl": """
        :- mode(msort(b, f)).

        split([], [], []).
        split([X|Xs], [X|O], E) :- split(Xs, E, O).
        merge([], Ys, Ys).
        merge(Xs, [], Xs).
        merge([X|Xs], [Y|Ys], [X|Zs]) :- X =< Y, merge(Xs, [Y|Ys], Zs).
        merge([X|Xs], [Y|Ys], [Y|Zs]) :- Y < X, merge([X|Xs], Ys, Zs).
        msort([], []).
        msort([X], [X]).
        msort([X, Y|Zs], S) :- split([X, Y|Zs], L1, L2),
                               msort(L1, S1), msort(L2, S2),
                               merge(S1, S2, S).
    """,
    "buggy.pl": """
        :- mode(walk(b)).

        walk(X) :- step(X, Y), walk(Y).
        step(a, b).
        step(b, a).
    """,
}


def lint_file(path):
    with open(path) as handle:
        program = parse_program(handle.read())
    # One analyzer per file: the inter-argument environment is inferred
    # once and shared by every declared mode.
    analyzer = TerminationAnalyzer(program)
    failures = 0
    for declaration in program.mode_declarations:
        name, arity = declaration.indicator
        modes = check_well_moded(program, declaration.indicator,
                                 declaration.mode)
        result = analyzer.analyze(declaration.indicator, declaration.mode)
        status = result.status
        notes = []
        if not modes.well_moded:
            notes.append("not well-moded")
        if status != "PROVED":
            failures += 1
            for failing in result.failing_sccs():
                notes.append(failing.reason)
        print(
            "  %s/%d mode %s: %-8s %s"
            % (name, arity, declaration.mode, status,
               ("(" + "; ".join(notes) + ")") if notes else "")
        )
    return failures


def main():
    workspace = tempfile.mkdtemp(prefix="repro_lint_")
    for filename, source in LIBRARY.items():
        with open(os.path.join(workspace, filename), "w") as handle:
            handle.write(source)

    total_failures = 0
    for filename in sorted(LIBRARY):
        print("%s:" % filename)
        total_failures += lint_file(os.path.join(workspace, filename))
    print(
        "\nlint result: %s"
        % ("PASS" if not total_failures
           else "FAIL (%d undeclared-termination modes)" % total_failures)
    )
    # msort needs the list-length norm (see EXPERIMENTS.md F3); show
    # how a per-file knob would rescue it.
    sorting = parse_program(LIBRARY["sorting.pl"])
    from repro.core import AnalyzerSettings

    rescued = TerminationAnalyzer(
        sorting, settings=AnalyzerSettings(norm="list_length")
    ).analyze(("msort", 2), "bf")
    print("msort under the list-length norm:", rescued.status)
    return 1 if total_failures else 0


if __name__ == "__main__":
    sys.exit(main())
