#!/usr/bin/env python
"""Replay a corpus slice against a running ``repro-serve`` daemon.

The smallest useful load driver for the analysis service: POST each
corpus program (optionally several times), print per-request cache
status and latency, and summarize the hit rate.  The CI smoke job runs
it twice against one daemon and asserts the second pass is served
almost entirely from the persistent store.

Run:
    repro-serve --port 8421 --cache-dir /tmp/repro-cache &
    python examples/serve_client.py --url http://127.0.0.1:8421
    python examples/serve_client.py --url http://127.0.0.1:8421 \\
        --min-hit-rate 0.9       # exits 1 below the bar

The ``--min-hit-rate`` gate makes the script double as an assertion:
a warm store (second pass, or a daemon that has seen this corpus
before) must answer from cache.
"""

import argparse
import sys
import time

from repro.batch import as_batch_item
from repro.corpus import all_programs
from repro.errors import ServeError
from repro.serve.client import ServeClient


def replay(client, items, repeat):
    """POST every item *repeat* times; return (answers, hits)."""
    answers = []
    hits = 0
    for _ in range(repeat):
        for item in items:
            started = time.perf_counter()
            answer = client.analyze(item.source, item.root, item.mode)
            elapsed_ms = (time.perf_counter() - started) * 1000
            hits += answer.cached
            answers.append(answer)
            print(
                "%-22s %-6s %-8s %-5s %8.2f ms"
                % (item.name, item.mode, answer.status,
                   "hit" if answer.cached else "miss", elapsed_ms)
            )
    return answers, hits


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Replay corpus programs against a repro-serve "
        "daemon and report the store hit rate."
    )
    parser.add_argument(
        "--url", default="http://127.0.0.1:8421",
        help="daemon base URL (default http://127.0.0.1:8421)",
    )
    parser.add_argument(
        "--slice", type=int, default=12, metavar="N",
        help="number of corpus programs to replay (default 12)",
    )
    parser.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="replay the slice N times (default 1)",
    )
    parser.add_argument(
        "--min-hit-rate", type=float, default=None, metavar="RATE",
        help="exit 1 unless at least RATE of requests hit the store",
    )
    args = parser.parse_args(argv)

    client = ServeClient(args.url)
    try:
        health = client.health()
    except ServeError as error:
        print("daemon unreachable: %s" % error, file=sys.stderr)
        return 2
    print("daemon ok: revision %s, %d stored verdict(s)\n"
          % (health["revision"], health["store"]["entries"]))

    items = [as_batch_item(entry) for entry in all_programs()[:args.slice]]
    answers, hits = replay(client, items, args.repeat)

    total = len(answers)
    rate = hits / total if total else 0.0
    print("\n%d requests, %d store hits (%.0f%%)"
          % (total, hits, 100 * rate))
    if args.min_hit_rate is not None and rate < args.min_hit_rate:
        print("hit rate %.2f below required %.2f"
              % (rate, args.min_hit_rate), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
