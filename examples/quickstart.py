#!/usr/bin/env python
"""Quickstart: prove that `append` terminates and inspect the proof.

Run:  python examples/quickstart.py
"""

from repro import SLDEngine, parse_program, render_report, verify_proof
from repro.core import TerminationAnalyzer

PROGRAM = """
append([], Ys, Ys).
append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
"""


def main():
    program = parse_program(PROGRAM)
    analyzer = TerminationAnalyzer(program)

    # 1. Ask the analyzer: does append(bound, bound, free) terminate
    #    under Prolog's top-down, left-to-right strategy?
    result = analyzer.analyze(("append", 3), "bbf")
    print(render_report(result))

    # 2. The certificate is machine-checkable: an independent verifier
    #    re-derives every decrease claim with the primal simplex.
    verify_proof(result.proof)
    print("certificate independently verified\n")

    # 3. The same question for the reversed mode — enumerate splits of
    #    a bound third argument.  A different argument carries the
    #    termination proof.  Reusing the analyzer reuses the already
    #    inferred inter-argument environment; pass show_stats=True to
    #    see the per-stage trace (note the interarg cache hit).
    backward = analyzer.analyze(("append", 3), "ffb")
    print(render_report(backward, show_stats=True))

    # 4. And the library can simply *run* the program too.
    engine = SLDEngine(program)
    answers = engine.solve("append(X, Y, [a, b, c])")
    print("append(X, Y, [a, b, c]) has %d solutions, search complete: %s"
          % (len(answers.solutions), answers.completed))
    for solution in answers.solutions:
        pairs = ", ".join(
            "%s = %s" % (var, term) for var, term in solution.items()
        )
        print("  " + pairs)


if __name__ == "__main__":
    main()
