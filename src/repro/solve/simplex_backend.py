"""Feasibility via the exact two-phase simplex (the default backend)."""

from __future__ import annotations

from time import perf_counter

from repro.linalg.constraints import ConstraintSystem
from repro.linalg.linexpr import LinearExpr
from repro.linalg.simplex import OPTIMAL, solve_lp
from repro.obs import span
from repro.solve.backend import (
    LPBackend,
    SolveOutcome,
    SolveStats,
    register_backend,
)


@register_backend
class SimplexBackend(LPBackend):
    """Phase-1 feasibility with a zero objective.

    The witness is the basic feasible solution phase 1 lands on;
    ``stats.pivots`` counts tableau pivots across both phases.
    """

    name = "simplex"

    def feasible_point(self, system):
        """Decide feasibility of *system*; return a :class:`SolveOutcome`."""
        if not isinstance(system, ConstraintSystem):
            system = ConstraintSystem(system)
        with span("solve.simplex") as node:
            started = perf_counter()
            result = solve_lp(LinearExpr.constant(0), system)
            stats = SolveStats(
                backend=self.name,
                rows_in=len(system),
                rows_out=len(system),
                variables=len(system.variables()),
                pivots=result.pivots,
                wall_time=perf_counter() - started,
            )
            node.inc("rows_in", stats.rows_in)
            node.inc("pivots", stats.pivots)
            node.set(feasible=result.status == OPTIMAL)
            if result.status != OPTIMAL:
                return SolveOutcome(feasible=False, stats=stats)
            return SolveOutcome(
                feasible=True, witness=result.assignment, stats=stats
            )
