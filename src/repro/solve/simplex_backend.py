"""Feasibility via the exact two-phase simplex (the default backend)."""

from __future__ import annotations

from time import perf_counter

from repro.linalg.constraints import ConstraintSystem
from repro.linalg.linexpr import LinearExpr
from repro.linalg.simplex import OPTIMAL, feasible_point_batch, solve_lp
from repro.obs import span
from repro.solve.backend import (
    BatchLPBackend,
    SolveOutcome,
    SolveStats,
    register_backend,
)


@register_backend
class SimplexBackend(BatchLPBackend):
    """Phase-1 feasibility with a zero objective.

    The witness is the basic feasible solution phase 1 lands on;
    ``stats.pivots`` counts tableau pivots across both phases.

    Option ``kernel`` (default ``None`` = follow the process default)
    selects the tableau implementation passed to the solver;
    ``"array"`` additionally makes :meth:`feasible_points` dispatch
    same-shape tableaus as one lockstep multi-tableau solve.  Either
    way the outcomes are byte-identical to the serial loop.
    """

    name = "simplex"

    def feasible_point(self, system):
        """Decide feasibility of *system*; return a :class:`SolveOutcome`."""
        if not isinstance(system, ConstraintSystem):
            system = ConstraintSystem(system)
        with span("solve.simplex") as node:
            started = perf_counter()
            result = solve_lp(
                LinearExpr.constant(0), system,
                kernel=self.options.get("kernel"),
            )
            stats = SolveStats(
                backend=self.name,
                rows_in=len(system),
                rows_out=len(system),
                variables=len(system.variables()),
                pivots=result.pivots,
                wall_time=perf_counter() - started,
            )
            node.inc("rows_in", stats.rows_in)
            node.inc("pivots", stats.pivots)
            node.set(feasible=result.status == OPTIMAL)
            if result.status != OPTIMAL:
                return SolveOutcome(feasible=False, stats=stats)
            return SolveOutcome(
                feasible=True, witness=result.assignment, stats=stats
            )

    def feasible_points(self, systems):
        """Batched feasibility over many systems.

        Routes through :func:`feasible_point_batch`, which groups
        same-shape tableaus into lockstep multi-tableau solves under
        ``kernel="array"`` and degrades to serial solves otherwise.
        One :class:`SolveOutcome` per system, byte-identical to the
        serial loop.
        """
        systems = [
            system if isinstance(system, ConstraintSystem)
            else ConstraintSystem(system)
            for system in systems
        ]
        with span("solve.simplex.batch") as node:
            started = perf_counter()
            pairs = feasible_point_batch(
                systems, kernel=self.options.get("kernel"),
                with_pivots=True,
            )
            elapsed = perf_counter() - started
            node.inc("requests", len(systems))
            node.inc("pivots", sum(pivots for _, pivots in pairs))
            outcomes = []
            for system, (witness, pivots) in zip(systems, pairs):
                stats = SolveStats(
                    backend=self.name,
                    rows_in=len(system),
                    rows_out=len(system),
                    variables=len(system.variables()),
                    pivots=pivots,
                    wall_time=elapsed / len(systems) if systems else 0.0,
                )
                outcomes.append(
                    SolveOutcome(
                        feasible=witness is not None,
                        witness=witness,
                        stats=stats,
                    )
                )
            return outcomes
