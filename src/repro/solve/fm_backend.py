"""Feasibility + witness via pure Fourier–Motzkin elimination.

The paper's "in practice, Fourier-Motzkin elimination is simple and
adequate" route, previously inlined in the analyzer: FM preserves
satisfiability at every step, so the system is feasible iff the fully
eliminated system has no contradiction row; a witness is recovered by
assigning the variables in reverse elimination order, each within the
interval its stage allows.

The elimination itself runs on the integer row kernel
(:class:`~repro.linalg.rows.StagedEliminator`) by default; the option
``kernel="reference"`` keeps the original object pipeline for
differential testing — both produce identical verdicts and witnesses
satisfying the same stage intervals.
"""

from __future__ import annotations

from fractions import Fraction
from time import perf_counter

from repro.linalg.constraints import ConstraintSystem
from repro.linalg.fourier_motzkin import (
    KERNEL_ARRAY,
    KERNEL_REFERENCE,
    eliminate,
)
from repro.linalg.linexpr import LinearExpr
from repro.linalg.rows import StagedEliminator
from repro.obs import span
from repro.solve.backend import (
    LPBackend,
    SolveOutcome,
    SolveStats,
    register_backend,
)


@register_backend
class FourierMotzkinBackend(LPBackend):
    """Option ``prune`` (default True) runs redundancy pruning at every
    elimination step — the analyzer wires ``AnalyzerSettings.prune_fm``
    through here.  Option ``kernel`` (default ``"int"``) selects the
    integer row kernel, the ``"array"`` vectorized eliminator (falls
    back to ``"int"`` when numpy is missing or int64 would overflow),
    or the ``"reference"`` object path.  ``stats.eliminations`` counts
    eliminated variables, ``stats.rows_out`` the rows surviving full
    elimination."""

    name = "fm"

    def feasible_point(self, system):
        """Decide feasibility of *system*; return a :class:`SolveOutcome`."""
        if not isinstance(system, ConstraintSystem):
            system = ConstraintSystem(system)
        prune = self.options.get("prune", True)
        kernel = self.options.get("kernel", "int")
        if kernel == KERNEL_REFERENCE:
            return self._feasible_point_reference(system, prune)
        if kernel == KERNEL_ARRAY:
            outcome = self._feasible_point_array(system, prune)
            if outcome is not None:
                return outcome
            # numpy missing or machine arithmetic refused: the exact
            # integer eliminator below produces the identical outcome.
        with span("solve.fm", kernel="int") as node:
            node.inc("rows_in", len(system))
            started = perf_counter()

            eliminator = StagedEliminator(system)
            final = eliminator.run(prune=prune)
            stats = SolveStats(
                backend=self.name,
                rows_in=len(system),
                rows_out=len(final),
                variables=len(eliminator.variables),
                eliminations=len(eliminator.variables),
            )
            node.inc("eliminations", stats.eliminations)
            node.inc("rows_out", stats.rows_out)
            if eliminator.has_contradiction():
                stats.wall_time = perf_counter() - started
                node.set(feasible=False)
                return SolveOutcome(feasible=False, stats=stats)
            point = eliminator.witness()
            stats.wall_time = perf_counter() - started
            node.set(feasible=True)
            return SolveOutcome(feasible=True, witness=point, stats=stats)

    def _feasible_point_array(self, system, prune):
        """The vectorized eliminator; None signals "use the int path".

        Stage contents, verdicts, and witnesses are byte-identical to
        :class:`StagedEliminator` — the array twin replays the same
        substitution/combination schedule as whole-block updates.
        """
        from repro.linalg.array_kernel import (
            ArrayKernelUnavailable,
            ArrayStagedEliminator,
        )

        with span("solve.fm", kernel="array") as node:
            node.inc("rows_in", len(system))
            started = perf_counter()
            try:
                eliminator = ArrayStagedEliminator(system)
                final_flags, _, final_consts = eliminator.run(prune=prune)
            except ArrayKernelUnavailable:
                node.set(fallback=True)
                return None
            stats = SolveStats(
                backend=self.name,
                rows_in=len(system),
                rows_out=len(final_consts),
                variables=len(eliminator.variables),
                eliminations=len(eliminator.variables),
            )
            node.inc("eliminations", stats.eliminations)
            node.inc("rows_out", stats.rows_out)
            if eliminator.has_contradiction():
                stats.wall_time = perf_counter() - started
                node.set(feasible=False)
                return SolveOutcome(feasible=False, stats=stats)
            point = eliminator.witness()
            stats.wall_time = perf_counter() - started
            node.set(feasible=True)
            return SolveOutcome(feasible=True, witness=point, stats=stats)

    def _feasible_point_reference(self, system, prune):
        """The object-pipeline elimination (differential baseline)."""
        with span("solve.fm", kernel="reference") as node:
            node.inc("rows_in", len(system))
            return self._reference_solve(system, prune, node)

    def _reference_solve(self, system, prune, node):
        started = perf_counter()

        order = sorted(system.variables(), key=repr)
        stages = [system]
        for var in order:
            stages.append(
                eliminate(
                    stages[-1], var, prune=prune, kernel=KERNEL_REFERENCE
                )
            )
        stats = SolveStats(
            backend=self.name,
            rows_in=len(system),
            rows_out=len(stages[-1]),
            variables=len(order),
            eliminations=len(order),
        )
        node.inc("eliminations", stats.eliminations)
        node.inc("rows_out", stats.rows_out)
        if stages[-1].has_contradiction_row():
            stats.wall_time = perf_counter() - started
            node.set(feasible=False)
            return SolveOutcome(feasible=False, stats=stats)
        point = {}
        for var, stage in zip(reversed(order), reversed(stages[:-1])):
            point[var] = _pick_value(stage, var, point)
        stats.wall_time = perf_counter() - started
        node.set(feasible=True)
        return SolveOutcome(feasible=True, witness=point, stats=stats)


def _pick_value(system, var, partial):
    """Choose a value for *var* consistent with *system*, where
    *partial* already fixes every other variable of *system*."""
    lower = None
    upper = None
    for constraint in system:
        coeff = constraint.expr.coefficient(var)
        if coeff == 0:
            continue
        rest = constraint.expr - LinearExpr.of(var, coeff)
        rest_value = rest.evaluate(partial)
        bound = -rest_value / coeff
        if constraint.is_equality():
            return bound
        if coeff > 0:
            lower = bound if lower is None else max(lower, bound)
        else:
            upper = bound if upper is None else min(upper, bound)
    if lower is not None and upper is not None:
        return (lower + upper) / 2
    if lower is not None:
        return lower
    if upper is not None:
        return upper
    return Fraction(0)
