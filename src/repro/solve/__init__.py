"""Pluggable LP solver backends for the termination pipeline.

- :mod:`repro.solve.backend` — the :class:`LPBackend` interface, the
  :class:`SolveOutcome`/:class:`SolveStats` result types, and the
  name registry (:func:`register_backend` / :func:`get_backend`).
- :mod:`repro.solve.simplex_backend` — exact two-phase simplex
  (default; counts pivots).
- :mod:`repro.solve.fm_backend` — pure Fourier–Motzkin elimination
  with witness recovery by back-substitution (counts eliminations).

Importing this package registers both built-in backends.
"""

from repro.solve.backend import (
    BatchLPBackend,
    LPBackend,
    SolveOutcome,
    SolveStats,
    available_backends,
    get_backend,
    register_backend,
)
from repro.solve.simplex_backend import SimplexBackend
from repro.solve.fm_backend import FourierMotzkinBackend

__all__ = [
    "BatchLPBackend",
    "LPBackend",
    "SolveOutcome",
    "SolveStats",
    "available_backends",
    "get_backend",
    "register_backend",
    "SimplexBackend",
    "FourierMotzkinBackend",
]
