"""The LP backend interface and registry.

The analyzer's final step — "is the lambda constraint system
feasible, and if so at which point?" — is the one place the pipeline
touches a numeric solver.  This module makes that step pluggable: an
:class:`LPBackend` takes a :class:`~repro.linalg.constraints.ConstraintSystem`
and returns a :class:`SolveOutcome` carrying the feasibility verdict,
a witness assignment, and per-solve statistics (rows in/out, pivots or
eliminations performed, wall time) that the staged pipeline folds into
its stage traces.

Backends self-register by name; :func:`get_backend` resolves a
``feasibility`` setting string to an instance at analyzer construction
time, so an unknown backend fails fast with one clear
:class:`~repro.errors.AnalysisError` instead of erroring mid-SCC.
Future scaling work (batched solves, parallel SCCs, external LP
libraries) plugs in here without touching the analysis skeleton.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AnalysisError

_BACKENDS = {}


@dataclass
class SolveStats:
    """Cost telemetry for one feasibility solve.

    ``rows_in``/``rows_out`` — constraint rows given to the backend and
    rows of the final (reduced/eliminated) system it decided on.
    ``pivots`` — simplex tableau pivots; ``eliminations`` — variables
    removed by Fourier–Motzkin.  A backend fills in whichever of the
    two applies; ``wall_time`` is seconds.
    """

    backend: str = ""
    rows_in: int = 0
    rows_out: int = 0
    variables: int = 0
    pivots: int = 0
    eliminations: int = 0
    wall_time: float = 0.0


@dataclass
class SolveOutcome:
    """What a backend returns: verdict, witness, and statistics.

    ``witness`` is a ``{variable: Fraction}`` assignment satisfying the
    system when ``feasible`` is True, else None.
    """

    feasible: bool
    witness: dict = None
    stats: SolveStats = field(default_factory=SolveStats)


class LPBackend:
    """Interface every feasibility backend implements.

    Construction keyword options are backend-specific (unknown ones
    are ignored so one settings object can configure any backend);
    :meth:`feasible_point` is the single entry point.  Backends also
    satisfy the :class:`BatchLPBackend` protocol through the default
    serial :meth:`feasible_points`; implementations with a genuinely
    vectorized multi-solve override it.
    """

    name = "abstract"

    def __init__(self, **options):
        self.options = options

    def feasible_point(self, system):
        """Decide feasibility of *system*; return a :class:`SolveOutcome`."""
        raise NotImplementedError

    def feasible_points(self, systems):
        """Decide feasibility of every system; one outcome each.

        The default is the serial fallback — a plain loop over
        :meth:`feasible_point` — so every backend can be driven
        through the batched pipeline entry point.  Overrides must
        return outcomes byte-identical to this loop (order preserved,
        one :class:`SolveOutcome` per input system).
        """
        return [self.feasible_point(system) for system in systems]

    def __repr__(self):
        return "<backend %s>" % self.name


class BatchLPBackend(LPBackend):
    """Marker base for backends whose :meth:`feasible_points` batches.

    The contract is unchanged from :class:`LPBackend` — same outcomes
    as the serial loop — but the pipeline reports batched dispatch in
    its traces when it sees this type, and tests can assert a backend
    actually groups solves instead of silently looping.
    """

    def feasible_points(self, systems):
        raise NotImplementedError


def register_backend(backend_class):
    """Register an :class:`LPBackend` subclass under its ``name``.

    Usable as a class decorator; re-registering a name overwrites it
    (latest wins), which lets tests install instrumented doubles.
    """
    if not (isinstance(backend_class, type)
            and issubclass(backend_class, LPBackend)):
        raise TypeError("expected an LPBackend subclass, got %r"
                        % (backend_class,))
    _BACKENDS[backend_class.name] = backend_class
    return backend_class


def available_backends():
    """The registered backend names, sorted."""
    return tuple(sorted(_BACKENDS))


def get_backend(name, **options):
    """Resolve *name* to a fresh backend instance.

    Accepts an already-constructed :class:`LPBackend` verbatim (an
    extension point for callers supplying custom solvers).  Raises
    :class:`AnalysisError` for unknown names — the analyzer calls this
    at construction time, so bad settings fail before any SCC work.
    """
    if isinstance(name, LPBackend):
        return name
    try:
        backend_class = _BACKENDS[name]
    except KeyError:
        raise AnalysisError(
            "unknown feasibility backend %r; choose from %s"
            % (name, ", ".join(available_backends()))
        ) from None
    return backend_class(**options)
