"""Hierarchical spans: the unit of structured tracing.

A :class:`Span` is one timed region of work — a pipeline stage, one
SCC, one dualization, one backend solve — with a name, arbitrary
attributes (*which* SCC, *which* predicate), integer counters, a wall
time, and child spans.  A :class:`Tracer` owns a forest of root spans
and maintains the open-span stack, so nested ``with tracer.span(...)``
blocks build parent/child links automatically.

Instrumented library code that does not want to thread a tracer
through every call signature uses the ambient form::

    from repro.obs import span

    with span("solve.fm", rows=len(system)) as s:
        ...
        s.inc("eliminations", count)

which attaches to whichever tracer is *active* on this thread (a
tracer is active while one of its spans is open, or inside
:func:`activate`).  With no active tracer the span is detached: it is
still yielded — callers may set counters unconditionally — but
recorded nowhere and costs one small allocation.

Spans hold only JSON-atomic attribute values (anything else is
stringified on entry), so a span tree pickles across process
boundaries (the batch workers ship theirs back to the parent) and
serializes losslessly to the JSONL event schema of
:mod:`repro.obs.sinks`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter

__all__ = ["Span", "Tracer", "activate", "active_tracer", "span"]

_ATOMIC = (str, int, float, bool, type(None))


def _clean(value):
    """Attribute values must survive JSON and pickling."""
    return value if isinstance(value, _ATOMIC) else str(value)


class Span:
    """One timed, attributed, countered region of work."""

    def __init__(self, name, attrs=None):
        self.name = name
        self.attrs = {
            key: _clean(value) for key, value in (attrs or {}).items()
        }
        self.counters = {}
        self.started = 0.0     # perf_counter() at open (process-local)
        self.wall_s = 0.0      # seconds between open and close
        self.children = []

    # -- recording -------------------------------------------------------------

    def inc(self, counter, amount=1):
        """Add *amount* to the named counter."""
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def set(self, **attrs):
        """Attach (JSON-atomic) attributes to the span."""
        for key, value in attrs.items():
            self.attrs[key] = _clean(value)

    # -- structure -------------------------------------------------------------

    def walk(self):
        """Yield this span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name):
        """Every span named *name* in this subtree, pre-order."""
        return [s for s in self.walk() if s.name == name]

    @property
    def self_s(self):
        """Wall time not accounted for by direct children."""
        return max(0.0, self.wall_s - sum(c.wall_s for c in self.children))

    # -- serialization ---------------------------------------------------------

    def to_dict(self, origin=None):
        """Plain-dict form (children nested); ``start_s`` is relative
        to *origin* (defaults to this span's own open time)."""
        if origin is None:
            origin = self.started
        return {
            "name": self.name,
            "start_s": round(self.started - origin, 9),
            "wall_s": self.wall_s,
            "attrs": dict(self.attrs),
            "counters": dict(self.counters),
            "children": [c.to_dict(origin) for c in self.children],
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a span tree from :meth:`to_dict` output (``started``
        then holds the origin-relative offset)."""
        span = cls(data["name"], data.get("attrs") or {})
        span.counters = dict(data.get("counters") or {})
        span.started = data.get("start_s", 0.0)
        span.wall_s = data.get("wall_s", 0.0)
        span.children = [
            cls.from_dict(child) for child in data.get("children", ())
        ]
        return span

    def __repr__(self):
        return "<span %s %.3fms children=%d>" % (
            self.name, self.wall_s * 1000, len(self.children)
        )


_ACTIVE = threading.local()


def active_tracer():
    """The tracer ambient :func:`span` calls attach to, or None."""
    return getattr(_ACTIVE, "tracer", None)


@contextmanager
def activate(tracer):
    """Make *tracer* the ambient tracer for the duration of the block."""
    previous = active_tracer()
    _ACTIVE.tracer = tracer
    try:
        yield tracer
    finally:
        _ACTIVE.tracer = previous


class Tracer:
    """Owns a forest of root spans plus the open-span stack.

    Opening a span also makes its tracer the thread's active tracer,
    so ambient :func:`span` calls from instrumented library code land
    under the innermost open span.  Closing restores the previous
    active tracer — tracers nest safely.
    """

    def __init__(self):
        self.roots = []
        self._stack = []

    @contextmanager
    def span(self, name, **attrs):
        """Open a child span of the innermost open span (or a new root)."""
        node = Span(name, attrs)
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.roots.append(node)
        self._stack.append(node)
        previous = active_tracer()
        _ACTIVE.tracer = self
        node.started = perf_counter()
        try:
            yield node
        finally:
            node.wall_s += perf_counter() - node.started
            _ACTIVE.tracer = previous
            self._stack.pop()

    def adopt(self, spans):
        """Graft already-closed spans (e.g. from another process's
        tracer) into this forest as additional roots."""
        self.roots.extend(spans)
        return self

    def iter_spans(self):
        """Every recorded span, pre-order across the root forest."""
        for root in self.roots:
            yield from root.walk()

    # -- pickling (the open-span stack never crosses processes) ---------------

    def __getstate__(self):
        return {"roots": self.roots}

    def __setstate__(self, state):
        self.roots = state["roots"]
        self._stack = []


@contextmanager
def span(name, **attrs):
    """Ambient span: attach to the active tracer, or run detached."""
    tracer = active_tracer()
    if tracer is None:
        yield Span(name, attrs)
        return
    with tracer.span(name, **attrs) as node:
        yield node
