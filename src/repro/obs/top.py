"""``repro-top``: a live terminal dashboard for a repro-serve daemon.

Polls ``GET /v1/metrics`` (the JSON snapshot) and ``GET /v1/status``
(the ops summary) on an interval and renders the numbers an operator
watches during a load test or an incident: request throughput (from
the delta between consecutive snapshots), rolling-window latency
percentiles and error rate, lifetime ``serve.request_ms`` percentiles
interpolated from the histogram, store/certificate cache hit rates,
pool lane and utilization, and backpressure/drop counters.

Rendering is a pure function (:func:`render_dashboard`) over the two
fetched dicts plus the previous snapshot — the tests drive it with
canned data, the CLI loop (:func:`main`, installed as ``repro-top``
and runnable as ``python -m repro.obs.top``) just fetches, diffs,
clears the screen, and repeats.  Stdlib only, like the daemon itself.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.obs.metrics import diff_snapshots, histogram_quantile

__all__ = ["render_dashboard", "main"]

_CLEAR = "\x1b[2J\x1b[H"


def _counter(snapshot, name):
    return snapshot.get("counters", {}).get(name, 0)


def _rate(numerator, denominator):
    return numerator / denominator if denominator else 0.0


def _fmt_ms(value):
    if value is None:
        return "-"
    if value >= 100:
        return "%.0fms" % value
    return "%.1fms" % value


def _fmt_pct(fraction):
    return "%.1f%%" % (100.0 * fraction)


def _histogram_percentiles(snapshot, name):
    data = snapshot.get("histograms", {}).get(name)
    if not data or not data.get("count"):
        return None
    return {
        "count": data["count"],
        "p50": histogram_quantile(data["buckets"], data["counts"], 0.50),
        "p95": histogram_quantile(data["buckets"], data["counts"], 0.95),
        "p99": histogram_quantile(data["buckets"], data["counts"], 0.99),
    }


def _slo_line(label, window):
    return (
        "  %-3s  p50 %-8s p95 %-8s p99 %-8s err %-6s  %5.1f req/s"
        " (n=%d)"
        % (
            label,
            _fmt_ms(window.get("p50_ms")),
            _fmt_ms(window.get("p95_ms")),
            _fmt_ms(window.get("p99_ms")),
            _fmt_pct(window.get("error_rate") or 0.0),
            window.get("throughput_rps") or 0.0,
            window.get("count") or 0,
        )
    )


def render_dashboard(url, status, snapshot, previous=None, elapsed=None):
    """Render one dashboard frame as text.

    *status* is the ``/v1/status`` dict, *snapshot* the current
    ``/v1/metrics`` JSON snapshot, *previous* the snapshot from the
    prior poll (None on the first frame) and *elapsed* the seconds
    between the two — throughput and interval percentiles come from
    their difference.
    """
    lines = []
    pool = status.get("pool", {})
    state = status.get("status", "?")
    lines.append(
        "repro-top %s   state %s   lane %s (jobs %s%s)   inflight %s/%s"
        % (
            url, state, pool.get("lane", "?"), pool.get("jobs", "?"),
            ", degraded" if pool.get("degraded") else "",
            status.get("inflight", "?"), status.get("max_inflight", "?"),
        )
    )

    # -- throughput from the snapshot delta ------------------------------------
    if previous is not None and elapsed:
        delta = diff_snapshots(snapshot, previous)
        requests = _counter(delta, "serve.requests")
        lines.append(
            "throughput  %6.1f req/s over last %.1fs  (%d requests)"
            % (requests / elapsed, elapsed, requests)
        )
        interval = _histogram_percentiles(delta, "serve.request_ms")
        if interval:
            lines.append(
                "interval    p50 %-8s p95 %-8s p99 %-8s (n=%d)"
                % (_fmt_ms(interval["p50"]), _fmt_ms(interval["p95"]),
                   _fmt_ms(interval["p99"]), interval["count"])
            )

    # -- rolling SLO windows ---------------------------------------------------
    slo = status.get("slo") or {}
    if slo:
        lines.append("slo windows")
        for label in sorted(slo, key=lambda l: slo[l].get("count", 0)):
            lines.append(_slo_line(label, slo[label]))

    # -- lifetime latency ------------------------------------------------------
    lifetime = _histogram_percentiles(snapshot, "serve.request_ms")
    if lifetime:
        lines.append(
            "lifetime    p50 %-8s p95 %-8s p99 %-8s (n=%d)"
            % (_fmt_ms(lifetime["p50"]), _fmt_ms(lifetime["p95"]),
               _fmt_ms(lifetime["p99"]), lifetime["count"])
        )

    # -- caches ----------------------------------------------------------------
    store_hits = _counter(snapshot, "serve.store.hits")
    store_misses = _counter(snapshot, "serve.store.misses")
    cert_hits = _counter(snapshot, "serve.store.cert.hits")
    cert_misses = _counter(snapshot, "serve.store.cert.misses")
    lines.append(
        "caches      verdict %s (%d/%d)   certificates %s (%d/%d)"
        % (
            _fmt_pct(_rate(store_hits, store_hits + store_misses)),
            store_hits, store_hits + store_misses,
            _fmt_pct(_rate(cert_hits, cert_hits + cert_misses)),
            cert_hits, cert_hits + cert_misses,
        )
    )

    # -- pressure & losses -----------------------------------------------------
    accesslog = status.get("accesslog") or {}
    lines.append(
        "pressure    rejected(429) %d   timeouts(504) %d   errors %d   "
        "log drops %d"
        % (
            _counter(snapshot, "serve.rejected"),
            _counter(snapshot, "serve.timeouts"),
            _counter(snapshot, "serve.errors"),
            accesslog.get("dropped", 0),
        )
    )
    store = status.get("store") or {}
    if store:
        lines.append(
            "store       entries %s   certificates %s   traces %s"
            % (store.get("entries", "?"), store.get("certificates", "?"),
               store.get("traces", "?"))
        )
    profiler = status.get("profiler") or {}
    if profiler.get("active"):
        lines.append("profiler    ACTIVE (%d samples so far)"
                     % profiler.get("samples", 0))
    return "\n".join(lines)


def build_top_parser():
    """Construct the argparse parser for ``repro-top``."""
    parser = argparse.ArgumentParser(
        prog="repro-top",
        description="Live operational dashboard for a running "
        "repro-serve daemon: throughput, latency percentiles, "
        "cache hit rates, pool utilization.",
    )
    parser.add_argument(
        "--url", default="http://127.0.0.1:8421",
        help="daemon base URL (default http://127.0.0.1:8421)",
    )
    parser.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="poll interval (default 2.0)",
    )
    parser.add_argument(
        "--iterations", type=int, default=0, metavar="N",
        help="stop after N frames (default 0: run until Ctrl-C)",
    )
    parser.add_argument(
        "--no-clear", action="store_true",
        help="append frames instead of clearing the screen "
        "(for logs and CI)",
    )
    return parser


def main(argv=None):
    """``repro-top`` entry point; returns the process exit code."""
    args = build_top_parser().parse_args(argv)
    from repro.errors import ServeError
    from repro.serve.client import ServeClient

    client = ServeClient(args.url, timeout=max(5.0, args.interval * 2))
    previous = None
    fetched_at = None
    frame = 0
    try:
        while True:
            try:
                status = client.status()
                snapshot = client.metrics()
            except ServeError as error:
                print("repro-top: %s" % error, file=sys.stderr)
                return 2
            now = time.monotonic()
            elapsed = (now - fetched_at) if fetched_at is not None else None
            text = render_dashboard(
                args.url, status, snapshot, previous, elapsed
            )
            if args.no_clear:
                print(text)
                print()
            else:
                print(_CLEAR + text, flush=True)
            previous, fetched_at = snapshot, now
            frame += 1
            if args.iterations and frame >= args.iterations:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
