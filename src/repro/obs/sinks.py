"""Telemetry sinks and the JSONL event schema.

A sink receives flat telemetry *events* (plain dicts): one per span at
export time, one per metric instrument at flush time, plus a leading
``meta`` header.  Two implementations:

- :class:`JsonlSink` — one JSON object per line, append-only, the
  interchange format ``repro-analyze --trace-out`` writes and
  ``repro-trace`` reads;
- :class:`MemorySink` — an in-memory event list for tests.

Event schema (version :data:`SCHEMA`) — documented normatively in
``docs/OBSERVABILITY.md`` and validated by
``benchmarks/check_trace_schema.py``:

``{"event": "meta", "schema": "repro.trace/1", ...}``
    First event of every stream.  Extra keys (tool, arguments,
    timestamps) are free-form.

``{"event": "span", "id": i, "parent": j|null, "name": str,
"start_s": float, "wall_s": float, "attrs": {}, "counters": {}}``
    One per span, parents before children (pre-order), ids unique and
    increasing within the stream; ``start_s`` is relative to the
    span's root.

``{"event": "metric", "kind": "counter"|"gauge", "name": str,
"value": num}`` and ``{"event": "metric", "kind": "histogram",
"name": str, "buckets": [...], "counts": [...], "sum": num,
"count": num}``
    One per registry instrument at flush time.

:func:`write_trace` serializes span forests + a metrics snapshot into
a sink; :func:`read_trace` rebuilds ``(meta, roots, snapshot)`` from a
JSONL file — the round trip the sink tests and ``repro-trace`` rely
on.
"""

from __future__ import annotations

import json

from repro.obs.spans import Span

__all__ = [
    "SCHEMA",
    "Sink",
    "MemorySink",
    "JsonlSink",
    "span_events",
    "metric_events",
    "write_trace",
    "read_trace",
]

#: Schema identifier stamped into every stream's meta event.
SCHEMA = "repro.trace/1"


class Sink:
    """Interface: receives events, then a close."""

    def emit(self, event):
        """Consume one event dict."""
        raise NotImplementedError

    def close(self):
        """Flush and release resources (default: nothing)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


class MemorySink(Sink):
    """Collects events in a list (tests, in-process consumers)."""

    def __init__(self):
        self.events = []
        self.closed = False

    def emit(self, event):
        """Append the event."""
        self.events.append(event)

    def close(self):
        """Mark the sink closed."""
        self.closed = True


class JsonlSink(Sink):
    """Writes one JSON object per line to *path* (or a file object)."""

    def __init__(self, path):
        if hasattr(path, "write"):
            self._handle = path
            self._owns = False
        else:
            self._handle = open(path, "w")
            self._owns = True

    def emit(self, event):
        """Serialize the event as one JSONL line."""
        self._handle.write(json.dumps(event, sort_keys=True, default=str))
        self._handle.write("\n")

    def close(self):
        """Flush, and close the handle if this sink opened it."""
        self._handle.flush()
        if self._owns:
            self._handle.close()


def span_events(roots):
    """Flatten span trees into ``span`` events, pre-order, with
    stream-unique ids and parent links."""
    events = []

    def visit(node, parent_id, origin):
        identifier = len(events)
        events.append({
            "event": "span",
            "id": identifier,
            "parent": parent_id,
            "name": node.name,
            "start_s": round(node.started - origin, 9),
            "wall_s": node.wall_s,
            "attrs": dict(node.attrs),
            "counters": dict(node.counters),
        })
        for child in node.children:
            visit(child, identifier, origin)

    for root in roots:
        visit(root, None, root.started)
    return events


def metric_events(snapshot):
    """One ``metric`` event per instrument in a registry snapshot."""
    events = []
    for name, value in snapshot.get("counters", {}).items():
        events.append({
            "event": "metric", "kind": "counter",
            "name": name, "value": value,
        })
    for name, value in snapshot.get("gauges", {}).items():
        if value is not None:
            events.append({
                "event": "metric", "kind": "gauge",
                "name": name, "value": value,
            })
    for name, data in snapshot.get("histograms", {}).items():
        events.append({
            "event": "metric", "kind": "histogram",
            "name": name,
            "buckets": list(data["buckets"]),
            "counts": list(data["counts"]),
            "sum": data["sum"],
            "count": data["count"],
        })
    return events


def write_trace(sink, roots, snapshot=None, meta=None):
    """Emit a full telemetry stream: meta, spans, then metrics.

    *sink* may be a :class:`Sink` or a path (opened as JSONL).
    Returns the number of events emitted.
    """
    if not isinstance(sink, Sink):
        sink = JsonlSink(sink)
    header = {"event": "meta", "schema": SCHEMA}
    header.update(meta or {})
    count = 0
    with sink:
        sink.emit(header)
        count += 1
        for event in span_events(roots):
            sink.emit(event)
            count += 1
        if snapshot is not None:
            for event in metric_events(snapshot):
                sink.emit(event)
                count += 1
    return count


def read_trace(path):
    """Parse a JSONL telemetry stream back into
    ``(meta, roots, snapshot)`` — the inverse of :func:`write_trace`.

    Unknown event types are ignored (forward compatibility); a missing
    or foreign meta event raises ``ValueError``.
    """
    meta = None
    spans = {}
    roots = []
    snapshot = {"counters": {}, "gauges": {}, "histograms": {}}
    with open(path) as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                raise ValueError(
                    "%s:%d: not valid JSON" % (path, line_number)
                ) from None
            kind = event.get("event")
            if kind == "meta":
                if meta is None:
                    meta = event
                continue
            if kind == "span":
                node = Span(event["name"], event.get("attrs") or {})
                node.counters = dict(event.get("counters") or {})
                node.started = event.get("start_s", 0.0)
                node.wall_s = event.get("wall_s", 0.0)
                spans[event["id"]] = node
                parent = event.get("parent")
                if parent is None:
                    roots.append(node)
                else:
                    spans[parent].children.append(node)
                continue
            if kind == "metric":
                if event.get("kind") == "counter":
                    snapshot["counters"][event["name"]] = event["value"]
                elif event.get("kind") == "gauge":
                    snapshot["gauges"][event["name"]] = event["value"]
                elif event.get("kind") == "histogram":
                    snapshot["histograms"][event["name"]] = {
                        "buckets": event["buckets"],
                        "counts": event["counts"],
                        "sum": event["sum"],
                        "count": event["count"],
                    }
    if meta is None or meta.get("schema") != SCHEMA:
        raise ValueError(
            "%s: missing or unrecognized meta event (expected schema %r)"
            % (path, SCHEMA)
        )
    return meta, roots, snapshot
