"""The process-wide metrics registry: counters, gauges, histograms.

Instrumented code records *what happened how often* here — cache hits,
generated/pruned FM rows, simplex pivots, min-plus relaxation rounds —
while spans (:mod:`repro.obs.spans`) record *where the time went*.
The two are deliberately decoupled: metrics are process-wide running
totals that survive across analyses, spans belong to one trace.

Three instrument kinds:

- :class:`Counter` — monotonically increasing integer (``.inc(n)``);
- :class:`Gauge` — last-written value (``.set(v)``);
- :class:`Histogram` — fixed bucket boundaries chosen at first
  registration; ``observe(v)`` increments the first bucket whose upper
  bound is ``>= v`` (the last bucket is the implicit ``+inf``
  overflow), and tracks ``sum``/``count`` for averages.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain JSON-ready
dicts; :func:`merge_snapshots` is associative and commutative over
counters and histograms (gauges take the last non-None value), which
is what lets batch workers ship their snapshots to the parent in any
completion order.  :func:`diff_snapshots` subtracts a "before" from an
"after" snapshot so an in-process run can report only its own delta.

Hot loops should accumulate locally and flush once per call::

    if METRICS.enabled:
        METRICS.counter("fm.rows.generated").inc(generated)

``METRICS.enabled`` (toggled by :meth:`set_enabled`) is the
observability kill switch the overhead benchmarks flip.
"""

from __future__ import annotations

from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS",
    "DEFAULT_BUCKETS",
    "merge_snapshots",
    "diff_snapshots",
    "labeled",
    "split_labels",
    "histogram_quantile",
]

#: Default histogram bucket upper bounds (roughly log-spaced).
DEFAULT_BUCKETS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, amount=1):
        """Add *amount* (must be >= 0)."""
        if amount < 0:
            raise ValueError(
                "counter %s cannot decrease (got %r)" % (self.name, amount)
            )
        self.value += amount


class Gauge:
    """A last-write-wins value."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = None

    def set(self, value):
        """Record the current value."""
        self.value = value


class Histogram:
    """Fixed-boundary histogram with sum/count.

    *buckets* are upper bounds in increasing order; ``counts`` has one
    slot per bound plus a final overflow slot for values above the
    largest bound.
    """

    __slots__ = ("name", "buckets", "counts", "sum", "count")

    def __init__(self, name, buckets=DEFAULT_BUCKETS):
        bounds = tuple(buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                "histogram %s needs strictly increasing bucket bounds, "
                "got %r" % (name, buckets)
            )
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0
        self.count = 0

    def observe(self, value):
        """Record one observation."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self):
        """Average observation (0 when empty)."""
        return self.sum / self.count if self.count else 0


class MetricsRegistry:
    """Name-keyed instruments with snapshot/merge/reset.

    One process-wide instance (:data:`METRICS`) serves the whole
    library; tests construct private registries.
    """

    def __init__(self, enabled=True):
        self._counters = {}
        self._gauges = {}
        self._histograms = {}
        self.enabled = enabled

    def set_enabled(self, enabled):
        """Toggle recording; returns the previous state."""
        previous = self.enabled
        self.enabled = bool(enabled)
        return previous

    # -- instrument lookup (get-or-create) ------------------------------------

    def counter(self, name):
        """The counter registered under *name*."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name):
        """The gauge registered under *name*."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name, buckets=None):
        """The histogram under *name*; the first registration fixes
        the bucket boundaries, later calls must agree (or omit them)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                name, DEFAULT_BUCKETS if buckets is None else buckets
            )
        elif buckets is not None and tuple(buckets) != instrument.buckets:
            raise ValueError(
                "histogram %s already registered with buckets %r"
                % (name, instrument.buckets)
            )
        return instrument

    # -- snapshots -------------------------------------------------------------

    def snapshot(self):
        """JSON-ready copy of every instrument's current state."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def merge_snapshot(self, snapshot):
        """Fold a snapshot (e.g. from a worker process) into this
        registry's running totals."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            if value is not None:
                self.gauge(name).set(value)
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name, tuple(data["buckets"]))
            for slot, count in enumerate(data["counts"]):
                histogram.counts[slot] += count
            histogram.sum += data["sum"]
            histogram.count += data["count"]

    def reset(self):
        """Drop every instrument (used by tests and benchmarks)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


def merge_snapshots(*snapshots):
    """Merge snapshot dicts into one (associative + commutative over
    counters/histograms; gauges keep the last non-None value seen)."""
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.merge_snapshot(snapshot)
    return merged.snapshot()


def diff_snapshots(after, before):
    """The telemetry recorded between *before* and *after* snapshots
    of the same registry (counters/histograms subtract; gauges keep
    the *after* value)."""
    delta = {"counters": {}, "gauges": dict(after.get("gauges", {})),
             "histograms": {}}
    earlier = before.get("counters", {})
    for name, value in after.get("counters", {}).items():
        change = value - earlier.get(name, 0)
        if change:
            delta["counters"][name] = change
    earlier = before.get("histograms", {})
    for name, data in after.get("histograms", {}).items():
        base = earlier.get(name)
        if base is None:
            delta["histograms"][name] = {
                "buckets": list(data["buckets"]),
                "counts": list(data["counts"]),
                "sum": data["sum"],
                "count": data["count"],
            }
            continue
        counts = [a - b for a, b in zip(data["counts"], base["counts"])]
        if any(counts):
            delta["histograms"][name] = {
                "buckets": list(data["buckets"]),
                "counts": counts,
                "sum": data["sum"] - base["sum"],
                "count": data["count"] - base["count"],
            }
    return delta


def labeled(name, **labels):
    """Attach Prometheus-style labels to an instrument name.

    The registry stays a flat name-keyed map — a labeled series is
    just a name carrying a deterministic ``{key="value",...}`` suffix
    (keys sorted, values escaped), so snapshot merge/diff algebra is
    untouched and ``repro.obs.ops.prometheus`` can split the suffix
    back out at exposition time::

        METRICS.counter(labeled("serve.responses", status=200)).inc()
    """
    if not labels:
        return name
    inner = ",".join(
        '%s="%s"' % (
            key,
            str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"),
        )
        for key, value in sorted(labels.items())
    )
    return "%s{%s}" % (name, inner)


def split_labels(name):
    """Split a :func:`labeled` name into ``(base, label_suffix)``.

    *label_suffix* is the raw ``key="value",...`` text (empty for an
    unlabeled name); it is already valid Prometheus label syntax, so
    renderers can reuse it verbatim.
    """
    base, brace, rest = name.partition("{")
    if brace and rest.endswith("}"):
        return base, rest[:-1]
    return name, ""


def histogram_quantile(buckets, counts, quantile):
    """Estimate a quantile from fixed-bucket counts by linear
    interpolation within the owning bucket (the ``histogram_quantile``
    rule Prometheus uses).

    *buckets* are the upper bounds, *counts* the per-bucket counts
    with the trailing overflow slot.  The first bucket interpolates
    from 0 (observations here are non-negative sizes and durations);
    a quantile landing in the overflow bucket reports the largest
    finite bound — the honest answer fixed buckets can give.  Returns
    ``None`` for an empty histogram.
    """
    if not 0 <= quantile <= 1:
        raise ValueError("quantile must be in [0, 1], got %r" % quantile)
    total = sum(counts)
    if not total:
        return None
    rank = quantile * total
    cumulative = 0
    for index, count in enumerate(counts):
        if not count:
            continue
        if cumulative + count >= rank:
            if index >= len(buckets):
                return float(buckets[-1])
            upper = buckets[index]
            lower = buckets[index - 1] if index else min(0, upper)
            fraction = (rank - cumulative) / count
            return lower + (upper - lower) * fraction
        cumulative += count
    return float(buckets[-1])


#: The process-wide registry every instrumented module records into.
METRICS = MetricsRegistry()
