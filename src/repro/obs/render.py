"""Text rendering for span trees and metric snapshots.

:func:`render_tree` is the ``repro-trace`` view: a top-down time tree,
one line per span, siblings ordered widest-first (flamegraph style),
with each span's share of its root's wall time, its attributes, and
its counters.  :func:`render_metrics` is the ``--metrics`` view: an
aligned table of every counter, gauge, and histogram in a registry
snapshot.
"""

from __future__ import annotations

from repro.obs.metrics import histogram_quantile

__all__ = ["render_tree", "render_metrics"]


def _brief(mapping):
    """``k=v`` pairs, insertion order, compact."""
    return " ".join("%s=%s" % (k, v) for k, v in mapping.items())


def _bar(fraction, width=12):
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def render_tree(roots, max_depth=None, min_ms=0.0):
    """Render span trees as an indented, widest-first time tree.

    *max_depth* limits nesting (None = unlimited); *min_ms* hides
    spans cheaper than that many milliseconds (pruned subtrees are
    summarized so no time silently disappears).
    """
    lines = []

    def visit(node, depth, root_wall):
        share = node.wall_s / root_wall if root_wall else 0.0
        detail = []
        if node.attrs:
            detail.append(_brief(node.attrs))
        if node.counters:
            detail.append("[%s]" % _brief(node.counters))
        lines.append(
            "%s %7.2fms %5.1f%%  %s%s%s"
            % (
                _bar(share),
                node.wall_s * 1000,
                share * 100,
                "  " * depth,
                node.name,
                ("  " + " ".join(detail)) if detail else "",
            )
        )
        if max_depth is not None and depth + 1 >= max_depth:
            hidden = len(node.children)
            if hidden:
                lines.append(
                    "%s %7s %6s  %s... %d child span%s below --depth"
                    % (" " * 12, "", "", "  " * (depth + 1), hidden,
                       "" if hidden == 1 else "s")
                )
            return
        children = sorted(
            node.children, key=lambda child: child.wall_s, reverse=True
        )
        hidden = 0
        hidden_ms = 0.0
        for child in children:
            if child.wall_s * 1000 < min_ms:
                hidden += 1
                hidden_ms += child.wall_s * 1000
                continue
            visit(child, depth + 1, root_wall)
        if hidden:
            lines.append(
                "%s %7.2fms %5.1f%%  %s... %d span%s under %.3gms"
                % (
                    " " * 12,
                    hidden_ms,
                    (hidden_ms / 1000 / root_wall * 100) if root_wall else 0,
                    "  " * (depth + 1),
                    hidden,
                    "" if hidden == 1 else "s",
                    min_ms,
                )
            )

    ordered = sorted(roots, key=lambda root: root.wall_s, reverse=True)
    for index, root in enumerate(ordered):
        if index:
            lines.append("")
        visit(root, 0, root.wall_s)
    return "\n".join(lines)


def render_metrics(snapshot):
    """Aligned tables for a registry snapshot's instruments."""
    lines = []
    counters = snapshot.get("counters", {})
    if counters:
        width = max(len(name) for name in counters)
        lines.append("counters:")
        for name in sorted(counters):
            lines.append("  %-*s  %d" % (width, name, counters[name]))
    gauges = {
        name: value
        for name, value in snapshot.get("gauges", {}).items()
        if value is not None
    }
    if gauges:
        width = max(len(name) for name in gauges)
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append("  %-*s  %s" % (width, name, gauges[name]))
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            data = histograms[name]
            count = data["count"]
            mean = (data["sum"] / count) if count else 0
            lines.append(
                "  %s  count=%d sum=%s mean=%.2f" % (
                    name, count, data["sum"], mean
                )
            )
            if count:
                estimates = " ".join(
                    "p%d~%.3g" % (
                        percentile,
                        histogram_quantile(
                            data["buckets"], data["counts"],
                            percentile / 100,
                        ),
                    )
                    for percentile in (50, 95, 99)
                )
                lines.append(
                    "    %s  (interpolated within buckets)" % estimates
                )
            labels = ["<=%s" % bound for bound in data["buckets"]] + ["+inf"]
            peak = max(data["counts"]) or 1
            for label, bucket_count in zip(labels, data["counts"]):
                if not bucket_count:
                    continue
                lines.append(
                    "    %-8s %6d  %s"
                    % (label, bucket_count, _bar(bucket_count / peak, 24))
                )
    if not lines:
        return "(no metrics recorded)"
    return "\n".join(lines)
