"""Prometheus text exposition for a metrics-registry snapshot.

:func:`render_prometheus` turns the JSON snapshot shape of
:meth:`repro.obs.metrics.MetricsRegistry.snapshot` into the Prometheus
text format (``text/plain; version=0.0.4``) that real scrapers
ingest:

- dotted instrument names are sanitized to ``[a-zA-Z0-9_:]`` metric
  families (``serve.request_ms`` → ``serve_request_ms``);
- counters follow the ``_total`` naming convention;
- a :func:`repro.obs.metrics.labeled` suffix on the registry name
  (``serve.responses{status="200"}``) becomes real sample labels, and
  every series of a family is grouped under one ``# TYPE`` line;
- histograms render the full conformant family: cumulative
  ``_bucket`` series with ``le`` labels ending in ``le="+Inf"``, plus
  ``_sum`` and ``_count``.

The module is presentation-only: it never touches the registry's
internals, so rendering a snapshot is safe from any thread and from
outside the process (``repro-top`` renders the daemon's JSON snapshot
the same way the daemon itself does).

``benchmarks/check_prom_exposition.py`` lints this output in CI — the
renderer and the linter are written against the same spec, not against
each other.
"""

from __future__ import annotations

import re

from repro.obs.metrics import split_labels

__all__ = ["CONTENT_TYPE", "render_prometheus"]

#: The content type a conforming scrape endpoint must answer with.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def _family_name(dotted):
    """A spec-legal metric family name for a dotted registry name."""
    name = _SANITIZE.sub("_", dotted)
    if not _NAME_OK.match(name):
        name = "_" + name
    return name


def _format_value(value):
    """Prometheus sample value text (floats keep full precision)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _sample(family, labels, value):
    if labels:
        return "%s{%s} %s" % (family, labels, _format_value(value))
    return "%s %s" % (family, _format_value(value))


def _group_series(named_values):
    """Group ``{registry_name: value}`` into
    ``{(family, dotted_base): [(label_suffix, value), ...]}`` so every
    family renders contiguously under one TYPE line."""
    families = {}
    for name in sorted(named_values):
        base, labels = split_labels(name)
        key = (_family_name(base), base)
        families.setdefault(key, []).append((labels, named_values[name]))
    return families


def _merge_labels(existing, extra):
    return "%s,%s" % (existing, extra) if existing else extra


def render_prometheus(snapshot, help_prefix="repro"):
    """Render a registry snapshot as Prometheus exposition text.

    Counters gain the conventional ``_total`` suffix; gauges with
    non-numeric values (a gauge may legitimately hold a string in the
    JSON view) are skipped — the JSON endpoint remains the lossless
    form.  Returns text ending in exactly one newline.
    """
    lines = []

    for (family, base), series in sorted(
        _group_series(snapshot.get("counters", {})).items()
    ):
        total = family if family.endswith("_total") else family + "_total"
        lines.append("# HELP %s %s counter %s" % (total, help_prefix, base))
        lines.append("# TYPE %s counter" % total)
        for labels, value in series:
            lines.append(_sample(total, labels, value))

    numeric_gauges = {
        name: value
        for name, value in snapshot.get("gauges", {}).items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }
    for (family, base), series in sorted(
        _group_series(numeric_gauges).items()
    ):
        lines.append("# HELP %s %s gauge %s" % (family, help_prefix, base))
        lines.append("# TYPE %s gauge" % family)
        for labels, value in series:
            lines.append(_sample(family, labels, value))

    for (family, base), series in sorted(
        _group_series(snapshot.get("histograms", {})).items()
    ):
        lines.append(
            "# HELP %s %s histogram %s" % (family, help_prefix, base)
        )
        lines.append("# TYPE %s histogram" % family)
        for labels, data in series:
            cumulative = 0
            for bound, count in zip(data["buckets"], data["counts"]):
                cumulative += count
                lines.append(_sample(
                    family + "_bucket",
                    _merge_labels(labels, 'le="%s"' % _format_value(bound)),
                    cumulative,
                ))
            lines.append(_sample(
                family + "_bucket",
                _merge_labels(labels, 'le="+Inf"'),
                data["count"],
            ))
            lines.append(_sample(family + "_sum", labels, data["sum"]))
            lines.append(_sample(family + "_count", labels, data["count"]))

    return "\n".join(lines) + "\n" if lines else "\n"
