"""Rolling-window SLO estimators: latency quantiles and error rate.

The metrics registry's histograms are *process-lifetime* totals — good
for Prometheus (the scraper does the windowing), useless for "what is
p99 right now".  :class:`RollingWindow` keeps the raw ``(timestamp,
latency_ms, error)`` samples of the last *N* seconds in a ring buffer
and answers order-statistic quantiles over exactly that window;
:class:`SloTracker` maintains the standard 1m/5m pair and publishes
them as gauges so both ``GET /v1/status`` and the Prometheus scrape
see the same numbers.

Memory is bounded twice: by time (samples older than the window are
evicted on every observe/summary) and by count (the deque's ``maxlen``
drops the oldest sample under pathological request rates — a shrunken
window beats an unbounded buffer).  All entry points take a lock, so
the asyncio request path and a scraping thread can share one tracker.
"""

from __future__ import annotations

import threading
from collections import deque
from time import monotonic

from repro.obs.metrics import labeled

__all__ = ["RollingWindow", "SloTracker", "DEFAULT_WINDOWS"]

#: The standard window pair: (label, seconds).
DEFAULT_WINDOWS = (("1m", 60.0), ("5m", 300.0))

#: Quantiles every summary reports.
_QUANTILES = ((0.50, "p50_ms"), (0.95, "p95_ms"), (0.99, "p99_ms"))


def _quantile(ordered, q):
    """Linear interpolation between order statistics (NumPy's default
    method, on an already-sorted list)."""
    if not ordered:
        return None
    position = q * (len(ordered) - 1)
    below = int(position)
    above = min(below + 1, len(ordered) - 1)
    fraction = position - below
    return ordered[below] * (1 - fraction) + ordered[above] * fraction


class RollingWindow:
    """Ring-buffered samples of the trailing *seconds* of traffic."""

    def __init__(self, seconds, max_samples=65536):
        if seconds <= 0:
            raise ValueError("window must be positive, got %r" % seconds)
        self.seconds = float(seconds)
        self._samples = deque(maxlen=max_samples)

    def observe(self, latency_ms, error=False, now=None):
        """Record one request's latency and error flag."""
        when = monotonic() if now is None else now
        self._evict(when)
        self._samples.append((when, float(latency_ms), bool(error)))

    def _evict(self, now):
        horizon = now - self.seconds
        samples = self._samples
        while samples and samples[0][0] < horizon:
            samples.popleft()

    def __len__(self):
        return len(self._samples)

    def summary(self, now=None):
        """The window's live numbers as a JSON-ready dict.

        ``count``/``error_count`` are totals inside the window,
        ``error_rate`` their ratio, ``throughput_rps`` count over the
        window length, and the ``p*_ms`` keys interpolated latency
        quantiles (None while the window is empty).
        """
        when = monotonic() if now is None else now
        self._evict(when)
        latencies = sorted(sample[1] for sample in self._samples)
        errors = sum(1 for sample in self._samples if sample[2])
        count = len(latencies)
        summary = {
            "count": count,
            "error_count": errors,
            "error_rate": (errors / count) if count else 0.0,
            "throughput_rps": count / self.seconds,
        }
        for q, key in _QUANTILES:
            summary[key] = _quantile(latencies, q)
        return summary


class SloTracker:
    """The serve-side window set (1m/5m by default), lock-guarded."""

    def __init__(self, windows=DEFAULT_WINDOWS, max_samples=65536):
        self._lock = threading.Lock()
        self.windows = {
            label: RollingWindow(seconds, max_samples=max_samples)
            for label, seconds in windows
        }

    def observe(self, latency_ms, error=False, now=None):
        """Record one request into every window."""
        with self._lock:
            for window in self.windows.values():
                window.observe(latency_ms, error=error, now=now)

    def summary(self, now=None):
        """``{window_label: RollingWindow.summary()}`` for all windows."""
        with self._lock:
            return {
                label: window.summary(now=now)
                for label, window in self.windows.items()
            }

    def publish(self, registry, prefix="serve.slo", now=None):
        """Export every window's summary as gauges on *registry*
        (``serve.slo.p95_ms{window="1m"}`` …), so the same numbers
        surface in JSON snapshots and the Prometheus scrape.  Returns
        the summary it published.
        """
        summaries = self.summary(now=now)
        for label, summary in summaries.items():
            for key, value in summary.items():
                if value is None:
                    continue
                registry.gauge(
                    labeled("%s.%s" % (prefix, key), window=label)
                ).set(value)
        return summaries
