"""Structured access logs: one JSON line per served request.

The daemon must never trade latency for logging: a slow or wedged log
destination (full disk, blocking pipe) cannot be allowed to stall the
asyncio event loop.  :class:`AccessLogWriter` therefore decouples the
two with a bounded handoff queue and a daemon writer thread — the
request path does a non-blocking ``put``; when the queue is full the
record is *dropped and counted* (``serve.accesslog.dropped``) instead
of queued into a latency cliff.  Losing a log line under overload is
an explicit, observable degradation; blocking the server is not.

Record schema (:data:`ACCESS_SCHEMA`, one JSON object per line)::

    {"schema": "repro.access/1", "ts": float, "request_id": str,
     "method": str, "path": str, "status": int, "bytes": int,
     "total_ms": float, ...}

Analysis requests additionally carry ``key`` (content address),
``verdict``, ``cache`` (``store-hit`` / ``cert-reuse`` / ``fresh``),
``sccs_reused``/``sccs_reproved``/``sccs_rejected``, and the latency
breakdown ``queue_ms``/``solve_ms``/``serialize_ms``.
:func:`validate_access_record` is the normative checker the tests and
the CI smoke job run against emitted lines.
"""

from __future__ import annotations

import json
import numbers
import queue
import threading

from repro.obs.metrics import METRICS

__all__ = [
    "ACCESS_SCHEMA",
    "AccessLogWriter",
    "validate_access_record",
]

#: Schema identifier stamped into every access-log record.
ACCESS_SCHEMA = "repro.access/1"

#: (field, predicate, description) for the required record keys.
_REQUIRED = (
    ("schema", lambda v: v == ACCESS_SCHEMA, "the literal %r" % ACCESS_SCHEMA),
    ("ts", lambda v: _is_num(v) and v >= 0, "non-negative number"),
    ("request_id", lambda v: isinstance(v, str) and v, "non-empty string"),
    ("method", lambda v: isinstance(v, str), "string"),
    ("path", lambda v: isinstance(v, str), "string"),
    ("status", lambda v: isinstance(v, int) and not isinstance(v, bool)
     and 100 <= v <= 599, "HTTP status int"),
    ("bytes", lambda v: isinstance(v, int) and not isinstance(v, bool)
     and v >= 0, "non-negative int"),
    ("total_ms", lambda v: _is_num(v) and v >= 0, "non-negative number"),
)

_CACHE_TIERS = ("store-hit", "cert-reuse", "fresh")

_OPTIONAL = {
    "key": lambda v: isinstance(v, str),
    "verdict": lambda v: isinstance(v, str),
    "cache": lambda v: v in _CACHE_TIERS,
    "sccs_reused": lambda v: isinstance(v, int) and v >= 0,
    "sccs_reproved": lambda v: isinstance(v, int) and v >= 0,
    "sccs_rejected": lambda v: isinstance(v, int) and v >= 0,
    "queue_ms": lambda v: _is_num(v) and v >= 0,
    "solve_ms": lambda v: _is_num(v) and v >= 0,
    "serialize_ms": lambda v: _is_num(v) and v >= 0,
    "root": lambda v: isinstance(v, str),
    "mode": lambda v: isinstance(v, str),
    "error": lambda v: isinstance(v, str),
}


def _is_num(value):
    return isinstance(value, numbers.Real) and not isinstance(value, bool)


def validate_access_record(record):
    """Problems with one decoded access-log record (empty = valid)."""
    if not isinstance(record, dict):
        return ["record is not a JSON object"]
    problems = []
    for field, predicate, description in _REQUIRED:
        if field not in record:
            problems.append("missing required field %r" % field)
        elif not predicate(record[field]):
            problems.append(
                "field %r must be %s, got %r"
                % (field, description, record[field])
            )
    for field, value in record.items():
        checker = _OPTIONAL.get(field)
        if checker is not None and not checker(value):
            problems.append("field %r has bad value %r" % (field, value))
    return problems


class AccessLogWriter:
    """Bounded, non-blocking JSONL writer on a daemon thread.

    *destination* is a path (opened append) or an open text handle
    (kept open — stderr works).  *max_pending* bounds the handoff
    queue; :meth:`log` never blocks the caller.  ``dropped`` counts
    records lost to a full queue (also mirrored into the
    ``serve.accesslog.dropped`` counter so the loss is scrape-visible).
    """

    def __init__(self, destination, max_pending=1024):
        if hasattr(destination, "write"):
            self._handle = destination
            self._owns = False
        else:
            self._handle = open(destination, "a")
            self._owns = True
        self._queue = queue.Queue(maxsize=max_pending)
        self.dropped = 0
        self.written = 0
        self._closed = False
        self._thread = threading.Thread(
            target=self._drain, name="repro-access-log", daemon=True
        )
        self._thread.start()

    def log(self, record):
        """Enqueue one record dict; drop (and count) when full."""
        if self._closed:
            return False
        try:
            self._queue.put_nowait(record)
            return True
        except queue.Full:
            self.dropped += 1
            if METRICS.enabled:
                METRICS.counter("serve.accesslog.dropped").inc()
            return False

    def _drain(self):
        while True:
            record = self._queue.get()
            if record is None:
                return
            try:
                self._handle.write(
                    json.dumps(record, sort_keys=True, default=str) + "\n"
                )
                self._handle.flush()
                self.written += 1
            except (OSError, ValueError):
                # A dead destination must not kill the writer thread;
                # the record is lost and counted like a queue drop.
                self.dropped += 1
                if METRICS.enabled:
                    METRICS.counter("serve.accesslog.dropped").inc()

    def close(self, timeout=5.0):
        """Stop accepting records, flush the queue, join the thread."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)  # sentinel; unbounded block is fine here
        self._thread.join(timeout)
        if self._owns:
            try:
                self._handle.close()
            except OSError:
                pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
