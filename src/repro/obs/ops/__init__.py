"""Operational observability on top of the span/metrics machinery.

``repro.obs`` records what happened; this subpackage makes a running
service *operable*:

- :mod:`repro.obs.ops.prometheus` — spec-compliant text exposition of
  a metrics-registry snapshot, behind
  ``GET /v1/metrics?format=prometheus``;
- :mod:`repro.obs.ops.accesslog` — the bounded, non-blocking JSONL
  access-log writer (schema ``repro.access/1``) that drops-with-a-
  counter instead of stalling the event loop;
- :mod:`repro.obs.ops.slo` — ring-buffer rolling windows (1m/5m) for
  live p50/p95/p99 and error rate, surfaced by ``GET /v1/status``.

The sampling profiler lives one level up (:mod:`repro.obs.profiler`)
because it profiles any workload, not just the daemon; the terminal
dashboard consuming all of this is :mod:`repro.obs.top`.
"""

from repro.obs.ops.accesslog import (
    ACCESS_SCHEMA,
    AccessLogWriter,
    validate_access_record,
)
from repro.obs.ops.prometheus import CONTENT_TYPE, render_prometheus
from repro.obs.ops.slo import DEFAULT_WINDOWS, RollingWindow, SloTracker

__all__ = [
    "ACCESS_SCHEMA",
    "AccessLogWriter",
    "validate_access_record",
    "CONTENT_TYPE",
    "render_prometheus",
    "DEFAULT_WINDOWS",
    "RollingWindow",
    "SloTracker",
]
