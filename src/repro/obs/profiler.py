"""A stdlib sampling profiler emitting collapsed flamegraph stacks.

:class:`SamplingProfiler` wakes every *interval* seconds on a daemon
thread, snapshots every other thread's Python stack via
``sys._current_frames()``, and aggregates identical stacks into
counts.  The output is Brendan Gregg's collapsed-stack format — one
``frame;frame;frame count`` line per distinct stack, root first — the
direct input of ``flamegraph.pl``, ``speedscope``, and ``inferno``.

Sampling costs one stack walk per live thread per tick and nothing
between ticks; at the default 5 ms interval the overhead on the
analysis workload is noise, which is what makes it safe to toggle on
a *production* daemon (``repro-serve`` flips it on SIGUSR2) rather
than only in offline runs (``repro-analyze --profile-out``).

Caveats, stated rather than hidden: ``sys._current_frames`` is
CPython-specific; samples are taken at bytecode boundaries, so a
single long-running C call (sqlite, numpy) shows up as one hot frame
rather than its internals; and wall-clock sampling sees blocked
threads too — a thread waiting on a lock accumulates samples in the
frame that waits, which is exactly what an operator debugging a stall
wants.
"""

from __future__ import annotations

import os
import sys
import threading
from time import perf_counter, sleep

__all__ = ["SamplingProfiler"]


def _frame_label(frame):
    """``module:function`` — short enough to read in a flamegraph,
    unique enough to aggregate on."""
    module = frame.f_globals.get("__name__")
    if not module:
        module = os.path.basename(frame.f_code.co_filename)
    return "%s:%s" % (module, frame.f_code.co_name)


class SamplingProfiler:
    """Periodic whole-process stack sampler.

    Use as a context manager or via :meth:`start`/:meth:`stop`.
    *interval* is the target seconds between samples; *only_thread*
    restricts sampling to one thread id (e.g. the solving thread)
    instead of every thread in the process.
    """

    def __init__(self, interval=0.005, only_thread=None):
        if interval <= 0:
            raise ValueError("interval must be positive, got %r" % interval)
        self.interval = interval
        self.only_thread = only_thread
        self.counts = {}
        self.samples = 0
        self.started_at = None
        self.stopped_at = None
        self._stop = threading.Event()
        self._thread = None

    @property
    def active(self):
        """True while the sampling thread is running."""
        return self._thread is not None and self._thread.is_alive()

    def start(self):
        """Begin sampling (idempotent while running)."""
        if self.active:
            return self
        self._stop.clear()
        self.started_at = perf_counter()
        self.stopped_at = None
        self._thread = threading.Thread(
            target=self._sample_loop, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self):
        """Stop sampling and join the sampler thread."""
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join(max(1.0, 10 * self.interval))
        self._thread = None
        self.stopped_at = perf_counter()
        return self

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()

    def _sample_loop(self):
        own_id = threading.get_ident()
        while not self._stop.is_set():
            self._take_sample(own_id)
            sleep(self.interval)

    def _take_sample(self, own_id):
        for thread_id, frame in sys._current_frames().items():
            if thread_id == own_id:
                continue
            if self.only_thread is not None and thread_id != self.only_thread:
                continue
            stack = []
            while frame is not None:
                stack.append(_frame_label(frame))
                frame = frame.f_back
            if not stack:
                continue
            stack.reverse()  # root first, leaf last — collapsed order
            key = ";".join(stack)
            self.counts[key] = self.counts.get(key, 0) + 1
            self.samples += 1

    # -- output ----------------------------------------------------------------

    def collapsed(self):
        """The collapsed-stack text: ``stack count`` lines, hottest
        first (ties alphabetical, so output is deterministic)."""
        ordered = sorted(self.counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return "\n".join("%s %d" % item for item in ordered)

    def write(self, path):
        """Write :meth:`collapsed` to *path*; returns the number of
        distinct stacks written."""
        text = self.collapsed()
        with open(path, "w") as handle:
            if text:
                handle.write(text + "\n")
        return len(self.counts)

    def __repr__(self):
        return "<SamplingProfiler %s samples=%d stacks=%d>" % (
            "active" if self.active else "stopped",
            self.samples, len(self.counts),
        )
