"""Structured observability: spans, metrics, sinks, rendering.

The analysis pipeline answers *what* (verdicts, certificates); this
package answers *where the time and work went*:

- :mod:`repro.obs.spans` — hierarchical timed spans with attributes
  and counters; :class:`Tracer` builds the tree,
  :func:`span` attaches ambiently from instrumented library code;
- :mod:`repro.obs.metrics` — the process-wide :data:`METRICS`
  registry of counters, gauges, and fixed-bucket histograms;
- :mod:`repro.obs.sinks` — the JSONL event schema
  (``repro.trace/1``), file and in-memory sinks, and the
  write/read round trip behind ``--trace-out`` and ``repro-trace``;
- :mod:`repro.obs.render` — text rendering: the flamegraph-style
  time tree and the ``--metrics`` table;
- :mod:`repro.obs.ops` — the operational layer (Prometheus text
  exposition, structured access logs, rolling SLO windows) the serve
  daemon exposes;
- :mod:`repro.obs.profiler` — the stdlib sampling profiler behind
  ``repro-analyze --profile-out`` and the daemon's SIGUSR2 toggle;
- :mod:`repro.obs.top` — the ``repro-top`` live terminal dashboard.

See ``docs/OBSERVABILITY.md`` for the event schema and the recipe for
adding a new counter or span.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    histogram_quantile,
    labeled,
    merge_snapshots,
    split_labels,
)
from repro.obs.render import render_metrics, render_tree
from repro.obs.sinks import (
    SCHEMA,
    JsonlSink,
    MemorySink,
    Sink,
    metric_events,
    read_trace,
    span_events,
    write_trace,
)
from repro.obs.spans import Span, Tracer, activate, active_tracer, span

__all__ = [
    "DEFAULT_BUCKETS",
    "METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "diff_snapshots",
    "histogram_quantile",
    "labeled",
    "merge_snapshots",
    "split_labels",
    "render_metrics",
    "render_tree",
    "SCHEMA",
    "JsonlSink",
    "MemorySink",
    "Sink",
    "metric_events",
    "read_trace",
    "span_events",
    "write_trace",
    "Span",
    "Tracer",
    "activate",
    "active_tracer",
    "span",
]
