"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Subclasses are grouped by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class PrologSyntaxError(ReproError):
    """Raised when Prolog source text cannot be tokenized or parsed.

    Carries the line and column of the offending token when available.
    """

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        if line is not None:
            message = "line %d, column %d: %s" % (line, column or 0, message)
        super().__init__(message)


class UnificationError(ReproError):
    """Raised for misuse of the unification API (not for mere failure)."""


class EngineLimitError(ReproError):
    """Raised when the SLD engine exceeds its depth or step budget."""

    def __init__(self, message, depth=None, steps=None):
        self.depth = depth
        self.steps = steps
        super().__init__(message)


class LinAlgError(ReproError):
    """Base class for linear-algebra subsystem errors."""


class FMBlowupError(LinAlgError):
    """Raised when a tracked elimination exceeds its row budget.

    Callers fall back to a sound over-approximation (weak join /
    forget) instead of paying worst-case exponential FM cost.
    """


class InfeasibleError(LinAlgError):
    """Raised when an LP is infeasible but a solution was required."""


class UnboundedError(LinAlgError):
    """Raised when an LP objective is unbounded."""


class AnalysisError(ReproError):
    """Raised when termination analysis is given malformed input."""


class ModeError(AnalysisError):
    """Raised for inconsistent or underspecified bound/free adornments."""


class AnalysisTimeout(AnalysisError):
    """Raised when an analysis exceeds its wall-clock deadline.

    Carries the deadline in seconds; raised by the serial-path
    ``repro-analyze --timeout`` watchdog and inside ``repro.serve``
    pool workers when a request overruns the server's per-request
    budget.
    """

    def __init__(self, message, seconds=None):
        self.seconds = seconds
        super().__init__(message)


class ServeError(ReproError):
    """Raised by the ``repro.serve`` client for transport failures and
    non-success responses from an analysis daemon.

    ``status`` carries the HTTP status code when the server answered
    at all (None for connection-level failures).
    """

    def __init__(self, message, status=None):
        self.status = status
        super().__init__(message)


class TransformError(ReproError):
    """Raised when a syntactic transformation cannot be applied."""
