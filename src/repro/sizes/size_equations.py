"""Argument size equations for atoms (Section 2.2).

For an atom ``p(t1, ..., tn)`` and a norm, the i-th *argument size
expression* is the norm's polynomial for ``t_i``.  Writing
``x(i) = a_i + sum_v A_iv * v`` over logical-variable sizes ``v`` gives
the paper's nonnegative ``(a, A)`` data; the same derivation applied to
a body subgoal gives ``(b, B)``.

The module also offers the equation form used when the sizes are
related to explicit argument-size variables, e.g. for feeding the
inter-argument inference engine.
"""

from __future__ import annotations

from repro.lp.terms import Atom, Struct
from repro.linalg.constraints import Constraint
from repro.linalg.linexpr import LinearExpr
from repro.sizes.norms import get_norm


def atom_arguments(atom):
    """The argument terms of an atom (|| for constants)."""
    if isinstance(atom, Struct):
        return atom.args
    if isinstance(atom, Atom):
        return ()
    raise TypeError("expected an atom, got %r" % (atom,))


def argument_size_exprs(atom, norm="structural"):
    """Size polynomials of every argument of *atom*, in order.

    >>> from repro.lp.parser import parse_term
    >>> exprs = argument_size_exprs(parse_term("p(f(V1, g(V2), V2), V1)"))
    >>> [str(e) for e in exprs]
    ['sz.V1 + 2*sz.V2 + 4', 'sz.V1']
    """
    norm = get_norm(norm)
    return [norm.size_expr(arg) for arg in atom_arguments(atom)]


def arg_dimension(position):
    """Canonical name for the *position*-th (1-based) argument-size
    dimension of a predicate-local polyhedron."""
    return ("arg", position)


def atom_size_equations(atom, norm="structural", dimension=arg_dimension):
    """Equations ``dim_i = size(t_i)`` linking argument-size dimensions
    to the logical-variable size polynomials of *atom*'s arguments."""
    equations = []
    for position, expr in enumerate(argument_size_exprs(atom, norm), start=1):
        equations.append(
            Constraint.eq(LinearExpr.of(dimension(position)), expr)
        )
    return equations
