"""Term-size measures and argument-size equations (Section 2.2).

- :mod:`repro.sizes.norms` — structural term size (the paper's norm)
  plus the list-length and right-spine norms from earlier work, all
  producing linear polynomials over logical-variable sizes.
- :mod:`repro.sizes.size_equations` — derivation of the argument size
  equations ``x(i) = const + sum(coeff * var)`` for an atom's arguments
  (the source of the nonnegative ``a, A, b, B`` data of Eq. 1).
"""

from repro.sizes.norms import (
    LIST_LENGTH,
    RIGHT_SPINE,
    STRUCTURAL,
    Norm,
    get_norm,
    size_variable,
)
from repro.sizes.size_equations import argument_size_exprs, atom_size_equations

__all__ = [
    "Norm",
    "STRUCTURAL",
    "LIST_LENGTH",
    "RIGHT_SPINE",
    "get_norm",
    "size_variable",
    "argument_size_exprs",
    "atom_size_equations",
]
