"""Term norms: symbolic size polynomials over logical variables.

The paper's measure is *structural term size*: for ground terms, the
number of edges of the term tree (sum of functor arities); for terms
with variables, the obvious linear polynomial in one nonnegative real
variable per logical variable (Section 2.2).  For example, with ``f``
ternary and ``g`` unary::

    size(f(V1, g(V2), V2)) = 4 + V1 + 2*V2

Two alternative norms from the prior work are provided for the norm
ablation (experiment F3):

- list-length (``|[]| = 0``, ``|[H|T]| = 1 + |T|``, other terms 0),
- right spine (Ullman & Van Gelder 1988: length of the path of
  rightmost children).

Every norm must satisfy: (i) nonnegative on ground terms, and
(ii) the symbolic polynomial has nonnegative coefficients and constant
— Eq. 1 relies on the ``a, A, b, B`` data being nonnegative.
"""

from __future__ import annotations

from repro.lp.terms import Atom, Struct, Term, Var, CONS
from repro.linalg.linexpr import LinearExpr


def size_variable(var):
    """The real variable standing for the size of logical variable
    *var*.  Namespaced so it cannot clash with argument-size or dual
    variables in mixed systems."""
    return ("sz", var.name)


class Norm:
    """A term-size measure producing linear polynomials.

    Subclasses implement :meth:`size_expr`.  ``name`` identifies the
    norm in reports and benchmark tables.
    """

    name = "abstract"

    def size_expr(self, term):
        """Linear polynomial for the size of *term*.

        Variables of the polynomial are :func:`size_variable` names.
        """
        raise NotImplementedError

    def ground_size(self, term):
        """Exact integer size of a ground term."""
        if not term.is_ground():
            raise ValueError("ground_size of non-ground term %s" % term)
        value = self.size_expr(term)
        assert value.is_constant()
        return int(value.const)

    def __repr__(self):
        return "<norm %s>" % self.name


class StructuralSizeNorm(Norm):
    """The paper's norm: number of edges in the term tree."""

    name = "structural"

    def size_expr(self, term):
        """The linear size polynomial of *term* under this norm."""
        if isinstance(term, Var):
            return LinearExpr.of(size_variable(term))
        if isinstance(term, Atom):
            return LinearExpr.constant(0)
        result = LinearExpr.constant(term.arity)
        for arg in term.args:
            result = result + self.size_expr(arg)
        return result


class ListLengthNorm(Norm):
    """Length of the cons spine; non-list structure measures 0.

    A variable in list-tail position contributes its own size variable
    (the unknown remaining length); a variable elsewhere also
    contributes its variable, which keeps the norm sound for programs
    that move whole terms between list positions.
    """

    name = "list_length"

    def size_expr(self, term):
        """The linear size polynomial of *term* under this norm."""
        if isinstance(term, Var):
            return LinearExpr.of(size_variable(term))
        if isinstance(term, Struct) and term.functor == CONS and term.arity == 2:
            return LinearExpr.constant(1) + self.size_expr(term.args[1])
        return LinearExpr.constant(0)


class RightSpineNorm(Norm):
    """Ullman & Van Gelder's measure: length of the rightmost path.

    ``size(f(t1, ..., tn)) = 1 + size(tn)``; constants are 0.  This
    coincides with list length on lists but is "less natural for binary
    trees" (paper, Section 1.1).
    """

    name = "right_spine"

    def size_expr(self, term):
        """The linear size polynomial of *term* under this norm."""
        if isinstance(term, Var):
            return LinearExpr.of(size_variable(term))
        if isinstance(term, Atom):
            return LinearExpr.constant(0)
        return LinearExpr.constant(1) + self.size_expr(term.args[-1])


STRUCTURAL = StructuralSizeNorm()
LIST_LENGTH = ListLengthNorm()
RIGHT_SPINE = RightSpineNorm()

_NORMS = {
    norm.name: norm for norm in (STRUCTURAL, LIST_LENGTH, RIGHT_SPINE)
}


def get_norm(name):
    """Look a norm up by name (``structural`` / ``list_length`` /
    ``right_spine``)."""
    if isinstance(name, Norm):
        return name
    try:
        return _NORMS[name]
    except KeyError:
        raise ValueError(
            "unknown norm %r; choose from %s" % (name, sorted(_NORMS))
        ) from None
