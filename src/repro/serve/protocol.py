"""Wire protocol and content addressing for the analysis service.

Termination analysis is a pure function of ``(source, root, mode,
settings)`` — the same inputs always produce the same verdict and the
same certificate.  This module pins down that purity operationally:

- :class:`AnalyzeRequest` is the one request shape every front end
  (the HTTP server, the thin client, ``repro-analyze --cache-dir``)
  agrees on, with eager validation that turns malformed input into a
  clear :class:`~repro.errors.AnalysisError` *before* any solving;
- :func:`request_key` derives the content address: a SHA-256 over the
  canonical JSON of (normalized source, root, mode, settings
  fingerprint, code revision).  Two requests with the same key are
  the same computation, so the persistent store may answer either
  with the other's payload — including across server restarts;
- :func:`payload_from_result` / :func:`payload_text` fix the verdict
  payload: the JSON export of the result *minus* the stage trace
  (wall times vary run to run; verdicts and certificates do not), in
  canonical key order.  The store keeps the exact text, so repeated
  requests are answered byte-identically.

The code revision folded into every key is a digest of the installed
``repro`` package sources.  Editing any module changes every key, so
a stale store can never serve a verdict computed by different code —
the store needs no manual invalidation story beyond "keys rotate".
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field, fields, replace

from repro.errors import AnalysisError
from repro.core import AnalyzerSettings, validate_query
from repro.core.export import result_to_dict
from repro.lp import parse_program

__all__ = [
    "PAYLOAD_SCHEMA",
    "WIRE_SETTINGS",
    "AnalyzeRequest",
    "code_revision",
    "normalize_source",
    "settings_fingerprint",
    "request_key",
    "payload_from_result",
    "payload_text",
]

#: Schema identifier stamped into every verdict payload.
PAYLOAD_SCHEMA = "repro.serve/1"

#: The :class:`~repro.core.AnalyzerSettings` knobs a request may set
#: over the wire (everything JSON-atomic; the nested inference settings
#: stay at their defaults server-side).
WIRE_SETTINGS = (
    "norm",
    "use_interarg",
    "allow_negative_theta",
    "feasibility",
    "prune_fm",
    "fm_kernel",
    "eliminate_w",
    "method",
)


def normalize_source(text):
    """Canonical form of program text for content addressing.

    Only layout that cannot change the parse is folded away: line
    endings become ``\\n``, trailing whitespace per line is dropped,
    and leading/trailing blank lines collapse.  Comments and interior
    blank lines are preserved — erring toward distinct keys is safe
    (a miss re-solves); erring toward collisions would not be.
    """
    lines = text.replace("\r\n", "\n").replace("\r", "\n").split("\n")
    lines = [line.rstrip() for line in lines]
    while lines and not lines[0]:
        lines.pop(0)
    while lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines) + "\n" if lines else ""


def settings_fingerprint(settings):
    """JSON-ready canonical dict of every analyzer knob.

    Requires a *named* feasibility backend: backend instances carry
    arbitrary state the fingerprint cannot see, so they cannot take
    part in content addressing (the same restriction parallel
    :func:`repro.batch.analyze_many` imposes, for the same reason).
    """
    if not isinstance(settings.feasibility, str):
        raise AnalysisError(
            "content addressing needs a named feasibility backend "
            "('simplex' or 'fm'), not a backend instance"
        )
    fingerprint = {}
    for knob in sorted(f.name for f in fields(settings)):
        value = getattr(settings, knob)
        if knob == "inference":
            fingerprint[knob] = {
                f.name: getattr(value, f.name) for f in fields(value)
            }
        else:
            fingerprint[knob] = value
    return fingerprint


_CODE_REVISION = None


def code_revision():
    """Digest of the installed ``repro`` package sources (cached).

    Walks the package directory, hashing every ``.py`` file's path and
    contents in sorted order; ~70 small files, a few milliseconds,
    computed once per process.
    """
    global _CODE_REVISION
    if _CODE_REVISION is None:
        import repro

        package_dir = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        for dirpath, dirnames, filenames in sorted(os.walk(package_dir)):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                digest.update(
                    os.path.relpath(path, package_dir).encode()
                )
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _CODE_REVISION = digest.hexdigest()[:16]
    return _CODE_REVISION


def request_key(source, root, mode, settings=None, revision=None):
    """The content address of one analysis request (hex SHA-256)."""
    material = json.dumps(
        {
            "source": normalize_source(source),
            "root": ["%s" % root[0], int(root[1])],
            "mode": str(mode),
            "settings": settings_fingerprint(
                settings or AnalyzerSettings()
            ),
            "revision": revision or code_revision(),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(material.encode()).hexdigest()


def _parse_root(value):
    """Accept ``"name/arity"`` or ``[name, arity]``."""
    if isinstance(value, str):
        name, _, arity = value.rpartition("/")
        if name and arity.isdigit():
            return (name, int(arity))
        raise AnalysisError(
            "root must look like name/arity, got %r" % value
        )
    try:
        name, arity = value
        return (str(name), int(arity))
    except (TypeError, ValueError):
        raise AnalysisError(
            "root must be 'name/arity' or [name, arity], got %r"
            % (value,)
        ) from None


@dataclass(frozen=True)
class AnalyzeRequest:
    """One validated analysis request, front-end independent.

    ``incremental`` asks the server to reuse per-SCC certificates from
    its persistent store when solving.  It is an execution hint, not
    part of the computation: verdict payloads are byte-identical with
    or without it, so it is deliberately excluded from :meth:`key` —
    an incremental request may be answered by a cached full solve and
    vice versa.
    """

    source: str
    root: tuple
    mode: str
    settings: AnalyzerSettings = field(default_factory=AnalyzerSettings)
    incremental: bool = False

    @classmethod
    def from_wire(cls, data):
        """Build a request from a decoded JSON body, validating shape.

        Raises :class:`~repro.errors.AnalysisError` with a message
        safe to hand back to the caller (a 400, not a stack trace).
        """
        if not isinstance(data, dict):
            raise AnalysisError(
                "request body must be a JSON object, got %s"
                % type(data).__name__
            )
        unknown = sorted(
            set(data) - {"source", "root", "mode", "settings",
                         "incremental"}
        )
        if unknown:
            raise AnalysisError(
                "unknown request field(s): %s" % ", ".join(unknown)
            )
        for required in ("source", "root", "mode"):
            if required not in data:
                raise AnalysisError(
                    "request is missing the %r field" % required
                )
        if not isinstance(data["source"], str):
            raise AnalysisError("'source' must be a string of Prolog text")
        overrides = data.get("settings") or {}
        if not isinstance(overrides, dict):
            raise AnalysisError("'settings' must be a JSON object")
        bad = sorted(set(overrides) - set(WIRE_SETTINGS))
        if bad:
            raise AnalysisError(
                "unknown setting(s): %s; settable over the wire: %s"
                % (", ".join(bad), ", ".join(WIRE_SETTINGS))
            )
        try:
            settings = replace(AnalyzerSettings(), **overrides)
            settings.validate()
        except AnalysisError:
            raise
        except (TypeError, ValueError) as error:
            raise AnalysisError("invalid settings: %s" % error) from None
        return cls(
            source=data["source"],
            root=_parse_root(data["root"]),
            mode=str(data["mode"]),
            settings=settings,
            incremental=bool(data.get("incremental", False)),
        )

    def to_wire(self):
        """The JSON-ready request body (only non-default settings)."""
        defaults = AnalyzerSettings()
        overrides = {
            knob: getattr(self.settings, knob)
            for knob in WIRE_SETTINGS
            if getattr(self.settings, knob) != getattr(defaults, knob)
        }
        body = {
            "source": self.source,
            "root": "%s/%d" % self.root,
            "mode": self.mode,
        }
        if overrides:
            body["settings"] = overrides
        if self.incremental:
            body["incremental"] = True
        return body

    def parse(self):
        """Parse the source and validate the root/mode against it."""
        program = parse_program(self.source)
        validate_query(program, self.root, self.mode)
        return program

    def key(self):
        """The request's content address."""
        return request_key(self.source, self.root, self.mode, self.settings)


def payload_from_result(result):
    """The canonical verdict payload for one analysis result.

    The stage trace is deliberately absent: wall times differ between
    runs, and the payload must be a pure function of the request so
    stored and fresh answers are interchangeable.  Per-request timing
    lives in the trace store (``GET /v1/trace/{id}``) instead.
    """
    data = result_to_dict(result)
    data.pop("trace", None)
    return {"schema": PAYLOAD_SCHEMA, **data}


def payload_text(payload):
    """Canonical serialization — what the store persists and the
    server sends, byte for byte."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))
