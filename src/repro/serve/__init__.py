"""``repro.serve`` — the long-running analysis service.

Every earlier entry point (``repro-analyze``, the corpus sweeps,
:func:`repro.batch.analyze_many`) is a one-shot process whose caches
die with it.  This package turns the analyzer into a daemon:

- :mod:`repro.serve.protocol` — the wire format and the content
  address of a request (analysis is a pure function of source, root,
  mode, settings, and code revision);
- :mod:`repro.serve.store` — the content-addressed persistent result
  store (sqlite): identical requests, including across restarts and
  from the offline CLI, are answered without re-solving;
- :mod:`repro.serve.pool` — process-pool solving with worker-side
  deadlines and graceful degradation to in-process serial;
- :mod:`repro.serve.app` — the asyncio JSON-over-HTTP server
  (``repro-serve``) with bounded admission (429), per-request
  timeouts (504), and drain-then-exit on SIGTERM;
- :mod:`repro.serve.client` — the thin client behind
  ``repro-analyze --remote``.

See ``docs/SERVING.md`` for the protocol, the store layout, and the
operational knobs.
"""

from repro.serve.protocol import (
    PAYLOAD_SCHEMA,
    WIRE_SETTINGS,
    AnalyzeRequest,
    code_revision,
    normalize_source,
    payload_from_result,
    payload_text,
    request_key,
    settings_fingerprint,
)
from repro.serve.store import (
    SCHEMA_VERSION,
    ResultStore,
    StoreCertificateCache,
)
from repro.serve.pool import SolverPool, deadline, solve_wire
from repro.serve.app import ServeApp, serve_forever
from repro.serve.client import ServeAnswer, ServeClient

__all__ = [
    "PAYLOAD_SCHEMA",
    "WIRE_SETTINGS",
    "AnalyzeRequest",
    "code_revision",
    "normalize_source",
    "payload_from_result",
    "payload_text",
    "request_key",
    "settings_fingerprint",
    "SCHEMA_VERSION",
    "ResultStore",
    "StoreCertificateCache",
    "SolverPool",
    "deadline",
    "solve_wire",
    "ServeApp",
    "serve_forever",
    "ServeAnswer",
    "ServeClient",
]
