"""CPU-bound solve execution: process pool with serial degradation.

The server never solves on its event loop.  A :class:`SolverPool`
routes each validated request to one of two lanes:

- ``jobs > 1`` — a :class:`~concurrent.futures.ProcessPoolExecutor`
  whose workers parse their own copy of the program (analysis objects
  do not cross process boundaries, exactly as in :mod:`repro.batch`)
  and ship back a slim picklable triple ``(payload, span roots,
  metrics delta)``;
- the **serial lane** — a single-thread executor inside the server
  process.  It is the ``jobs=1`` path, and the graceful-degradation
  target when the process pool dies (fork bombs out, a worker is
  OOM-killed mid-task): the first :class:`BrokenProcessPool` flips
  the pool into degraded mode and every later request runs serially
  rather than failing.

Deadlines: :func:`deadline` arms a SIGALRM timer around the solve, so
an overrunning request is *cancelled inside the worker* (the paper's
method is exponential in the worst case — a pathological program must
not wedge a worker forever).  Pool workers run tasks on their main
thread, where SIGALRM is deliverable; the serial lane is a daemon
thread, where it is not — there the server's ``asyncio.wait_for``
backstop still fails the request at the deadline, but the computation
runs to completion in the background (the documented cost of degraded
mode).  ``repro-analyze --timeout`` reuses the same context manager on
the CLI's main thread.
"""

from __future__ import annotations

import signal
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from time import perf_counter

from repro.errors import AnalysisTimeout
from repro.methods import MethodRunner
from repro.obs import METRICS, diff_snapshots
from repro.serve.protocol import AnalyzeRequest, payload_from_result

__all__ = ["deadline", "solve_wire", "SolverPool"]


@contextmanager
def deadline(seconds):
    """Raise :class:`~repro.errors.AnalysisTimeout` in the block after
    *seconds* of wall-clock time.

    SIGALRM-based, so it interrupts pure-Python compute at the next
    bytecode boundary.  A no-op when *seconds* is None, on platforms
    without SIGALRM, or off the main thread (where the signal cannot
    be delivered) — callers needing a hard guarantee in those cases
    must layer their own backstop, as the server does.
    """
    usable = (
        seconds is not None
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return
    if seconds <= 0:
        raise AnalysisTimeout(
            "deadline must be positive, got %r" % seconds, seconds=seconds
        )

    def _expired(signum, frame):
        raise AnalysisTimeout(
            "analysis exceeded its %.3gs deadline" % seconds,
            seconds=seconds,
        )

    previous_handler = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous_handler)


def solve_wire(wire, timeout=None, cache_dir=None, request_id=None):
    """Worker body: solve one wire-format request.

    Returns ``(payload, roots, metrics_delta, scc_stats, timings)`` —
    the JSON-ready verdict payload, the request's span forest, what
    this solve added to the worker's metrics registry (the server
    merges it, so ``GET /v1/metrics`` aggregates over all workers), a
    ``{"reused": n, "reproved": n, "rejected": n}`` summary of per-SCC
    certificate reuse (zeros when no cache is in play), and a
    ``{"solve_ms": f}`` timing dict the server folds into the
    request's access-log latency breakdown.  Module-level and
    argument-picklable on purpose: this is the function the process
    pool imports by name.

    *cache_dir*, when set (the request asked for ``incremental`` and
    the server has a store), opens the shared persistent store in the
    worker and threads its certificate table through the analyzer.
    *request_id* lands on the root ``analyze`` span, joining the
    worker-side trace to the server's access-log line.  The payload is
    byte-identical either way; only wall time and the stats differ.
    """
    request = (
        wire if isinstance(wire, AnalyzeRequest)
        else AnalyzeRequest.from_wire(wire)
    )
    program = request.parse()
    before = METRICS.snapshot()
    store = None
    certificate_cache = None
    if cache_dir is not None:
        from repro.serve.store import ResultStore, StoreCertificateCache

        store = ResultStore(cache_dir)
        certificate_cache = StoreCertificateCache(store)
    solve_started = perf_counter()
    try:
        with deadline(timeout):
            runner = MethodRunner(
                settings=request.settings,
                certificate_cache=certificate_cache,
            )
            result = runner.analyze(
                program, request.root, request.mode,
                request_id=request_id,
            )
    finally:
        if store is not None:
            store.close()
    return (
        payload_from_result(result),
        list(result.trace.roots),
        diff_snapshots(METRICS.snapshot(), before),
        {
            "reused": result.sccs_reused,
            "reproved": result.sccs_reproved,
            "rejected": result.sccs_rejected,
        },
        {"solve_ms": (perf_counter() - solve_started) * 1000},
    )


class SolverPool:
    """Routes solves to worker processes, degrading to in-process
    serial execution when the pool is unavailable."""

    def __init__(self, jobs=1):
        if jobs < 1:
            raise ValueError("jobs must be >= 1, got %d" % jobs)
        self.jobs = jobs
        self.degraded = False
        self._serial = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-serial"
        )
        self._process = None
        if jobs > 1:
            try:
                self._process = ProcessPoolExecutor(max_workers=jobs)
            except (OSError, ValueError):
                self._note_degraded()

    @property
    def lane(self):
        """``"process"`` or ``"serial"`` — where solves run now."""
        if self._process is not None and not self.degraded:
            return "process"
        return "serial"

    def _note_degraded(self):
        if not self.degraded:
            self.degraded = True
            if METRICS.enabled:
                METRICS.counter("serve.pool.degraded").inc()

    def submit(self, wire, timeout=None, cache_dir=None, request_id=None):
        """A :class:`concurrent.futures.Future` for the solve."""
        if self.lane == "process":
            try:
                return self._process.submit(
                    solve_wire, wire, timeout, cache_dir, request_id
                )
            except (OSError, RuntimeError):
                self._note_degraded()
        return self._serial.submit(
            solve_wire, wire, timeout, cache_dir, request_id
        )

    def submit_serial(self, wire, timeout=None, cache_dir=None,
                      request_id=None):
        """Force the serial lane (the retry path after a broken pool
        surfaced at result time rather than submit time)."""
        self._note_degraded()
        return self._serial.submit(
            solve_wire, wire, timeout, cache_dir, request_id
        )

    def shutdown(self):
        """Stop both lanes; running solves are not waited for."""
        if self._process is not None:
            self._process.shutdown(wait=False, cancel_futures=True)
            self._process = None
        self._serial.shutdown(wait=False, cancel_futures=True)
