"""Thin synchronous client for a ``repro-serve`` daemon.

Stdlib :mod:`http.client`, one connection per call — the client is
deliberately boring so every existing driver (``repro-analyze
--remote``, batch sweeps, the examples) can target a daemon without
growing an async stack.  Transport failures and non-success responses
surface as :class:`~repro.errors.ServeError` with the server's own
message, so callers handle exactly one exception type.

>>> client = ServeClient("http://127.0.0.1:8421")   # doctest: +SKIP
>>> answer = client.analyze(source, ("perm", 2), "bf")  # doctest: +SKIP
>>> answer.payload["status"], answer.cached             # doctest: +SKIP
('PROVED', True)
"""

from __future__ import annotations

import http.client
import json
from dataclasses import dataclass
from urllib.parse import urlsplit

from repro.errors import ServeError
from repro.serve.protocol import AnalyzeRequest

__all__ = ["ServeAnswer", "ServeClient"]


@dataclass(frozen=True)
class ServeAnswer:
    """One verdict from the daemon.

    ``text`` is the raw response body — byte-identical across
    repeated identical requests; ``payload`` its decoded form;
    ``key`` the content address (also the trace id); ``cached``
    whether the persistent store answered.  ``sccs_reused`` /
    ``sccs_reproved`` echo the server's per-SCC certificate reuse
    headers (both 0 unless the request asked for ``incremental`` and
    missed the verdict store).  ``request_id`` echoes the server's
    ``X-Repro-Request-Id`` header — the join key into the daemon's
    access log and the stored trace's root span.
    """

    payload: dict
    text: str
    key: str
    cached: bool
    sccs_reused: int = 0
    sccs_reproved: int = 0
    request_id: str = ""

    @property
    def status(self):
        """The verdict: ``PROVED`` or ``UNKNOWN``."""
        return self.payload.get("status", "")

    @property
    def proved(self):
        """True when the verdict is PROVED."""
        return self.status == "PROVED"


class ServeClient:
    """Talks to one daemon at *base_url* (e.g. ``http://host:8421``)."""

    def __init__(self, base_url, timeout=120.0):
        parts = urlsplit(
            base_url if "//" in base_url else "http://" + base_url
        )
        if parts.scheme not in ("", "http"):
            raise ServeError(
                "only http:// daemons are supported, got %r" % base_url
            )
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 8421
        self.timeout = timeout

    # -- transport -------------------------------------------------------------

    def _request(self, method, path, body=None):
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            try:
                connection.request(
                    method, path,
                    body=body,
                    headers={"Content-Type": "application/json"}
                    if body else {},
                )
                response = connection.getresponse()
                text = response.read().decode("utf-8")
            except (OSError, http.client.HTTPException) as error:
                raise ServeError(
                    "cannot reach repro-serve at %s:%d: %s"
                    % (self.host, self.port, error)
                ) from None
            return response.status, dict(response.getheaders()), text
        finally:
            connection.close()

    @staticmethod
    def _error_message(text):
        try:
            return json.loads(text).get("error", text.strip())
        except ValueError:
            return text.strip() or "(empty response)"

    # -- endpoints -------------------------------------------------------------

    def analyze(self, source, root, mode, settings=None,
                incremental=False):
        """POST one analysis request; returns a :class:`ServeAnswer`."""
        request = AnalyzeRequest(
            source=source, root=tuple(root), mode=str(mode),
            incremental=bool(incremental),
            **({"settings": settings} if settings is not None else {}),
        )
        status, headers, text = self._request(
            "POST", "/v1/analyze",
            json.dumps(request.to_wire()).encode(),
        )
        if status != 200:
            raise ServeError(
                "analyze failed (%d): %s"
                % (status, self._error_message(text)),
                status=status,
            )
        return ServeAnswer(
            payload=json.loads(text),
            text=text,
            key=headers.get("X-Repro-Key", ""),
            cached=headers.get("X-Repro-Cache") == "hit",
            sccs_reused=int(headers.get("X-Repro-SCC-Reused", 0)),
            sccs_reproved=int(headers.get("X-Repro-SCC-Reproved", 0)),
            request_id=headers.get("X-Repro-Request-Id", ""),
        )

    def health(self):
        """GET /v1/health as a dict."""
        return self._get_json("/v1/health")

    def status(self):
        """GET /v1/status: the ops summary dict (SLO windows,
        overload/backpressure state, access-log drops, profiler)."""
        return self._get_json("/v1/status")

    def metrics(self, format=None):
        """GET /v1/metrics.

        Default: the JSON registry snapshot dict.  With
        ``format="prometheus"``: the raw Prometheus text exposition
        as a string.
        """
        if format == "prometheus":
            status, _, text = self._request(
                "GET", "/v1/metrics?format=prometheus"
            )
            if status != 200:
                raise ServeError(
                    "/v1/metrics failed (%d): %s"
                    % (status, self._error_message(text)),
                    status=status,
                )
            return text
        return self._get_json("/v1/metrics")

    def trace(self, key):
        """GET /v1/trace/{key}: the raw repro.trace/1 JSONL text."""
        status, _, text = self._request("GET", "/v1/trace/%s" % key)
        if status != 200:
            raise ServeError(
                "no trace for %r (%d): %s"
                % (key, status, self._error_message(text)),
                status=status,
            )
        return text

    def _get_json(self, path):
        status, _, text = self._request("GET", path)
        if status != 200:
            raise ServeError(
                "%s failed (%d): %s"
                % (path, status, self._error_message(text)),
                status=status,
            )
        return json.loads(text)
