"""The asyncio JSON-over-HTTP analysis daemon (``repro-serve``).

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` — no
framework, stdlib only — composing the three layers the rest of the
repo already provides: the analysis pipeline (via
:mod:`repro.serve.pool` workers), the content-addressed store
(:mod:`repro.serve.store`), and the observability stack
(:mod:`repro.obs`).

Endpoints::

    POST /v1/analyze     {"source": ..., "root": "perm/2",
                          "mode": "bf", "settings": {...}}
    GET  /v1/health      liveness + store/pool/queue stats
    GET  /v1/metrics     repro.obs.METRICS snapshot (all workers merged)
    GET  /v1/trace/{id}  repro.trace/1 JSONL telemetry of request {id}

``POST /v1/analyze`` answers 200 with the canonical verdict payload.
Response headers carry what the body must not (the body is
byte-identical for identical requests): ``X-Repro-Key`` is the
request's content address — also its trace id — and ``X-Repro-Cache``
says ``hit`` or ``miss``.  A request carrying ``"incremental": true``
additionally reuses per-SCC certificates from the store while
solving; on a miss the response then adds ``X-Repro-SCC-Reused`` and
``X-Repro-SCC-Reproved`` counts (the body stays byte-identical with
or without the flag).

Admission control: at most ``max_inflight`` requests may be queued or
solving; request ``max_inflight + 1`` is refused immediately with 429
(back off and retry beats silently queueing into a timeout).  Each
admitted solve races a wall-clock deadline: the worker-side SIGALRM
cancels the computation, an ``asyncio.wait_for`` backstop fails the
request with 504 even if the worker cannot be interrupted.  SIGTERM
and SIGINT drain: the listener closes, new requests get 503, in-flight
requests finish and are persisted, then the process exits 0.
"""

from __future__ import annotations

import argparse
import asyncio
import io
import json
import signal
import sys
from concurrent.futures.process import BrokenProcessPool
from time import perf_counter

from repro.errors import AnalysisTimeout, ReproError
from repro.obs import METRICS, Span, Tracer
from repro.obs.sinks import JsonlSink, write_trace
from repro.serve.protocol import (
    AnalyzeRequest,
    code_revision,
    payload_text,
)
from repro.serve.pool import SolverPool
from repro.serve.store import ResultStore

__all__ = ["ServeApp", "main", "serve_forever"]

_LATENCY_BUCKETS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000,
                    5000)
_MAX_BODY = 8 << 20
_MAX_HEADER_LINES = 64


def _json_bytes(data):
    return (json.dumps(data, sort_keys=True) + "\n").encode()


class _HttpError(Exception):
    """Internal: unwinds request handling into an error response."""

    def __init__(self, status, message):
        self.status = status
        self.message = message
        super().__init__(message)


_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ServeApp:
    """The daemon: routing, admission control, drain-then-exit."""

    def __init__(self, store, pool, *, max_inflight=None,
                 request_timeout=None):
        self.store = store
        self.pool = pool
        self.max_inflight = (
            max_inflight if max_inflight is not None
            else max(4, 4 * pool.jobs)
        )
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.request_timeout = request_timeout
        self.draining = False
        self.inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._server = None
        self.port = None

    # -- lifecycle -------------------------------------------------------------

    async def start(self, host="127.0.0.1", port=0):
        """Bind and start accepting; ``self.port`` gets the real port."""
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def shutdown(self):
        """Drain then stop: close the listener, flag 503 for any
        connection already accepted, wait for in-flight requests, and
        close the store (so every finished verdict is persisted)."""
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._idle.wait()
        self.pool.shutdown()
        self.store.close()

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(self, reader, writer):
        try:
            try:
                method, path = await self._read_request_line(reader)
                headers = await self._read_headers(reader)
                body = await self._read_body(reader, headers)
            except _HttpError as error:
                await self._respond(
                    writer, error.status,
                    _json_bytes({"error": error.message}),
                )
                return
            await self._dispatch(writer, method, path, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request_line(self, reader):
        line = await reader.readline()
        parts = line.decode("latin-1").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HttpError(400, "malformed request line")
        return parts[0].upper(), parts[1]

    async def _read_headers(self, reader):
        headers = {}
        for _ in range(_MAX_HEADER_LINES):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                return headers
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        raise _HttpError(400, "too many header lines")

    async def _read_body(self, reader, headers):
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "bad Content-Length") from None
        if length > _MAX_BODY:
            raise _HttpError(
                413, "body exceeds %d bytes" % _MAX_BODY
            )
        if length <= 0:
            return b""
        return await reader.readexactly(length)

    async def _respond(self, writer, status, body, content_type=None,
                       extra_headers=()):
        reason = _REASONS.get(status, "Unknown")
        head = [
            "HTTP/1.1 %d %s" % (status, reason),
            "Content-Type: %s" % (content_type or "application/json"),
            "Content-Length: %d" % len(body),
            "Connection: close",
        ]
        head.extend("%s: %s" % pair for pair in extra_headers)
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode())
        writer.write(body)
        await writer.drain()

    # -- routing ---------------------------------------------------------------

    async def _dispatch(self, writer, method, path, body):
        if METRICS.enabled:
            METRICS.counter("serve.requests").inc()
        if self.draining:
            await self._respond(
                writer, 503, _json_bytes({"error": "draining"})
            )
            return
        if path == "/v1/health":
            await self._require(writer, method, "GET") and \
                await self._health(writer)
        elif path == "/v1/metrics":
            await self._require(writer, method, "GET") and \
                await self._metrics(writer)
        elif path.startswith("/v1/trace/"):
            await self._require(writer, method, "GET") and \
                await self._trace(writer, path[len("/v1/trace/"):])
        elif path == "/v1/analyze":
            await self._require(writer, method, "POST") and \
                await self._analyze(writer, body)
        else:
            await self._respond(
                writer, 404,
                _json_bytes({"error": "no route %s" % path}),
            )

    async def _require(self, writer, method, expected):
        if method == expected:
            return True
        await self._respond(
            writer, 405,
            _json_bytes({"error": "%s required" % expected}),
        )
        return False

    # -- endpoints -------------------------------------------------------------

    async def _health(self, writer):
        await self._respond(writer, 200, _json_bytes({
            "status": "ok",
            "revision": code_revision(),
            "inflight": self.inflight,
            "max_inflight": self.max_inflight,
            "pool": {"jobs": self.pool.jobs, "lane": self.pool.lane},
            "store": self.store.stats(),
        }))

    async def _metrics(self, writer):
        await self._respond(
            writer, 200, _json_bytes(METRICS.snapshot())
        )

    async def _trace(self, writer, key):
        jsonl = self.store.get_trace(key)
        if jsonl is None:
            await self._respond(
                writer, 404,
                _json_bytes({"error": "no trace for %r" % key}),
            )
            return
        await self._respond(
            writer, 200, jsonl.encode(),
            content_type="application/x-ndjson",
        )

    async def _analyze(self, writer, body):
        started = perf_counter()
        try:
            wire = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            await self._respond(
                writer, 400,
                _json_bytes({"error": "body is not valid JSON"}),
            )
            return
        try:
            request = AnalyzeRequest.from_wire(wire)
            request.parse()
        except ReproError as error:
            await self._respond(
                writer, 400, _json_bytes({"error": str(error)})
            )
            return
        key = request.key()
        cached = self.store.get(key)
        if cached is not None:
            await self._finish(writer, started, 200, cached.encode(),
                               key, "hit")
            return
        if self.inflight >= self.max_inflight:
            if METRICS.enabled:
                METRICS.counter("serve.rejected").inc()
            await self._respond(
                writer, 429, _json_bytes({
                    "error": "at capacity (%d in flight); retry later"
                             % self.inflight,
                }),
                extra_headers=(("Retry-After", "1"),),
            )
            return
        self.inflight += 1
        self._idle.clear()
        try:
            status, payload_bytes, scc = await self._solve(request, key)
        finally:
            self.inflight -= 1
            if self.inflight == 0:
                self._idle.set()
        await self._finish(writer, started, status, payload_bytes,
                           key, "miss", scc=scc)

    async def _finish(self, writer, started, status, body, key, cache,
                      scc=None):
        if METRICS.enabled:
            METRICS.histogram(
                "serve.request_ms", _LATENCY_BUCKETS
            ).observe((perf_counter() - started) * 1000)
        headers = [("X-Repro-Key", key), ("X-Repro-Cache", cache)]
        if scc is not None:
            headers.append(
                ("X-Repro-SCC-Reused", str(scc.get("reused", 0)))
            )
            headers.append(
                ("X-Repro-SCC-Reproved", str(scc.get("reproved", 0)))
            )
        await self._respond(
            writer, status, body, extra_headers=tuple(headers)
        )

    async def _solve(self, request, key):
        """Run one admitted solve; returns (status, body bytes, scc
        reuse stats or None)."""
        tracer = Tracer()
        cache_dir = self.store.root if request.incremental else None
        scc = None
        try:
            with tracer.span("serve.request", key=key,
                             root="%s/%d" % request.root,
                             mode=request.mode,
                             incremental=request.incremental,
                             lane=self.pool.lane) as serve_span:
                future = self.pool.submit(
                    request, self.request_timeout, cache_dir
                )
                try:
                    payload, roots, delta, scc = await asyncio.wait_for(
                        asyncio.wrap_future(future),
                        timeout=self.request_timeout,
                    )
                except BrokenProcessPool:
                    # The pool died under us (worker OOM-killed, fork
                    # failure); degrade to the in-process serial lane
                    # and retry this request there.
                    serve_span.set(lane="serial", degraded=True)
                    payload, roots, delta, scc = await asyncio.wait_for(
                        asyncio.wrap_future(
                            self.pool.submit_serial(
                                request, self.request_timeout, cache_dir
                            )
                        ),
                        timeout=self.request_timeout,
                    )
                serve_span.set(status=payload.get("status", ""))
                if request.incremental:
                    serve_span.set(sccs_reused=scc["reused"],
                                   sccs_reproved=scc["reproved"])
        except (asyncio.TimeoutError, AnalysisTimeout):
            if METRICS.enabled:
                METRICS.counter("serve.timeouts").inc()
            return 504, _json_bytes({
                "error": "analysis exceeded the %.3gs request deadline"
                         % self.request_timeout,
            }), None
        except ReproError as error:
            if METRICS.enabled:
                METRICS.counter("serve.errors").inc()
            return 400, _json_bytes({"error": str(error)}), None
        except Exception as error:  # noqa: BLE001 — the 500 boundary
            if METRICS.enabled:
                METRICS.counter("serve.errors").inc()
            return 500, _json_bytes({
                "error": "%s: %s" % (type(error).__name__, error),
            }), None
        if METRICS.enabled:
            METRICS.merge_snapshot(delta)
        text = payload_text(payload)
        self.store.put(key, text,
                       root="%s/%d" % request.root, mode=request.mode)
        self._store_trace(key, tracer.roots, list(roots), delta)
        return 200, text.encode(), (scc if request.incremental else None)

    def _store_trace(self, key, serve_roots, worker_roots, delta):
        """Persist the request's repro.trace/1 stream.

        Server-side spans and worker spans stay separate roots: their
        ``perf_counter`` clocks belong to different processes, so
        nesting one under the other would fabricate offsets.
        """
        buffer = io.StringIO()
        write_trace(
            JsonlSink(buffer),
            list(serve_roots) + [
                root if isinstance(root, Span) else Span.from_dict(root)
                for root in worker_roots
            ],
            delta,
            meta={"request": key},
        )
        self.store.put_trace(key, buffer.getvalue())


async def serve_forever(app, host, port, ready=None):
    """Start *app*, install drain-on-SIGTERM/SIGINT, run until done."""
    await app.start(host, port)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):
            pass  # non-Unix event loop; Ctrl-C still raises
    print("repro-serve listening on %s:%d (jobs=%d, queue=%d, "
          "store=%s)" % (host, app.port, app.pool.jobs,
                         app.max_inflight, app.store.path),
          file=sys.stderr, flush=True)
    if ready is not None:
        ready(app)
    await stop.wait()
    print("repro-serve draining %d in-flight request(s)..."
          % app.inflight, file=sys.stderr, flush=True)
    await app.shutdown()
    print("repro-serve drained; bye.", file=sys.stderr, flush=True)


def build_serve_parser():
    """Construct the argparse parser for ``repro-serve``."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Long-running termination-analysis daemon: "
        "JSON over HTTP, content-addressed persistent result store, "
        "process-pool solving.",
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=8421,
        help="TCP port (default 8421; 0 = ephemeral)",
    )
    parser.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="persistent result store directory, shared with "
        "'repro-analyze --cache-dir' (default ./.repro-cache)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="solver worker processes (default 1: in-process serial)",
    )
    parser.add_argument(
        "--queue", type=int, default=None, metavar="N",
        help="max in-flight requests before 429 "
        "(default: max(4, 4*jobs))",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-request wall-clock deadline (default: none)",
    )
    parser.add_argument(
        "--max-entries", type=int, default=4096, metavar="N",
        help="verdict store bound before LRU eviction (default 4096)",
    )
    return parser


def main(argv=None):
    """``repro-serve`` entry point; returns the process exit code."""
    args = build_serve_parser().parse_args(argv)
    try:
        store = ResultStore(args.cache_dir,
                            max_entries=args.max_entries)
    except OSError as error:
        print("cannot open store: %s" % error, file=sys.stderr)
        return 2
    app = ServeApp(
        store,
        SolverPool(jobs=args.jobs),
        max_inflight=args.queue,
        request_timeout=args.timeout,
    )
    try:
        asyncio.run(serve_forever(app, args.host, args.port))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
