"""The asyncio JSON-over-HTTP analysis daemon (``repro-serve``).

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` — no
framework, stdlib only — composing the three layers the rest of the
repo already provides: the analysis pipeline (via
:mod:`repro.serve.pool` workers), the content-addressed store
(:mod:`repro.serve.store`), and the observability stack
(:mod:`repro.obs`).

Endpoints::

    POST /v1/analyze     {"source": ..., "root": "perm/2",
                          "mode": "bf", "settings": {...}}
    GET  /v1/health      liveness + store/pool/queue stats
    GET  /v1/metrics     repro.obs.METRICS snapshot (all workers merged)
                         — JSON by default; ``?format=prometheus`` or
                         ``Accept: text/plain`` answers the Prometheus
                         text exposition real scrapers ingest
    GET  /v1/status      ops summary: overload/backpressure state,
                         rolling 1m/5m SLO windows (p50/p95/p99,
                         error rate), access-log drops, profiler state
    GET  /v1/trace/{id}  repro.trace/1 JSONL telemetry of request {id}

``POST /v1/analyze`` answers 200 with the canonical verdict payload.
Response headers carry what the body must not (the body is
byte-identical for identical requests): ``X-Repro-Key`` is the
request's content address — also its trace id — ``X-Repro-Cache``
says ``hit`` or ``miss``, and ``X-Repro-Request-Id`` is this
*request's* unique id, the join key between the access-log line, the
stored trace's root span, and whatever the client logs.  A request
carrying ``"incremental": true`` additionally reuses per-SCC
certificates from the store while solving; on a miss the response
then adds ``X-Repro-SCC-Reused`` and ``X-Repro-SCC-Reproved`` counts
(the body stays byte-identical with or without the flag).

Operational channels (all optional, all off the hot path):
``--access-log`` emits one ``repro.access/1`` JSON line per request
through the bounded non-blocking writer of
:mod:`repro.obs.ops.accesslog`; the in-process
:class:`~repro.obs.ops.slo.SloTracker` keeps rolling latency/error
windows over ``/v1/analyze`` traffic; SIGUSR2 toggles the sampling
profiler (:mod:`repro.obs.profiler`) and dumps collapsed stacks to
``--profile-out`` on the second signal; ``repro-top`` renders all of
it live.

Admission control: at most ``max_inflight`` requests may be queued or
solving; request ``max_inflight + 1`` is refused immediately with 429
(back off and retry beats silently queueing into a timeout).  Each
admitted solve races a wall-clock deadline: the worker-side SIGALRM
cancels the computation, an ``asyncio.wait_for`` backstop fails the
request with 504 even if the worker cannot be interrupted.  SIGTERM
and SIGINT drain: the listener closes, new requests get 503, in-flight
requests finish and are persisted, then the process exits 0.
"""

from __future__ import annotations

import argparse
import asyncio
import io
import json
import os
import signal
import sys
import uuid
from concurrent.futures.process import BrokenProcessPool
from time import perf_counter, time
from urllib.parse import parse_qs

from repro.errors import AnalysisTimeout, ReproError
from repro.obs import METRICS, Span, Tracer, labeled
from repro.obs.ops import (
    ACCESS_SCHEMA,
    CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE,
    SloTracker,
    render_prometheus,
)
from repro.obs.profiler import SamplingProfiler
from repro.obs.sinks import JsonlSink, write_trace
from repro.serve.protocol import (
    AnalyzeRequest,
    code_revision,
    payload_text,
)
from repro.serve.pool import SolverPool
from repro.serve.store import ResultStore

__all__ = ["ServeApp", "main", "serve_forever"]

_LATENCY_BUCKETS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000,
                    5000)
_MAX_BODY = 8 << 20
_MAX_HEADER_LINES = 64


def _json_bytes(data):
    return (json.dumps(data, sort_keys=True) + "\n").encode()


class _HttpError(Exception):
    """Internal: unwinds request handling into an error response."""

    def __init__(self, status, message):
        self.status = status
        self.message = message
        super().__init__(message)


_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


def new_request_id():
    """A fresh request id: 16 hex chars, unique enough to join logs,
    traces, and client reports on."""
    return uuid.uuid4().hex[:16]


class _RequestContext:
    """Per-request state threaded from accept to access-log emit."""

    __slots__ = (
        "request_id", "started", "method", "path", "status", "bytes",
        "key", "verdict", "cache", "scc", "queue_ms", "solve_ms",
        "serialize_ms", "error", "root", "mode",
    )

    def __init__(self):
        self.request_id = new_request_id()
        self.started = perf_counter()
        self.method = ""
        self.path = ""
        self.status = None
        self.bytes = 0
        self.key = None
        self.verdict = None
        self.cache = None
        self.scc = None
        self.queue_ms = None
        self.solve_ms = None
        self.serialize_ms = None
        self.error = None
        self.root = None
        self.mode = None

    @property
    def total_ms(self):
        return (perf_counter() - self.started) * 1000

    def access_record(self):
        """The ``repro.access/1`` record for this finished request."""
        record = {
            "schema": ACCESS_SCHEMA,
            "ts": time(),
            "request_id": self.request_id,
            "method": self.method,
            "path": self.path,
            "status": self.status,
            "bytes": self.bytes,
            "total_ms": round(self.total_ms, 3),
        }
        for field in ("key", "verdict", "cache", "error", "root", "mode"):
            value = getattr(self, field)
            if value is not None:
                record[field] = value
        for field in ("queue_ms", "solve_ms", "serialize_ms"):
            value = getattr(self, field)
            if value is not None:
                record[field] = round(value, 3)
        if self.scc is not None:
            record["sccs_reused"] = self.scc.get("reused", 0)
            record["sccs_reproved"] = self.scc.get("reproved", 0)
            record["sccs_rejected"] = self.scc.get("rejected", 0)
        return record


class ServeApp:
    """The daemon: routing, admission control, drain-then-exit."""

    def __init__(self, store, pool, *, max_inflight=None,
                 request_timeout=None, access_log=None, slo=None,
                 profile_out=None):
        self.store = store
        self.pool = pool
        self.max_inflight = (
            max_inflight if max_inflight is not None
            else max(4, 4 * pool.jobs)
        )
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.request_timeout = request_timeout
        self.access_log = access_log
        self.slo = slo if slo is not None else SloTracker()
        self.profile_out = profile_out
        self.profiler = None
        self.draining = False
        self.inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._server = None
        self.port = None

    # -- lifecycle -------------------------------------------------------------

    async def start(self, host="127.0.0.1", port=0):
        """Bind and start accepting; ``self.port`` gets the real port."""
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def shutdown(self):
        """Drain then stop: close the listener, flag 503 for any
        connection already accepted, wait for in-flight requests, and
        close the store (so every finished verdict is persisted)."""
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._idle.wait()
        self.pool.shutdown()
        self.store.close()
        if self.profiler is not None and self.profiler.active:
            self.toggle_profiler()
        if self.access_log is not None:
            self.access_log.close()

    def toggle_profiler(self):
        """SIGUSR2 handler body: start the sampling profiler, or stop
        it and dump collapsed stacks to ``profile_out``.  Returns a
        human-readable status line (the caller logs it)."""
        if self.profiler is None or not self.profiler.active:
            self.profiler = SamplingProfiler()
            self.profiler.start()
            if METRICS.enabled:
                METRICS.gauge("serve.profiler.active").set(1)
            return "profiler started (%.3gms sampling interval)" % (
                self.profiler.interval * 1000
            )
        self.profiler.stop()
        if METRICS.enabled:
            METRICS.gauge("serve.profiler.active").set(0)
        path = self.profile_out or "repro-profile-%d.collapsed" % os.getpid()
        try:
            stacks = self.profiler.write(path)
        except OSError as error:
            return "profiler stopped; cannot write %s: %s" % (path, error)
        return "profiler stopped; %d stacks (%d samples) -> %s" % (
            stacks, self.profiler.samples, path
        )

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(self, reader, writer):
        ctx = _RequestContext()
        try:
            try:
                method, path = await self._read_request_line(reader)
                ctx.method, ctx.path = method, path.partition("?")[0]
                headers = await self._read_headers(reader)
                body = await self._read_body(reader, headers)
            except _HttpError as error:
                ctx.error = error.message
                await self._respond(
                    ctx, writer, error.status,
                    _json_bytes({"error": error.message}),
                )
                return
            await self._dispatch(ctx, writer, method, path, body, headers)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            if self.access_log is not None and ctx.status is not None:
                self.access_log.log(ctx.access_record())
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request_line(self, reader):
        line = await reader.readline()
        parts = line.decode("latin-1").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HttpError(400, "malformed request line")
        return parts[0].upper(), parts[1]

    async def _read_headers(self, reader):
        headers = {}
        for _ in range(_MAX_HEADER_LINES):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                return headers
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        raise _HttpError(400, "too many header lines")

    async def _read_body(self, reader, headers):
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HttpError(400, "bad Content-Length") from None
        if length > _MAX_BODY:
            raise _HttpError(
                413, "body exceeds %d bytes" % _MAX_BODY
            )
        if length <= 0:
            return b""
        return await reader.readexactly(length)

    async def _respond(self, ctx, writer, status, body, content_type=None,
                       extra_headers=()):
        first_response = ctx.status is None
        ctx.status = status
        ctx.bytes = len(body)
        if first_response:
            if METRICS.enabled:
                METRICS.counter(
                    labeled("serve.responses", status=status)
                ).inc()
            if ctx.path.startswith("/v1/analyze"):
                self.slo.observe(ctx.total_ms, error=status >= 500)
        reason = _REASONS.get(status, "Unknown")
        head = [
            "HTTP/1.1 %d %s" % (status, reason),
            "Content-Type: %s" % (content_type or "application/json"),
            "Content-Length: %d" % len(body),
            "Connection: close",
            "X-Repro-Request-Id: %s" % ctx.request_id,
        ]
        head.extend("%s: %s" % pair for pair in extra_headers)
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode())
        writer.write(body)
        await writer.drain()

    # -- routing ---------------------------------------------------------------

    async def _dispatch(self, ctx, writer, method, path, body, headers):
        if METRICS.enabled:
            METRICS.counter("serve.requests").inc()
        path, _, query_text = path.partition("?")
        query = parse_qs(query_text) if query_text else {}
        if self.draining:
            await self._respond(
                ctx, writer, 503, _json_bytes({"error": "draining"})
            )
            return
        if path == "/v1/health":
            await self._require(ctx, writer, method, "GET") and \
                await self._health(ctx, writer)
        elif path == "/v1/metrics":
            await self._require(ctx, writer, method, "GET") and \
                await self._metrics(ctx, writer, query, headers)
        elif path == "/v1/status":
            await self._require(ctx, writer, method, "GET") and \
                await self._status(ctx, writer)
        elif path.startswith("/v1/trace/"):
            await self._require(ctx, writer, method, "GET") and \
                await self._trace(ctx, writer, path[len("/v1/trace/"):])
        elif path == "/v1/analyze":
            await self._require(ctx, writer, method, "POST") and \
                await self._analyze(ctx, writer, body)
        else:
            await self._respond(
                ctx, writer, 404,
                _json_bytes({"error": "no route %s" % path}),
            )

    async def _require(self, ctx, writer, method, expected):
        if method == expected:
            return True
        await self._respond(
            ctx, writer, 405,
            _json_bytes({"error": "%s required" % expected}),
        )
        return False

    # -- endpoints -------------------------------------------------------------

    async def _health(self, ctx, writer):
        await self._respond(ctx, writer, 200, _json_bytes({
            "status": "ok",
            "revision": code_revision(),
            "inflight": self.inflight,
            "max_inflight": self.max_inflight,
            "pool": {"jobs": self.pool.jobs, "lane": self.pool.lane},
            "store": self.store.stats(),
        }))

    def _wants_prometheus(self, query, headers):
        formats = query.get("format", [])
        if formats:
            return formats[-1] == "prometheus"
        accept = headers.get("accept", "")
        return "text/plain" in accept and "application/json" not in accept

    async def _metrics(self, ctx, writer, query, headers):
        if METRICS.enabled:
            self.slo.publish(METRICS)
            METRICS.gauge("serve.inflight").set(self.inflight)
        snapshot = METRICS.snapshot()
        if self._wants_prometheus(query, headers):
            await self._respond(
                ctx, writer, 200,
                render_prometheus(snapshot).encode(),
                content_type=PROMETHEUS_CONTENT_TYPE,
            )
            return
        await self._respond(ctx, writer, 200, _json_bytes(snapshot))

    async def _status(self, ctx, writer):
        overloaded = self.inflight >= self.max_inflight
        if self.draining:
            state = "draining"
        elif overloaded:
            state = "overloaded"
        else:
            state = "ok"
        await self._respond(ctx, writer, 200, _json_bytes({
            "status": state,
            "revision": code_revision(),
            "inflight": self.inflight,
            "max_inflight": self.max_inflight,
            "draining": self.draining,
            "overloaded": overloaded,
            "pool": {
                "jobs": self.pool.jobs,
                "lane": self.pool.lane,
                "degraded": self.pool.degraded,
            },
            "slo": self.slo.summary(),
            "accesslog": {
                "enabled": self.access_log is not None,
                "dropped": (
                    self.access_log.dropped
                    if self.access_log is not None else 0
                ),
            },
            "profiler": {
                "active": bool(self.profiler and self.profiler.active),
                "samples": self.profiler.samples if self.profiler else 0,
            },
            "store": self.store.stats(),
        }))

    async def _trace(self, ctx, writer, key):
        jsonl = self.store.get_trace(key)
        if jsonl is None:
            await self._respond(
                ctx, writer, 404,
                _json_bytes({"error": "no trace for %r" % key}),
            )
            return
        await self._respond(
            ctx, writer, 200, jsonl.encode(),
            content_type="application/x-ndjson",
        )

    async def _analyze(self, ctx, writer, body):
        started = perf_counter()
        try:
            wire = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            ctx.error = "body is not valid JSON"
            await self._respond(
                ctx, writer, 400,
                _json_bytes({"error": "body is not valid JSON"}),
            )
            return
        try:
            request = AnalyzeRequest.from_wire(wire)
            request.parse()
        except ReproError as error:
            ctx.error = str(error)
            await self._respond(
                ctx, writer, 400, _json_bytes({"error": str(error)})
            )
            return
        ctx.root = "%s/%d" % request.root
        ctx.mode = request.mode
        key = request.key()
        ctx.key = key
        cached = self.store.get(key)
        if cached is not None:
            ctx.cache = "store-hit"
            try:
                ctx.verdict = json.loads(cached).get("status")
            except ValueError:
                pass
            await self._finish(ctx, writer, started, 200,
                               cached.encode(), key, "hit")
            return
        if self.inflight >= self.max_inflight:
            if METRICS.enabled:
                METRICS.counter("serve.rejected").inc()
            await self._respond(
                ctx, writer, 429, _json_bytes({
                    "error": "at capacity (%d in flight); retry later"
                             % self.inflight,
                }),
                extra_headers=(("Retry-After", "1"),),
            )
            return
        self.inflight += 1
        self._idle.clear()
        try:
            status, payload_bytes, scc = await self._solve(
                ctx, request, key
            )
        finally:
            self.inflight -= 1
            if self.inflight == 0:
                self._idle.set()
        await self._finish(ctx, writer, started, status, payload_bytes,
                           key, "miss", scc=scc)

    async def _finish(self, ctx, writer, started, status, body, key,
                      cache, scc=None):
        if METRICS.enabled:
            METRICS.histogram(
                "serve.request_ms", _LATENCY_BUCKETS
            ).observe((perf_counter() - started) * 1000)
        headers = [("X-Repro-Key", key), ("X-Repro-Cache", cache)]
        if scc is not None:
            headers.append(
                ("X-Repro-SCC-Reused", str(scc.get("reused", 0)))
            )
            headers.append(
                ("X-Repro-SCC-Reproved", str(scc.get("reproved", 0)))
            )
        await self._respond(
            ctx, writer, status, body, extra_headers=tuple(headers)
        )

    async def _solve(self, ctx, request, key):
        """Run one admitted solve; returns (status, body bytes, scc
        reuse stats or None)."""
        tracer = Tracer()
        cache_dir = self.store.root if request.incremental else None
        scc = None
        solve_started = perf_counter()
        try:
            with tracer.span("serve.request", key=key,
                             request_id=ctx.request_id,
                             root="%s/%d" % request.root,
                             mode=request.mode,
                             incremental=request.incremental,
                             lane=self.pool.lane) as serve_span:
                future = self.pool.submit(
                    request, self.request_timeout, cache_dir,
                    ctx.request_id,
                )
                try:
                    payload, roots, delta, scc, timings = (
                        await asyncio.wait_for(
                            asyncio.wrap_future(future),
                            timeout=self.request_timeout,
                        )
                    )
                except BrokenProcessPool:
                    # The pool died under us (worker OOM-killed, fork
                    # failure); degrade to the in-process serial lane
                    # and retry this request there.
                    serve_span.set(lane="serial", degraded=True)
                    payload, roots, delta, scc, timings = (
                        await asyncio.wait_for(
                            asyncio.wrap_future(
                                self.pool.submit_serial(
                                    request, self.request_timeout,
                                    cache_dir, ctx.request_id,
                                )
                            ),
                            timeout=self.request_timeout,
                        )
                    )
                serve_span.set(status=payload.get("status", ""))
                if request.incremental:
                    serve_span.set(sccs_reused=scc["reused"],
                                   sccs_reproved=scc["reproved"])
        except (asyncio.TimeoutError, AnalysisTimeout):
            if METRICS.enabled:
                METRICS.counter("serve.timeouts").inc()
            ctx.error = "timeout"
            return 504, _json_bytes({
                "error": "analysis exceeded the %.3gs request deadline"
                         % self.request_timeout,
            }), None
        except ReproError as error:
            if METRICS.enabled:
                METRICS.counter("serve.errors").inc()
            ctx.error = str(error)
            return 400, _json_bytes({"error": str(error)}), None
        except Exception as error:  # noqa: BLE001 — the 500 boundary
            if METRICS.enabled:
                METRICS.counter("serve.errors").inc()
            ctx.error = "%s: %s" % (type(error).__name__, error)
            return 500, _json_bytes({
                "error": "%s: %s" % (type(error).__name__, error),
            }), None
        solved = perf_counter()
        if METRICS.enabled:
            METRICS.merge_snapshot(delta)
        text = payload_text(payload)
        self.store.put(key, text,
                       root="%s/%d" % request.root, mode=request.mode)
        self._store_trace(key, tracer.roots, list(roots), delta,
                          request_id=ctx.request_id)
        ctx.verdict = payload.get("status")
        ctx.scc = scc
        ctx.cache = (
            "cert-reuse" if scc and scc.get("reused", 0) > 0 else "fresh"
        )
        ctx.solve_ms = timings.get("solve_ms")
        ctx.serialize_ms = (perf_counter() - solved) * 1000
        elapsed_ms = (perf_counter() - solve_started) * 1000
        ctx.queue_ms = max(
            0.0,
            elapsed_ms - (ctx.solve_ms or 0.0) - ctx.serialize_ms,
        )
        return 200, text.encode(), (scc if request.incremental else None)

    def _store_trace(self, key, serve_roots, worker_roots, delta,
                     request_id=None):
        """Persist the request's repro.trace/1 stream.

        Server-side spans and worker spans stay separate roots: their
        ``perf_counter`` clocks belong to different processes, so
        nesting one under the other would fabricate offsets.
        """
        buffer = io.StringIO()
        meta = {"request": key}
        if request_id is not None:
            meta["request_id"] = request_id
        write_trace(
            JsonlSink(buffer),
            list(serve_roots) + [
                root if isinstance(root, Span) else Span.from_dict(root)
                for root in worker_roots
            ],
            delta,
            meta=meta,
        )
        self.store.put_trace(key, buffer.getvalue())


async def serve_forever(app, host, port, ready=None):
    """Start *app*, install drain-on-SIGTERM/SIGINT, run until done."""
    await app.start(host, port)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):
            pass  # non-Unix event loop; Ctrl-C still raises
    if hasattr(signal, "SIGUSR2"):
        def _toggle():
            print("repro-serve: %s" % app.toggle_profiler(),
                  file=sys.stderr, flush=True)
        try:
            loop.add_signal_handler(signal.SIGUSR2, _toggle)
        except (NotImplementedError, RuntimeError):
            pass
    print("repro-serve listening on %s:%d (jobs=%d, queue=%d, "
          "store=%s)" % (host, app.port, app.pool.jobs,
                         app.max_inflight, app.store.path),
          file=sys.stderr, flush=True)
    if ready is not None:
        ready(app)
    await stop.wait()
    print("repro-serve draining %d in-flight request(s)..."
          % app.inflight, file=sys.stderr, flush=True)
    await app.shutdown()
    print("repro-serve drained; bye.", file=sys.stderr, flush=True)


def build_serve_parser():
    """Construct the argparse parser for ``repro-serve``."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Long-running termination-analysis daemon: "
        "JSON over HTTP, content-addressed persistent result store, "
        "process-pool solving.",
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=8421,
        help="TCP port (default 8421; 0 = ephemeral)",
    )
    parser.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="persistent result store directory, shared with "
        "'repro-analyze --cache-dir' (default ./.repro-cache)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="solver worker processes (default 1: in-process serial)",
    )
    parser.add_argument(
        "--queue", type=int, default=None, metavar="N",
        help="max in-flight requests before 429 "
        "(default: max(4, 4*jobs))",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-request wall-clock deadline (default: none)",
    )
    parser.add_argument(
        "--max-entries", type=int, default=4096, metavar="N",
        help="verdict store bound before LRU eviction (default 4096)",
    )
    parser.add_argument(
        "--access-log", default=None, metavar="PATH",
        help="append one repro.access/1 JSON line per request to PATH "
        "('-' = stderr); bounded and non-blocking — overflow drops "
        "lines and counts them in serve.accesslog.dropped",
    )
    parser.add_argument(
        "--profile-out", default=None, metavar="PATH",
        help="collapsed-stack output path for the SIGUSR2-toggled "
        "sampling profiler (default repro-profile-<pid>.collapsed)",
    )
    return parser


def main(argv=None):
    """``repro-serve`` entry point; returns the process exit code."""
    args = build_serve_parser().parse_args(argv)
    try:
        store = ResultStore(args.cache_dir,
                            max_entries=args.max_entries)
    except OSError as error:
        print("cannot open store: %s" % error, file=sys.stderr)
        return 2
    access_log = None
    if args.access_log is not None:
        from repro.obs.ops import AccessLogWriter

        destination = (
            sys.stderr if args.access_log == "-" else args.access_log
        )
        try:
            access_log = AccessLogWriter(destination)
        except OSError as error:
            print("cannot open access log: %s" % error, file=sys.stderr)
            store.close()
            return 2
    app = ServeApp(
        store,
        SolverPool(jobs=args.jobs),
        max_inflight=args.queue,
        request_timeout=args.timeout,
        access_log=access_log,
        profile_out=args.profile_out,
    )
    try:
        asyncio.run(serve_forever(app, args.host, args.port))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
