"""Content-addressed persistent result store (sqlite, stdlib-only).

One directory holds one store: ``<dir>/results.sqlite`` with four
tables —

``meta(key TEXT PRIMARY KEY, value TEXT)``
    ``schema_version`` (layout version; a mismatch on open drops and
    recreates every table — stored verdicts are pure derived data, so
    "wipe on schema change" is always correct) and ``clock`` (a
    monotonic access counter; wall clocks can tie or step backwards,
    a counter cannot, so eviction order is deterministic).

``results(key TEXT PRIMARY KEY, payload TEXT, root TEXT, mode TEXT,
created REAL, last_access INTEGER, hits INTEGER)``
    ``key`` is the :func:`~repro.serve.protocol.request_key` content
    address; ``payload`` the canonical verdict text, returned byte
    for byte on every hit.

``certificates(key TEXT PRIMARY KEY, payload TEXT, kind TEXT,
created REAL, last_access INTEGER, hits INTEGER)``
    Per-SCC incremental-analysis entries (schema v2): ``key`` is a
    :mod:`repro.core.fingerprint` content address prefixed with the
    :func:`~repro.serve.protocol.code_revision`, ``payload`` a
    :mod:`repro.core.certcache` serialization, ``kind`` is ``env`` or
    ``cert``.  Shared by ``repro-analyze --cache-dir``/``--diff`` and
    the daemon's ``incremental`` requests through
    :class:`StoreCertificateCache`.

``traces(key TEXT PRIMARY KEY, jsonl TEXT, last_access INTEGER)``
    The ``repro.trace/1`` JSONL telemetry of the request that
    *solved* ``key`` (hits don't re-trace), served by
    ``GET /v1/trace/{id}``.

Writes run inside sqlite transactions under WAL journaling, so a
process killed mid-``put`` leaves either the complete entry or none —
never a half-written payload.  Eviction is LRU by the access counter,
bounded by ``max_entries``/``max_certificates``/``max_traces``; both
the daemon (``repro-serve --cache-dir``) and the offline CLI
(``repro-analyze --cache-dir``) point at the same directory and see
each other's entries.

The store is safe for multi-threaded use within one process (a lock
serializes statements); cross-process sharing goes through sqlite's
own file locking.
"""

from __future__ import annotations

import os
import sqlite3
import threading
import time

from repro.obs import METRICS

__all__ = ["SCHEMA_VERSION", "ResultStore", "StoreCertificateCache"]

#: Bump when the table layout changes; existing stores self-wipe.
#: v2 added the ``certificates`` table for per-SCC incremental entries.
SCHEMA_VERSION = 2


class ResultStore:
    """A content-addressed verdict + trace store rooted at *root*."""

    def __init__(self, root, max_entries=4096, max_traces=512,
                 max_certificates=16384):
        if max_entries < 1 or max_traces < 1 or max_certificates < 1:
            raise ValueError("store bounds must be >= 1")
        self.root = os.path.abspath(root)
        self.max_entries = max_entries
        self.max_traces = max_traces
        self.max_certificates = max_certificates
        os.makedirs(self.root, exist_ok=True)
        self.path = os.path.join(self.root, "results.sqlite")
        self._lock = threading.Lock()
        self._db = sqlite3.connect(self.path, check_same_thread=False)
        self._db.execute("PRAGMA journal_mode=WAL")
        self._db.execute("PRAGMA synchronous=NORMAL")
        self._ensure_schema()

    # -- schema ----------------------------------------------------------------

    def _ensure_schema(self):
        with self._lock, self._db:
            self._db.execute(
                "CREATE TABLE IF NOT EXISTS meta "
                "(key TEXT PRIMARY KEY, value TEXT)"
            )
            row = self._db.execute(
                "SELECT value FROM meta WHERE key='schema_version'"
            ).fetchone()
            if row is not None and int(row[0]) != SCHEMA_VERSION:
                self._db.execute("DROP TABLE IF EXISTS results")
                self._db.execute("DROP TABLE IF EXISTS certificates")
                self._db.execute("DROP TABLE IF EXISTS traces")
                self._db.execute("DELETE FROM meta")
                row = None
            if row is None:
                self._db.execute(
                    "INSERT OR REPLACE INTO meta VALUES "
                    "('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )
                self._db.execute(
                    "INSERT OR IGNORE INTO meta VALUES ('clock', '0')"
                )
            self._db.execute(
                "CREATE TABLE IF NOT EXISTS results ("
                "key TEXT PRIMARY KEY, payload TEXT NOT NULL, "
                "root TEXT, mode TEXT, created REAL, "
                "last_access INTEGER, hits INTEGER)"
            )
            self._db.execute(
                "CREATE TABLE IF NOT EXISTS certificates ("
                "key TEXT PRIMARY KEY, payload TEXT NOT NULL, "
                "kind TEXT, created REAL, "
                "last_access INTEGER, hits INTEGER)"
            )
            self._db.execute(
                "CREATE TABLE IF NOT EXISTS traces ("
                "key TEXT PRIMARY KEY, jsonl TEXT NOT NULL, "
                "last_access INTEGER)"
            )

    def _tick(self):
        """Advance and return the monotonic access counter.

        Callers hold ``self._lock`` and an open transaction.
        """
        clock = int(self._db.execute(
            "SELECT value FROM meta WHERE key='clock'"
        ).fetchone()[0]) + 1
        self._db.execute(
            "UPDATE meta SET value=? WHERE key='clock'", (str(clock),)
        )
        return clock

    # -- verdicts --------------------------------------------------------------

    def get(self, key):
        """The stored payload text for *key*, or None (recording the
        hit/miss in the ``serve.store.*`` metrics)."""
        with self._lock, self._db:
            row = self._db.execute(
                "SELECT payload FROM results WHERE key=?", (key,)
            ).fetchone()
            if row is not None:
                self._db.execute(
                    "UPDATE results SET last_access=?, hits=hits+1 "
                    "WHERE key=?",
                    (self._tick(), key),
                )
        if METRICS.enabled:
            kind = "hits" if row is not None else "misses"
            METRICS.counter("serve.store.%s" % kind).inc()
        return row[0] if row is not None else None

    def put(self, key, payload, root="", mode=""):
        """Store the payload text under *key*; evict past the bound.

        A concurrent writer may have stored the same key first — the
        content address guarantees its payload is identical, so the
        first write wins and later ones are no-ops.
        """
        with self._lock, self._db:
            self._db.execute(
                "INSERT OR IGNORE INTO results VALUES (?,?,?,?,?,?,0)",
                (key, payload, root, mode, time.time(), self._tick()),
            )
            self._evict("results", self.max_entries)
        if METRICS.enabled:
            METRICS.counter("serve.store.puts").inc()

    # -- certificates ----------------------------------------------------------

    def get_certificate(self, key):
        """The stored per-SCC payload for *key*, or None (recording
        the hit/miss in the ``serve.store.cert.*`` metrics)."""
        with self._lock, self._db:
            row = self._db.execute(
                "SELECT payload FROM certificates WHERE key=?", (key,)
            ).fetchone()
            if row is not None:
                self._db.execute(
                    "UPDATE certificates SET last_access=?, hits=hits+1 "
                    "WHERE key=?",
                    (self._tick(), key),
                )
        if METRICS.enabled:
            kind = "hits" if row is not None else "misses"
            METRICS.counter("serve.store.cert.%s" % kind).inc()
        return row[0] if row is not None else None

    def put_certificate(self, key, payload, kind=""):
        """Store a per-SCC payload under its fingerprint *key*.

        Fingerprints are content addresses too, so a concurrent
        writer's payload for the same key is identical and the first
        write wins.
        """
        with self._lock, self._db:
            self._db.execute(
                "INSERT OR IGNORE INTO certificates VALUES (?,?,?,?,?,0)",
                (key, payload, kind, time.time(), self._tick()),
            )
            self._evict("certificates", self.max_certificates)
        if METRICS.enabled:
            METRICS.counter("serve.store.cert.puts").inc()

    # -- traces ----------------------------------------------------------------

    def put_trace(self, key, jsonl):
        """Store the request's JSONL telemetry under its key."""
        with self._lock, self._db:
            self._db.execute(
                "INSERT OR REPLACE INTO traces VALUES (?,?,?)",
                (key, jsonl, self._tick()),
            )
            self._evict("traces", self.max_traces)

    def get_trace(self, key):
        """The stored JSONL telemetry for *key*, or None."""
        with self._lock, self._db:
            row = self._db.execute(
                "SELECT jsonl FROM traces WHERE key=?", (key,)
            ).fetchone()
            if row is not None:
                self._db.execute(
                    "UPDATE traces SET last_access=? WHERE key=?",
                    (self._tick(), key),
                )
        return row[0] if row is not None else None

    # -- maintenance -----------------------------------------------------------

    def _evict(self, table, bound):
        """Drop least-recently-accessed rows beyond *bound* (caller
        holds the lock and an open transaction)."""
        over = self._db.execute(
            "SELECT COUNT(*) FROM %s" % table
        ).fetchone()[0] - bound
        if over > 0:
            self._db.execute(
                "DELETE FROM %s WHERE key IN (SELECT key FROM %s "
                "ORDER BY last_access ASC LIMIT ?)" % (table, table),
                (over,),
            )
            if METRICS.enabled:
                METRICS.counter("serve.store.evictions").inc(over)

    def stats(self):
        """Entry counts and hit totals (the health endpoint's view)."""
        with self._lock:
            entries, hits = self._db.execute(
                "SELECT COUNT(*), COALESCE(SUM(hits), 0) FROM results"
            ).fetchone()
            certificates = self._db.execute(
                "SELECT COUNT(*) FROM certificates"
            ).fetchone()[0]
            traces = self._db.execute(
                "SELECT COUNT(*) FROM traces"
            ).fetchone()[0]
        return {
            "path": self.path,
            "schema_version": SCHEMA_VERSION,
            "entries": entries,
            "certificates": certificates,
            "traces": traces,
            "hits": hits,
            "max_entries": self.max_entries,
            "max_certificates": self.max_certificates,
            "max_traces": self.max_traces,
        }

    def keys(self):
        """Every stored verdict key (insertion order not guaranteed)."""
        with self._lock:
            return [
                row[0] for row in
                self._db.execute("SELECT key FROM results")
            ]

    def close(self):
        """Flush and close the database handle (idempotent)."""
        with self._lock:
            if self._db is not None:
                self._db.close()
                self._db = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


class StoreCertificateCache:
    """Adapt a :class:`ResultStore` to the certificate-cache protocol.

    :class:`~repro.core.pipeline.AnalysisPipeline` and the interarg
    fixpoint expect ``get(key) -> str | None`` and
    ``put(key, payload, kind="")``; this adapter backs them with the
    store's ``certificates`` table, making SCC-granular reuse
    persistent across processes.

    Fingerprints are rename-invariant content addresses of the
    *program text plus callee environment*, not of the analyzer's
    behaviour — so every key is additionally prefixed with
    :func:`~repro.serve.protocol.code_revision`.  Upgrading the
    analyzer silently orphans old entries (evicted by LRU) instead of
    replaying certificates a newer solver might not produce.
    """

    def __init__(self, store):
        self.store = store
        from repro.serve.protocol import code_revision
        self._prefix = code_revision() + ":"

    def get(self, key):
        return self.store.get_certificate(self._prefix + key)

    def put(self, key, payload, kind=""):
        self.store.put_certificate(self._prefix + key, payload, kind=kind)
