"""``python -m repro.serve`` — start the analysis daemon."""

import sys

from repro.serve.app import main

if __name__ == "__main__":
    sys.exit(main())
