"""Convex polyhedra in constraint form.

The abstract domain behind inter-argument constraint inference (the
[VG90] substrate): each predicate's set of derivable argument-size
vectors is over-approximated by a convex polyhedron over its argument
dimensions.  Operations:

- ``meet`` — conjunction (used when composing rule bodies),
- ``project`` — existential elimination via Fourier–Motzkin,
- ``join`` — closed convex hull of the union (via the standard lifted
  construction with mixing multipliers, projected by FM),
- ``widen`` — standard constraint-dropping widening so fixpoints
  terminate,
- ``entails`` / ``equivalent`` — exact, via simplex.

A polyhedron stores its dimension list explicitly; auxiliary variables
introduced during construction must be projected away by the caller.
"""

from __future__ import annotations

import itertools

from repro.linalg.constraints import Constraint, ConstraintSystem, GE
from repro.linalg.fourier_motzkin import (
    FMBlowupError,
    eliminate_all_tracked,
    prune_redundant,
)
from repro.linalg.linexpr import LinearExpr
from repro.linalg.simplex import entails as lp_entails, is_feasible

_hull_counter = itertools.count(1)

#: Row-count threshold beyond which Fourier–Motzkin projections inside
#: polyhedron operations run exact LP-based redundancy pruning.  Keeps
#: repeated convex hulls (fixpoint iteration) polynomial in practice.
LP_PRUNE_THRESHOLD = 24


class Polyhedron:
    """A convex polyhedron { x : constraints } over named dimensions."""

    def __init__(self, dimensions, constraints=()):
        self.dimensions = tuple(dimensions)
        system = ConstraintSystem()
        for constraint in constraints:
            extra = constraint.variables() - set(self.dimensions)
            if extra:
                raise ValueError(
                    "constraint %s uses non-dimension variables %s"
                    % (constraint, sorted(extra, key=repr))
                )
            system.add(constraint)
        self.system = system
        self._empty_cache = None

    # -- constructors -----------------------------------------------------------

    @classmethod
    def top(cls, dimensions):
        """The whole space (no constraints)."""
        return cls(dimensions)

    @classmethod
    def bottom(cls, dimensions):
        """The empty polyhedron."""
        false = Constraint(LinearExpr.constant(-1), GE)
        poly = cls(dimensions)
        poly.system.add(false)
        poly._empty_cache = True
        return poly

    @classmethod
    def nonnegative_orthant(cls, dimensions):
        """{ x : x_i >= 0 } — argument sizes are always nonnegative."""
        return cls(
            dimensions,
            (Constraint.ge(LinearExpr.of(d)) for d in dimensions),
        )

    def copy(self):
        """An independent copy."""
        poly = Polyhedron(self.dimensions, self.system)
        poly._empty_cache = self._empty_cache
        return poly

    # -- basic queries --------------------------------------------------------------

    def is_empty(self):
        """True iff the polyhedron has no points (decided by LP)."""
        if self._empty_cache is None:
            if self.system.has_contradiction_row():
                self._empty_cache = True
            else:
                self._empty_cache = not is_feasible(self.system)
        return self._empty_cache

    def is_top(self):
        """True when unconstrained (the whole space)."""
        return len(self.system) == 0

    def entails_constraint(self, constraint):
        # Fast path: a row we literally contain is entailed (rows are
        # canonically normalized, so hashing catches scaled variants).
        """Does every point satisfy *constraint*?"""
        if constraint in self.system:
            return True
        return lp_entails(self.system, constraint)

    def entails(self, other):
        """True if self is a subset of *other* (same dimensions)."""
        if self.is_empty():
            return True
        return all(
            self.entails_constraint(constraint) for constraint in other.system
        )

    def equivalent(self, other):
        # Identical constraint sets are equivalent without any LP work —
        # the common case when a fixpoint iteration has stabilized.
        """Mutual entailment (same point set)."""
        if self.system.constraint_set() == other.system.constraint_set():
            return True
        return self.entails(other) and other.entails(self)

    def contains_point(self, assignment):
        """Membership test for a concrete assignment."""
        return self.system.satisfied_by(assignment)

    # -- lattice / geometric operations ------------------------------------------------

    def meet(self, other):
        """Intersection; dimensions are merged."""
        dimensions = list(self.dimensions)
        for dim in other.dimensions:
            if dim not in dimensions:
                dimensions.append(dim)
        result = Polyhedron(dimensions)
        result.system.extend(self.system)
        result.system.extend(other.system)
        return result

    def with_constraints(self, constraints):
        """A copy strengthened with extra constraints."""
        result = self.copy()
        result.system.extend(constraints)
        result._empty_cache = None
        return result

    def project(self, keep_dimensions):
        """Existentially eliminate every dimension not in *keep*.

        Uses history-tracked Fourier–Motzkin (Chernikov pruning) so the
        projection stays exact without the classic row blow-up; should
        the row budget still overflow, falls back to *forgetting* — a
        sound over-approximation that simply drops every constraint
        mentioning an eliminated variable.
        """
        keep = [d for d in self.dimensions if d in set(keep_dimensions)]
        to_eliminate = self.system.variables() - set(keep)
        try:
            system = eliminate_all_tracked(self.system, to_eliminate)
        except FMBlowupError:
            system = _forget(self.system, to_eliminate)
        return Polyhedron(keep, system)

    def rename(self, mapping):
        """Rename variables via *mapping*."""
        dimensions = [mapping.get(d, d) for d in self.dimensions]
        if len(set(dimensions)) != len(dimensions):
            raise ValueError("renaming collapses dimensions: %r" % mapping)
        return Polyhedron(dimensions, self.system.rename(mapping))

    def join(self, other):
        """Closed convex hull of the union — exact, via
        :meth:`join_exact` with history-tracked FM.

        Kept as the default because the fixpoint must *discover* new
        facet directions (e.g. ``arg2 >= arg1 + 1`` for a ``less``
        predicate arises only as the hull of successive iterates); the
        cheaper :meth:`join_weak` cannot do that.  When the exact hull
        overflows its row budget the weak join serves as the sound
        fallback.
        """
        if self.dimensions != other.dimensions:
            raise ValueError("join requires identical dimension lists")
        if self.system.constraint_set() == other.system.constraint_set():
            return self.copy()
        try:
            return self.join_exact(other)
        except FMBlowupError:
            return self.join_weak(other)

    def join_weak(self, other):
        """An upper bound of the union: the *constraint-candidate* join.

        Collects the linear parts of both polyhedra's constraints as
        candidate facet directions and keeps, for each candidate
        ``l``, the inequality ``l >= min(min_P1 l, min_P2 l)`` when
        both minima exist.  The result contains the exact convex hull
        (so it is a sound over-approximation for the fixpoint) but can
        be strictly larger: it reuses existing facet directions only.
        Cost: two small LPs per candidate, no Fourier–Motzkin at all.
        Used by the ablation benchmarks.
        """
        if self.dimensions != other.dimensions:
            raise ValueError("join requires identical dimension lists")
        if self.is_empty():
            return other.copy()
        if other.is_empty():
            return self.copy()

        from repro.linalg.simplex import OPTIMAL, solve_lp

        candidates = {}
        for system in (self.system, other.system):
            for constraint in system.inequalities():
                linear = constraint.expr - LinearExpr.constant(
                    constraint.expr.const
                )
                candidates[linear] = None
        kept = []
        for linear in candidates:
            first = solve_lp(linear, self.system)
            if first.status != OPTIMAL:
                continue
            second = solve_lp(linear, other.system)
            if second.status != OPTIMAL:
                continue
            bound = min(first.value, second.value)
            kept.append(Constraint(linear - LinearExpr.constant(bound), GE))
        return Polyhedron(self.dimensions, kept)

    def join_exact(self, other):
        """Closed convex hull of the union (same dimension list).

        Uses the lifted construction: a point x is in the hull iff
        x = y1 + y2 with ``A1 y1 >= -b1*m1``, ``A2 y2 >= -b2*m2``,
        ``m1 + m2 = 1``, ``m1, m2 >= 0`` — with ``m_i = 0`` the y_i
        range over the recession cone, which makes the construction
        exact for unbounded polyhedra.  The auxiliary variables are
        eliminated by history-tracked Fourier–Motzkin (Chernikov
        pruning), which keeps the projection exact without the classic
        row blow-up.
        """
        if self.dimensions != other.dimensions:
            raise ValueError("join requires identical dimension lists")
        if self.is_empty():
            return other.copy()
        if other.is_empty():
            return self.copy()

        tag = next(_hull_counter)
        y1 = {d: ("hull_y1", tag, d) for d in self.dimensions}
        y2 = {d: ("hull_y2", tag, d) for d in self.dimensions}
        m1 = ("hull_m1", tag)
        m2 = ("hull_m2", tag)

        lifted = ConstraintSystem()
        for d in self.dimensions:
            lifted.add(
                Constraint.eq(
                    LinearExpr.of(d),
                    LinearExpr.of(y1[d]) + LinearExpr.of(y2[d]),
                )
            )
        lifted.extend(_homogenize(self.system, y1, m1))
        lifted.extend(_homogenize(other.system, y2, m2))
        lifted.add(
            Constraint.eq(LinearExpr.of(m1) + LinearExpr.of(m2), 1)
        )
        lifted.add(Constraint.ge(LinearExpr.of(m1)))
        lifted.add(Constraint.ge(LinearExpr.of(m2)))

        to_eliminate = lifted.variables() - set(self.dimensions)
        projected = eliminate_all_tracked(lifted, to_eliminate)
        return Polyhedron(self.dimensions, projected)

    def widen(self, newer):
        """Standard widening: keep only our constraints *newer* entails.

        Requires self ⊑ newer in the fixpoint iteration (old first).
        Equalities are split so that one surviving half-space is kept
        even when the other direction grew.
        """
        if self.is_empty():
            return newer.copy()
        kept = []
        for constraint in self.system:
            for half in constraint.as_inequalities():
                if newer.entails_constraint(half):
                    kept.append(half)
        return Polyhedron(self.dimensions, kept)

    def minimized(self):
        """Equivalent polyhedron with LP-irredundant constraints."""
        return Polyhedron(
            self.dimensions, prune_redundant(self.system, use_lp=True)
        )

    def weakened(self, max_rows):
        """A sound over-approximation with at most *max_rows* rows.

        Keeps the syntactically simplest constraints (fewest variables,
        smallest coefficients) — dropping rows only enlarges the
        polyhedron, so every client of the abstract domain stays sound.
        Used by the fixpoint to bound iterate complexity.
        """
        if len(self.system) <= max_rows:
            return self

        def complexity(constraint):
            """Sort key: fewest variables, smallest coefficients first."""
            coefficients = [abs(c) for _, c in constraint.expr.items()]
            return (
                len(coefficients),
                max(coefficients, default=0),
                abs(constraint.expr.const),
                repr(constraint),
            )

        kept = sorted(self.system, key=complexity)[:max_rows]
        return Polyhedron(self.dimensions, kept)

    # -- rendering --------------------------------------------------------------------------

    def __str__(self):
        if self.is_empty():
            return "<empty polyhedron over %s>" % (list(self.dimensions),)
        if self.is_top():
            return "<top polyhedron over %s>" % (list(self.dimensions),)
        return str(self.system)

    def __repr__(self):
        return "Polyhedron(%r, %r)" % (self.dimensions, self.system.constraints)


def _forget(system, variables):
    """Sound projection fallback: drop rows mentioning *variables*."""
    variables = set(variables)
    return ConstraintSystem(
        constraint
        for constraint in system
        if not (constraint.variables() & variables)
    )


def _homogenize(system, var_mapping, multiplier):
    """Rows ``linear . x + const >= 0`` become
    ``linear . y + const * m >= 0`` (same for equalities)."""
    for constraint in system:
        linear = constraint.expr - LinearExpr.constant(constraint.expr.const)
        renamed = linear.rename(var_mapping)
        expr = renamed + LinearExpr.of(multiplier, constraint.expr.const)
        yield Constraint(expr, constraint.relation)
