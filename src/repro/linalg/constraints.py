"""Linear constraints and constraint systems.

A :class:`Constraint` is ``expr REL 0`` with ``REL`` one of ``>=``,
``<=``, ``=``.  Constraints normalize on construction: ``<=`` flips to
``>=`` by negating the expression, and coefficients are rescaled to a
canonical integer form so syntactically different but identical
constraints compare (and hash) equal — important for redundancy pruning
during Fourier–Motzkin elimination.
"""

from __future__ import annotations

from math import gcd

from repro.linalg.linexpr import _as_expr

GE = ">="
LE = "<="
EQ = "="

_VALID_RELATIONS = (GE, LE, EQ)


class Constraint:
    """A normalized linear constraint: ``expr >= 0`` or ``expr = 0``."""

    __slots__ = ("expr", "relation")

    def __init__(self, expr, relation=GE):
        if relation not in _VALID_RELATIONS:
            raise ValueError("bad relation %r" % relation)
        expr = _as_expr(expr)
        if relation == LE:
            expr = -expr
            relation = GE
        expr = _canonical_scale(expr, relation)
        object.__setattr__(self, "expr", expr)
        object.__setattr__(self, "relation", relation)

    def __setattr__(self, key, value):
        raise AttributeError("Constraint is immutable")

    # -- constructors ----------------------------------------------------------

    @classmethod
    def _from_canonical(cls, expr, relation=GE):
        """Internal: wrap an expression already in canonical form (the
        integer row kernel's materialization boundary) without
        re-running ``_canonical_scale``."""
        self = object.__new__(cls)
        object.__setattr__(self, "expr", expr)
        object.__setattr__(self, "relation", relation)
        return self

    @classmethod
    def ge(cls, left, right=0):
        """left >= right"""
        return cls(_as_expr(left) - _as_expr(right), GE)

    @classmethod
    def le(cls, left, right=0):
        """left <= right"""
        return cls(_as_expr(right) - _as_expr(left), GE)

    @classmethod
    def eq(cls, left, right=0):
        """left = right"""
        return cls(_as_expr(left) - _as_expr(right), EQ)

    # -- predicates --------------------------------------------------------------

    def variables(self):
        """The variables occurring in this object."""
        return self.expr.variables()

    def is_equality(self):
        """True for '=' constraints (vs '>=')."""
        return self.relation == EQ

    def is_trivial(self):
        """Constraint with no variables that always holds."""
        if self.expr.variables():
            return False
        if self.relation == EQ:
            return self.expr.const == 0
        return self.expr.const >= 0

    def is_contradiction(self):
        """Constraint with no variables that never holds."""
        if self.expr.variables():
            return False
        if self.relation == EQ:
            return self.expr.const != 0
        return self.expr.const < 0

    def satisfied_by(self, assignment):
        """Evaluate against a full variable assignment."""
        value = self.expr.evaluate(assignment)
        return value == 0 if self.relation == EQ else value >= 0

    # -- operations ---------------------------------------------------------------

    def substitute(self, mapping):
        """Replace variables by expressions from *mapping*."""
        return Constraint(self.expr.substitute(mapping), self.relation)

    def rename(self, mapping):
        """Rename variables via *mapping*."""
        return Constraint(self.expr.rename(mapping), self.relation)

    def as_inequalities(self):
        """Split an equality into its two defining inequalities."""
        if self.relation == GE:
            return (self,)
        return (Constraint(self.expr, GE), Constraint(-self.expr, GE))

    # -- identity --------------------------------------------------------------------

    def __eq__(self, other):
        return (
            isinstance(other, Constraint)
            and self.relation == other.relation
            and self.expr == other.expr
        )

    def __hash__(self):
        return hash((self.relation, self.expr))

    def __str__(self):
        return "%s %s 0" % (self.expr, self.relation)

    def __repr__(self):
        return "Constraint(%r, %r)" % (self.expr, self.relation)


def _canonical_scale(expr, relation):
    """Rescale so integer coefficients with gcd 1; sign-normalize
    equalities by their first (deterministically ordered) coefficient."""
    expr = expr.scale_to_integers()
    numerators = [abs(int(coeff)) for _, coeff in expr.items()]
    if expr.const != 0:
        numerators.append(abs(int(expr.const)))
    if numerators:
        divisor = 0
        for value in numerators:
            divisor = gcd(divisor, value)
        if divisor > 1:
            expr = expr / divisor
    if relation == EQ:
        items = expr.items()
        if items and items[0][1] < 0:
            expr = -expr
        elif not items and expr.const < 0:
            expr = -expr
    return expr


class ConstraintSystem:
    """An ordered, de-duplicated collection of constraints."""

    def __init__(self, constraints=()):
        self._constraints = []
        self._seen = set()
        self._variables = set()
        for constraint in constraints:
            self.add(constraint)

    @classmethod
    def _from_canonical_unique(cls, constraints):
        """Trusted boundary: wrap rows known to be canonical,
        non-trivial, and pairwise distinct without re-hashing them.

        The dedup set is built lazily on the first membership test or
        ``add`` — kernels materializing large projections never pay
        the (Fraction-heavy) constraint hashing unless a caller
        actually mutates or probes the system.
        """
        self = cls.__new__(cls)
        self._constraints = list(constraints)
        self._seen = None
        variables = set()
        for constraint in self._constraints:
            variables |= constraint.variables()
        self._variables = variables
        return self

    def _dedup_index(self):
        seen = self._seen
        if seen is None:
            seen = self._seen = set(self._constraints)
        return seen

    def add(self, constraint):
        """Add one constraint (normalized, de-duplicated)."""
        if not isinstance(constraint, Constraint):
            raise TypeError("expected Constraint, got %r" % (constraint,))
        if constraint.is_trivial():
            return
        seen = self._dedup_index()
        if constraint not in seen:
            seen.add(constraint)
            self._constraints.append(constraint)
            self._variables |= constraint.variables()

    def extend(self, constraints):
        """Add every constraint from the iterable."""
        for constraint in constraints:
            self.add(constraint)

    @property
    def constraints(self):
        """The constraints as a tuple, in insertion order."""
        return tuple(self._constraints)

    def constraint_set(self):
        """The constraints as a set (rows are canonically normalized,
        so set equality means syntactic system equality)."""
        return frozenset(self._dedup_index())

    def __contains__(self, constraint):
        return constraint in self._dedup_index()

    def variables(self):
        """The variables occurring in this object.

        Maintained incrementally as constraints are added (rows are
        never removed); a fresh set is returned so callers can mutate
        the result freely.
        """
        return set(self._variables)

    def inequalities(self):
        """All constraints as pure ``>= 0`` inequalities."""
        result = []
        for constraint in self._constraints:
            result.extend(constraint.as_inequalities())
        return result

    def has_contradiction_row(self):
        """Syntactic check: some row is a constant-false constraint."""
        return any(c.is_contradiction() for c in self._constraints)

    def satisfied_by(self, assignment):
        """Evaluate against a full variable assignment."""
        return all(c.satisfied_by(assignment) for c in self._constraints)

    def substitute(self, mapping):
        """Replace variables by expressions from *mapping*."""
        return ConstraintSystem(
            c.substitute(mapping) for c in self._constraints
        )

    def rename(self, mapping):
        """Rename variables via *mapping*."""
        return ConstraintSystem(c.rename(mapping) for c in self._constraints)

    def copy(self):
        """An independent copy."""
        return ConstraintSystem(self._constraints)

    def __iter__(self):
        return iter(self._constraints)

    def __len__(self):
        return len(self._constraints)

    def __str__(self):
        return "\n".join(str(c) for c in self._constraints)

    def __repr__(self):
        return "ConstraintSystem(%r)" % (self._constraints,)
