"""Fourier–Motzkin variable elimination with redundancy pruning.

Section 4 of the paper: "This set of constraints is very amenable to
reduction by Fourier–Motzkin elimination ... a variable is eliminated by
'cancelling' all positive occurrences with all negative occurrences,
pairwise, creating new rows."

Elimination preserves satisfiability and computes the exact projection
of the solution set onto the remaining variables.  Equalities containing
the eliminated variable are used for Gaussian substitution first — it is
both cheaper and produces no spurious rows.

Two interchangeable execution paths compute every projection:

- ``kernel="int"`` (default) — the dense integer row kernel of
  :mod:`repro.linalg.rows`: variables interned to dense indices,
  rows as gcd-normalized integer tuples, Chernikov ancestor sets as
  bitmasks, pos/neg occurrence counters maintained incrementally.
  Constraint objects are materialized only at the projection boundary.
- ``kernel="reference"`` — the original object pipeline, kept for
  differential testing; both paths produce byte-identical projections.

Redundancy control: syntactic normalization + de-duplication happens in
:class:`~repro.linalg.constraints.Constraint`, and
:func:`prune_redundant` offers quick pairwise-dominance pruning plus an
optional exact LP-based pass (used by the ablation benchmarks).
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from fractions import Fraction

from repro.errors import FMBlowupError, LinAlgError
from repro.linalg.constraints import Constraint, ConstraintSystem, GE
from repro.linalg.linexpr import LinearExpr
from repro.linalg.rows import RowKernel, tracked_project

__all__ = [
    "FMBlowupError",
    "KERNEL_ARRAY",
    "KERNEL_INT",
    "KERNEL_REFERENCE",
    "KERNELS",
    "default_kernel",
    "eliminate",
    "eliminate_all",
    "eliminate_all_tracked",
    "project_onto",
    "prune_redundant",
    "use_kernel",
]

#: The integer row kernel (default), the vectorized numpy kernel, and
#: the original object path.
KERNEL_INT = "int"
KERNEL_ARRAY = "array"
KERNEL_REFERENCE = "reference"
KERNELS = (KERNEL_INT, KERNEL_ARRAY, KERNEL_REFERENCE)

#: The process-default kernel: public entry points accept
#: ``kernel=None`` and fall back to this, so callers that never pass a
#: kernel (the polyhedron domain's hull/projection operations) follow
#: the analyzer's configured choice.  A :class:`ContextVar` keeps
#: concurrent analyses with different settings independent.
_DEFAULT_KERNEL = ContextVar("repro_fm_kernel", default=KERNEL_INT)


def default_kernel():
    """The kernel used when a call site does not name one."""
    return _DEFAULT_KERNEL.get()


@contextmanager
def use_kernel(kernel):
    """Scope the process-default FM kernel to a ``with`` block."""
    token = _DEFAULT_KERNEL.set(_validate_kernel(kernel))
    try:
        yield
    finally:
        _DEFAULT_KERNEL.reset(token)


def _validate_kernel(kernel):
    if kernel is None:
        return _DEFAULT_KERNEL.get()
    if kernel not in KERNELS:
        raise LinAlgError(
            "unknown FM kernel %r; choose one of %s"
            % (kernel, ", ".join(repr(k) for k in KERNELS))
        )
    return kernel


def eliminate(system, var, prune=True, kernel=None):
    """Eliminate *var* from *system*; the result has no occurrence of it.

    Returns a new :class:`ConstraintSystem` over the remaining
    variables whose solution set is exactly the projection.
    """
    kernel = _validate_kernel(kernel)
    relevant_eq = None
    for constraint in system:
        if constraint.is_equality() and var in constraint.variables():
            relevant_eq = constraint
            break

    if relevant_eq is not None:
        return _eliminate_by_substitution(system, var, relevant_eq)
    if kernel == KERNEL_REFERENCE:
        return _eliminate_by_combination(system, var, prune=prune)
    if kernel == KERNEL_ARRAY:
        from repro.linalg.array_kernel import (
            ArrayKernelUnavailable,
            eliminate_one_array,
        )

        try:
            return eliminate_one_array(system, var, prune=prune)
        except ArrayKernelUnavailable:
            pass  # machine arithmetic refused: exact path below
    return _kernel_combination(system, var, prune=prune)


def _kernel_combination(system, var, prune=True):
    """Row-kernel version of :func:`_eliminate_by_combination`."""
    workspace = RowKernel.from_system(system)
    j = workspace.index.get(var)
    if j is None:
        result = workspace.to_system()
        return prune_redundant(result) if prune else result
    workspace.eliminate(j, prune=prune)
    return workspace.to_system()


def _eliminate_by_substitution(system, var, equality):
    """Solve *equality* for *var* and substitute everywhere else."""
    coeff = equality.expr.coefficient(var)
    # var = -(rest)/coeff  where  expr = coeff*var + rest = 0
    rest = equality.expr - LinearExpr.of(var, coeff)
    replacement = rest * (Fraction(-1) / coeff)
    result = ConstraintSystem()
    for constraint in system:
        if constraint is equality:
            continue
        if var in constraint.variables():
            result.add(constraint.substitute({var: replacement}))
        else:
            result.add(constraint)
    return result


def _eliminate_by_combination(system, var, prune=True):
    """Classic FM: pair each positive occurrence with each negative."""
    positives = []
    negatives = []
    result = ConstraintSystem()
    for constraint in system.inequalities():
        coeff = constraint.expr.coefficient(var)
        if coeff > 0:
            positives.append(constraint)
        elif coeff < 0:
            negatives.append(constraint)
        else:
            result.add(constraint)
    for pos in positives:
        pos_coeff = pos.expr.coefficient(var)
        for neg in negatives:
            neg_coeff = neg.expr.coefficient(var)
            # pos.expr >= 0 has +a*var, neg.expr >= 0 has -b*var (a,b>0):
            # b*pos.expr + a*neg.expr >= 0 cancels var.
            combined = pos.expr * (-neg_coeff) + neg.expr * pos_coeff
            result.add(Constraint(combined, GE))
    if prune:
        result = prune_redundant(result)
    return result


def eliminate_all(system, variables, prune=True, lp_prune_threshold=None,
                  kernel=None):
    """Eliminate every variable in *variables*, cheapest-first.

    The next variable to eliminate is chosen greedily to minimize the
    number of new rows (|positives| * |negatives|), the standard FM
    heuristic.  Variables reachable through an equality are substituted
    away first (cost "-1"); once the first pairwise combination happens
    no equality survives, and the remaining eliminations run entirely
    inside the integer row kernel (under ``kernel="int"``).

    FM can square the row count at every step; *lp_prune_threshold*
    (when set) bounds the blow-up by running the exact LP-based
    redundancy removal whenever the intermediate system exceeds that
    many rows.  This is the practical move that keeps repeated convex
    hulls (inter-argument inference) tractable.
    """
    kernel = _validate_kernel(kernel)
    remaining = set(variables)
    current = system
    while remaining:
        costs = _elimination_costs(current, remaining)
        if not costs:
            break
        var = min(costs, key=lambda v: costs[v])
        if costs[var][0] >= 0 and kernel != KERNEL_REFERENCE:
            # No equality mentions any remaining variable: every step
            # from here on is pure combination — run them all in the
            # row kernel (or its vectorized array twin) and
            # materialize once.
            if kernel == KERNEL_ARRAY:
                from repro.linalg.array_kernel import (
                    ArrayKernelUnavailable,
                    eliminate_all_array,
                )

                try:
                    return eliminate_all_array(
                        current, remaining, prune, lp_prune_threshold
                    )
                except ArrayKernelUnavailable:
                    pass  # machine arithmetic refused: exact path below
            return _kernel_eliminate_all(
                current, remaining, prune, lp_prune_threshold
            )
        current = eliminate(current, var, prune=prune, kernel=kernel)
        if (
            lp_prune_threshold is not None
            and len(current) > lp_prune_threshold
        ):
            current = prune_redundant(current, use_lp=True)
        remaining.discard(var)
    return current


def _kernel_eliminate_all(system, remaining, prune, lp_prune_threshold):
    """Finish an all-combination elimination inside the row kernel."""
    workspace = RowKernel.from_system(system)
    indices = {
        workspace.index[var] for var in remaining
        if var in workspace.index
    }
    while indices:
        j = workspace.choose(indices)
        if j is None:
            break
        workspace.eliminate(j, prune=prune)
        indices.discard(j)
        if (
            lp_prune_threshold is not None
            and len(workspace) > lp_prune_threshold
        ):
            pruned = prune_redundant(workspace.to_system(), use_lp=True)
            workspace = RowKernel.from_system(pruned)
            # Re-intern: already-eliminated variables occur in no row,
            # so they simply drop out of the new index.
            indices = {
                workspace.index[var] for var in remaining
                if var in workspace.index
            }
    return workspace.to_system()


def _elimination_costs(system, remaining):
    """Greedy cost of every *remaining* variable present in *system*,
    computed in one pass over the rows (the per-candidate rescan this
    replaces was O(rows × vars) per elimination step).

    Returns ``{var: (cost, repr(var))}`` — ``cost`` is -1 when an
    equality mentions the variable (substitution is always cheapest),
    else |positives| × |negatives|.
    """
    counts = {}
    for constraint in system:
        is_equality = constraint.is_equality()
        expr = constraint.expr
        for var in constraint.variables():
            if var not in remaining:
                continue
            entry = counts.get(var)
            if entry is None:
                entry = counts[var] = [0, 0, False]
            if is_equality:
                entry[2] = True
            elif expr.coefficient(var) > 0:
                entry[0] += 1
            else:
                entry[1] += 1
    return {
        var: ((-1, repr(var)) if has_eq
              else (positives * negatives, repr(var)))
        for var, (positives, negatives, has_eq) in counts.items()
    }


def project_onto(system, keep, prune=True, lp_prune_threshold=None,
                 kernel=None):
    """Project the solution set onto the variables in *keep*."""
    keep = set(keep)
    to_eliminate = system.variables() - keep
    return eliminate_all(
        system, to_eliminate, prune=prune,
        lp_prune_threshold=lp_prune_threshold, kernel=kernel,
    )


def eliminate_all_tracked(
    system, variables, final_lp_prune=True, max_rows=600,
    kernel=None,
):
    """Projection by pure-inequality FM with Chernikov ancestor pruning.

    Equalities are split into inequality pairs; every row carries the
    set of *original* row indices it was combined from, and after ``k``
    eliminations any row whose ancestor set exceeds ``k + 1`` rows is
    redundant and dropped (Chernikov's rule).  This keeps the exact
    projection while bounding the classic FM blow-up, which makes the
    repeated convex hulls of inter-argument inference tractable.

    Raises :class:`FMBlowupError` once the intermediate row count
    passes *max_rows* — callers choose a sound over-approximation
    instead.  A final exact LP prune (small by then) yields a tidy
    result.
    """
    kernel = _validate_kernel(kernel)
    pre_pruned = False
    if kernel == KERNEL_ARRAY:
        from repro.linalg.array_kernel import (
            ArrayKernelUnavailable,
            tracked_project_array,
        )

        try:
            # The array path applies prune_redundant's cheap dominance
            # pass in array space, before row materialization — the
            # object-level cheap pass below would be an identity.
            result = tracked_project_array(
                system, variables, max_rows=max_rows, prune_final=True
            )
            pre_pruned = True
        except ArrayKernelUnavailable:
            # numpy missing or machine arithmetic refused: rerun the
            # whole projection on the exact integer path (both are
            # deterministic, so the output is the one the array path
            # would have produced).
            result = tracked_project(system, variables, max_rows=max_rows)
    elif kernel == KERNEL_INT:
        result = tracked_project(system, variables, max_rows=max_rows)
    else:
        result = _reference_tracked(system, variables, max_rows)
    # The exact LP prune is quadratic in rows x simplex cost; only tidy
    # results that are already small (the quadratic pass on a big
    # system would dominate everything else).
    if final_lp_prune and 1 < len(result) <= 60:
        result = (
            _prune_with_lp(result) if pre_pruned
            else prune_redundant(result, use_lp=True)
        )
    elif not pre_pruned:
        result = prune_redundant(result)
    return result


def _reference_tracked(system, variables, max_rows):
    """The object-pipeline tracked elimination (differential baseline)."""
    rows = []
    for index, constraint in enumerate(system.inequalities()):
        rows.append((constraint, frozenset((index,))))

    remaining = set(variables)
    eliminated = 0
    while remaining:
        present = set()
        for constraint, _ in rows:
            present |= constraint.variables() & remaining
        if not present:
            break
        var = min(
            present, key=lambda v: _tracked_cost(rows, v)
        )
        remaining.discard(var)
        eliminated += 1
        rows = _tracked_step(rows, var, eliminated)
        if max_rows is not None and len(rows) > max_rows:
            raise FMBlowupError(
                "tracked elimination exceeded %d rows" % max_rows
            )

    return ConstraintSystem(constraint for constraint, _ in rows)


def _tracked_cost(rows, var):
    positives = negatives = 0
    for constraint, _ in rows:
        coeff = constraint.expr.coefficient(var)
        if coeff > 0:
            positives += 1
        elif coeff < 0:
            negatives += 1
    return (positives * negatives, repr(var))


def _tracked_step(rows, var, eliminated):
    positives = []
    negatives = []
    kept = []
    for row in rows:
        coeff = row[0].expr.coefficient(var)
        if coeff > 0:
            positives.append(row)
        elif coeff < 0:
            negatives.append(row)
        else:
            kept.append(row)
    limit = eliminated + 1
    seen = {constraint for constraint, _ in kept}
    for pos, pos_history in positives:
        pos_coeff = pos.expr.coefficient(var)
        for neg, neg_history in negatives:
            history = pos_history | neg_history
            if len(history) > limit:
                continue  # Chernikov: provably redundant
            neg_coeff = neg.expr.coefficient(var)
            combined = Constraint(
                pos.expr * (-neg_coeff) + neg.expr * pos_coeff, GE
            )
            if combined.is_trivial() or combined in seen:
                continue
            seen.add(combined)
            kept.append((combined, history))
    return _dominance_filter(kept)


def _dominance_filter(rows):
    """Keep only the tightest row per linear part (cheap pruning)."""
    best = {}
    for constraint, history in rows:
        linear = constraint.expr - LinearExpr.constant(constraint.expr.const)
        current = best.get(linear)
        if current is None or constraint.expr.const < current[0].expr.const:
            best[linear] = (constraint, history)
    return list(best.values())


def prune_redundant(system, use_lp=False):
    """Remove redundant inequality rows.

    Always applies the cheap pairwise-dominance test: a row
    ``e + c1 >= 0`` is dropped when another row ``e + c0 >= 0`` with
    ``c0 <= c1`` exists (same linear part, weaker constant).  With
    ``use_lp=True``, additionally removes every inequality implied by
    the others (exact, via simplex) — quadratic in system size but
    yields an irredundant description.
    """
    by_linear_part = {}
    equalities = []
    for constraint in system:
        if constraint.is_equality():
            equalities.append(constraint)
            continue
        linear_part = constraint.expr - LinearExpr.constant(
            constraint.expr.const
        )
        key = linear_part
        best = by_linear_part.get(key)
        if best is None or constraint.expr.const < best.expr.const:
            by_linear_part[key] = constraint
    pruned = ConstraintSystem(equalities)
    pruned.extend(by_linear_part.values())

    if not use_lp:
        return pruned
    return _prune_with_lp(pruned)


def _prune_with_lp(system):
    """Drop every inequality entailed by the others — one pass.

    Rows are tentatively removed in order; a candidate is tested
    against the rows still alive (removed rows stay removed, rows
    already proven necessary are never rebuilt or re-tested), and the
    simplex sees a plain constraint list — no per-candidate
    :class:`ConstraintSystem` re-normalization.
    """
    from repro.linalg.simplex import entails

    rows = list(system)
    alive = [True] * len(rows)
    for position, candidate in enumerate(rows):
        if candidate.is_equality():
            continue
        alive[position] = False
        others = [
            row for index, row in enumerate(rows) if alive[index]
        ]
        if not entails(others, candidate):
            alive[position] = True
    return ConstraintSystem(
        row for index, row in enumerate(rows) if alive[index]
    )
