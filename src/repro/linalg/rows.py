"""Dense integer row kernel for Fourier–Motzkin elimination.

The object pipeline (:class:`~repro.linalg.linexpr.LinearExpr` /
:class:`~repro.linalg.constraints.Constraint`) pays dict arithmetic,
Fraction normalization, and a sorted ``items()`` pass *per combined
row* — for every positive×negative pair, before any pruning can reject
it.  This module runs the combination loops in machine-int arithmetic
instead:

- **interning** — the variables of one projection are sorted by
  ``repr`` (the tie-break order the object path uses everywhere) and
  mapped to dense indices once; a row is a plain tuple of integer
  coefficients plus an integer constant;
- **GCD normalization** — rows are divided by the gcd of all entries
  including the constant, exactly mirroring the canonical form of
  :class:`Constraint` (``>=`` rows keep their sign; ``=`` rows flip so
  the first nonzero coefficient — first in index order = first in
  ``repr`` order — is positive);
- **Chernikov ancestors** — history-tracked elimination keeps the set
  of original row indices as an int bitmask; ``int.bit_count`` replaces
  frozenset unions;
- **occurrence counters** — per-variable positive/negative occurrence
  counts are maintained incrementally as rows enter and leave the
  workspace, so greedy variable selection is O(vars) per step instead
  of a full rows×vars rescan.

Constraint objects are materialized only at the projection boundary
(:meth:`RowKernel.to_system`); every intermediate row lives and dies as
a tuple of ints.  The results are byte-identical to the object path —
same rows, same canonical form, same insertion order — which the
differential tests in ``tests/property/test_kernel_props.py`` enforce.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd

from repro.errors import FMBlowupError
from repro.linalg.constraints import Constraint, ConstraintSystem, EQ, GE
from repro.linalg.linexpr import LinearExpr
from repro.obs import METRICS

__all__ = [
    "RowKernel",
    "StagedEliminator",
    "FMBlowupError",
    "row_of_constraint",
    "constraint_of_row",
]


def intern_variables(system):
    """The system's variables in ``repr`` order — the dense index map."""
    return tuple(sorted(system.variables(), key=repr))


def row_of_constraint(constraint, variables):
    """``(coeffs, const)`` integer row of a canonical constraint.

    Constraints normalize to integer coefficients with gcd 1 on
    construction, so the Fractions here always have denominator 1.
    """
    expr = constraint.expr
    coeffs = tuple(int(expr.coefficient(var)) for var in variables)
    return coeffs, int(expr.const)


def constraint_of_row(row, variables, relation=GE):
    """Materialize one integer row back into a :class:`Constraint`.

    Kernel rows are gcd-normalized (and, for ``=``, sign-normalized)
    by construction, so the constructor's ``_canonical_scale`` pass
    would be a no-op — the trusted fast path skips it.
    """
    coeffs, const = row
    return Constraint._from_canonical(
        LinearExpr._from_canonical_integers(
            {var: c for var, c in zip(variables, coeffs) if c}, const
        ),
        relation,
    )


def normalize_row(coeffs, const):
    """Divide by the gcd of all entries (mirrors ``_canonical_scale``
    for ``>=`` rows); returns None for trivially-true rows."""
    divisor = abs(const)
    for c in coeffs:
        divisor = gcd(divisor, c)
    if divisor > 1:
        coeffs = tuple(c // divisor for c in coeffs)
        const = const // divisor
    if const >= 0 and not any(coeffs):
        return None  # trivial "c >= 0": the object path drops it on add
    return coeffs, const


class RowKernel:
    """A pure-inequality FM workspace over dense integer rows.

    ``histories`` (int bitmasks over original row indices) are carried
    only when *track* is set — the Chernikov-pruned projection of
    :func:`~repro.linalg.fourier_motzkin.eliminate_all_tracked`.
    """

    __slots__ = ("variables", "index", "reprs", "rows", "histories",
                 "pos", "neg")

    def __init__(self, variables, rows, histories=None):
        self.variables = tuple(variables)
        self.index = {var: i for i, var in enumerate(self.variables)}
        self.reprs = [repr(var) for var in self.variables]
        self.rows = rows
        self.histories = histories
        self.pos = [0] * len(self.variables)
        self.neg = [0] * len(self.variables)
        for coeffs, _ in rows:
            self._count(coeffs, 1)

    @classmethod
    def from_system(cls, system, track=False):
        """Intern *system* (equalities split into inequality pairs —
        exactly ``system.inequalities()`` — preserving row order)."""
        variables = intern_variables(system)
        rows = []
        histories = [] if track else None
        for position, constraint in enumerate(system.inequalities()):
            rows.append(row_of_constraint(constraint, variables))
            if track:
                histories.append(1 << position)
        return cls(variables, rows, histories)

    def __len__(self):
        return len(self.rows)

    def _count(self, coeffs, delta):
        pos = self.pos
        neg = self.neg
        for i, c in enumerate(coeffs):
            if c > 0:
                pos[i] += delta
            elif c < 0:
                neg[i] += delta

    # -- variable selection ----------------------------------------------------

    def choose(self, remaining):
        """The cheapest present variable index from *remaining*
        (min positives×negatives, ties by ``repr`` — the object
        path's greedy heuristic), or None when none is present."""
        best_key = None
        best_index = None
        for j in remaining:
            occurrences = self.pos[j] + self.neg[j]
            if not occurrences:
                continue
            key = (self.pos[j] * self.neg[j], self.reprs[j])
            if best_key is None or key < best_key:
                best_key = key
                best_index = j
        return best_index

    # -- elimination -----------------------------------------------------------

    def eliminate(self, j, chernikov_limit=None, prune=True):
        """Eliminate variable index *j* by pairwise combination.

        Mirrors ``_eliminate_by_combination`` + ``prune_redundant``
        (or ``_tracked_step`` + ``_dominance_filter`` when histories
        are tracked): positive rows pair with negative rows in row
        order, combined rows are gcd-normalized, trivial rows and
        duplicates are dropped, and with *prune* the tightest row per
        linear part survives (first-occurrence order).
        """
        track = self.histories is not None
        positives = []
        negatives = []
        kept = []
        kept_hist = [] if track else None
        seen = set()
        for position, row in enumerate(self.rows):
            coefficient = row[0][j]
            history = self.histories[position] if track else None
            if coefficient > 0:
                positives.append((row, history))
            elif coefficient < 0:
                negatives.append((row, history))
            elif track:
                # The tracked loop keeps duplicates (with their own
                # histories); the dominance filter collapses them.
                kept.append(row)
                kept_hist.append(history)
                seen.add(row)
            elif row in seen:
                # Untracked pass-through rows dedup on insertion, the
                # way ConstraintSystem.add does on the object path.
                self._count(row[0], -1)
            else:
                kept.append(row)
                seen.add(row)
        # Rows containing the variable leave the workspace.
        for row, _ in positives:
            self._count(row[0], -1)
        for row, _ in negatives:
            self._count(row[0], -1)
        width = range(len(self.variables))
        generated = 0
        chernikov_pruned = 0
        for (pcoeffs, pconst), phistory in positives:
            a = pcoeffs[j]
            for (ncoeffs, nconst), nhistory in negatives:
                if track:
                    history = phistory | nhistory
                    if history.bit_count() > chernikov_limit:
                        chernikov_pruned += 1
                        continue  # Chernikov: provably redundant
                b = -ncoeffs[j]
                combined = normalize_row(
                    tuple(b * pcoeffs[i] + a * ncoeffs[i] for i in width),
                    b * pconst + a * nconst,
                )
                if combined is None or combined in seen:
                    continue
                seen.add(combined)
                kept.append(combined)
                generated += 1
                self._count(combined[0], 1)
                if track:
                    kept_hist.append(history)

        if prune:
            before = len(kept)
            self._dominance(kept, kept_hist)
            dominance_pruned = before - len(self.rows)
        else:
            dominance_pruned = 0
            self.rows = kept
            self.histories = kept_hist
        if METRICS.enabled:
            METRICS.counter("fm.rows.generated").inc(generated)
            if chernikov_pruned:
                METRICS.counter("fm.rows.pruned.chernikov").inc(
                    chernikov_pruned
                )
            if dominance_pruned:
                METRICS.counter("fm.rows.pruned.dominance").inc(
                    dominance_pruned
                )

    def _dominance(self, rows, histories):
        """Keep the tightest row per linear part (first-occurrence
        order, smallest constant wins) and update the counters for
        every row dropped."""
        best = {}
        for position, (coeffs, const) in enumerate(rows):
            current = best.get(coeffs)
            if current is None:
                best[coeffs] = position
            elif const < rows[current][1]:
                self._count(coeffs, -1)
                best[coeffs] = position
            else:
                self._count(coeffs, -1)
        self.rows = [rows[p] for p in best.values()]
        if histories is not None:
            self.histories = [histories[p] for p in best.values()]
        else:
            self.histories = None

    # -- boundary --------------------------------------------------------------

    def to_system(self):
        """Materialize the surviving rows, in order, as canonical
        ``>=`` constraints."""
        return ConstraintSystem(
            constraint_of_row(row, self.variables) for row in self.rows
        )


def tracked_project(system, variables, max_rows=600):
    """Kernel implementation of the Chernikov-pruned projection.

    Byte-identical to the reference ``eliminate_all_tracked`` loop
    (before its final redundancy prune, which the caller applies at the
    object boundary).  Raises :class:`FMBlowupError` when the
    intermediate row count passes *max_rows*.
    """
    kernel = RowKernel.from_system(system, track=True)
    remaining = {
        kernel.index[var] for var in variables if var in kernel.index
    }
    eliminated = 0
    while remaining:
        j = kernel.choose(remaining)
        if j is None:
            break
        remaining.discard(j)
        eliminated += 1
        kernel.eliminate(j, chernikov_limit=eliminated + 1)
        if max_rows is not None and len(kernel) > max_rows:
            raise FMBlowupError(
                "tracked elimination exceeded %d rows" % max_rows
            )
    return kernel.to_system()


class StagedEliminator:
    """Kernel-native staged elimination for the ``fm`` backend.

    Eliminates every variable in ``repr`` order, keeping one row
    snapshot per stage so a witness can be recovered by reverse
    back-substitution.  Rows carry a relation flag (``=`` rows use
    integer Gaussian substitution, mirroring the object path's
    ``_eliminate_by_substitution``); a combination stage first splits
    the remaining equalities into inequality pairs, exactly as
    ``system.inequalities()`` does.
    """

    __slots__ = ("variables", "stages")

    def __init__(self, system):
        self.variables = intern_variables(system)
        rows = []
        for constraint in system:
            coeffs, const = row_of_constraint(constraint, self.variables)
            rows.append((constraint.is_equality(), coeffs, const))
        self.stages = [rows]

    def run(self, prune=True):
        """Eliminate every variable; returns the final row list."""
        for j in range(len(self.variables)):
            self.stages.append(self._stage(self.stages[-1], j, prune))
        return self.stages[-1]

    def _stage(self, rows, j, prune):
        for position, (is_eq, coeffs, _) in enumerate(rows):
            if is_eq and coeffs[j]:
                return self._substitute(rows, j, position)
        return self._combine(rows, j, prune)

    def _substitute(self, rows, j, eq_position):
        """Gaussian substitution in integers: with the equality row
        ``e`` solving for the variable, each row ``r`` with coefficient
        ``d`` becomes ``|c|*r - d*sign(c)*e`` — a positive multiple of
        the exact-fraction substitution, so gcd normalization reaches
        the same canonical form."""
        _, ecoeffs, econst = rows[eq_position]
        c = ecoeffs[j]
        m = abs(c)
        s = 1 if c > 0 else -1
        width = range(len(self.variables))
        result = []
        seen = set()
        for position, (is_eq, coeffs, const) in enumerate(rows):
            if position == eq_position:
                continue
            d = coeffs[j]
            if d:
                ds = d * s
                row = self._canonical(
                    is_eq,
                    tuple(m * coeffs[i] - ds * ecoeffs[i] for i in width),
                    m * const - ds * econst,
                )
                if row is None:
                    continue
                is_eq, coeffs, const = row
            key = (is_eq, coeffs, const)
            if key in seen:
                continue
            seen.add(key)
            result.append(key)
        return result

    def _combine(self, rows, j, prune):
        """Pairwise combination over the inequality splits of *rows*."""
        split = []
        for is_eq, coeffs, const in rows:
            if is_eq:
                split.append((coeffs, const))
                split.append((tuple(-c for c in coeffs), -const))
            else:
                split.append((coeffs, const))
        positives = []
        negatives = []
        kept = []
        seen = set()
        for coeffs, const in split:
            c = coeffs[j]
            if c > 0:
                positives.append((coeffs, const))
            elif c < 0:
                negatives.append((coeffs, const))
            elif (coeffs, const) not in seen:
                seen.add((coeffs, const))
                kept.append((coeffs, const))
        width = range(len(self.variables))
        generated = 0
        for pcoeffs, pconst in positives:
            a = pcoeffs[j]
            for ncoeffs, nconst in negatives:
                b = -ncoeffs[j]
                combined = normalize_row(
                    tuple(b * pcoeffs[i] + a * ncoeffs[i] for i in width),
                    b * pconst + a * nconst,
                )
                if combined is None or combined in seen:
                    continue
                seen.add(combined)
                kept.append(combined)
                generated += 1
        dominance_pruned = 0
        if prune:
            best = {}
            for position, (coeffs, const) in enumerate(kept):
                current = best.get(coeffs)
                if current is None or const < kept[current][1]:
                    best[coeffs] = position
            dominance_pruned = len(kept) - len(best)
            kept = [kept[p] for p in best.values()]
        if METRICS.enabled:
            METRICS.counter("fm.rows.generated").inc(generated)
            if dominance_pruned:
                METRICS.counter("fm.rows.pruned.dominance").inc(
                    dominance_pruned
                )
        return [(False, coeffs, const) for coeffs, const in kept]

    def _canonical(self, is_eq, coeffs, const):
        """GCD-normalize; sign-normalize ``=`` rows by their first
        nonzero coefficient (index order = ``repr`` order, matching
        ``_canonical_scale``); drop trivial rows."""
        divisor = abs(const)
        for c in coeffs:
            divisor = gcd(divisor, c)
        if divisor > 1:
            coeffs = tuple(c // divisor for c in coeffs)
            const = const // divisor
        leading = next((c for c in coeffs if c), None)
        if is_eq:
            if leading is None:
                if const == 0:
                    return None  # trivial "0 = 0"
                if const < 0:
                    const = -const  # sign-normalized contradiction row
            elif leading < 0:
                coeffs = tuple(-c for c in coeffs)
                const = -const
        elif leading is None and const >= 0:
            return None  # trivial "c >= 0"
        return is_eq, coeffs, const

    # -- verdict and witness ---------------------------------------------------

    def has_contradiction(self):
        """A constant-false row in the fully eliminated system?"""
        for is_eq, coeffs, const in self.stages[-1]:
            if any(coeffs):
                continue
            if is_eq:
                if const != 0:
                    return True
            elif const < 0:
                return True
        return False

    def witness(self):
        """A satisfying assignment, recovered in reverse elimination
        order — each variable within the interval its stage allows."""
        point = [None] * len(self.variables)
        for j in range(len(self.variables) - 1, -1, -1):
            point[j] = self._pick_value(self.stages[j], j, point)
        return {
            var: value for var, value in zip(self.variables, point)
        }

    def _pick_value(self, rows, j, point):
        lower = None
        upper = None
        for is_eq, coeffs, const in rows:
            c = coeffs[j]
            if c == 0:
                continue
            rest = Fraction(const)
            for i, coefficient in enumerate(coeffs):
                if coefficient and i != j:
                    rest += coefficient * point[i]
            bound = -rest / c
            if is_eq:
                return bound
            if c > 0:
                lower = bound if lower is None else max(lower, bound)
            else:
                upper = bound if upper is None else min(upper, bound)
        if lower is not None and upper is not None:
            return (lower + upper) / 2
        if lower is not None:
            return lower
        if upper is not None:
            return upper
        return Fraction(0)
