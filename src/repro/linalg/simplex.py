"""Exact two-phase simplex over rationals, with dual values.

The paper's decision procedure rests on LP duality (Section 4).  The
analyzer constructs the dual *symbolically* and reduces it with
Fourier–Motzkin, but we also need a numeric LP solver for

- feasibility of the final lambda constraint systems (cross-check path),
- independent verification of termination certificates via the *primal*
  problem Eq. 4 ("minimize lambda^T x - lambda^T y subject to Eq. 1"),
- polyhedron emptiness / entailment in inter-argument inference,
- exact LP-based redundancy pruning (ablation).

Everything is :class:`fractions.Fraction` arithmetic with Bland's rule,
so the solver is exact and cannot cycle.

Conventions
-----------
Variables are free unless listed in ``nonnegative`` (pass the string
``"all"`` to make every variable nonnegative).  Constraints come from
:mod:`repro.linalg.constraints` (``expr >= 0`` / ``expr = 0`` form).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.errors import InfeasibleError, UnboundedError
from repro.linalg.constraints import Constraint, ConstraintSystem
from repro.linalg.linexpr import LinearExpr
from repro.obs import METRICS

OPTIMAL = "optimal"
INFEASIBLE = "infeasible"
UNBOUNDED = "unbounded"


@dataclass
class LPResult:
    """Outcome of an LP solve.

    ``assignment`` maps every original variable to its optimal value;
    ``duals`` maps constraint index (position in the input system) to
    the dual multiplier of that row, in the convention of the row as
    written (``expr >= 0`` / ``expr = 0``).  ``pivots`` counts the
    tableau pivots performed across both phases (solver-cost telemetry
    for the backend layer).
    """

    status: str
    value: Fraction = None
    assignment: dict = None
    duals: dict = None
    pivots: int = 0

    @property
    def is_optimal(self):
        """True when the solve reached an optimum."""
        return self.status == OPTIMAL


def solve_lp(objective, constraints, sense="min", nonnegative=()):
    """Optimize *objective* subject to *constraints*.

    Parameters
    ----------
    objective:
        A :class:`LinearExpr` (its constant shifts the optimum value).
    constraints:
        A :class:`ConstraintSystem` or iterable of :class:`Constraint`.
    sense:
        ``"min"`` or ``"max"``.
    nonnegative:
        Iterable of variable names constrained to be >= 0, or the
        string ``"all"``.
    """
    if isinstance(constraints, ConstraintSystem):
        rows = list(constraints)
    else:
        rows = list(constraints)
    if sense not in ("min", "max"):
        raise ValueError("sense must be 'min' or 'max'")

    problem = _StandardForm(objective, rows, sense, nonnegative)
    result = problem.solve()
    if METRICS.enabled:
        METRICS.counter("simplex.solves").inc()
        METRICS.counter("simplex.pivots").inc(result.pivots)
        METRICS.histogram("simplex.pivots.per_solve").observe(result.pivots)
    return result


def is_feasible(constraints, nonnegative=()):
    """True if the constraint system has a solution."""
    result = solve_lp(
        LinearExpr.constant(0), constraints, nonnegative=nonnegative
    )
    return result.status == OPTIMAL


def feasible_point(constraints, nonnegative=()):
    """A satisfying assignment, or None if infeasible."""
    result = solve_lp(
        LinearExpr.constant(0), constraints, nonnegative=nonnegative
    )
    return result.assignment if result.status == OPTIMAL else None


def minimum(objective, constraints, nonnegative=()):
    """Exact minimum of *objective*, raising on infeasible/unbounded."""
    result = solve_lp(objective, constraints, nonnegative=nonnegative)
    if result.status == INFEASIBLE:
        raise InfeasibleError("constraints are infeasible")
    if result.status == UNBOUNDED:
        raise UnboundedError("objective is unbounded below")
    return result.value


def entails(constraints, candidate, nonnegative=()):
    """Does *constraints* imply *candidate* (a Constraint)?

    ``expr >= 0`` is entailed iff the minimum of ``expr`` over the
    system is >= 0 (an infeasible system entails everything).  An
    equality is entailed iff both defining inequalities are.
    """
    if candidate.is_equality():
        lower, upper = candidate.as_inequalities()
        return entails(constraints, lower, nonnegative) and entails(
            constraints, upper, nonnegative
        )
    result = solve_lp(candidate.expr, constraints, nonnegative=nonnegative)
    if result.status == INFEASIBLE:
        return True
    if result.status == UNBOUNDED:
        return False
    return result.value >= 0


class _StandardForm:
    """Builds the tableau and runs the two phases."""

    def __init__(self, objective, rows, sense, nonnegative):
        self._objective = objective
        self._rows = rows
        self._sense = sense
        self._variables = self._collect_variables()
        if nonnegative == "all":
            self._nonnegative = set(self._variables)
        else:
            self._nonnegative = set(nonnegative)

        # Column layout: for each variable either one column (nonneg)
        # or a +/- pair (free); then one slack per inequality; then one
        # artificial per row.
        self._columns = []          # (kind, payload) descriptors
        self._var_columns = {}      # var -> (plus_index, minus_index|None)
        for var in self._variables:
            if var in self._nonnegative:
                self._var_columns[var] = (len(self._columns), None)
                self._columns.append(("var+", var))
            else:
                plus = len(self._columns)
                self._columns.append(("var+", var))
                minus = len(self._columns)
                self._columns.append(("var-", var))
                self._var_columns[var] = (plus, minus)

        self._build_matrix()

    def _collect_variables(self):
        names = set(self._objective.variables())
        for row in self._rows:
            names |= row.variables()
        return sorted(names, key=repr)

    def _build_matrix(self):
        num_structural = len(self._columns)
        slack_of_row = {}
        for i, row in enumerate(self._rows):
            if not row.is_equality():
                slack_of_row[i] = num_structural
                self._columns.append(("slack", i))
                num_structural += 1
        self._artificial_of_row = {}
        for i in range(len(self._rows)):
            self._artificial_of_row[i] = num_structural
            self._columns.append(("artificial", i))
            num_structural += 1
        self._num_columns = num_structural

        matrix = []
        rhs = []
        basis = []
        self._row_sign = []
        for i, row in enumerate(self._rows):
            # Row as written: linear . x  (relation)  -const
            coeffs = [Fraction(0)] * self._num_columns
            for var, coeff in row.expr.items():
                plus, minus = self._var_columns[var]
                coeffs[plus] += coeff
                if minus is not None:
                    coeffs[minus] -= coeff
            right = -row.expr.const
            if i in slack_of_row:
                # linear . x - s = -const  with s >= 0
                coeffs[slack_of_row[i]] = Fraction(-1)
            sign = 1
            if right < 0:
                coeffs = [-c for c in coeffs]
                right = -right
                sign = -1
            coeffs[self._artificial_of_row[i]] = Fraction(1)
            matrix.append(coeffs)
            rhs.append(right)
            self._row_sign.append(sign)
            # When the (sign-normalized) slack enters with +1 it can
            # serve as the initial basic variable — the artificial then
            # starts nonbasic at 0 and phase 1 has nothing to do for
            # this row.  Its column is still built so dual extraction
            # can read B^-1 from it.
            if i in slack_of_row and coeffs[slack_of_row[i]] == 1:
                basis.append(slack_of_row[i])
            else:
                basis.append(self._artificial_of_row[i])
        self._matrix = matrix
        self._rhs = rhs
        self._basis = basis
        self._pivots = 0

    # -- cost vectors -------------------------------------------------------------

    def _phase1_costs(self):
        costs = [Fraction(0)] * self._num_columns
        for column in self._artificial_of_row.values():
            costs[column] = Fraction(1)
        return costs

    def _phase2_costs(self):
        costs = [Fraction(0)] * self._num_columns
        factor = Fraction(1) if self._sense == "min" else Fraction(-1)
        for var, coeff in self._objective.items():
            plus, minus = self._var_columns[var]
            costs[plus] += factor * coeff
            if minus is not None:
                costs[minus] -= factor * coeff
        return costs

    # -- simplex machinery -----------------------------------------------------------

    def _reduced_costs(self, costs):
        reduced = list(costs)
        for r, basic_column in enumerate(self._basis):
            basic_cost = costs[basic_column]
            if basic_cost == 0:
                continue
            for j, value in enumerate(self._matrix[r]):
                if value:
                    reduced[j] -= basic_cost * value
        return reduced

    def _objective_value(self, costs):
        return sum(
            costs[self._basis[r]] * self._rhs[r]
            for r in range(len(self._rhs))
        )

    def _pivot(self, pivot_row, pivot_column):
        matrix, rhs = self._matrix, self._rhs
        pivot_value = matrix[pivot_row][pivot_column]
        inverse = Fraction(1) / pivot_value
        matrix[pivot_row] = [c * inverse for c in matrix[pivot_row]]
        rhs[pivot_row] *= inverse
        pivot_row_values = matrix[pivot_row]
        # Only the pivot row's nonzero columns change in other rows —
        # exploiting that sparsity is the difference between usable and
        # unusable on the redundancy-pruning workload.
        touched = [
            j for j, value in enumerate(pivot_row_values) if value
        ]
        for r in range(len(matrix)):
            if r == pivot_row:
                continue
            factor = matrix[r][pivot_column]
            if factor == 0:
                continue
            row = matrix[r]
            for j in touched:
                row[j] -= factor * pivot_row_values[j]
            rhs[r] -= factor * rhs[pivot_row]
        self._basis[pivot_row] = pivot_column
        self._pivots += 1

    def _run_simplex(self, costs, allow_artificial):
        """Bland's rule loop; returns 'optimal' or 'unbounded'."""
        artificial_columns = set(self._artificial_of_row.values())
        while True:
            reduced = self._reduced_costs(costs)
            entering = None
            for j in range(self._num_columns):
                if not allow_artificial and j in artificial_columns:
                    continue
                if reduced[j] < 0:
                    entering = j
                    break
            if entering is None:
                return OPTIMAL
            leaving = None
            best_ratio = None
            for r in range(len(self._matrix)):
                coefficient = self._matrix[r][entering]
                if coefficient > 0:
                    ratio = self._rhs[r] / coefficient
                    if (
                        best_ratio is None
                        or ratio < best_ratio
                        or (
                            ratio == best_ratio
                            and self._basis[r] < self._basis[leaving]
                        )
                    ):
                        best_ratio = ratio
                        leaving = r
            if leaving is None:
                return UNBOUNDED
            self._pivot(leaving, entering)

    def _drive_out_artificials(self):
        """After phase 1, pivot artificials out of the basis when
        possible; rows where it is impossible are redundant (all-zero)."""
        artificial_columns = set(self._artificial_of_row.values())
        for r in range(len(self._matrix)):
            if self._basis[r] not in artificial_columns:
                continue
            pivot_column = None
            for j in range(self._num_columns):
                if j in artificial_columns:
                    continue
                if self._matrix[r][j] != 0:
                    pivot_column = j
                    break
            if pivot_column is not None:
                self._pivot(r, pivot_column)

    # -- solve -------------------------------------------------------------------------

    def solve(self):
        """Run phase 1 and phase 2; return an LPResult."""
        phase1_costs = self._phase1_costs()
        status = self._run_simplex(phase1_costs, allow_artificial=True)
        if status != OPTIMAL or self._objective_value(phase1_costs) > 0:
            return LPResult(status=INFEASIBLE, pivots=self._pivots)
        self._drive_out_artificials()

        phase2_costs = self._phase2_costs()
        status = self._run_simplex(phase2_costs, allow_artificial=False)
        if status == UNBOUNDED:
            return LPResult(status=UNBOUNDED, pivots=self._pivots)

        assignment = self._extract_assignment()
        value = self._objective.evaluate(assignment)
        duals = self._extract_duals(phase2_costs)
        return LPResult(
            status=OPTIMAL, value=value, assignment=assignment, duals=duals,
            pivots=self._pivots,
        )

    def _extract_assignment(self):
        column_values = [Fraction(0)] * self._num_columns
        for r, column in enumerate(self._basis):
            column_values[column] = self._rhs[r]
        assignment = {}
        for var in self._variables:
            plus, minus = self._var_columns[var]
            value = column_values[plus]
            if minus is not None:
                value -= column_values[minus]
            assignment[var] = value
        return assignment

    def _extract_duals(self, costs):
        """y_i = c_B . (B^-1 e_i), read from the artificial columns.

        Adjusted for row sign normalization and for sense=max (where the
        tableau optimizes the negated objective).
        """
        duals = {}
        factor = Fraction(1) if self._sense == "min" else Fraction(-1)
        for i, column in self._artificial_of_row.items():
            y = sum(
                costs[self._basis[r]] * self._matrix[r][column]
                for r in range(len(self._matrix))
            )
            duals[i] = factor * self._row_sign[i] * y
        return duals
