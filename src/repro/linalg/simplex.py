"""Exact two-phase simplex over rationals, with dual values.

The paper's decision procedure rests on LP duality (Section 4).  The
analyzer constructs the dual *symbolically* and reduces it with
Fourier–Motzkin, but we also need a numeric LP solver for

- feasibility of the final lambda constraint systems (cross-check path),
- independent verification of termination certificates via the *primal*
  problem Eq. 4 ("minimize lambda^T x - lambda^T y subject to Eq. 1"),
- polyhedron emptiness / entailment in inter-argument inference,
- exact LP-based redundancy pruning (ablation).

Everything is :class:`fractions.Fraction` arithmetic with Bland's rule,
so the solver is exact and cannot cycle.

Conventions
-----------
Variables are free unless listed in ``nonnegative`` (pass the string
``"all"`` to make every variable nonnegative).  Constraints come from
:mod:`repro.linalg.constraints` (``expr >= 0`` / ``expr = 0`` form).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import gcd

from repro.errors import InfeasibleError, UnboundedError
from repro.linalg.constraints import Constraint, ConstraintSystem
from repro.linalg.linexpr import LinearExpr
from repro.obs import METRICS

OPTIMAL = "optimal"
INFEASIBLE = "infeasible"
UNBOUNDED = "unbounded"


@dataclass
class LPResult:
    """Outcome of an LP solve.

    ``assignment`` maps every original variable to its optimal value;
    ``duals`` maps constraint index (position in the input system) to
    the dual multiplier of that row, in the convention of the row as
    written (``expr >= 0`` / ``expr = 0``).  ``pivots`` counts the
    tableau pivots performed across both phases (solver-cost telemetry
    for the backend layer).
    """

    status: str
    value: Fraction = None
    assignment: dict = None
    duals: dict = None
    pivots: int = 0

    @property
    def is_optimal(self):
        """True when the solve reached an optimum."""
        return self.status == OPTIMAL


def _make_tableau(objective, rows, sense, nonnegative, kernel=None):
    """The tableau implementation the resolved kernel selects.

    ``kernel="array"`` uses the fraction-free int64 numpy tableau with
    whole-matrix pivot updates when numpy is importable; otherwise
    (and for ``"int"``/``"reference"``) the Fraction list-of-lists
    tableau runs.  The pivot sequence — and therefore every verdict,
    witness, and dual — is identical either way: Bland's selections
    are reproduced exactly from integer signs and cross-multiplied
    ratio tests.
    """
    from repro.linalg.fourier_motzkin import KERNEL_ARRAY, _validate_kernel

    if _validate_kernel(kernel) == KERNEL_ARRAY:
        from repro.linalg.array_kernel import (
            ArrayKernelUnavailable,
            numpy_available,
        )

        if numpy_available():
            try:
                return _ArrayStandardForm(
                    objective, rows, sense, nonnegative
                )
            except ArrayKernelUnavailable:
                pass  # counted by the raiser; run the Fraction tableau
        elif METRICS.enabled:
            METRICS.counter("simplex.array.fallbacks.unavailable").inc()
    return _StandardForm(objective, rows, sense, nonnegative)


def solve_lp(objective, constraints, sense="min", nonnegative=(),
             kernel=None):
    """Optimize *objective* subject to *constraints*.

    Parameters
    ----------
    objective:
        A :class:`LinearExpr` (its constant shifts the optimum value).
    constraints:
        A :class:`ConstraintSystem` or iterable of :class:`Constraint`.
    sense:
        ``"min"`` or ``"max"``.
    nonnegative:
        Iterable of variable names constrained to be >= 0, or the
        string ``"all"``.
    kernel:
        ``None`` (follow the process default), ``"int"``,
        ``"reference"``, or ``"array"`` (numpy tableau, exact).
    """
    if isinstance(constraints, ConstraintSystem):
        rows = list(constraints)
    else:
        rows = list(constraints)
    if sense not in ("min", "max"):
        raise ValueError("sense must be 'min' or 'max'")

    problem = _make_tableau(objective, rows, sense, nonnegative, kernel)
    result = problem.solve()
    if METRICS.enabled:
        METRICS.counter("simplex.solves").inc()
        METRICS.counter("simplex.pivots").inc(result.pivots)
        METRICS.histogram("simplex.pivots.per_solve").observe(result.pivots)
    return result


def is_feasible(constraints, nonnegative=()):
    """True if the constraint system has a solution."""
    result = solve_lp(
        LinearExpr.constant(0), constraints, nonnegative=nonnegative
    )
    return result.status == OPTIMAL


def feasible_point(constraints, nonnegative=()):
    """A satisfying assignment, or None if infeasible."""
    result = solve_lp(
        LinearExpr.constant(0), constraints, nonnegative=nonnegative
    )
    return result.assignment if result.status == OPTIMAL else None


def minimum(objective, constraints, nonnegative=()):
    """Exact minimum of *objective*, raising on infeasible/unbounded."""
    result = solve_lp(objective, constraints, nonnegative=nonnegative)
    if result.status == INFEASIBLE:
        raise InfeasibleError("constraints are infeasible")
    if result.status == UNBOUNDED:
        raise UnboundedError("objective is unbounded below")
    return result.value


def entails(constraints, candidate, nonnegative=()):
    """Does *constraints* imply *candidate* (a Constraint)?

    ``expr >= 0`` is entailed iff the minimum of ``expr`` over the
    system is >= 0 (an infeasible system entails everything).  An
    equality is entailed iff both defining inequalities are.
    """
    if candidate.is_equality():
        lower, upper = candidate.as_inequalities()
        return entails(constraints, lower, nonnegative) and entails(
            constraints, upper, nonnegative
        )
    result = solve_lp(candidate.expr, constraints, nonnegative=nonnegative)
    if result.status == INFEASIBLE:
        return True
    if result.status == UNBOUNDED:
        return False
    return result.value >= 0


class _StandardForm:
    """Builds the tableau and runs the two phases."""

    def __init__(self, objective, rows, sense, nonnegative):
        self._objective = objective
        self._rows = rows
        self._sense = sense
        self._variables = self._collect_variables()
        if nonnegative == "all":
            self._nonnegative = set(self._variables)
        else:
            self._nonnegative = set(nonnegative)

        # Column layout: for each variable either one column (nonneg)
        # or a +/- pair (free); then one slack per inequality; then one
        # artificial per row.
        self._columns = []          # (kind, payload) descriptors
        self._var_columns = {}      # var -> (plus_index, minus_index|None)
        for var in self._variables:
            if var in self._nonnegative:
                self._var_columns[var] = (len(self._columns), None)
                self._columns.append(("var+", var))
            else:
                plus = len(self._columns)
                self._columns.append(("var+", var))
                minus = len(self._columns)
                self._columns.append(("var-", var))
                self._var_columns[var] = (plus, minus)

        self._build_matrix()

    def _collect_variables(self):
        names = set(self._objective.variables())
        for row in self._rows:
            names |= row.variables()
        return sorted(names, key=repr)

    def _build_matrix(self):
        num_structural = len(self._columns)
        slack_of_row = {}
        for i, row in enumerate(self._rows):
            if not row.is_equality():
                slack_of_row[i] = num_structural
                self._columns.append(("slack", i))
                num_structural += 1
        self._artificial_of_row = {}
        for i in range(len(self._rows)):
            self._artificial_of_row[i] = num_structural
            self._columns.append(("artificial", i))
            num_structural += 1
        self._num_columns = num_structural

        matrix = []
        rhs = []
        basis = []
        self._row_sign = []
        for i, row in enumerate(self._rows):
            # Row as written: linear . x  (relation)  -const
            coeffs = [Fraction(0)] * self._num_columns
            for var, coeff in row.expr.items():
                plus, minus = self._var_columns[var]
                coeffs[plus] += coeff
                if minus is not None:
                    coeffs[minus] -= coeff
            right = -row.expr.const
            if i in slack_of_row:
                # linear . x - s = -const  with s >= 0
                coeffs[slack_of_row[i]] = Fraction(-1)
            sign = 1
            if right < 0:
                coeffs = [-c for c in coeffs]
                right = -right
                sign = -1
            coeffs[self._artificial_of_row[i]] = Fraction(1)
            matrix.append(coeffs)
            rhs.append(right)
            self._row_sign.append(sign)
            # When the (sign-normalized) slack enters with +1 it can
            # serve as the initial basic variable — the artificial then
            # starts nonbasic at 0 and phase 1 has nothing to do for
            # this row.  Its column is still built so dual extraction
            # can read B^-1 from it.
            if i in slack_of_row and coeffs[slack_of_row[i]] == 1:
                basis.append(slack_of_row[i])
            else:
                basis.append(self._artificial_of_row[i])
        self._matrix = matrix
        self._rhs = rhs
        self._basis = basis
        self._pivots = 0

    # -- cost vectors -------------------------------------------------------------

    def _phase1_costs(self):
        costs = [Fraction(0)] * self._num_columns
        for column in self._artificial_of_row.values():
            costs[column] = Fraction(1)
        return costs

    def _phase2_costs(self):
        costs = [Fraction(0)] * self._num_columns
        factor = Fraction(1) if self._sense == "min" else Fraction(-1)
        for var, coeff in self._objective.items():
            plus, minus = self._var_columns[var]
            costs[plus] += factor * coeff
            if minus is not None:
                costs[minus] -= factor * coeff
        return costs

    # -- simplex machinery -----------------------------------------------------------

    def _reduced_costs(self, costs):
        reduced = list(costs)
        for r, basic_column in enumerate(self._basis):
            basic_cost = costs[basic_column]
            if basic_cost == 0:
                continue
            for j, value in enumerate(self._matrix[r]):
                if value:
                    reduced[j] -= basic_cost * value
        return reduced

    def _objective_value(self, costs):
        return sum(
            costs[self._basis[r]] * self._rhs[r]
            for r in range(len(self._rhs))
        )

    def _pivot(self, pivot_row, pivot_column):
        matrix, rhs = self._matrix, self._rhs
        pivot_value = matrix[pivot_row][pivot_column]
        inverse = Fraction(1) / pivot_value
        matrix[pivot_row] = [c * inverse for c in matrix[pivot_row]]
        rhs[pivot_row] *= inverse
        pivot_row_values = matrix[pivot_row]
        # Only the pivot row's nonzero columns change in other rows —
        # exploiting that sparsity is the difference between usable and
        # unusable on the redundancy-pruning workload.
        touched = [
            j for j, value in enumerate(pivot_row_values) if value
        ]
        for r in range(len(matrix)):
            if r == pivot_row:
                continue
            factor = matrix[r][pivot_column]
            if factor == 0:
                continue
            row = matrix[r]
            for j in touched:
                row[j] -= factor * pivot_row_values[j]
            rhs[r] -= factor * rhs[pivot_row]
        self._basis[pivot_row] = pivot_column
        self._pivots += 1

    def _run_simplex(self, costs, allow_artificial):
        """Bland's rule loop; returns 'optimal' or 'unbounded'."""
        artificial_columns = set(self._artificial_of_row.values())
        while True:
            reduced = self._reduced_costs(costs)
            entering = None
            for j in range(self._num_columns):
                if not allow_artificial and j in artificial_columns:
                    continue
                if reduced[j] < 0:
                    entering = j
                    break
            if entering is None:
                return OPTIMAL
            leaving = None
            best_ratio = None
            for r in range(len(self._matrix)):
                coefficient = self._matrix[r][entering]
                if coefficient > 0:
                    ratio = self._rhs[r] / coefficient
                    if (
                        best_ratio is None
                        or ratio < best_ratio
                        or (
                            ratio == best_ratio
                            and self._basis[r] < self._basis[leaving]
                        )
                    ):
                        best_ratio = ratio
                        leaving = r
            if leaving is None:
                return UNBOUNDED
            self._pivot(leaving, entering)

    def _drive_out_artificials(self):
        """After phase 1, pivot artificials out of the basis when
        possible; rows where it is impossible are redundant (all-zero)."""
        artificial_columns = set(self._artificial_of_row.values())
        for r in range(len(self._matrix)):
            if self._basis[r] not in artificial_columns:
                continue
            pivot_column = None
            for j in range(self._num_columns):
                if j in artificial_columns:
                    continue
                if self._matrix[r][j] != 0:
                    pivot_column = j
                    break
            if pivot_column is not None:
                self._pivot(r, pivot_column)

    # -- solve -------------------------------------------------------------------------

    def solve(self):
        """Run phase 1 and phase 2; return an LPResult."""
        phase1_costs = self._phase1_costs()
        status = self._run_simplex(phase1_costs, allow_artificial=True)
        if status != OPTIMAL or self._objective_value(phase1_costs) > 0:
            return LPResult(status=INFEASIBLE, pivots=self._pivots)
        self._drive_out_artificials()

        phase2_costs = self._phase2_costs()
        status = self._run_simplex(phase2_costs, allow_artificial=False)
        if status == UNBOUNDED:
            return LPResult(status=UNBOUNDED, pivots=self._pivots)

        assignment = self._extract_assignment()
        value = self._objective.evaluate(assignment)
        duals = self._extract_duals(phase2_costs)
        return LPResult(
            status=OPTIMAL, value=value, assignment=assignment, duals=duals,
            pivots=self._pivots,
        )

    def _extract_assignment(self):
        column_values = [Fraction(0)] * self._num_columns
        for r, column in enumerate(self._basis):
            column_values[column] = self._rhs[r]
        assignment = {}
        for var in self._variables:
            plus, minus = self._var_columns[var]
            value = column_values[plus]
            if minus is not None:
                value -= column_values[minus]
            assignment[var] = value
        return assignment

    def _extract_duals(self, costs):
        """y_i = c_B . (B^-1 e_i), read from the artificial columns.

        Adjusted for row sign normalization and for sense=max (where the
        tableau optimizes the negated objective).
        """
        duals = {}
        factor = Fraction(1) if self._sense == "min" else Fraction(-1)
        for i, column in self._artificial_of_row.items():
            y = sum(
                costs[self._basis[r]] * self._matrix[r][column]
                for r in range(len(self._matrix))
            )
            duals[i] = factor * self._row_sign[i] * y
        return duals


class _TableauOverflow(Exception):
    """Integer tableau entries would exceed the int64 guard."""


_INT64_GUARD = 1 << 62


class _ArrayStandardForm(_StandardForm):
    """Fraction-free integer tableau on int64 numpy arrays.

    Keeps ``A = p * T`` where ``T`` is the exact Fraction tableau of
    :class:`_StandardForm` and ``p`` is the previous pivot element
    (Bareiss-style integer pivoting, ``p = 1`` initially).  One pivot
    is a whole-matrix rank-1 update::

        A <- (A * a_rc - outer(A[:, c], A[r, :])) // p ;  A[r] <- old row

    with exact integer division — no rounding ever happens.  Bland's
    entering/leaving selections are reproduced from integer signs and
    cross-multiplied ratio comparisons, so the pivot *sequence* equals
    the Fraction tableau's and every verdict, witness, value, and dual
    is byte-identical.  Entry growth is guarded against int64
    overflow; :meth:`solve` falls back to the serial Fraction tableau
    when the guard trips (deterministic, so the outcome is unchanged).
    """

    def __init__(self, objective, rows, sense, nonnegative):
        from repro.linalg.array_kernel import (
            ArrayKernelUnavailable,
            require_numpy,
        )

        self._np = require_numpy()
        super().__init__(objective, rows, sense, nonnegative)
        np = self._np
        for row_values, right in zip(self._matrix, self._rhs):
            for value in list(row_values) + [right]:
                if value.denominator != 1:
                    if METRICS.enabled:
                        METRICS.counter(
                            "simplex.array.fallbacks.unavailable"
                        ).inc()
                    raise ArrayKernelUnavailable(
                        "unavailable", "non-integer tableau entry"
                    )
        try:
            self._A = np.array(
                [
                    [int(value) for value in row_values] + [int(right)]
                    for row_values, right in zip(self._matrix, self._rhs)
                ],
                dtype=np.int64,
            )
        except OverflowError:
            if METRICS.enabled:
                METRICS.counter("simplex.array.fallbacks.overflow").inc()
            raise ArrayKernelUnavailable(
                "overflow", "tableau entry exceeds int64"
            ) from None
        self._A = self._A.reshape(len(self._rhs), self._num_columns + 1)
        self._p = 1
        if METRICS.enabled:
            METRICS.counter("simplex.array.tableaus").inc()

    # -- integer machinery --------------------------------------------------------

    def _max_entry(self):
        return int(self._np.abs(self._A).max()) if self._A.size else 0

    def _ipivot(self, pivot_row, pivot_column):
        """One Bareiss pivot as whole-matrix int64 array updates."""
        np = self._np
        A = self._A
        peak = self._max_entry()
        if 2 * peak * peak >= _INT64_GUARD:
            raise _TableauOverflow
        pivot_value = int(A[pivot_row, pivot_column])
        column = A[:, pivot_column].copy()
        row_values = A[pivot_row].copy()
        A *= pivot_value
        A -= np.outer(column, row_values)
        A //= self._p          # exact: every entry is divisible by p
        A[pivot_row] = row_values
        self._p = pivot_value
        self._basis[pivot_row] = pivot_column
        self._pivots += 1

    def _int_costs(self, costs):
        """*costs* (Fractions) scaled by a positive integer to int64.

        Positive scaling preserves every reduced-cost sign, so the
        entering choices — and hence the pivot sequence — match the
        unscaled Fraction run.
        """
        scale = 1
        for value in costs:
            scale = scale * value.denominator // gcd(
                scale, value.denominator
            )
        return [int(value * scale) for value in costs]

    def _ireduced(self, int_costs):
        """``s * p * (c - c_B T)`` — the reduced costs up to the
        positive factor ``s`` and the tracked-sign factor ``p``."""
        np = self._np
        A = self._A
        rows = len(self._basis)
        basic = [int_costs[column] for column in self._basis]
        cost_peak = max(
            (abs(value) for value in int_costs), default=0
        )
        bound = cost_peak * (abs(self._p) + rows * self._max_entry())
        if bound >= _INT64_GUARD:
            raise _TableauOverflow
        reduced = np.array(int_costs, dtype=np.int64) * self._p
        if rows:
            reduced -= np.array(basic, dtype=np.int64) @ A[:, :-1]
        return reduced

    def _irun(self, int_costs, allow_artificial):
        """Bland's rule on the integer tableau."""
        np = self._np
        artificial_columns = set(self._artificial_of_row.values())
        blocked = np.zeros(self._num_columns, dtype=bool)
        if not allow_artificial:
            for column in artificial_columns:
                blocked[column] = True
        while True:
            reduced = self._ireduced(int_costs)
            # rho[j] < 0  <=>  sign(reduced[j]) opposite to sign(p)
            negative = reduced < 0 if self._p > 0 else reduced > 0
            negative &= ~blocked
            candidates = np.nonzero(negative)[0]
            if not len(candidates):
                return OPTIMAL
            entering = int(candidates[0])
            sp = 1 if self._p > 0 else -1
            column = self._A[:, entering]
            right = self._A[:, -1]
            leaving = None
            best_n = best_d = None
            for r in range(len(self._basis)):
                denominator = int(column[r]) * sp
                if denominator <= 0:
                    continue
                numerator = int(right[r]) * sp
                if (
                    leaving is None
                    or numerator * best_d < best_n * denominator
                    or (
                        numerator * best_d == best_n * denominator
                        and self._basis[r] < self._basis[leaving]
                    )
                ):
                    best_n = numerator
                    best_d = denominator
                    leaving = r
            if leaving is None:
                return UNBOUNDED
            self._ipivot(leaving, entering)

    def _idrive_out_artificials(self):
        artificial_columns = set(self._artificial_of_row.values())
        for r in range(len(self._basis)):
            if self._basis[r] not in artificial_columns:
                continue
            for j in range(self._num_columns):
                if j in artificial_columns:
                    continue
                if self._A[r, j] != 0:
                    self._ipivot(r, j)
                    break

    def _materialize(self):
        """Write ``T = A / p`` back into the Fraction fields so the
        serial extraction helpers read the exact tableau."""
        p = self._p
        self._matrix = [
            [Fraction(int(value), p) for value in row_values[:-1]]
            for row_values in self._A
        ]
        self._rhs = [
            Fraction(int(row_values[-1]), p) for row_values in self._A
        ]

    # -- solve --------------------------------------------------------------------

    def solve(self):
        """Run both phases on the integer tableau; fall back to the
        Fraction tableau when entries would overflow int64."""
        try:
            return self._solve_array()
        except _TableauOverflow:
            if METRICS.enabled:
                METRICS.counter("simplex.array.fallbacks.overflow").inc()
            fallback = _StandardForm(
                self._objective, self._rows, self._sense,
                self._nonnegative,
            )
            return fallback.solve()

    def _solve_array(self):
        phase1_costs = self._phase1_costs()
        phase1_ints = self._int_costs(phase1_costs)
        status = self._irun(phase1_ints, allow_artificial=True)
        if status == OPTIMAL:
            basic = [phase1_ints[column] for column in self._basis]
            value_numerator = int(
                sum(b * int(v) for b, v in zip(basic, self._A[:, -1]))
            )
            infeasible = value_numerator != 0 and (
                (value_numerator > 0) == (self._p > 0)
            )
        if status != OPTIMAL or infeasible:
            return LPResult(status=INFEASIBLE, pivots=self._pivots)
        self._idrive_out_artificials()

        phase2_costs = self._phase2_costs()
        status = self._irun(
            self._int_costs(phase2_costs), allow_artificial=False
        )
        if status == UNBOUNDED:
            return LPResult(status=UNBOUNDED, pivots=self._pivots)

        self._materialize()
        assignment = self._extract_assignment()
        value = self._objective.evaluate(assignment)
        duals = self._extract_duals(phase2_costs)
        return LPResult(
            status=OPTIMAL, value=value, assignment=assignment,
            duals=duals, pivots=self._pivots,
        )


def feasible_point_batch(systems, nonnegative=(), kernel=None,
                         with_pivots=False):
    """Batched feasibility: one :func:`feasible_point`-equivalent
    result per system, grouped into lockstep multi-tableau solves.

    Same-shape phase-1 integer tableaus are stacked into one
    ``(tableaus, rows, columns)`` int64 array; each round performs
    every active tableau's next Bland pivot as a single batched rank-1
    update.  Entering/leaving selection per tableau depends only on
    that tableau's own state, so each walks exactly the pivot sequence
    the serial solver would — the returned assignments are
    byte-identical to per-system ``feasible_point`` calls (pinned by
    the differential property tests).  A tableau whose entries would
    overflow int64 is ejected from its group and re-solved serially.

    Falls back to plain serial solves unless the resolved kernel is
    ``"array"`` and numpy is importable.  Returns a list of
    ``{var: Fraction}`` assignments (None per infeasible system); with
    *with_pivots* each entry is an ``(assignment, pivots)`` pair
    instead.
    """
    from repro.linalg.fourier_motzkin import KERNEL_ARRAY, _validate_kernel

    systems = list(systems)
    use_array = _validate_kernel(kernel) == KERNEL_ARRAY
    if use_array:
        from repro.linalg.array_kernel import numpy_available

        use_array = numpy_available()
    if not use_array or len(systems) < 2:
        if METRICS.enabled and systems:
            METRICS.counter("simplex.batch.serial_fallbacks").inc()
        serial = [
            solve_lp(LinearExpr.constant(0), s, nonnegative=nonnegative)
            for s in systems
        ]
        outcomes = [
            (r.assignment if r.status == OPTIMAL else None, r.pivots)
            for r in serial
        ]
        if with_pivots:
            return outcomes
        return [assignment for assignment, _ in outcomes]

    from repro.linalg.array_kernel import require_numpy

    np = require_numpy()
    zero = LinearExpr.constant(0)
    problems = [
        _StandardForm(zero, list(system), "min", nonnegative)
        for system in systems
    ]
    groups = {}
    for position, problem in enumerate(problems):
        shape = (len(problem._rhs), problem._num_columns)
        groups.setdefault(shape if shape[0] else None, []).append(position)
    if METRICS.enabled:
        METRICS.counter("simplex.batch.dispatches").inc()
        METRICS.counter("simplex.batch.requests").inc(len(systems))
        METRICS.counter("simplex.batch.groups").inc(len(groups))
        METRICS.histogram("simplex.batch.group_size").observe(
            max(len(members) for members in groups.values())
        )

    results = [None] * len(systems)
    for shape, members in groups.items():
        overflowed = list(members)
        if shape is not None and len(members) > 1:
            lockstepped = _run_phase1_lockstep(
                np, [problems[p] for p in members]
            )
            overflowed = [
                position for position, ok in zip(members, lockstepped)
                if not ok
            ]
            for position, ok in zip(members, lockstepped):
                if ok:
                    results[position] = (
                        _finish_phase1(problems[position]),
                        problems[position]._pivots,
                    )
        for position in overflowed:
            # Ejected (or singleton/zero-row) tableaus re-solve from
            # scratch on the serial Fraction path.
            if METRICS.enabled and shape is not None and len(members) > 1:
                METRICS.counter("simplex.batch.ejected").inc()
            outcome = solve_lp(
                LinearExpr.constant(0), systems[position],
                nonnegative=nonnegative,
            )
            results[position] = (
                outcome.assignment if outcome.status == OPTIMAL else None,
                outcome.pivots,
            )
    if with_pivots:
        return results
    return [assignment for assignment, _ in results]


def _run_phase1_lockstep(np, problems):
    """Drive phase 1 of same-shape integer tableaus with batched
    pivots; returns one ``ok`` flag per problem (False = ejected on
    int64 overflow, its state is untrusted).

    On success a problem's ``_matrix``/``_rhs``/``_basis`` hold
    exactly the Fraction tableau serial phase 1 would leave (phase-1
    pivot elements are positive, so the Bareiss scalar ``p`` stays
    positive and all sign tests are direct).
    """
    count = len(problems)
    rows = len(problems[0]._rhs)
    stack = np.array(
        [
            [
                [int(value) for value in row_values] + [int(right)]
                for row_values, right in zip(p._matrix, p._rhs)
            ]
            for p in problems
        ],
        dtype=np.int64,
    )
    scalars = [1] * count
    costs = [p._phase1_costs() for p in problems]
    int_costs = np.array(
        [[int(value) for value in cost] for cost in costs],
        dtype=np.int64,
    )
    basis = [p._basis for p in problems]
    columns = problems[0]._num_columns
    active = list(range(count))
    ok = [True] * count
    while active:
        act = np.array(active)
        peak = int(np.abs(stack[act]).max())
        if max(scalars[t] for t in active) + rows * peak >= _INT64_GUARD:
            # Reduced-cost accumulation could wrap: eject the whole
            # remainder of the group (rare; re-solved serially).
            for t in active:
                ok[t] = False
            break
        basic_costs = np.array(
            [[int_costs[t][column] for column in basis[t]] for t in active],
            dtype=np.int64,
        )
        reduced = (
            int_costs[act] * np.array(
                [scalars[t] for t in active], dtype=np.int64
            )[:, None]
            - np.einsum("tm,tmn->tn", basic_costs, stack[act, :, :-1])
        )
        pivot_tableaus = []
        pivot_rows = []
        pivot_columns = []
        for k, t in enumerate(list(active)):
            negative = np.nonzero(reduced[k] < 0)[0]
            if not len(negative):
                active.remove(t)
                continue
            entering = int(negative[0])
            column = stack[t, :, entering]
            right = stack[t, :, -1]
            leaving = None
            best_n = best_d = None
            for r in range(rows):
                denominator = int(column[r])
                if denominator <= 0:
                    continue
                numerator = int(right[r])
                if (
                    leaving is None
                    or numerator * best_d < best_n * denominator
                    or (
                        numerator * best_d == best_n * denominator
                        and basis[t][r] < basis[t][leaving]
                    )
                ):
                    best_n = numerator
                    best_d = denominator
                    leaving = r
            if leaving is None:
                # Phase 1 is bounded below by 0 — unreachable; eject
                # so the serial path reports whatever it reports.
                ok[t] = False
                active.remove(t)
                continue
            pivot_tableaus.append(t)
            pivot_rows.append(leaving)
            pivot_columns.append(entering)
        if not pivot_tableaus:
            continue
        safe = []
        for t, r, c in zip(pivot_tableaus, pivot_rows, pivot_columns):
            tableau_peak = int(np.abs(stack[t]).max())
            if 2 * tableau_peak * tableau_peak >= _INT64_GUARD:
                ok[t] = False
                active.remove(t)
            else:
                safe.append((t, r, c))
        if not safe:
            continue
        ids = np.array([t for t, _, _ in safe])
        prow = np.array([r for _, r, _ in safe])
        pcol = np.array([c for _, _, c in safe])
        span = np.arange(len(ids))
        pivot_values = stack[ids, prow, pcol].copy()
        old_columns = stack[ids][span, :, pcol].copy()
        old_rows = stack[ids, prow, :].copy()
        scalar_vector = np.array(
            [scalars[t] for t in ids], dtype=np.int64
        )
        block = stack[ids] * pivot_values[:, None, None]
        block -= old_columns[:, :, None] * old_rows[:, None, :]
        block //= scalar_vector[:, None, None]   # exact division
        block[span, prow, :] = old_rows
        stack[ids] = block
        for t, r, c in safe:
            scalars[t] = int(stack[t, r, c])
            basis[t][r] = c
            problems[t]._pivots += 1
        if METRICS.enabled:
            METRICS.counter("simplex.batch.pivots").inc(len(ids))
    for t, problem in enumerate(problems):
        if not ok[t]:
            continue
        p = scalars[t]
        problem._matrix = [
            [Fraction(int(value), p) for value in row_values[:-1]]
            for row_values in stack[t]
        ]
        problem._rhs = [
            Fraction(int(row_values[-1]), p) for row_values in stack[t]
        ]
    return ok


def _finish_phase1(problem):
    """Run a problem's post-phase-1 epilogue; return its witness.

    Re-entering the serial phase-1 loop is a no-op continuation for
    lockstep-finished tableaus (no reduced cost is negative); then
    artificials are driven out, the trivial zero-objective phase 2
    run, and the assignment extracted by the serial code — so the
    outcome agrees with :func:`feasible_point` by construction.
    """
    phase1_costs = problem._phase1_costs()
    status = problem._run_simplex(phase1_costs, allow_artificial=True)
    if status != OPTIMAL or problem._objective_value(phase1_costs) > 0:
        return None
    problem._drive_out_artificials()
    status = problem._run_simplex(
        problem._phase2_costs(), allow_artificial=False
    )
    if status != OPTIMAL:
        return None
    if METRICS.enabled:
        METRICS.counter("simplex.solves").inc()
        METRICS.counter("simplex.pivots").inc(problem._pivots)
        METRICS.histogram("simplex.pivots.per_solve").observe(
            problem._pivots
        )
    return problem._extract_assignment()
