"""Immutable linear expressions with exact rational coefficients.

A :class:`LinearExpr` is ``constant + sum(coefficient_i * variable_i)``
where variables are arbitrary hashable names (typically strings like
``"x1"`` or tuples like ``("append", 3)``) and coefficients are
:class:`fractions.Fraction`.

Expressions support the natural arithmetic operators, substitution of
expressions for variables, and exact evaluation.
"""

from __future__ import annotations

from fractions import Fraction


def _to_fraction(value):
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, str):
        return Fraction(value)
    if isinstance(value, float):
        raise TypeError(
            "refusing float %r; exact analysis needs int/Fraction" % value
        )
    raise TypeError("cannot convert %r to Fraction" % (value,))


class LinearExpr:
    """``constant + sum(coeff * var)``; immutable and hashable."""

    __slots__ = ("_coefficients", "_constant", "_hash", "_variables")

    def __init__(self, coefficients=None, constant=0):
        items = {}
        if coefficients:
            for var, coeff in dict(coefficients).items():
                coeff = _to_fraction(coeff)
                if coeff != 0:
                    items[var] = coeff
        object.__setattr__(self, "_coefficients", items)
        object.__setattr__(self, "_constant", _to_fraction(constant))
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_variables", None)

    def __setattr__(self, key, value):
        raise AttributeError("LinearExpr is immutable")

    # -- construction ----------------------------------------------------------

    @classmethod
    def constant(cls, value):
        """An expression with only a constant term."""
        return cls({}, value)

    @classmethod
    def of(cls, var, coefficient=1):
        """A single-variable expression with the given coefficient."""
        return cls({var: coefficient})

    @classmethod
    def _from_canonical_integers(cls, coefficients, constant):
        """Internal: wrap ``{var: int}`` / ``int`` data without the
        constructor's conversion and zero-filtering passes.

        Only the integer row kernel's materialization boundary calls
        this — its rows are nonzero-coefficient canonical integers by
        construction.
        """
        self = object.__new__(cls)
        object.__setattr__(
            self,
            "_coefficients",
            {var: Fraction(c) for var, c in coefficients.items()},
        )
        object.__setattr__(self, "_constant", Fraction(constant))
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_variables", None)
        return self

    # -- access ------------------------------------------------------------------

    @property
    def const(self):
        """The constant term."""
        return self._constant

    def coefficient(self, var):
        """The coefficient of *var* (0 if absent)."""
        return self._coefficients.get(var, Fraction(0))

    def variables(self):
        """The set of variables with non-zero coefficient (cached)."""
        cached = self._variables
        if cached is None:
            cached = frozenset(self._coefficients)
            object.__setattr__(self, "_variables", cached)
        return cached

    def items(self):
        """(variable, coefficient) pairs in deterministic order."""
        return sorted(self._coefficients.items(), key=lambda kv: repr(kv[0]))

    def is_constant(self):
        """True when no variable has a nonzero coefficient."""
        return not self._coefficients

    # -- arithmetic ------------------------------------------------------------------

    def __add__(self, other):
        other = _as_expr(other)
        coefficients = dict(self._coefficients)
        for var, coeff in other._coefficients.items():
            coefficients[var] = coefficients.get(var, Fraction(0)) + coeff
        return LinearExpr(coefficients, self._constant + other._constant)

    __radd__ = __add__

    def __neg__(self):
        return LinearExpr(
            {var: -coeff for var, coeff in self._coefficients.items()},
            -self._constant,
        )

    def __sub__(self, other):
        return self + (-_as_expr(other))

    def __rsub__(self, other):
        return _as_expr(other) + (-self)

    def __mul__(self, scalar):
        scalar = _to_fraction(scalar)
        return LinearExpr(
            {var: coeff * scalar for var, coeff in self._coefficients.items()},
            self._constant * scalar,
        )

    __rmul__ = __mul__

    def __truediv__(self, scalar):
        return self * (Fraction(1) / _to_fraction(scalar))

    # -- comparison / identity --------------------------------------------------------

    def __eq__(self, other):
        if not isinstance(other, LinearExpr):
            if isinstance(other, (int, Fraction)):
                other = LinearExpr.constant(other)
            else:
                return NotImplemented
        return (
            self._constant == other._constant
            and self._coefficients == other._coefficients
        )

    def __hash__(self):
        cached = self._hash
        if cached is None:
            cached = hash(
                (self._constant, frozenset(self._coefficients.items()))
            )
            object.__setattr__(self, "_hash", cached)
        return cached

    # -- operations ------------------------------------------------------------------------

    def substitute(self, mapping):
        """Replace variables by expressions (or numbers) from *mapping*."""
        result = LinearExpr.constant(self._constant)
        for var, coeff in self._coefficients.items():
            replacement = mapping.get(var)
            if replacement is None:
                result = result + LinearExpr({var: coeff})
            else:
                result = result + _as_expr(replacement) * coeff
        return result

    def evaluate(self, assignment):
        """Exact value given a full variable assignment."""
        total = self._constant
        for var, coeff in self._coefficients.items():
            total += coeff * _to_fraction(assignment[var])
        return total

    def rename(self, mapping):
        """Rename variables via *mapping* (missing names unchanged)."""
        return LinearExpr(
            {
                mapping.get(var, var): coeff
                for var, coeff in self._coefficients.items()
            },
            self._constant,
        )

    def scale_to_integers(self):
        """Multiply by the positive lcm of denominators; returns expr."""
        denominators = [self._constant.denominator]
        denominators.extend(
            coeff.denominator for coeff in self._coefficients.values()
        )
        factor = 1
        for denominator in denominators:
            factor = _lcm(factor, denominator)
        return self * factor

    # -- rendering --------------------------------------------------------------------------

    def __str__(self):
        parts = []
        for var, coeff in self.items():
            name = _var_name(var)
            if coeff == 1:
                parts.append("+ %s" % name)
            elif coeff == -1:
                parts.append("- %s" % name)
            elif coeff > 0:
                parts.append("+ %s*%s" % (coeff, name))
            else:
                parts.append("- %s*%s" % (-coeff, name))
        if self._constant != 0 or not parts:
            sign = "+" if self._constant >= 0 else "-"
            parts.append("%s %s" % (sign, abs(self._constant)))
        text = " ".join(parts)
        return text[2:] if text.startswith("+ ") else text

    def __repr__(self):
        return "LinearExpr(%r, %r)" % (dict(self._coefficients), self._constant)


def _as_expr(value):
    if isinstance(value, LinearExpr):
        return value
    return LinearExpr.constant(_to_fraction(value))


def _var_name(var):
    if isinstance(var, tuple):
        return ".".join(str(part) for part in var)
    return str(var)


def _lcm(a, b):
    from math import gcd

    return a * b // gcd(a, b)


def variable(name):
    """Shorthand for a unit-coefficient expression over *name*."""
    return LinearExpr.of(name)
