"""Exact rational linear algebra: expressions, constraints, FM, simplex.

Everything here computes over :class:`fractions.Fraction`, so results
are exact — a termination *proof* must not depend on floating-point
rounding.  The subpackage provides:

- :mod:`repro.linalg.linexpr` — immutable linear expressions.
- :mod:`repro.linalg.constraints` — constraints and constraint systems.
- :mod:`repro.linalg.fourier_motzkin` — projection by Fourier–Motzkin
  elimination with redundancy pruning (the paper's workhorse, Section 4).
- :mod:`repro.linalg.simplex` — a two-phase exact simplex LP solver with
  dual values (used for the duality cross-checks and ablations).
- :mod:`repro.linalg.polyhedron` — convex polyhedra in constraint form
  with emptiness, entailment, projection, and convex hull (the abstract
  domain behind inter-argument inference).
"""

from repro.linalg.linexpr import LinearExpr, variable
from repro.linalg.constraints import (
    Constraint,
    ConstraintSystem,
    EQ,
    GE,
    LE,
)
from repro.linalg.fourier_motzkin import eliminate, eliminate_all, project_onto
from repro.linalg.simplex import LPResult, solve_lp, is_feasible
from repro.linalg.polyhedron import Polyhedron

__all__ = [
    "LinearExpr",
    "variable",
    "Constraint",
    "ConstraintSystem",
    "EQ",
    "GE",
    "LE",
    "eliminate",
    "eliminate_all",
    "project_onto",
    "LPResult",
    "solve_lp",
    "is_feasible",
    "Polyhedron",
]
