"""Vectorized (numpy) array kernel for Fourier–Motzkin elimination.

The integer row kernel of :mod:`repro.linalg.rows` already runs FM in
machine ints, but still combines rows one positive×negative pair at a
time in Python.  This module compiles the same loops into batched
int64 matrix operations, the way TensorLog compiles logic-program
inference into matrix algebra:

- a workspace is a dense ``(rows, vars)`` int64 coefficient matrix
  plus an int64 constant column;
- one elimination step materializes *every* positive×negative
  combination with a single broadcast multiply-add, gcd-normalizes the
  whole block with ``np.gcd.reduce``, and applies Chernikov ancestor
  pruning through a ``(rows, chunks)`` uint64 bitmask matrix and
  ``np.bitwise_count``;
- de-duplication and dominance pruning run as lexicographic
  ``np.unique`` group-bys that reproduce the row kernel's
  first-occurrence insertion order exactly.

The contract is byte-identity with the integer row kernel (and hence
with the reference object pipeline): same rows, same canonical form,
same order.  Machine arithmetic is guarded — interning raises
:class:`ArrayKernelUnavailable` when a coefficient does not fit int64,
and every combination step prechecks a worst-case magnitude bound
before multiplying, so a potential overflow *falls back to the exact
integer path* instead of wrapping silently.  Callers catch the
exception and rerun on the int kernel; the ``fm.array.*`` metrics
count those falls.

numpy is imported lazily: with numpy absent the kernel reports
unavailable and the stdlib-only configuration keeps working.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import FMBlowupError
from repro.linalg.constraints import ConstraintSystem
from repro.linalg.rows import (
    constraint_of_row,
    intern_variables,
    row_of_constraint,
)
from repro.obs import METRICS

__all__ = [
    "ArrayKernelUnavailable",
    "ArrayStagedEliminator",
    "numpy_available",
    "require_numpy",
    "tracked_project_array",
    "eliminate_all_array",
]

#: Largest intermediate magnitude the combination step may produce
#: before the kernel refuses and falls back to exact integers.  One
#: bit of headroom under int64 so the gcd/normalize stages can never
#: wrap either.
_INT64_GUARD = 1 << 62

_numpy = None
_numpy_checked = False


class ArrayKernelUnavailable(Exception):
    """The array kernel cannot (or must not) run this projection.

    Raised when numpy is missing, when input coefficients exceed
    int64, or when a combination step could overflow.  Callers fall
    back to the exact integer row kernel — never an error surface,
    always a routing signal.
    """

    def __init__(self, reason, message):
        super().__init__(message)
        self.reason = reason  # "unavailable" | "overflow"


def _load_numpy():
    global _numpy, _numpy_checked
    if not _numpy_checked:
        _numpy_checked = True
        try:
            import numpy
        except ImportError:
            _numpy = None
        else:
            # np.bitwise_count (numpy >= 2.0) carries the Chernikov
            # bitmask popcounts; without it the vectorized tracked
            # path cannot run and the whole kernel reports missing.
            _numpy = numpy if hasattr(numpy, "bitwise_count") else None
    return _numpy


def numpy_available():
    """True when the array kernel can run in this process."""
    return _load_numpy() is not None


def require_numpy():
    """The numpy module, or an ``unavailable`` fallback signal."""
    np = _load_numpy()
    if np is None:
        if METRICS.enabled:
            METRICS.counter("fm.array.fallbacks.unavailable").inc()
        raise ArrayKernelUnavailable(
            "unavailable",
            "numpy (>= 2.0) is not importable; install repro[perf]",
        )
    return np


def _overflow(message):
    if METRICS.enabled:
        METRICS.counter("fm.array.fallbacks.overflow").inc()
    return ArrayKernelUnavailable("overflow", message)


def _intern_matrix(np, rows, width):
    """Rows (``(coeffs, const)`` int tuples) as int64 arrays, or the
    overflow signal when any coefficient does not fit."""
    try:
        coeffs = np.array(
            [row[0] for row in rows], dtype=np.int64
        ).reshape(len(rows), width)
        consts = np.array([row[1] for row in rows], dtype=np.int64)
    except OverflowError:
        raise _overflow("input coefficients exceed int64") from None
    return coeffs, consts


def _normalize_block(np, coeffs, consts):
    """Batched gcd normalization + trivial-row mask.

    Divides every row by the gcd of all its entries (constant
    included) and returns the boolean mask of rows to *keep* —
    ``normalize_row`` drops rows that reduce to ``c >= 0``.
    """
    if coeffs.shape[1]:
        g = np.gcd(np.gcd.reduce(np.abs(coeffs), axis=1), np.abs(consts))
    else:
        g = np.abs(consts)
    g = np.where(g > 1, g, 1)
    coeffs = coeffs // g[:, None]
    consts = consts // g
    nonzero = (
        (coeffs != 0).any(axis=1)
        if coeffs.shape[1]
        else np.zeros(len(consts), dtype=bool)
    )
    keep = nonzero | (consts < 0)
    return coeffs, consts, keep


def _record_view(np, matrix):
    """The rows of an int64 matrix as fixed-width byte keys.

    ``np.unique(axis=0)`` pays a large structured-dtype setup cost per
    call; hashing raw row bytes into Python dicts is both faster at
    these sizes and *exactly* mirrors the insertion-ordered dict/set
    logic of the integer row kernel.
    """
    data = np.ascontiguousarray(matrix).tobytes()
    width = matrix.shape[1] * matrix.itemsize
    return [
        data[i * width:(i + 1) * width] for i in range(len(matrix))
    ]


def _first_occurrence_mask(np, coeffs, consts, protect=0):
    """Mask keeping the first occurrence of each distinct row.

    The first *protect* rows are kept unconditionally (the tracked
    eliminator retains duplicate pass-through rows; only combined rows
    are checked against ``seen``) — but they still count as seen, so a
    later combined row equal to any of them is dropped.
    """
    n = len(consts)
    if n == 0:
        return np.zeros(0, dtype=bool)
    keys = _record_view(
        np, np.concatenate([coeffs, consts[:, None]], axis=1)
    )
    seen = set()
    add = seen.add
    flags = [False] * n
    for i, key in enumerate(keys):
        if i < protect:
            flags[i] = True
            add(key)
        elif key not in seen:
            flags[i] = True
            add(key)
    return np.array(flags, dtype=bool)


def _dominance_select(np, coeffs, consts):
    """Indices realizing the row kernel's dominance prune.

    Groups rows by linear part; each group contributes one output row
    — the first row attaining the group's minimal constant — and the
    groups are emitted in first-occurrence order, exactly matching the
    insertion-ordered ``best`` dict of ``RowKernel._dominance``.
    """
    if len(consts) == 0:
        return np.zeros(0, dtype=np.int64)
    keys = _record_view(np, coeffs)
    values = consts.tolist()
    best = {}
    get = best.get
    for i, key in enumerate(keys):
        current = get(key)
        if current is None or values[i] < values[current]:
            best[key] = i
    return np.fromiter(best.values(), dtype=np.int64, count=len(best))


def _combination_bound(np, pos_c, pos_k, neg_c, neg_k, a, b):
    """Worst-case magnitude of one combination block, in Python ints
    (so the bound itself cannot wrap)."""

    def peak(matrix, column):
        top = int(np.abs(matrix).max()) if matrix.size else 0
        return max(top, int(np.abs(column).max()) if column.size else 0)

    return int(b.max()) * peak(pos_c, pos_k) + int(a.max()) * peak(
        neg_c, neg_k
    )


class _ArrayWorkspace:
    """The vectorized twin of :class:`repro.linalg.rows.RowKernel`.

    ``histories`` is a ``(rows, chunks)`` uint64 bitmask matrix when
    Chernikov tracking is on, else None.
    """

    __slots__ = ("np", "variables", "index", "reprs", "coeffs", "consts",
                 "histories")

    def __init__(self, np, system, track=False):
        self.np = np
        self.variables = intern_variables(system)
        self.index = {var: i for i, var in enumerate(self.variables)}
        self.reprs = [repr(var) for var in self.variables]
        rows = [
            row_of_constraint(constraint, self.variables)
            for constraint in system.inequalities()
        ]
        self.coeffs, self.consts = _intern_matrix(
            np, rows, len(self.variables)
        )
        if track:
            count = len(rows)
            chunks = max(1, -(-count // 64))
            histories = np.zeros((count, chunks), dtype=np.uint64)
            positions = np.arange(count)
            histories[positions, positions // 64] = np.uint64(1) << (
                positions % 64
            ).astype(np.uint64)
            self.histories = histories
        else:
            self.histories = None

    def __len__(self):
        return len(self.consts)

    def choose(self, remaining):
        """Cheapest present variable (min positives×negatives, ties by
        ``repr``) — the same greedy heuristic, on vectorized counts."""
        np = self.np
        pos = (self.coeffs > 0).sum(axis=0)
        neg = (self.coeffs < 0).sum(axis=0)
        best_key = None
        best_index = None
        for j in remaining:
            occurrences = int(pos[j]) + int(neg[j])
            if not occurrences:
                continue
            key = (int(pos[j]) * int(neg[j]), self.reprs[j])
            if best_key is None or key < best_key:
                best_key = key
                best_index = j
        return best_index

    def eliminate(self, j, chernikov_limit=None, prune=True):
        """One whole elimination step as array algebra."""
        np = self.np
        track = self.histories is not None
        column = self.coeffs[:, j]
        positive = column > 0
        negative = column < 0
        passthrough = ~(positive | negative)

        kept_c = self.coeffs[passthrough]
        kept_k = self.consts[passthrough]
        kept_h = self.histories[passthrough] if track else None

        pos_c = self.coeffs[positive]
        pos_k = self.consts[positive]
        neg_c = self.coeffs[negative]
        neg_k = self.consts[negative]
        pairs = len(pos_k) * len(neg_k)
        chernikov_pruned = 0
        if pairs:
            if track:
                merged = np.bitwise_or(
                    self.histories[positive][:, None, :],
                    self.histories[negative][None, :, :],
                )
                admissible = (
                    np.bitwise_count(merged).sum(axis=2)
                    <= chernikov_limit
                ).reshape(-1)
                chernikov_pruned = pairs - int(admissible.sum())
            a = column[positive]
            b = -column[negative]
            if (
                _combination_bound(np, pos_c, pos_k, neg_c, neg_k, a, b)
                >= _INT64_GUARD
            ):
                raise _overflow("combination step would exceed int64")
            comb_c = (
                b[None, :, None] * pos_c[:, None, :]
                + a[:, None, None] * neg_c[None, :, :]
            ).reshape(pairs, self.coeffs.shape[1])
            comb_k = (
                b[None, :] * pos_k[:, None] + a[:, None] * neg_k[None, :]
            ).reshape(pairs)
            if track:
                comb_h = merged.reshape(pairs, -1)[admissible]
                comb_c = comb_c[admissible]
                comb_k = comb_k[admissible]
            comb_c, comb_k, survived = _normalize_block(np, comb_c, comb_k)
            comb_c = comb_c[survived]
            comb_k = comb_k[survived]
            if track:
                comb_h = comb_h[survived]
        else:
            comb_c = kept_c[:0]
            comb_k = kept_k[:0]
            comb_h = kept_h[:0] if track else None

        all_c = np.concatenate([kept_c, comb_c])
        all_k = np.concatenate([kept_k, comb_k])
        # Untracked pass-through rows dedup among themselves too (the
        # object path's ConstraintSystem.add semantics); tracked ones
        # are retained verbatim for the dominance filter to collapse.
        protect = len(kept_k) if track else 0
        fresh = _first_occurrence_mask(np, all_c, all_k, protect=protect)
        all_c = all_c[fresh]
        all_k = all_k[fresh]
        generated = int(fresh[len(kept_k):].sum())
        if track:
            all_h = np.concatenate([kept_h, comb_h])[fresh]

        dominance_pruned = 0
        if prune:
            before = len(all_k)
            # The chosen row *is* the minimal-constant row of its
            # group, so gathering by index carries both pieces.
            selected = _dominance_select(np, all_c, all_k)
            all_c = all_c[selected]
            all_k = all_k[selected]
            if track:
                all_h = all_h[selected]
            dominance_pruned = before - len(all_k)
        self.coeffs = all_c
        self.consts = all_k
        self.histories = all_h if track else None
        if METRICS.enabled:
            METRICS.counter("fm.array.rows.generated").inc(generated)
            if chernikov_pruned:
                METRICS.counter("fm.array.rows.pruned.chernikov").inc(
                    chernikov_pruned
                )
            if dominance_pruned:
                METRICS.counter("fm.array.rows.pruned.dominance").inc(
                    dominance_pruned
                )

    def dominance_prune(self):
        """The cheap pass of ``prune_redundant``, in array space.

        Tracked rows are all ``>=`` and gcd-canonical, so grouping by
        coefficient tuple is exactly grouping by linear part: the first
        row attaining each group's minimal constant survives, groups in
        first-occurrence order.
        """
        selected = _dominance_select(self.np, self.coeffs, self.consts)
        self.coeffs = self.coeffs[selected]
        self.consts = self.consts[selected]
        if self.histories is not None:
            self.histories = self.histories[selected]

    def to_system(self, assume_unique=False):
        """Materialize the surviving rows as canonical constraints.

        *assume_unique* (set after :meth:`dominance_prune`, whose
        output has one row per linear part) skips the add-time dedup
        hashing — the result is byte-identical either way.
        """
        coeff_rows = self.coeffs.tolist()
        const_values = self.consts.tolist()
        rows = (
            constraint_of_row((tuple(row), const), self.variables)
            for row, const in zip(coeff_rows, const_values)
        )
        if assume_unique:
            return ConstraintSystem._from_canonical_unique(rows)
        return ConstraintSystem(rows)


def tracked_project_array(system, variables, max_rows=600,
                          prune_final=False):
    """Array-kernel twin of :func:`repro.linalg.rows.tracked_project`.

    Byte-identical projections; raises :class:`FMBlowupError` at the
    same row budget and :class:`ArrayKernelUnavailable` when machine
    arithmetic cannot be trusted (the caller reruns exactly).

    With *prune_final* the cheap dominance pass of
    ``prune_redundant`` is applied in array space before the rows are
    materialized — the caller must then skip the object-level cheap
    pass (tracked rows are all ``>=`` and gcd-canonical, so grouping
    by coefficient tuple is exactly grouping by linear part).
    """
    np = require_numpy()
    workspace = _ArrayWorkspace(np, system, track=True)
    if METRICS.enabled:
        METRICS.counter("fm.array.projections").inc()
    remaining = {
        workspace.index[var] for var in variables
        if var in workspace.index
    }
    eliminated = 0
    while remaining:
        j = workspace.choose(remaining)
        if j is None:
            break
        remaining.discard(j)
        eliminated += 1
        workspace.eliminate(j, chernikov_limit=eliminated + 1)
        if max_rows is not None and len(workspace) > max_rows:
            raise FMBlowupError(
                "tracked elimination exceeded %d rows" % max_rows
            )
    if prune_final:
        workspace.dominance_prune()
    return workspace.to_system(assume_unique=prune_final)


def eliminate_all_array(system, remaining, prune, lp_prune_threshold):
    """Array-kernel twin of the row kernel's combination-only
    ``eliminate_all`` tail (no equality mentions a remaining
    variable)."""
    from repro.linalg.fourier_motzkin import prune_redundant

    np = require_numpy()
    workspace = _ArrayWorkspace(np, system)
    indices = {
        workspace.index[var] for var in remaining
        if var in workspace.index
    }
    while indices:
        j = workspace.choose(indices)
        if j is None:
            break
        workspace.eliminate(j, prune=prune)
        indices.discard(j)
        if (
            lp_prune_threshold is not None
            and len(workspace) > lp_prune_threshold
        ):
            pruned = prune_redundant(workspace.to_system(), use_lp=True)
            workspace = _ArrayWorkspace(np, pruned)
            indices = {
                workspace.index[var] for var in remaining
                if var in workspace.index
            }
    return workspace.to_system()


def eliminate_one_array(system, var, prune=True):
    """Array-kernel twin of one pure-combination elimination step."""
    np = require_numpy()
    workspace = _ArrayWorkspace(np, system)
    j = workspace.index.get(var)
    if j is None:
        from repro.linalg.fourier_motzkin import prune_redundant

        result = workspace.to_system()
        return prune_redundant(result) if prune else result
    workspace.eliminate(j, prune=prune)
    return workspace.to_system()


class ArrayStagedEliminator:
    """Vectorized twin of :class:`repro.linalg.rows.StagedEliminator`.

    Used by the ``fm`` feasibility backend under ``kernel="array"``:
    every variable is eliminated in ``repr`` order with whole-block
    array updates — integer Gaussian substitution while an equality
    mentions the variable, batched positive×negative combination after
    — keeping one snapshot per stage so the witness comes back by the
    same reverse back-substitution, over exact Fractions.
    """

    __slots__ = ("np", "variables", "stages")

    def __init__(self, system):
        np = require_numpy()
        self.np = np
        self.variables = intern_variables(system)
        rows = []
        flags = []
        for constraint in system:
            rows.append(row_of_constraint(constraint, self.variables))
            flags.append(constraint.is_equality())
        coeffs, consts = _intern_matrix(np, rows, len(self.variables))
        self.stages = [
            (np.array(flags, dtype=bool), coeffs, consts)
        ]

    def run(self, prune=True):
        """Eliminate every variable; returns the final stage."""
        for j in range(len(self.variables)):
            self.stages.append(self._stage(self.stages[-1], j, prune))
        return self.stages[-1]

    def _stage(self, stage, j, prune):
        np = self.np
        flags, coeffs, consts = stage
        pivots = np.flatnonzero(flags & (coeffs[:, j] != 0))
        if len(pivots):
            return self._substitute(stage, j, int(pivots[0]))
        return self._combine(stage, j, prune)

    def _substitute(self, stage, j, eq_position):
        """Vectorized integer Gaussian substitution: every row with a
        nonzero coefficient becomes ``|c|*row - d*sign(c)*eq_row``."""
        np = self.np
        flags, coeffs, consts = stage
        ecoeffs = coeffs[eq_position]
        econst = consts[eq_position]
        c = int(ecoeffs[j])
        m = abs(c)
        s = 1 if c > 0 else -1
        keep = np.ones(len(consts), dtype=bool)
        keep[eq_position] = False
        flags = flags[keep]
        coeffs = coeffs[keep]
        consts = consts[keep]
        d = coeffs[:, j]
        touched = d != 0
        scale = int(np.abs(d).max()) if touched.any() else 0
        bound = m * max(
            int(np.abs(coeffs).max()) if coeffs.size else 0,
            int(np.abs(consts).max()) if consts.size else 0,
        ) + scale * max(int(np.abs(ecoeffs).max(initial=0)), abs(int(econst)))
        if bound >= _INT64_GUARD:
            raise _overflow("substitution step would exceed int64")
        ds = d * s
        new_coeffs = np.where(
            touched[:, None],
            m * coeffs - ds[:, None] * ecoeffs[None, :],
            coeffs,
        )
        new_consts = np.where(touched, m * consts - ds * econst, consts)
        flags, new_coeffs, new_consts, keep = self._canonical_block(
            flags, new_coeffs, new_consts, touched
        )
        flags = flags[keep]
        new_coeffs = new_coeffs[keep]
        new_consts = new_consts[keep]
        # Dedup across *all* surviving rows (touched or not), first
        # occurrence wins — StagedEliminator._substitute's ``seen``.
        fresh = _first_occurrence_mask(
            np,
            np.concatenate([new_coeffs, flags[:, None].astype(np.int64)],
                           axis=1),
            new_consts,
        )
        return flags[fresh], new_coeffs[fresh], new_consts[fresh]

    def _canonical_block(self, flags, coeffs, consts, touched):
        """Vectorized ``StagedEliminator._canonical`` over the touched
        rows: gcd-normalize, sign-normalize equalities, and mask away
        trivial rows.  Untouched rows pass through unchanged."""
        np = self.np
        if coeffs.shape[1]:
            g = np.gcd(np.gcd.reduce(np.abs(coeffs), axis=1),
                       np.abs(consts))
        else:
            g = np.abs(consts)
        g = np.where((g > 1) & touched, g, 1)
        coeffs = coeffs // g[:, None]
        consts = consts // g
        nonzero = coeffs != 0
        has_leading = (
            nonzero.any(axis=1)
            if coeffs.shape[1]
            else np.zeros(len(consts), dtype=bool)
        )
        if coeffs.shape[1]:
            lead_idx = np.argmax(nonzero, axis=1)
            leading = coeffs[np.arange(len(consts)), lead_idx]
        else:
            leading = np.zeros(len(consts), dtype=np.int64)
        flip = touched & flags & has_leading & (leading < 0)
        coeffs = np.where(flip[:, None], -coeffs, coeffs)
        consts = np.where(flip, -consts, consts)
        # Equality contradiction rows sign-normalize their constant.
        contra = touched & flags & ~has_leading & (consts < 0)
        consts = np.where(contra, -consts, consts)
        trivial_eq = touched & flags & ~has_leading & (consts == 0)
        trivial_ge = touched & ~flags & ~has_leading & (consts >= 0)
        keep = ~(trivial_eq | trivial_ge)
        return flags, coeffs, consts, keep

    def _combine(self, stage, j, prune):
        """Batched pairwise combination over the inequality splits."""
        np = self.np
        flags, coeffs, consts = stage
        if flags.any():
            # Equalities split into +/- inequality pairs, in row order.
            parts_c = []
            parts_k = []
            for i in range(len(consts)):
                parts_c.append(coeffs[i])
                parts_k.append(consts[i])
                if flags[i]:
                    parts_c.append(-coeffs[i])
                    parts_k.append(-consts[i])
            coeffs = np.stack(parts_c) if parts_c else coeffs
            consts = np.array(parts_k, dtype=np.int64)
        column = (
            coeffs[:, j] if coeffs.shape[1] else
            np.zeros(len(consts), dtype=np.int64)
        )
        positive = column > 0
        negative = column < 0
        passthrough = ~(positive | negative)
        kept_c = coeffs[passthrough]
        kept_k = consts[passthrough]
        # Pass-through rows dedup on insertion.
        fresh = _first_occurrence_mask(np, kept_c, kept_k)
        kept_c = kept_c[fresh]
        kept_k = kept_k[fresh]
        pos_c = coeffs[positive]
        pos_k = consts[positive]
        neg_c = coeffs[negative]
        neg_k = consts[negative]
        pairs = len(pos_k) * len(neg_k)
        if pairs:
            a = column[positive]
            b = -column[negative]
            if (
                _combination_bound(np, pos_c, pos_k, neg_c, neg_k, a, b)
                >= _INT64_GUARD
            ):
                raise _overflow("combination step would exceed int64")
            comb_c = (
                b[None, :, None] * pos_c[:, None, :]
                + a[:, None, None] * neg_c[None, :, :]
            ).reshape(pairs, coeffs.shape[1])
            comb_k = (
                b[None, :] * pos_k[:, None] + a[:, None] * neg_k[None, :]
            ).reshape(pairs)
            comb_c, comb_k, survived = _normalize_block(np, comb_c, comb_k)
            comb_c = comb_c[survived]
            comb_k = comb_k[survived]
            all_c = np.concatenate([kept_c, comb_c])
            all_k = np.concatenate([kept_k, comb_k])
            fresh = _first_occurrence_mask(
                np, all_c, all_k, protect=len(kept_k)
            )
            all_c = all_c[fresh]
            all_k = all_k[fresh]
        else:
            all_c = kept_c
            all_k = kept_k
        if prune and len(all_k):
            selected = _dominance_select(np, all_c, all_k)
            all_c = all_c[selected]
            all_k = all_k[selected]
        return (
            np.zeros(len(all_k), dtype=bool),
            all_c,
            all_k,
        )

    # -- verdict and witness ------------------------------------------------

    def has_contradiction(self):
        """A constant-false row in the fully eliminated system?"""
        np = self.np
        flags, coeffs, consts = self.stages[-1]
        constant = (
            ~(coeffs != 0).any(axis=1)
            if coeffs.shape[1]
            else np.ones(len(consts), dtype=bool)
        )
        eq_bad = (flags & constant & (consts != 0)).any()
        ge_bad = (~flags & constant & (consts < 0)).any()
        return bool(eq_bad or ge_bad)

    def witness(self):
        """A satisfying assignment, identical to the integer staged
        eliminator's — same stages, same interval midpoints."""
        point = [None] * len(self.variables)
        for j in range(len(self.variables) - 1, -1, -1):
            point[j] = self._pick_value(self.stages[j], j, point)
        return {
            var: value for var, value in zip(self.variables, point)
        }

    def _pick_value(self, stage, j, point):
        flags, coeffs, consts = stage
        lower = None
        upper = None
        for i in range(len(consts)):
            c = int(coeffs[i, j])
            if c == 0:
                continue
            rest = Fraction(int(consts[i]))
            row = coeffs[i]
            for k in range(len(point)):
                coefficient = int(row[k])
                if coefficient and k != j:
                    rest += coefficient * point[k]
            bound = -rest / c
            if flags[i]:
                return bound
            if c > 0:
                lower = bound if lower is None else max(lower, bound)
            else:
                upper = bound if upper is None else min(upper, bound)
        if lower is not None and upper is not None:
            return (lower + upper) / 2
        if lower is not None:
            return lower
        if upper is not None:
            return upper
        return Fraction(0)
