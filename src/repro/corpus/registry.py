"""Corpus lookup helpers and query generation for empirical checks."""

from __future__ import annotations

from repro.lp.program import Program
from repro.lp.terms import Atom, Struct, make_list
from repro.corpus.programs import PROGRAMS


_BY_NAME = {program.name: program for program in PROGRAMS}


def all_programs():
    """Every corpus entry, in definition order."""
    return tuple(PROGRAMS)


def get_program(name):
    """Corpus entry by name (KeyError with a helpful list otherwise)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            "no corpus program %r; available: %s"
            % (name, ", ".join(sorted(_BY_NAME)))
        ) from None


def programs_with_tag(tag):
    """Corpus entries carrying *tag*."""
    return tuple(p for p in PROGRAMS if tag in p.tags)


def load(entry):
    """Parse a corpus entry's source into a Program."""
    return Program.from_text(entry.source)


def _peano(n):
    term = Atom(0)
    for _ in range(n):
        term = Struct("s", (term,))
    return term


def make_bound_term(kind, generator):
    """One random ground term of the given *kind* (see programs.py)."""
    random = generator._random  # deterministic, seeded by the caller
    if kind == "list":
        return generator.ground_list(max_length=6)
    if kind == "list_nonempty":
        return make_list([generator.constant()] + _elements(generator, 5))
    if kind == "int_list":
        return generator.sorted_integer_list(max_length=6)
    if kind == "bit_list":
        return make_list(
            Atom(random.randint(0, 1))
            for _ in range(random.randint(0, 8))
        )
    if kind == "peano":
        return _peano(random.randint(0, 12))
    if kind == "peano_small":
        return _peano(random.randint(0, 3))
    if kind == "peano_list":
        return make_list(_peano(random.randint(0, 4)) for _ in range(random.randint(0, 4)))
    if kind == "tree":
        return _leaf_tree(generator, depth=random.randint(0, 3))
    if kind == "ternary_tree":
        return _ternary_tree(generator, depth=random.randint(0, 3))
    if kind == "int_tree":
        return _int_tree(random, low=0, high=20, depth=random.randint(0, 3))
    if kind == "const":
        return generator.constant()
    if kind == "int":
        return generator.integer()
    if kind == "g_term":
        return Struct("g", (generator.constant(),))
    raise ValueError("unknown bound-term kind %r" % kind)


def _elements(generator, count):
    return [generator.constant() for _ in range(count)]


def _leaf_tree(generator, depth):
    """node/leaf tree used by flatten_tree."""
    if depth <= 0:
        return Struct("leaf", (generator.constant(),))
    return Struct(
        "node",
        (_leaf_tree(generator, depth - 1), _leaf_tree(generator, depth - 1)),
    )


def _ternary_tree(generator, depth):
    """t(L, V, R) tree with constant values (tmem)."""
    if depth <= 0:
        return Atom("nil")
    return Struct(
        "t",
        (
            _ternary_tree(generator, depth - 1),
            generator.constant(),
            _ternary_tree(generator, depth - 1),
        ),
    )


def _int_tree(random, low, high, depth):
    """t(L, V, R) search tree over integers; leaf atom is ``leaf``."""
    if depth <= 0:
        return Atom("leaf")
    return Struct(
        "t",
        (
            _int_tree(random, low, high, depth - 1),
            Atom(random.randint(low, high)),
            _int_tree(random, low, high, depth - 1),
        ),
    )


def make_query(entry, generator):
    """A random well-moded query atom for a corpus entry."""
    name, arity = entry.root
    kinds = iter(entry.bound_kinds)
    args = []
    for mode_char in entry.mode:
        if mode_char == "b":
            args.append(make_bound_term(next(kinds), generator))
        else:
            args.append(generator.fresh_var())
    if not args:
        return Atom(name)
    return Struct(name, tuple(args))
