"""The program corpus.

Conventions
-----------
- ``mode`` uses ``b``/``f`` per argument of the root predicate.
- ``terminating`` is the ground truth for the queried mode (None when
  genuinely input-dependent).
- ``expected`` maps method names (``paper``, ``naish83``,
  ``uvg88_spine``, ``single_arg_structural``) to ``PROVED``/``UNKNOWN``
  under the default structural norm.
- ``expected_by_norm`` optionally refines the paper method's verdict
  per norm (used by the norm-ablation experiment).
- ``bound_kinds`` aligns with the ``b`` positions of the mode and
  names a generator for empirical validation queries: ``list``,
  ``int_list``, ``peano``, ``tree``, ``const``, ``int``.
- ``requires_transform`` marks programs that need Appendix A
  preprocessing before the analyzer can succeed.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CorpusProgram:
    """One corpus entry: program text, mode, truth, expectations."""
    name: str
    source: str
    root: tuple
    mode: str
    terminating: object           # True / False / None
    expected: dict
    description: str
    tags: tuple = ()
    bound_kinds: tuple = ()
    expected_by_norm: dict = field(default_factory=dict)
    requires_transform: bool = False
    paper_ref: str = ""


P = "PROVED"
U = "UNKNOWN"


PROGRAMS = [
    CorpusProgram(
        name="append_bbf",
        source="""
            append([], Ys, Ys).
            append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
        """,
        root=("append", 3),
        mode="bbf",
        terminating=True,
        expected={"paper": P, "naish83": P, "uvg88_spine": P,
                  "single_arg_structural": P},
        description="List concatenation, forward mode.",
        tags=("list", "easy"),
        bound_kinds=("list", "list"),
    ),
    CorpusProgram(
        name="append_ffb",
        source="""
            append([], Ys, Ys).
            append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
        """,
        root=("append", 3),
        mode="ffb",
        terminating=True,
        expected={"paper": P, "naish83": P, "uvg88_spine": P,
                  "single_arg_structural": P},
        description="List concatenation run backwards: enumerate splits.",
        tags=("list", "easy", "reverse-mode"),
        bound_kinds=("list",),
    ),
    CorpusProgram(
        name="naive_reverse",
        source="""
            nrev([], []).
            nrev([X|Xs], R) :- nrev(Xs, R1), append(R1, [X], R).
            append([], Ys, Ys).
            append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
        """,
        root=("nrev", 2),
        mode="bf",
        terminating=True,
        expected={"paper": P, "naish83": P, "uvg88_spine": P,
                  "single_arg_structural": P},
        description="Quadratic list reverse.",
        tags=("list", "easy"),
        bound_kinds=("list",),
    ),
    CorpusProgram(
        name="reverse_accumulator",
        source="""
            rev(L, R) :- rev_acc(L, [], R).
            rev_acc([], A, A).
            rev_acc([X|Xs], A, R) :- rev_acc(Xs, [X|A], R).
        """,
        root=("rev", 2),
        mode="bf",
        terminating=True,
        expected={"paper": P, "naish83": P, "uvg88_spine": P,
                  "single_arg_structural": P},
        description="Linear reverse; the accumulator argument grows.",
        tags=("list", "easy", "accumulator"),
        bound_kinds=("list",),
    ),
    CorpusProgram(
        name="perm",
        source="""
            perm([], []).
            perm(P, [X|L]) :- append(E, [X|F], P), append(E, F, P1),
                              perm(P1, L).
            append([], Ys, Ys).
            append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
        """,
        root=("perm", 2),
        mode="bf",
        terminating=True,
        expected={"paper": P, "naish83": U, "uvg88_spine": U,
                  "single_arg_structural": U},
        description="Permutation generator (paper's Example 3.1): "
        "needs the inter-argument constraint append1+append2=append3; "
        "unprovable by the earlier published methods.",
        tags=("list", "interarg", "headline"),
        bound_kinds=("list",),
        paper_ref="Example 3.1 / 4.1",
    ),
    CorpusProgram(
        name="merge_variant",
        source="""
            merge([], Ys, Ys).
            merge(Xs, [], Xs).
            merge([X|Xs], [Y|Ys], [X|Zs]) :- X =< Y,
                                             merge([Y|Ys], Xs, Zs).
            merge([X|Xs], [Y|Ys], [Y|Zs]) :- Y =< X,
                                             merge(Ys, [X|Xs], Zs).
        """,
        root=("merge", 3),
        mode="bbf",
        terminating=True,
        expected={"paper": P, "naish83": U, "uvg88_spine": U,
                  "single_arg_structural": U},
        description="Order-preserving merge whose recursive calls swap "
        "the argument positions (paper's Example 5.1): no single "
        "argument decreases, but the sum of the two bound ones does.",
        tags=("list", "multi-arg", "headline"),
        bound_kinds=("int_list", "int_list"),
        paper_ref="Example 5.1",
    ),
    CorpusProgram(
        name="merge_classic",
        source="""
            merge([], Ys, Ys).
            merge(Xs, [], Xs).
            merge([X|Xs], [Y|Ys], [X|Zs]) :- X =< Y,
                                             merge(Xs, [Y|Ys], Zs).
            merge([X|Xs], [Y|Ys], [Y|Zs]) :- Y < X,
                                             merge([X|Xs], Ys, Zs).
        """,
        root=("merge", 3),
        mode="bbf",
        terminating=True,
        expected={"paper": P, "naish83": P, "uvg88_spine": U,
                  "single_arg_structural": U},
        description="Textbook merge: either the first or the second "
        "argument decreases depending on the rule — Naish's showcase.",
        tags=("list", "multi-arg"),
        bound_kinds=("int_list", "int_list"),
        paper_ref="Section 1.1 (Naish discussion)",
    ),
    CorpusProgram(
        name="expr_parser",
        source="""
            e(L, T) :- t(L, ['+'|C]), e(C, T).
            e(L, T) :- t(L, T).
            t(L, T) :- n(L, ['*'|C]), t(C, T).
            t(L, T) :- n(L, T).
            n(['('|A], T) :- e(A, [')'|T]).
            n([L|T], T) :- z(L).
        """,
        root=("e", 2),
        mode="bf",
        terminating=True,
        expected={"paper": P, "naish83": U, "uvg88_spine": U,
                  "single_arg_structural": U},
        description="Arithmetic expression parser (paper's Example "
        "6.1): mutual + nonlinear recursion; needs t1 >= 2+t2.",
        tags=("mutual", "nonlinear", "interarg", "headline"),
        bound_kinds=("list",),
        paper_ref="Example 6.1",
    ),
    CorpusProgram(
        name="example_a1",
        source="""
            p(g(X)) :- e(X).
            p(g(X)) :- q(f(X)).
            q(Y) :- p(Y).
            q(f(Z)) :- p(Z), q(Z).
        """,
        root=("p", 1),
        mode="b",
        terminating=True,
        expected={"paper": U, "naish83": U, "uvg88_spine": U,
                  "single_arg_structural": U},
        description="Paper's Example A.1: apparent mutual recursion "
        "with unchanged sizes; provable only after Appendix A "
        "transformations (safe unfolding + predicate splitting).",
        tags=("mutual", "transform", "headline"),
        bound_kinds=("g_term",),
        requires_transform=True,
        paper_ref="Example A.1",
    ),
    CorpusProgram(
        name="mergesort",
        source="""
            split([], [], []).
            split([X|Xs], [X|O], E) :- split(Xs, E, O).
            merge([], Ys, Ys).
            merge(Xs, [], Xs).
            merge([X|Xs], [Y|Ys], [X|Zs]) :- X =< Y,
                                             merge(Xs, [Y|Ys], Zs).
            merge([X|Xs], [Y|Ys], [Y|Zs]) :- Y < X,
                                             merge([X|Xs], Ys, Zs).
            msort([], []).
            msort([X], [X]).
            msort([X,Y|Zs], S) :- split([X,Y|Zs], L1, L2),
                                  msort(L1, S1), msort(L2, S2),
                                  merge(S1, S2, S).
        """,
        root=("msort", 2),
        mode="bf",
        terminating=True,
        expected={"paper": U, "naish83": U, "uvg88_spine": U,
                  "single_arg_structural": U},
        expected_by_norm={"structural": U, "list_length": P},
        description="Merge sort: halves come from split, so the "
        "decrease needs split's inter-argument constraints; under the "
        "structural norm a single huge element defeats the argument, "
        "under the list-length norm it goes through (with lambda = 2).",
        tags=("list", "interarg", "nonlinear", "norm-sensitive"),
        bound_kinds=("int_list",),
    ),
    CorpusProgram(
        name="quicksort",
        source="""
            part([], _, [], []).
            part([Y|Ys], X, [Y|L], G) :- Y =< X, part(Ys, X, L, G).
            part([Y|Ys], X, L, [Y|G]) :- X < Y, part(Ys, X, L, G).
            append([], Ys, Ys).
            append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
            qsort([], []).
            qsort([X|Xs], S) :- part(Xs, X, L, G), qsort(L, SL),
                                qsort(G, SG), append(SL, [X|SG], S).
        """,
        root=("qsort", 2),
        mode="bf",
        terminating=True,
        expected={"paper": P, "naish83": U, "uvg88_spine": U,
                  "single_arg_structural": U},
        description="Quicksort: both recursive calls are on partition "
        "outputs; needs part1 = part3 + part4 (inter-argument) and "
        "nonlinear-recursion handling.",
        tags=("list", "interarg", "nonlinear"),
        bound_kinds=("int_list",),
    ),
    CorpusProgram(
        name="split_list",
        source="""
            split([], [], []).
            split([X|Xs], [X|O], E) :- split(Xs, E, O).
        """,
        root=("split", 3),
        mode="bff",
        terminating=True,
        expected={"paper": P, "naish83": P, "uvg88_spine": P,
                  "single_arg_structural": P},
        description="Alternating list split.",
        tags=("list", "easy"),
        bound_kinds=("list",),
    ),
    CorpusProgram(
        name="flatten_tree",
        source="""
            append([], Ys, Ys).
            append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
            flatten(leaf(X), [X]).
            flatten(node(L, R), F) :- flatten(L, FL), flatten(R, FR),
                                      append(FL, FR, F).
        """,
        root=("flatten", 2),
        mode="bf",
        terminating=True,
        expected={"paper": P, "naish83": P, "uvg88_spine": U,
                  "single_arg_structural": P},
        description="Binary-tree flatten: the right-spine measure "
        "cannot bound the left child (the paper's remark that the "
        "spine norm is 'less natural for binary trees').",
        tags=("tree", "nonlinear", "norm-sensitive"),
        bound_kinds=("tree",),
    ),
    CorpusProgram(
        name="hanoi",
        source="""
            append([], Ys, Ys).
            append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
            hanoi(0, _, _, _, []).
            hanoi(s(N), A, B, C, M) :-
                hanoi(N, A, C, B, M1), hanoi(N, C, B, A, M2),
                append(M1, [mv(A, B)|M2], M).
        """,
        root=("hanoi", 5),
        mode="bbbbf",
        terminating=True,
        expected={"paper": P, "naish83": P, "uvg88_spine": P,
                  "single_arg_structural": P},
        description="Towers of Hanoi on Peano numerals: nonlinear "
        "recursion, first argument drops by one.",
        tags=("peano", "nonlinear"),
        # Small numerals only: the move list is exponential in the
        # first argument, and the engine's substitution copying makes
        # large instances quadratic in list length on top of that.
        bound_kinds=("peano_small", "const", "const", "const"),
    ),
    CorpusProgram(
        name="even_odd",
        source="""
            even(0).
            even(s(N)) :- odd(N).
            odd(s(N)) :- even(N).
        """,
        root=("even", 1),
        mode="b",
        terminating=True,
        expected={"paper": P, "naish83": P, "uvg88_spine": P,
                  "single_arg_structural": P},
        description="Mutual recursion on Peano numerals.",
        tags=("peano", "mutual", "easy"),
        bound_kinds=("peano",),
    ),
    CorpusProgram(
        name="ackermann",
        source="""
            ack(0, N, s(N)).
            ack(s(M), 0, R) :- ack(M, s(0), R).
            ack(s(M), s(N), R) :- ack(s(M), N, R1), ack(M, R1, R).
        """,
        root=("ack", 3),
        mode="bbf",
        terminating=True,
        expected={"paper": U, "naish83": U, "uvg88_spine": U,
                  "single_arg_structural": U},
        description="Ackermann: terminates by a lexicographic order "
        "no single linear combination captures (the second recursive "
        "call's middle argument is an unbounded intermediate result) — "
        "a Section 7 limitation for every method here.",
        tags=("peano", "nonlinear", "limitation"),
        bound_kinds=("peano_small", "peano_small"),
    ),
    CorpusProgram(
        name="list_member",
        source="""
            member(X, [X|_]).
            member(X, [_|T]) :- member(X, T).
        """,
        root=("member", 2),
        mode="fb",
        terminating=True,
        expected={"paper": P, "naish83": P, "uvg88_spine": P,
                  "single_arg_structural": P},
        description="List membership, enumerate elements of a bound list.",
        tags=("list", "easy"),
        bound_kinds=("list",),
    ),
    CorpusProgram(
        name="select",
        source="""
            select(X, [X|T], T).
            select(X, [H|T], [H|R]) :- select(X, T, R).
        """,
        root=("select", 3),
        mode="fbf",
        terminating=True,
        expected={"paper": P, "naish83": P, "uvg88_spine": P,
                  "single_arg_structural": P},
        description="Nondeterministic element selection.",
        tags=("list", "easy"),
        bound_kinds=("list",),
    ),
    CorpusProgram(
        name="subset_check",
        source="""
            member(X, [X|_]).
            member(X, [_|T]) :- member(X, T).
            subset([], _).
            subset([X|Xs], Ys) :- member(X, Ys), subset(Xs, Ys).
        """,
        root=("subset", 2),
        mode="bb",
        terminating=True,
        expected={"paper": P, "naish83": P, "uvg88_spine": P,
                  "single_arg_structural": P},
        description="Subset test over bound lists.",
        tags=("list", "easy"),
        bound_kinds=("list", "list"),
    ),
    CorpusProgram(
        name="last_element",
        source="""
            last([X], X).
            last([_|T], X) :- last(T, X).
        """,
        root=("last", 2),
        mode="bf",
        terminating=True,
        expected={"paper": P, "naish83": P, "uvg88_spine": P,
                  "single_arg_structural": P},
        description="Last element of a list.",
        tags=("list", "easy"),
        bound_kinds=("list",),
    ),
    CorpusProgram(
        name="delete_all",
        source="""
            delete([], _, []).
            delete([X|T], X, R) :- delete(T, X, R).
            delete([H|T], X, [H|R]) :- H \\= X, delete(T, X, R).
        """,
        root=("delete", 3),
        mode="bbf",
        terminating=True,
        expected={"paper": P, "naish83": P, "uvg88_spine": P,
                  "single_arg_structural": P},
        description="Delete every occurrence of an element.",
        tags=("list", "easy"),
        bound_kinds=("list", "const"),
    ),
    CorpusProgram(
        name="suffix_enum",
        source="""
            suffix(Xs, Xs).
            suffix(Xs, [_|Ys]) :- suffix(Xs, Ys).
        """,
        root=("suffix", 2),
        mode="fb",
        terminating=True,
        expected={"paper": P, "naish83": P, "uvg88_spine": P,
                  "single_arg_structural": P},
        description="Enumerate suffixes of a bound list.",
        tags=("list", "easy"),
        bound_kinds=("list",),
    ),
    CorpusProgram(
        name="palindrome",
        source="""
            append([], Ys, Ys).
            append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
            pal([]).
            pal([_]).
            pal([X|Xs]) :- append(M, [X], Xs), pal(M).
        """,
        root=("pal", 1),
        mode="b",
        terminating=True,
        expected={"paper": P, "naish83": U, "uvg88_spine": U,
                  "single_arg_structural": U},
        description="Palindrome check peeling both ends: the middle "
        "list M relates to the input only through append's "
        "inter-argument constraint.",
        tags=("list", "interarg"),
        bound_kinds=("list",),
    ),
    CorpusProgram(
        name="tree_member",
        source="""
            tmem(X, t(_, X, _)).
            tmem(X, t(L, _, _)) :- tmem(X, L).
            tmem(X, t(_, _, R)) :- tmem(X, R).
        """,
        root=("tmem", 2),
        mode="fb",
        terminating=True,
        expected={"paper": P, "naish83": P, "uvg88_spine": U,
                  "single_arg_structural": P},
        description="Binary search-tree membership: left-subtree "
        "descent defeats the right-spine measure.",
        tags=("tree", "norm-sensitive"),
        bound_kinds=("ternary_tree",),
    ),
    CorpusProgram(
        name="tree_insert",
        source="""
            insert(X, leaf, t(leaf, X, leaf)).
            insert(X, t(L, V, R), t(L1, V, R)) :- X =< V,
                                                  insert(X, L, L1).
            insert(X, t(L, V, R), t(L, V, R1)) :- V < X,
                                                  insert(X, R, R1).
        """,
        root=("insert", 3),
        mode="bbf",
        terminating=True,
        expected={"paper": P, "naish83": P, "uvg88_spine": U,
                  "single_arg_structural": P},
        description="Binary search-tree insertion.",
        tags=("tree",),
        bound_kinds=("int", "int_tree"),
    ),
    CorpusProgram(
        name="fib_peano",
        source="""
            add(0, Y, Y).
            add(s(X), Y, s(Z)) :- add(X, Y, Z).
            fib(0, 0).
            fib(s(0), s(0)).
            fib(s(s(N)), F) :- fib(s(N), F1), fib(N, F2),
                               add(F1, F2, F).
        """,
        root=("fib", 2),
        mode="bf",
        terminating=True,
        expected={"paper": P, "naish83": P, "uvg88_spine": P,
                  "single_arg_structural": P},
        description="Fibonacci on Peano numerals: nonlinear recursion "
        "with plain structural decrease.",
        tags=("peano", "nonlinear"),
        bound_kinds=("peano_small",),
    ),
    CorpusProgram(
        name="gcd_euclid",
        source="""
            leq(0, _).
            leq(s(X), s(Y)) :- leq(X, Y).
            less(0, s(_)).
            less(s(X), s(Y)) :- less(X, Y).
            sub(X, 0, X).
            sub(s(X), s(Y), Z) :- sub(X, Y, Z).
            mod(X, Y, X) :- less(X, Y).
            mod(X, Y, R) :- leq(Y, X), less(0, Y), sub(X, Y, Z),
                            mod(Z, Y, R).
            gcd(X, 0, X).
            gcd(X, s(Y), G) :- mod(X, s(Y), R), gcd(s(Y), R, G).
        """,
        root=("gcd", 3),
        mode="bbf",
        terminating=True,
        expected={"paper": P, "naish83": U, "uvg88_spine": U,
                  "single_arg_structural": U},
        description="Euclid's algorithm on Peano numerals: gcd's "
        "decrease rests on mod's inter-argument constraint (remainder "
        "smaller than divisor), itself derived through less/leq/sub.",
        tags=("peano", "interarg", "deep-pipeline"),
        bound_kinds=("peano", "peano"),
    ),
    CorpusProgram(
        name="sumlist_peano",
        source="""
            add(0, Y, Y).
            add(s(X), Y, s(Z)) :- add(X, Y, Z).
            sumlist([], 0).
            sumlist([X|Xs], S) :- sumlist(Xs, S1), add(X, S1, S).
        """,
        root=("sumlist", 2),
        mode="bf",
        terminating=True,
        expected={"paper": P, "naish83": P, "uvg88_spine": P,
                  "single_arg_structural": P},
        description="Sum of a list of Peano numerals.",
        tags=("list", "peano", "easy"),
        bound_kinds=("peano_list",),
    ),
    CorpusProgram(
        name="zip_lists",
        source="""
            zip([], [], []).
            zip([X|Xs], [Y|Ys], [p(X, Y)|Zs]) :- zip(Xs, Ys, Zs).
        """,
        root=("zip", 3),
        mode="bbf",
        terminating=True,
        expected={"paper": P, "naish83": P, "uvg88_spine": P,
                  "single_arg_structural": P},
        description="Pairwise zip of two lists.",
        tags=("list", "easy"),
        bound_kinds=("list", "list"),
    ),
    CorpusProgram(
        name="double_list",
        source="""
            add(0, Y, Y).
            add(s(X), Y, s(Z)) :- add(X, Y, Z).
            double([], []).
            double([X|Xs], [Y|Ys]) :- add(X, X, Y), double(Xs, Ys).
        """,
        root=("double", 2),
        mode="bf",
        terminating=True,
        expected={"paper": P, "naish83": P, "uvg88_spine": P,
                  "single_arg_structural": P},
        description="Map doubling over a Peano-numeral list.",
        tags=("list", "peano", "easy"),
        bound_kinds=("peano_list",),
    ),
    CorpusProgram(
        name="binary_increment",
        source="""
            inc([], [1]).
            inc([0|B], [1|B]).
            inc([1|B], [0|B1]) :- inc(B, B1).
        """,
        root=("inc", 2),
        mode="bf",
        terminating=True,
        expected={"paper": P, "naish83": P, "uvg88_spine": P,
                  "single_arg_structural": P},
        description="Binary counter increment over little-endian bit "
        "lists (carry propagation).",
        tags=("list", "easy"),
        bound_kinds=("bit_list",),
    ),
    CorpusProgram(
        name="subsets_enum",
        source="""
            subsets([], []).
            subsets([X|Xs], [X|Ys]) :- subsets(Xs, Ys).
            subsets([_|Xs], Ys) :- subsets(Xs, Ys).
        """,
        root=("subsets", 2),
        mode="bf",
        terminating=True,
        expected={"paper": P, "naish83": P, "uvg88_spine": P,
                  "single_arg_structural": P},
        description="Enumerate all sublists (exponentially many "
        "answers, each derivation linear).",
        tags=("list", "easy"),
        bound_kinds=("list",),
    ),
    CorpusProgram(
        name="list_difference",
        source="""
            member(X, [X|_]).
            member(X, [_|T]) :- member(X, T).
            diff([], _, []).
            diff([X|Xs], Ys, [X|Zs]) :- \\+ member(X, Ys),
                                        diff(Xs, Ys, Zs).
            diff([X|Xs], Ys, Zs) :- member(X, Ys), diff(Xs, Ys, Zs).
        """,
        root=("diff", 3),
        mode="bbf",
        terminating=True,
        expected={"paper": P, "naish83": P, "uvg88_spine": P,
                  "single_arg_structural": P},
        description="List difference: a negative subgoal precedes the "
        "recursion and is discarded per Appendix D.",
        tags=("list", "negation", "easy"),
        bound_kinds=("list", "list"),
        paper_ref="Appendix D",
    ),
    CorpusProgram(
        name="even_via_negation",
        source="""
            even_n(0).
            even_n(s(N)) :- \\+ even_n(N).
        """,
        root=("even_n", 1),
        mode="b",
        terminating=True,
        expected={"paper": P, "naish83": P, "uvg88_spine": P,
                  "single_arg_structural": P},
        description="Evenness through negation as failure: the "
        "recursive subgoal itself is negative and 'is treated as "
        "though it were positive' (Appendix D).",
        tags=("peano", "negation"),
        bound_kinds=("peano",),
        paper_ref="Appendix D",
    ),
    # -- non-terminating / limitation entries -----------------------------
    CorpusProgram(
        name="loop_direct",
        source="p(X) :- p(X).",
        root=("p", 1),
        mode="b",
        terminating=False,
        expected={"paper": U, "naish83": U, "uvg88_spine": U,
                  "single_arg_structural": U},
        description="Direct infinite loop; no measure can decrease.",
        tags=("nonterminating",),
        bound_kinds=("const",),
    ),
    CorpusProgram(
        name="loop_growing",
        source="q([X|L]) :- q([X, X|L]).",
        root=("q", 1),
        mode="b",
        terminating=False,
        expected={"paper": U, "naish83": U, "uvg88_spine": U,
                  "single_arg_structural": U},
        description="The bound argument grows on every call.",
        tags=("nonterminating",),
        bound_kinds=("list_nonempty",),
    ),
    CorpusProgram(
        name="loop_swap",
        source="p(X, Y) :- p(Y, X).",
        root=("p", 2),
        mode="bb",
        terminating=False,
        expected={"paper": U, "naish83": U, "uvg88_spine": U,
                  "single_arg_structural": U},
        description="Arguments swap forever; total size is constant.",
        tags=("nonterminating",),
        bound_kinds=("const", "const"),
    ),
    CorpusProgram(
        name="loop_mutual",
        source="""
            p(X) :- q(X).
            q(X) :- p(X).
        """,
        root=("p", 1),
        mode="b",
        terminating=False,
        expected={"paper": U, "naish83": U, "uvg88_spine": U,
                  "single_arg_structural": U},
        description="Mutual loop with unchanged argument: both thetas "
        "are forced to 0, producing the zero-weight-cycle rejection of "
        "Section 6.1.",
        tags=("nonterminating", "mutual", "zero-cycle"),
        bound_kinds=("const",),
    ),
    CorpusProgram(
        name="tc_left_recursive",
        source="""
            e(a, b).
            e(b, c).
            e(c, d).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- tc(X, Z), e(Z, Y).
        """,
        root=("tc", 2),
        mode="bf",
        terminating=False,
        expected={"paper": U, "naish83": U, "uvg88_spine": U,
                  "single_arg_structural": U},
        description="Left-recursive transitive closure: loops under "
        "Prolog (the bound argument repeats unchanged), converges "
        "bottom-up — the paper's capture-rule motivation.",
        tags=("nonterminating", "datalog", "capture-rule"),
        bound_kinds=("const",),
        paper_ref="Section 1",
    ),
    CorpusProgram(
        name="count_up",
        source="c(N) :- c(s(N)).",
        root=("c", 1),
        mode="b",
        terminating=False,
        expected={"paper": U, "naish83": U, "uvg88_spine": U,
                  "single_arg_structural": U},
        description="Counter that only grows.",
        tags=("nonterminating", "peano"),
        bound_kinds=("peano_small",),
    ),
    CorpusProgram(
        name="seesaw",
        source="""
            p(0).
            p(X) :- q(s(X)).
            q(s(s(s(X)))) :- p(X).
        """,
        root=("p", 1),
        mode="b",
        terminating=True,
        expected={"paper": U, "naish83": U, "uvg88_spine": U,
                  "single_arg_structural": U},
        description="The argument GROWS from p to q and shrinks by "
        "three from q back to p: every cycle still decreases, but "
        "only negative theta weights (Appendix C) can express it — "
        "the standard 0/1 assignment forces theta_pq = 0 and the "
        "combined system is infeasible.  The paper says 'no natural "
        "examples are known'; this synthetic one exercises the "
        "machinery.",
        tags=("peano", "mutual", "negative-theta"),
        bound_kinds=("peano_small",),
        paper_ref="Appendix C",
    ),
    CorpusProgram(
        name="bounded_counter",
        source="""
            less(0, s(_)).
            less(s(X), s(Y)) :- less(X, Y).
            count(N, Max, [N]) :- less(N, Max), \\+ less(s(N), Max).
            count(N, Max, [N|R]) :- less(s(N), Max),
                                    count(s(N), Max, R).
        """,
        root=("count", 3),
        mode="bbf",
        terminating=True,
        expected={"paper": U, "naish83": U, "uvg88_spine": U,
                  "single_arg_structural": U},
        description="Counts N up to a bound: terminates because "
        "Max - N shrinks, but that combination needs a negative "
        "lambda coefficient the method forbids (a Section 7 "
        "limitation).",
        tags=("peano", "limitation"),
        bound_kinds=("peano_small", "peano"),
    ),
]
