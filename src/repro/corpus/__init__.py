"""Corpus of classic logic programs with expected verdicts.

Each entry records the program text, the queried predicate and mode,
the ground truth (does the query terminate under Prolog's strategy?),
and the expected verdict of the paper's method and of each baseline —
the raw material for the method-comparison experiment (E2) and the
empirical-validation experiment (F2).
"""

from repro.corpus.programs import CorpusProgram, PROGRAMS
from repro.corpus.registry import (
    all_programs,
    get_program,
    programs_with_tag,
)

__all__ = [
    "CorpusProgram",
    "PROGRAMS",
    "all_programs",
    "get_program",
    "programs_with_tag",
]
