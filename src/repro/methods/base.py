"""Pluggable termination provers: the method protocol + name registry.

Modeled on the :mod:`repro.solve` backend registry
(``register_backend``/``get_backend``): methods register themselves by
name via the :func:`register_method` class decorator, drivers resolve
names with :func:`get_method`, and unknown names fail with one clear
:class:`~repro.errors.AnalysisError` listing what is registered.

A :class:`TerminationMethod` maps a program plus a ``(root, mode)``
query to an :class:`~repro.core.pipeline.AnalysisResult`, under the
three-valued verdict model:

``PROVED``
    every derivation of every mode-compliant query is finite (a sound
    sufficient criterion fired);
``DISPROVED``
    some mode-compliant query of the root has an infinite derivation
    (a looping derivation was exhibited);
``UNKNOWN``
    neither — the method's criterion or budget did not decide.

``PROVED`` and ``DISPROVED`` are mutually exclusive for a sound method
set: a program cannot both terminate on every mode-compliant query and
diverge on one.  The registered provers (``argsize``, ``sizechange``,
``nonterm``, ``portfolio``) each document the guarantee they offer in
their own module; ``docs/METHODS.md`` has the comparison table.

:class:`MethodRunner` is what the drivers (CLI, batch workers, serve
workers) use: it binds settings + an optional certificate cache to the
resolved method once, keeps runner-scoped scratch (``argsize`` reuses
one analyzer per program object, preserving the batch layer's
analyzer-reuse-per-source behaviour), and wraps every analysis in the
``method.<name>.attempted`` / ``method.<name>.decided`` counters and
the ``method.<name>.ms`` latency histogram.
"""

from __future__ import annotations

from time import perf_counter

from repro.errors import AnalysisError
from repro.obs import METRICS
from repro.core.pipeline import DISPROVED, PROVED

__all__ = [
    "TerminationMethod",
    "register_method",
    "available_methods",
    "get_method",
    "observed_analyze",
    "MethodRunner",
    "run_method",
]

_METHODS = {}


class TerminationMethod:
    """Abstract termination prover.

    Subclasses set :attr:`name` (the registry key) and :attr:`cost`
    (a relative rank the portfolio uses to order attempts — lower is
    cheaper) and implement :meth:`analyze`.
    """

    name = "abstract"
    cost = 100

    def analyze(self, program, root, mode, settings=None,
                certificate_cache=None, request_id=None, state=None):
        """Analyze termination of the *mode* query on *root*.

        Returns an :class:`~repro.core.pipeline.AnalysisResult` whose
        ``status`` is PROVED, DISPROVED, or UNKNOWN and whose
        ``method`` names this prover.  *state*, when given, is a
        runner-scoped dict the method may use as scratch across calls
        (e.g. caching a per-program analyzer); it must never affect
        verdicts.
        """
        raise NotImplementedError


def register_method(cls):
    """Class decorator adding a :class:`TerminationMethod` subclass to
    the registry under its ``name`` (the latest registration wins)."""
    if not (isinstance(cls, type) and issubclass(cls, TerminationMethod)):
        raise TypeError(
            "register_method expects a TerminationMethod subclass, got %r"
            % (cls,)
        )
    _METHODS[cls.name] = cls
    return cls


def available_methods():
    """Registered method names, sorted."""
    return tuple(sorted(_METHODS))


def get_method(name, **options):
    """Resolve a method by name (instances pass through verbatim).

    *options* are forwarded to the method constructor (budget knobs).
    Unknown names raise :class:`~repro.errors.AnalysisError`, matching
    ``get_backend``'s error style.
    """
    if isinstance(name, TerminationMethod):
        return name
    cls = _METHODS.get(name)
    if cls is None:
        raise AnalysisError(
            "unknown termination method %r; choose from %s"
            % (name, ", ".join(available_methods()))
        )
    return cls(**options)


def observed_analyze(method, program, root, mode, settings=None,
                     certificate_cache=None, request_id=None, state=None):
    """Run one method analysis under the standard obs instrumentation.

    Increments ``method.<name>.attempted`` before and
    ``method.<name>.decided`` after a conclusive (PROVED/DISPROVED)
    verdict, and feeds the wall-clock latency into the
    ``method.<name>.ms`` histogram.  The portfolio routes its
    sub-method attempts through here too, so the counters account for
    every attempt, not just top-level dispatches.
    """
    if METRICS.enabled:
        METRICS.counter("method.%s.attempted" % method.name).inc()
    started = perf_counter()
    result = method.analyze(
        program, root, mode, settings=settings,
        certificate_cache=certificate_cache, request_id=request_id,
        state=state,
    )
    if METRICS.enabled:
        METRICS.histogram("method.%s.ms" % method.name).observe(
            (perf_counter() - started) * 1000
        )
        if result.status in (PROVED, DISPROVED):
            METRICS.counter("method.%s.decided" % method.name).inc()
    return result


class MethodRunner:
    """Settings + certificate cache + resolved method, bound once.

    The drivers' dispatch point: construct one runner per
    (settings, cache) pair and call :meth:`analyze` per query.  The
    runner owns a scratch dict that methods thread their per-program
    state through — consecutive analyses of the *same program object*
    (the batch layer's chunking guarantees this for same-source items)
    reuse the underlying analyzer exactly as the pre-methods code did.
    """

    def __init__(self, settings=None, certificate_cache=None):
        from repro.core.analyzer import AnalyzerSettings

        self.settings = settings or AnalyzerSettings()
        self.method = get_method(getattr(self.settings, "method", "argsize"))
        self.certificate_cache = certificate_cache
        self._state = {}

    def analyze(self, program, root, mode, request_id=None):
        """Analyze one query through the bound method, instrumented."""
        return observed_analyze(
            self.method, program, tuple(root), str(mode),
            settings=self.settings,
            certificate_cache=self.certificate_cache,
            request_id=request_id, state=self._state,
        )


def run_method(program, root, mode, settings=None, certificate_cache=None,
               request_id=None):
    """One-shot convenience: resolve ``settings.method`` and analyze."""
    runner = MethodRunner(settings, certificate_cache=certificate_cache)
    return runner.analyze(program, root, mode, request_id=request_id)
