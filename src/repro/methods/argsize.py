"""The paper's argument-size analysis as a registered method.

A thin adapter over :class:`~repro.core.analyzer.TerminationAnalyzer`
— the Sohn & Van Gelder pipeline becomes one prover among several,
with no behaviour change: verdicts, certificates, traces, and
certificate-cache interaction are exactly those of the pipeline (the
identity is pinned by tests against the 42-program corpus).

Guarantee: ``PROVED`` comes with a verifiable lambda certificate;
``UNKNOWN`` never means "diverges"; ``DISPROVED`` is never emitted.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.analyzer import AnalyzerSettings, TerminationAnalyzer
from repro.methods.base import TerminationMethod, register_method


@register_method
class ArgSizeMethod(TerminationMethod):
    """Linear argument-size ranking via LP duality (the paper)."""

    name = "argsize"
    cost = 10

    def analyze(self, program, root, mode, settings=None,
                certificate_cache=None, request_id=None, state=None):
        settings = settings or AnalyzerSettings()
        if getattr(settings, "method", "argsize") != "argsize":
            # Normalize so certificate fingerprints stay honest when the
            # portfolio (or any other method) delegates here: the same
            # argument-size proof gets the same cache key either way.
            settings = replace(settings, method="argsize")
        analyzer = None
        if state is not None:
            cached = state.get("argsize.analyzer")
            if cached is not None and cached[0] is program:
                analyzer = cached[1]
        if analyzer is None:
            analyzer = TerminationAnalyzer(
                program, settings=settings,
                certificate_cache=certificate_cache,
            )
            if state is not None:
                state["argsize.analyzer"] = (program, analyzer)
        result = analyzer.analyze(tuple(root), mode, request_id=request_id)
        result.method = self.name
        return result
