"""Pluggable termination provers and the per-SCC portfolio.

The method registry mirrors the :mod:`repro.solve` backend registry:
provers register under a name, drivers resolve ``settings.method``
through :func:`get_method` / :class:`MethodRunner`, and unknown names
fail at construction with the registered names listed.

Registered methods (see ``docs/METHODS.md`` for the guarantees):

``argsize``
    The paper's argument-size analysis — a thin adapter over
    :class:`~repro.core.analyzer.TerminationAnalyzer`; certifying,
    two-valued, byte-identical to driving the pipeline directly.
``sizechange``
    Size-change termination / local level mappings over the bound
    argument sizes; proves lexicographic and multiset descents a
    single linear ranking misses (e.g. ``ackermann``).
``nonterm``
    A non-termination detector: static loop inference over leftmost
    binary unfoldings plus dynamic ancestor subsumption on the SLD
    engine; upgrades the verdict model to PROVED/DISPROVED/UNKNOWN.
``portfolio``
    Cheap-first race of the above with per-SCC provenance and
    cooperative budgets.
"""

from repro.methods.base import (
    MethodRunner,
    TerminationMethod,
    available_methods,
    get_method,
    observed_analyze,
    register_method,
    run_method,
)
from repro.methods.argsize import ArgSizeMethod
from repro.methods.sizechange import SizeChangeMethod
from repro.methods.nonterm import (
    LoopingSLDEngine,
    NonTerminationMethod,
    find_static_loops,
    hunt_looping_derivation,
    is_pure_program,
)
from repro.methods.portfolio import PortfolioMethod

__all__ = [
    "TerminationMethod",
    "register_method",
    "available_methods",
    "get_method",
    "observed_analyze",
    "MethodRunner",
    "run_method",
    "ArgSizeMethod",
    "SizeChangeMethod",
    "NonTerminationMethod",
    "PortfolioMethod",
    "LoopingSLDEngine",
    "find_static_loops",
    "hunt_looping_derivation",
    "is_pure_program",
]
