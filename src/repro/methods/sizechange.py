"""Size-change termination prover (local level mappings).

Where the argument-size method demands one *global* linear ranking
function per SCC, size-change termination (Lee–Jones–Ben-Amram; the
Dershowitz et al. local-level-mapping view) only needs *some* bound
argument to descend along every infinite call sequence — which covers
lexicographic and multiset descents a single linear combination
misses (``ackermann`` is the canonical example).

Per recursive SCC of the adorned call graph, every rule × recursive
subgoal combination (the same Eq. 1 data the pipeline assembles via
:func:`~repro.core.rule_system.build_rule_systems`) yields one
*size-change graph*: a bipartite graph over the bound argument
positions of the caller and callee with an arc ``i -> j`` when the
call provably never increases (weak) or always strictly decreases
(strict) position ``j`` relative to position ``i``.  Arcs are
justified two ways, both sound because argument sizes are nonnegative
integers:

1. **norm dominance** — the size-polynomial difference ``x_i - y_j``
   has all variable coefficients >= 0 (strict when its constant is
   >= 1, weak when >= 0);
2. **LP entailment** — the imported inter-argument constraints of the
   preceding subgoals (the [VG90] substrate, already computed) plus
   size nonnegativity make ``x_i - y_j <= 0`` (strict) or ``<= -1``
   (weak) infeasible, decided by the configured feasibility backend.

The SCT criterion then closes the graph set under composition and
checks that every idempotent self-loop graph carries a strict arc
``i -> i``.  Budgets: the closure is capped at ``closure_limit``
graphs and LP entailment at ``lp_calls`` solves per SCC; exceeding
either degrades to UNKNOWN, never to an unsound verdict.

Guarantee: ``PROVED`` is sound (every mode-compliant derivation is
finite) but carries no lambda certificate — ``AnalysisResult.proof``
is None for SCCs proved here.  ``DISPROVED`` is never emitted: a
failing SCT check means only that *this* criterion cannot rank the
loops.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.adornment import adorned_call_graph
from repro.core.analyzer import AnalyzerSettings
from repro.core.certificate import SCCProof
from repro.core.pipeline import (
    PROVED,
    UNKNOWN,
    AnalysisPipeline,
    AnalysisResult,
    AnalysisTrace,
    SCCResult,
)
from repro.core.rule_system import build_rule_systems
from repro.graph.scc import (
    is_recursive_component,
    strongly_connected_components,
)
from repro.linalg.constraints import Constraint, ConstraintSystem
from repro.linalg.fourier_motzkin import use_kernel
from repro.linalg.linexpr import LinearExpr
from repro.methods.base import TerminationMethod, register_method

#: Default per-SCC budgets (degrade to UNKNOWN, never block).
DEFAULT_CLOSURE_LIMIT = 2048
DEFAULT_LP_CALLS = 64


@register_method
class SizeChangeMethod(TerminationMethod):
    """Size-change termination over bound argument positions."""

    name = "sizechange"
    cost = 20

    def __init__(self, closure_limit=DEFAULT_CLOSURE_LIMIT,
                 lp_calls=DEFAULT_LP_CALLS):
        self.closure_limit = int(closure_limit)
        self.lp_calls = int(lp_calls)

    def analyze(self, program, root, mode, settings=None,
                certificate_cache=None, request_id=None, state=None):
        settings = settings or AnalyzerSettings()
        base = replace(settings, method="argsize")
        # The pipeline supplies exactly the shared machinery needed —
        # the resolved norm/backend and the (process-cached) inter-
        # argument environment; its SCC stages are never run here.
        pipeline = AnalysisPipeline(program, base, certificate_cache=None)
        root = tuple(root)
        mode = str(mode)
        trace = AnalysisTrace()
        attrs = dict(
            root="%s/%d" % root, mode=mode, norm=pipeline.norm.name,
            method=self.name,
        )
        if request_id is not None:
            attrs["request_id"] = str(request_id)
        with trace.span("analyze", **attrs):
            with trace.timed("adorn") as event:
                graph, nodes = adorned_call_graph(program, root, mode)
                components = list(strongly_connected_components(graph))
                event.rows_out = len(nodes)
            with trace.timed("interarg") as event:
                environment = pipeline.environment
                event.rows_out = sum(
                    len(poly.system) for _, poly in environment.items()
                )
            defined = program.defined_indicators()
            scc_results = []
            for component in components:
                members = tuple(
                    node for node in component if node.indicator in defined
                )
                if not members:
                    continue
                if not is_recursive_component(graph, component):
                    scc_results.append(SCCResult(
                        members=members,
                        status=PROVED,
                        proof=SCCProof(
                            members=members,
                            norm=pipeline.norm.name,
                            lambdas={},
                            thetas={},
                            trivially_nonrecursive=True,
                        ),
                        method=self.name,
                    ))
                    continue
                with trace.span(
                    "sizechange.scc",
                    members=", ".join(str(m) for m in members),
                ), use_kernel(pipeline.fm_kernel):
                    scc_results.append(self._prove_scc(
                        program, members, environment, pipeline
                    ))
            overall = PROVED
            for result in scc_results:
                if not result.proved:
                    overall = UNKNOWN
            return AnalysisResult(
                program=program,
                root=root,
                root_mode=mode,
                status=overall,
                scc_results=scc_results,
                nodes=tuple(nodes),
                environment=environment,
                norm=pipeline.norm.name,
                trace=trace,
                method=self.name,
            )

    # -- one SCC ---------------------------------------------------------------

    def _prove_scc(self, program, members, environment, pipeline):
        systems = []
        for node in members:
            for clause in program.clauses_for(node.indicator):
                systems.extend(build_rule_systems(
                    clause, node, members, environment, pipeline.norm
                ))
        if not systems:
            return SCCResult(
                members=members,
                status=UNKNOWN,
                reason="no rule/recursive-subgoal combinations found",
                method=self.name,
            )
        budget = [self.lp_calls]
        graphs = {
            self._graph_of(system, pipeline.backend, budget)
            for system in systems
        }
        verdict = self._sct_terminates(graphs)
        if verdict is None:
            return SCCResult(
                members=members,
                status=UNKNOWN,
                reason="size-change closure exceeded %d graphs"
                % self.closure_limit,
                method=self.name,
            )
        if verdict:
            return SCCResult(
                members=members,
                status=PROVED,
                reason="size-change termination: every idempotent "
                "self-composition has a strict descent arc",
                method=self.name,
            )
        return SCCResult(
            members=members,
            status=UNKNOWN,
            reason="an idempotent size-change graph has no strict "
            "self-arc; no local level mapping exists over the bound "
            "argument sizes",
            method=self.name,
        )

    # -- size-change graphs ----------------------------------------------------

    def _graph_of(self, system, backend, budget):
        """One size-change graph for an Eq. 1 rule system.

        Arcs map the caller's bound positions to the callee's;
        ``True`` marks strict descent.
        """
        arcs = {}
        imported = list(system.imported)
        for x_expr, i in zip(system.x_exprs, system.x_positions):
            for y_expr, j in zip(system.y_exprs, system.y_positions):
                strict = _dominates(x_expr, y_expr, strictly=True)
                weak = strict or _dominates(x_expr, y_expr, strictly=False)
                if not weak and imported and budget[0] > 0:
                    if self._entailed(x_expr, y_expr, imported, backend,
                                      budget, strictly=True):
                        strict = weak = True
                    elif self._entailed(x_expr, y_expr, imported, backend,
                                        budget, strictly=False):
                        weak = True
                if weak:
                    arcs[(i, j)] = arcs.get((i, j), False) or strict
        return (
            system.head_node,
            system.subgoal_node,
            frozenset((i, j, s) for (i, j), s in arcs.items()),
        )

    def _entailed(self, x_expr, y_expr, imported, backend, budget,
                  strictly):
        """Does ``imported /\\ sizes >= 0`` entail ``x > y`` (strict)
        or ``x >= y`` (weak)?  Decided by refuting the negation; sizes
        are integer-valued, so ``x - y > 0`` means ``x - y >= 1``."""
        budget[0] -= 1
        negation = ConstraintSystem(imported)
        variables = set(negation.variables())
        variables |= x_expr.variables() | y_expr.variables()
        for var in variables:
            negation.add(Constraint.ge(LinearExpr.of(var)))
        if strictly:
            negation.add(Constraint.ge(y_expr - x_expr))        # x <= y
        else:
            negation.add(Constraint.ge(y_expr - x_expr, 1))     # x <= y - 1
        return not backend.feasible_point(negation).feasible

    # -- the SCT decision ------------------------------------------------------

    def _sct_terminates(self, graphs):
        """Close under composition; None on budget overflow, else the
        SCT verdict (every idempotent self-graph strictly descends)."""
        closure = set(graphs)
        work = list(closure)
        while work:
            current = work.pop()
            for other in list(closure):
                for composed in (
                    _compose(current, other), _compose(other, current)
                ):
                    if composed is not None and composed not in closure:
                        closure.add(composed)
                        work.append(composed)
            if len(closure) > self.closure_limit:
                return None
        for graph in closure:
            src, dst, arcs = graph
            if src != dst:
                continue
            if _compose(graph, graph) != graph:
                continue  # only idempotent self-graphs matter (LJB theorem)
            if not any(i == j and strict for (i, j, strict) in arcs):
                return False
        return True


def _dominates(x_expr, y_expr, strictly):
    """Syntactic dominance of size polynomials: every variable
    coefficient of ``x - y`` nonnegative, constant >= 1 (strict) or
    >= 0 (weak).  Sound because sizes are nonnegative."""
    difference = x_expr - y_expr
    if any(coeff < 0 for _, coeff in difference.items()):
        return False
    return difference.const >= (1 if strictly else 0)


def _compose(first, second):
    """Standard size-change graph composition (strict wins per arc)."""
    src1, dst1, arcs1 = first
    src2, dst2, arcs2 = second
    if dst1 != src2:
        return None
    by_src = {}
    for (j, k, s2) in arcs2:
        by_src.setdefault(j, []).append((k, s2))
    arcs = {}
    for (i, j, s1) in arcs1:
        for (k, s2) in by_src.get(j, ()):
            strict = s1 or s2
            previous = arcs.get((i, k))
            if previous is None or (strict and not previous):
                arcs[(i, k)] = strict
    return (src1, dst2, frozenset((i, k, s) for (i, k), s in arcs.items()))
