"""Non-termination detector: DISPROVED verdicts from looping derivations.

Two cooperating detectors, both sound for the leftmost (Prolog)
selection rule the paper analyzes:

**Static loop inference over binary unfoldings.**  Each clause
``H :- B1, ...`` whose first body literal ``B1`` is a positive user
predicate contributes the *leftmost binary clause* ``H <- B1`` — exact
for the first resolution step: calling an instance of ``H`` calls the
corresponding instance of ``B1`` next.  Composing binary clauses
through their most general unifiers (budgeted breadth-first, deduped
up to variable renaming) yields derived binary clauses ``H <- B``
describing multi-step leftmost call chains.  A *loop* is a derived
self-clause whose body is an **instance of its head** (``B = H·theta``,
variants included): by induction, every call matching ``H`` reaches —
in one or more resolution steps — another call matching ``H``, so every
instance of ``H`` heads an infinite derivation.  When the loop head's
predicate is the analysis root and its free-mode positions are
distinct, independent variables, any grounding of the bound positions
is a mode-compliant diverging query — the exported witness.

**Dynamic ancestor subsumption on the SLD engine.**  A subclass of
:class:`~repro.lp.engine.SLDEngine` snapshots every user-predicate
call (current substitution applied, at call time) on an ancestor
stack and stops when the current call *subsumes* an open ancestor —
the ancestor is an instance of the current, strictly more general,
goal.  By the lifting lemma the more general goal can replay the
clause sequence that led from the ancestor to it, producing an
ever-more-general infinite chain: a real infinite branch of the SLD
tree.  The stack holds only *open* calls (entries are popped while a
call's solution is being consumed by its continuation and re-pushed
on backtracking), so sibling goals can never be mistaken for
ancestors.  The dynamic detector confirms static witnesses and hunts
loops the first-literal restriction misses, driving the engine's
existing depth/step budgets.

Both criteria argue "this branch of the SLD tree is infinite, and the
engine's depth-first search will walk it".  Cut breaks that argument
(``!`` can prune the looping branch), and so do negation and the
non-monotone builtins (``\\+``, ``==``, comparisons, ``is`` — a more
general goal can fail or error where the specific one succeeded,
invalidating the lifting replay).  The detector therefore refuses to
emit DISPROVED for programs that are not *pure* — any literal that is
negative, a cut, or a builtin other than ``=``/``true``/``fail``
gates the whole method to UNKNOWN.

Guarantee: ``DISPROVED`` means a mode-compliant query of the root
provably diverges (reason = the looping goal).  ``PROVED`` is never
emitted; programs whose loops stay out of reach of both detectors
come back UNKNOWN.
"""

from __future__ import annotations

import itertools

from repro.core.adornment import adorned_call_graph
from repro.core.analyzer import AnalyzerSettings
from repro.core.pipeline import (
    DISPROVED,
    UNKNOWN,
    AnalysisResult,
    AnalysisTrace,
    SCCResult,
)
from repro.errors import EngineLimitError, UnificationError
from repro.lp.engine import SLDEngine
from repro.lp.program import BUILTIN_PREDICATES, Clause, Literal
from repro.lp.terms import Atom, Struct, Var, term_variables
from repro.lp.unify import apply_subst, rename_apart, unify
from repro.methods.base import TerminationMethod, register_method

#: Default budgets: derived binary clauses explored statically, and the
#: SLD engine's per-query hunt budgets.
DEFAULT_COMPOSE_LIMIT = 512
DEFAULT_ENGINE_STEPS = 20000
DEFAULT_ENGINE_DEPTH = 200
#: Derived binary clauses whose head+body exceed this many term nodes
#: are dropped — composition can otherwise grow terms without bound
#: (e.g. ackermann's nested successors).  Dropping candidates only
#: loses loops, never soundness.
DEFAULT_TERM_NODE_LIMIT = 200
#: Ground candidate terms tried per bound position when probing the
#: root with program-derived queries.
_PROBE_TERMS_PER_POSITION = 2
_PROBE_QUERY_LIMIT = 8


# -- one-way matching ---------------------------------------------------------


def _match(general, specific, bindings):
    if isinstance(general, Var):
        bound = bindings.get(general)
        if bound is None:
            bindings[general] = specific
            return True
        return bound == specific
    if isinstance(general, Struct):
        return (
            isinstance(specific, Struct)
            and specific.functor == general.functor
            and len(specific.args) == len(general.args)
            and all(
                _match(g, s, bindings)
                for g, s in zip(general.args, specific.args)
            )
        )
    return general == specific


def is_instance_of(specific, general):
    """True when ``specific = general . theta`` for some substitution
    (variants included)."""
    return _match(general, specific, {})


# -- purity gate --------------------------------------------------------------

#: Builtins the loop criteria stay sound across: pure unification and
#: the constant outcomes.  Everything else (cut, negation, arithmetic,
#: term comparisons) can prune or reorder the looping branch.
_PURE_BUILTINS = frozenset({("=", 2), ("true", 0), ("fail", 0)})


def is_pure_program(program):
    """True when every body literal is positive and every builtin used
    is loop-criterion-safe (see module docstring)."""
    for clause in program.clauses:
        for literal in clause.body:
            if not literal.positive:
                return False
            indicator = literal.indicator
            if indicator in BUILTIN_PREDICATES:
                if indicator not in _PURE_BUILTINS:
                    return False
    return True


# -- static loop inference ----------------------------------------------------


def _indicator(atom):
    if isinstance(atom, Struct):
        return (atom.functor, atom.arity)
    return (atom.name, 0)


def _term_nodes(term):
    count = 0
    stack = [term]
    while stack:
        current = stack.pop()
        count += 1
        if isinstance(current, Struct):
            stack.extend(current.args)
    return count


def _variant_key(head, body):
    names = {}

    def canonical(term):
        if isinstance(term, Var):
            index = names.setdefault(term.name, len(names))
            return "_%d" % index
        if isinstance(term, Struct):
            return "%s(%s)" % (
                term.functor, ",".join(canonical(a) for a in term.args)
            )
        return "a:%r" % (term.name,)

    return canonical(head) + "<-" + canonical(body)


def leftmost_binary_clauses(program):
    """The program's leftmost binary clauses ``H <- B1``."""
    pairs = []
    for clause in program.clauses:
        if not clause.body:
            continue
        first = clause.body[0]
        if not first.positive:
            continue
        if first.indicator in BUILTIN_PREDICATES:
            continue
        pairs.append((clause.head, first.atom))
    return pairs


def find_static_loops(program, compose_limit=DEFAULT_COMPOSE_LIMIT):
    """Loops among the budgeted composition closure of the leftmost
    binary clauses: derived pairs ``(H, B)`` with ``B`` an instance of
    ``H``.  Sound: every instance of ``H`` diverges."""
    base = leftmost_binary_clauses(program)
    by_indicator = {}
    for head, body in base:
        by_indicator.setdefault(_indicator(head), []).append((head, body))
    seen = set()
    queue = []
    for pair in base:
        key = _variant_key(*pair)
        if key not in seen:
            seen.add(key)
            queue.append(pair)
    loops = []
    explored = 0
    index = 0
    while index < len(queue) and explored < compose_limit:
        head, body = queue[index]
        index += 1
        explored += 1
        if _indicator(head) == _indicator(body) and is_instance_of(body, head):
            loops.append((head, body))
            continue  # already a loop; composing further adds nothing
        for head2, body2 in by_indicator.get(_indicator(body), ()):
            renamed = rename_apart(Clause(head=head2, body=(Literal(body2),)))
            theta = unify(body, renamed.head, {}, occurs_check=True)
            if theta is None:
                continue
            derived = (
                apply_subst(head, theta),
                apply_subst(renamed.body[0].atom, theta),
            )
            if (_term_nodes(derived[0]) + _term_nodes(derived[1])
                    > DEFAULT_TERM_NODE_LIMIT):
                continue
            key = _variant_key(*derived)
            if key not in seen:
                seen.add(key)
                queue.append(derived)
    return loops


def _loop_witness(head, mode):
    """A mode-compliant diverging query from a loop head, or None.

    Free positions must be distinct variables disjoint from the bound
    positions (so grounding the bound part leaves them free); every
    variable reachable from a bound position is grounded with a fresh
    constant — any instance of the loop head diverges, so any
    grounding works.
    """
    args = head.args if isinstance(head, Struct) else ()
    if len(args) != len(mode):
        return None
    occurrences = {}
    for var in head.variables():
        occurrences[var] = occurrences.get(var, 0) + 1
    grounding = {}
    fresh = itertools.count()
    for arg, polarity in zip(args, mode):
        if polarity == "f":
            if not isinstance(arg, Var) or occurrences.get(arg, 0) != 1:
                return None
        else:
            for var in term_variables(arg):
                if var not in grounding:
                    grounding[var] = Atom("w%d" % next(fresh))
    for arg, polarity in zip(args, mode):
        if polarity == "f":
            if arg in grounding:
                return None  # bound grounding leaked into a free position
    return apply_subst(head, grounding)


# -- dynamic ancestor subsumption ---------------------------------------------


class LoopFound(Exception):
    """Raised inside the hunting engine when the current call subsumes
    an open ancestor — evidence of an infinite SLD branch."""

    def __init__(self, goal, ancestor):
        super().__init__("looping derivation: %s recurs above %s"
                         % (ancestor, goal))
        self.goal = goal
        self.ancestor = ancestor


class LoopingSLDEngine(SLDEngine):
    """SLD engine instrumented with the ancestor-subsumption check.

    The ancestor stack tracks *open* calls only: a call's entry is
    removed while its solution is handed to the continuation (where
    sibling goals run) and restored when backtracking re-enters it —
    otherwise a sibling could be mistaken for an ancestor and the
    subsumption argument would not apply.
    """

    def __init__(self, program, occurs_check=False):
        super().__init__(program, occurs_check=occurs_check)
        self._ancestors = []

    def _call(self, atom, indicator, subst, depth):
        snapshot = apply_subst(atom, subst)
        for ancestor_indicator, ancestor in self._ancestors:
            if ancestor_indicator != indicator:
                continue
            if is_instance_of(ancestor, snapshot):
                raise LoopFound(snapshot, ancestor)
        entry = (indicator, snapshot)
        inner = super()._call(atom, indicator, subst, depth)
        self._ancestors.append(entry)
        try:
            while True:
                try:
                    value = next(inner)
                except StopIteration:
                    return
                self._ancestors.pop()
                try:
                    yield value
                finally:
                    self._ancestors.append(entry)
        finally:
            self._ancestors.pop()


def hunt_looping_derivation(program, query_atom,
                            max_depth=DEFAULT_ENGINE_DEPTH,
                            max_steps=DEFAULT_ENGINE_STEPS):
    """Drive the instrumented engine at *query_atom*; the
    :class:`LoopFound` evidence, or None within budget."""
    engine = LoopingSLDEngine(program)
    try:
        engine.solve(
            [Literal(query_atom)], max_depth=max_depth, max_steps=max_steps
        )
    except LoopFound as loop:
        return loop
    except (EngineLimitError, UnificationError):
        return None
    return None


# -- the method ---------------------------------------------------------------


@register_method
class NonTerminationMethod(TerminationMethod):
    """Hunt for a looping derivation; three-valued DISPROVED/UNKNOWN."""

    name = "nonterm"
    cost = 30

    def __init__(self, compose_limit=DEFAULT_COMPOSE_LIMIT,
                 engine_steps=DEFAULT_ENGINE_STEPS,
                 engine_depth=DEFAULT_ENGINE_DEPTH):
        self.compose_limit = int(compose_limit)
        self.engine_steps = int(engine_steps)
        self.engine_depth = int(engine_depth)

    def analyze(self, program, root, mode, settings=None,
                certificate_cache=None, request_id=None, state=None):
        settings = settings or AnalyzerSettings()
        root = tuple(root)
        mode = str(mode)
        trace = AnalysisTrace()
        attrs = dict(root="%s/%d" % root, mode=mode, method=self.name)
        if request_id is not None:
            attrs["request_id"] = str(request_id)
        with trace.span("analyze", **attrs):
            graph, nodes = adorned_call_graph(program, root, mode)
            root_node = next(
                (node for node in nodes if node.indicator == root), None
            )
            members = (root_node,) if root_node is not None else ()
            if not is_pure_program(program):
                return self._result(
                    program, root, mode, UNKNOWN,
                    "program uses cut, negation, or a non-monotone "
                    "builtin; the loop criteria would be unsound under "
                    "pruning", members, nodes, settings, trace,
                )
            with trace.span("nonterm.static"):
                loops = find_static_loops(
                    program, compose_limit=self.compose_limit
                )
            verdict = self._decide(program, root, mode, loops, trace)
            if verdict is not None:
                status, reason = verdict
            else:
                status, reason = UNKNOWN, (
                    "no looping derivation found within budget "
                    "(%d derived binary clauses, %d engine steps)"
                    % (self.compose_limit, self.engine_steps)
                )
            return self._result(
                program, root, mode, status, reason, members, nodes,
                settings, trace,
            )

    def _result(self, program, root, mode, status, reason, members, nodes,
                settings, trace):
        return AnalysisResult(
            program=program,
            root=root,
            root_mode=mode,
            status=status,
            scc_results=[SCCResult(
                members=members,
                status=status,
                reason=reason,
                method=self.name,
            )],
            nodes=tuple(nodes),
            environment=None,
            norm=settings.norm,
            trace=trace,
            method=self.name,
        )

    def _decide(self, program, root, mode, loops, trace):
        """(status, reason) when a loop disproves the root, else None."""
        # 1. Static root loops with a mode-compliant witness disprove
        #    outright; the engine confirms when the budget allows.
        for head, body in loops:
            if _indicator(head) != root:
                continue
            witness = _loop_witness(head, mode)
            if witness is None:
                continue
            with trace.span("nonterm.dynamic", query=str(witness)):
                confirmed = hunt_looping_derivation(
                    program, witness,
                    max_depth=self.engine_depth,
                    max_steps=self.engine_steps,
                )
            reason = (
                "looping derivation: %s calls %s (instance of its own "
                "head); diverging witness query %s%s"
                % (
                    head, body, witness,
                    " [confirmed by SLD engine]" if confirmed else "",
                )
            )
            return DISPROVED, reason
        # 2. Loops in other predicates (or mode-incompatible heads)
        #    disprove only if a concrete root query demonstrably
        #    reaches one — probe with program-derived ground terms.
        for query in self._probe_queries(program, root, mode):
            with trace.span("nonterm.dynamic", query=str(query)):
                loop = hunt_looping_derivation(
                    program, query,
                    max_depth=self.engine_depth,
                    max_steps=self.engine_steps,
                )
            if loop is not None:
                return DISPROVED, (
                    "looping derivation under query %s: call %s subsumes "
                    "its open ancestor %s" % (query, loop.goal, loop.ancestor)
                )
        return None

    def _probe_queries(self, program, root, mode):
        """Concrete root queries built from ground terms the program
        itself mentions (bound positions), free variables elsewhere."""
        ground_terms = []
        seen = set()
        for clause in program.clauses:
            atoms = [clause.head] + [lit.atom for lit in clause.body]
            for atom in atoms:
                for arg in (atom.args if isinstance(atom, Struct) else ()):
                    if arg.is_ground() and arg not in seen:
                        seen.add(arg)
                        ground_terms.append(arg)
        if not ground_terms:
            ground_terms = [Atom("w0")]
        candidates = ground_terms[:_PROBE_TERMS_PER_POSITION]
        name, arity = root
        position_choices = [
            candidates if polarity == "b" else [None] for polarity in mode
        ]
        queries = []
        for combo in itertools.product(*position_choices):
            if len(queries) >= _PROBE_QUERY_LIMIT:
                break
            args = []
            for position, term in enumerate(combo):
                if term is None:
                    args.append(Var("Q%d" % position))
                else:
                    args.append(term)
            queries.append(
                Struct(name, tuple(args)) if args else Atom(name)
            )
        return queries
