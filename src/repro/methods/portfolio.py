"""Per-SCC portfolio driver: cheapest prover first, first conclusive
answer wins, provenance recorded per SCC.

Stage order (by method ``cost``):

1. ``argsize`` — the paper's certifying analysis, run first and in
   full (it also benefits from the certificate cache; its sub-run uses
   ``method="argsize"`` settings, so cache entries are shared with
   standalone argsize runs).  PROVED ends the race.
2. ``sizechange`` — attempted when argsize leaves SCCs unproved; any
   SCC it rescues replaces the failing entry (provenance
   ``method="sizechange"``).  All SCCs proved ends the race PROVED.
3. ``nonterm`` — attempted last; a looping derivation upgrades the
   verdict to DISPROVED with the looping goal as the reason.

Budget semantics are *cooperative*: each sub-method carries its own
operation budgets (closure caps, LP-call caps, engine step/depth
budgets — see the method constructors), and the portfolio checks its
wall-clock ``budget`` (seconds, None = unlimited) before *entering*
each stage after the first; an exhausted budget skips the remaining
stages rather than preempting a running one.  Hard preemption stays
one layer up (``repro-analyze --timeout``, the serve deadline).

The merged result reports ``method="portfolio"`` with per-SCC
``SCCResult.method`` provenance naming the prover that decided each
SCC; sub-method attempts are instrumented through the standard
``method.<name>.*`` metrics.
"""

from __future__ import annotations

from time import perf_counter

from repro.core.analyzer import AnalyzerSettings
from repro.core.pipeline import (
    DISPROVED,
    PROVED,
    UNKNOWN,
    AnalysisResult,
    AnalysisTrace,
)
from repro.methods.base import (
    TerminationMethod,
    get_method,
    observed_analyze,
    register_method,
)


@register_method
class PortfolioMethod(TerminationMethod):
    """Race argsize, sizechange, and nonterm; record who decided."""

    name = "portfolio"
    cost = 40

    def __init__(self, budget=None, sizechange=None, nonterm=None):
        self.budget = budget
        self.sizechange_options = dict(sizechange or {})
        self.nonterm_options = dict(nonterm or {})

    def _members(self, state):
        if state is None:
            state = {}
        methods = state.get("portfolio.methods")
        if methods is None:
            methods = {
                "argsize": get_method("argsize"),
                "sizechange": get_method(
                    "sizechange", **self.sizechange_options
                ),
                "nonterm": get_method("nonterm", **self.nonterm_options),
            }
            state["portfolio.methods"] = methods
        return methods, state

    def analyze(self, program, root, mode, settings=None,
                certificate_cache=None, request_id=None, state=None):
        settings = settings or AnalyzerSettings()
        methods, state = self._members(state)
        root = tuple(root)
        mode = str(mode)
        started = perf_counter()
        sub_results = []

        def attempt(name):
            result = observed_analyze(
                methods[name], program, root, mode, settings=settings,
                certificate_cache=(
                    certificate_cache if name == "argsize" else None
                ),
                request_id=request_id, state=state,
            )
            sub_results.append(result)
            return result

        def out_of_budget():
            return (
                self.budget is not None
                and perf_counter() - started >= self.budget
            )

        argsize = attempt("argsize")
        merged = list(argsize.scc_results)
        for scc in merged:
            scc.method = scc.method or "argsize"
        status = argsize.status
        skipped = []

        if status != PROVED:
            if out_of_budget():
                skipped.append("sizechange")
            else:
                sizechange = attempt("sizechange")
                rescued = {
                    frozenset(r.members): r
                    for r in sizechange.scc_results if r.proved
                }
                merged = [
                    r if r.proved
                    else rescued.get(frozenset(r.members), r)
                    for r in merged
                ]
                if all(r.proved for r in merged):
                    status = PROVED

        if status != PROVED:
            if out_of_budget():
                skipped.append("nonterm")
            else:
                nonterm = attempt("nonterm")
                if nonterm.status == DISPROVED:
                    status = DISPROVED
                    disproved = [
                        r for r in nonterm.scc_results
                        if r.status == DISPROVED
                    ]
                    merged = [r for r in merged if r.proved] + disproved

        if status not in (PROVED, DISPROVED):
            status = UNKNOWN
            if skipped:
                for result in merged:
                    if not result.proved and result.reason:
                        result.reason += (
                            " [portfolio budget exhausted; skipped: %s]"
                            % ", ".join(skipped)
                        )
                        break

        trace = AnalysisTrace()
        attrs = dict(root="%s/%d" % root, mode=mode, method=self.name)
        if request_id is not None:
            attrs["request_id"] = str(request_id)
        with trace.span("analyze", **attrs) as span:
            span.set(
                status=status,
                attempted=",".join(r.method for r in sub_results),
            )
        for sub in sub_results:
            if sub.trace is not None:
                trace.merge(sub.trace)
        return AnalysisResult(
            program=program,
            root=root,
            root_mode=mode,
            status=status,
            scc_results=merged,
            nodes=argsize.nodes,
            environment=argsize.environment,
            norm=argsize.norm,
            trace=trace,
            method=self.name,
        )
