"""``python -m repro.trace_cli`` — the ``repro-trace`` renderer.

Thin wrapper so the trace viewer is reachable without an installed
console script (CI and editable checkouts run it this way).
"""

from __future__ import annotations

import sys

from repro.cli import trace_main

if __name__ == "__main__":
    sys.exit(trace_main())
