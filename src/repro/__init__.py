"""repro — termination detection in logic programs via argument sizes.

A complete reimplementation of Sohn & Van Gelder, *Termination
Detection in Logic Programs using Argument Sizes* (PODS 1991),
including every substrate the paper depends on:

- a Prolog-subset front end and SLD engine (:mod:`repro.lp`),
- exact rational linear algebra — Fourier–Motzkin elimination and a
  two-phase simplex (:mod:`repro.linalg`),
- automatic inter-argument constraint inference, the paper's [VG90]
  import (:mod:`repro.interarg`),
- the Appendix A syntactic transformations (:mod:`repro.transform`),
- the termination analyzer itself (:mod:`repro.core`), and
- executable baselines from the earlier literature
  (:mod:`repro.baselines`).

Quickstart
----------
>>> from repro import analyze
>>> result = analyze('''
...     append([], Ys, Ys).
...     append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).
... ''', root=("append", 3), mode="bbf")
>>> result.status
'PROVED'
"""

from repro.lp import Program, SLDEngine, parse_program, parse_term
from repro.core import (
    AnalysisResult,
    AnalyzerSettings,
    TerminationAnalyzer,
    TerminationProof,
    analyze_program,
    verify_proof,
)
from repro.core.report import render_report
from repro.interarg import SizeEnvironment, infer_interargument_constraints
from repro.transform import normalize_program

__version__ = "0.1.0"


def analyze(program, root, mode, settings=None):
    """Analyze a program (text or :class:`~repro.lp.Program`).

    Thin alias of :func:`repro.core.analyzer.analyze_program` exposed at
    the package root.
    """
    return analyze_program(program, root, mode, settings=settings)


__all__ = [
    "Program",
    "SLDEngine",
    "parse_program",
    "parse_term",
    "AnalysisResult",
    "AnalyzerSettings",
    "TerminationAnalyzer",
    "TerminationProof",
    "analyze",
    "analyze_program",
    "verify_proof",
    "render_report",
    "SizeEnvironment",
    "infer_interargument_constraints",
    "normalize_program",
    "__version__",
]
