"""Min-plus (tropical) closure via Floyd's algorithm.

Section 6.1: with the theta values as edge weights on the dependency
graph, the analyzer computes the min-plus closure and rejects the SCC if
any cycle has non-positive total weight (a zero-weight cycle is "strong
evidence of nontermination").
"""

from __future__ import annotations

from repro.obs import METRICS

#: Sentinel for "no path".
INFINITY = None


def min_plus_closure(nodes, weights):
    """All-pairs shortest path lengths under (min, +).

    *nodes* is a sequence of hashable node ids; *weights* maps
    ``(u, v)`` to a numeric edge weight (missing pairs mean no edge).
    Returns a dict ``dist[(u, v)]`` with :data:`INFINITY` (None) for
    unreachable pairs.  Handles negative weights; with a negative cycle,
    distances are still the Floyd–Warshall fixpoint after |V| rounds
    (callers should use :func:`has_nonpositive_cycle`).
    """
    nodes = list(nodes)
    if METRICS.enabled:
        METRICS.counter("theta.closure.calls").inc()
        METRICS.counter("theta.closure.iterations").inc(len(nodes))
    dist = {}
    for u in nodes:
        for v in nodes:
            dist[(u, v)] = weights.get((u, v), INFINITY)
    for k in nodes:
        for i in nodes:
            through_k = dist[(i, k)]
            if through_k is INFINITY:
                continue
            for j in nodes:
                tail = dist[(k, j)]
                if tail is INFINITY:
                    continue
                candidate = through_k + tail
                current = dist[(i, j)]
                if current is INFINITY or candidate < current:
                    dist[(i, j)] = candidate
    return dist


def has_nonpositive_cycle(nodes, weights, strict_zero=False):
    """True if some cycle's total weight is <= 0 (or == 0 if strict).

    With ``strict_zero=True``, only *exactly zero* weight cycles
    count — used when negative weights have already been excluded.
    """
    dist = min_plus_closure(nodes, weights)
    for node in nodes:
        self_distance = dist[(node, node)]
        if self_distance is INFINITY:
            continue
        if strict_zero:
            if self_distance == 0:
                return True
        elif self_distance <= 0:
            return True
    return False


def find_nonpositive_cycle(nodes, weights):
    """Return a witness cycle of non-positive weight, or None.

    The witness is a list of nodes ``[n0, n1, ..., n0]``.  For each
    start node, a hop-bounded dynamic program computes the cheapest
    walk of exactly ``h`` edges (``h <= |V|``) with parent pointers; a
    closed walk of non-positive weight then reconstructs exactly (the
    classic Floyd–Warshall successor-matrix trick mis-reconstructs when
    an inner negative loop corrupts the distances).
    """
    nodes = list(nodes)
    hop_limit = len(nodes)
    rounds = 0
    if METRICS.enabled:
        METRICS.counter("theta.closure.calls").inc()
    try:
        for start in nodes:
            # best[h][v] = cheapest walk start -> v using exactly h edges.
            best = {0: {start: 0}}
            parent = {}
            for hops in range(1, hop_limit + 1):
                rounds += 1
                layer = {}
                for (u, v), weight in weights.items():
                    previous = best[hops - 1].get(u)
                    if previous is None:
                        continue
                    candidate = previous + weight
                    if v not in layer or candidate < layer[v]:
                        layer[v] = candidate
                        parent[(hops, v)] = u
                best[hops] = layer
                if layer.get(start) is not None and layer[start] <= 0:
                    cycle = [start]
                    node = start
                    for h in range(hops, 0, -1):
                        node = parent[(h, node)]
                        cycle.append(node)
                    cycle.reverse()
                    return cycle
        return None
    finally:
        if METRICS.enabled and rounds:
            METRICS.counter("theta.closure.iterations").inc(rounds)
