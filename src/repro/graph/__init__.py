"""Graph substrate: digraphs, SCCs, min-plus closure.

Supports Section 2.3 (predicate dependency graphs and their strongly
connected components) and Section 6.1 (min-plus closure of the
theta-weighted dependency graph, checked for zero-weight cycles).
"""

from repro.graph.digraph import Digraph
from repro.graph.scc import condensation, strongly_connected_components
from repro.graph.minplus import min_plus_closure, has_nonpositive_cycle

__all__ = [
    "Digraph",
    "condensation",
    "strongly_connected_components",
    "min_plus_closure",
    "has_nonpositive_cycle",
]
