"""Strongly connected components (iterative Tarjan) and condensation.

The analyzer processes one SCC of interdependent predicates at a time,
lower SCCs first (Section 2.3), so
:func:`strongly_connected_components` returns components in reverse
topological order of the condensation — every component precedes the
components that depend on it.
"""

from __future__ import annotations

from repro.graph.digraph import Digraph


def strongly_connected_components(graph):
    """Return SCCs of *graph* as tuples of nodes, lower SCCs first.

    "Lower first" means: if any node of component A has an edge into
    component B (A depends on B), then B appears before A.  Tarjan's
    algorithm emits components in exactly this order.
    """
    index_counter = [0]
    index = {}
    lowlink = {}
    on_stack = set()
    stack = []
    components = []

    for root in graph.nodes:
        if root in index:
            continue
        # Iterative Tarjan: work items are (node, iterator over successors).
        work = [(root, iter(sorted(graph.successors(root), key=repr)))]
        index[root] = lowlink[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index:
                    index[successor] = lowlink[successor] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append(
                        (
                            successor,
                            iter(sorted(graph.successors(successor), key=repr)),
                        )
                    )
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(tuple(component))
    return components


def condensation(graph):
    """Return (components, dag) where *dag* is the component graph.

    Component nodes in the DAG are their index into *components*.
    """
    components = strongly_connected_components(graph)
    component_of = {}
    for i, component in enumerate(components):
        for node in component:
            component_of[node] = i
    dag = Digraph()
    for i in range(len(components)):
        dag.add_node(i)
    for source, target in graph.edges():
        a, b = component_of[source], component_of[target]
        if a != b:
            dag.add_edge(a, b)
    return components, dag


def is_recursive_component(graph, component):
    """A component is recursive if it has >1 node or a self-loop."""
    if len(component) > 1:
        return True
    node = component[0]
    return graph.has_edge(node, node)


def topological_order(dag):
    """Topological order of an acyclic digraph (raises on cycles)."""
    in_degree = {node: len(dag.predecessors(node)) for node in dag.nodes}
    ready = [node for node, degree in in_degree.items() if degree == 0]
    order = []
    while ready:
        node = ready.pop()
        order.append(node)
        for successor in dag.successors(node):
            in_degree[successor] -= 1
            if in_degree[successor] == 0:
                ready.append(successor)
    if len(order) != len(dag):
        raise ValueError("graph has a cycle; no topological order")
    return order
