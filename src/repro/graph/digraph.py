"""A minimal directed-graph value type with hashable nodes."""

from __future__ import annotations


class Digraph:
    """Directed graph over hashable nodes; parallel edges collapse."""

    def __init__(self):
        self._successors = {}
        self._predecessors = {}

    # -- construction --------------------------------------------------------

    def add_node(self, node):
        """Insert *node* (idempotent)."""
        if node not in self._successors:
            self._successors[node] = set()
            self._predecessors[node] = set()

    def add_edge(self, source, target):
        """Insert the edge source -> target (nodes auto-created)."""
        self.add_node(source)
        self.add_node(target)
        self._successors[source].add(target)
        self._predecessors[target].add(source)

    @classmethod
    def from_edges(cls, edges, nodes=()):
        """Build a graph from an edge iterable (plus isolated *nodes*)."""
        graph = cls()
        for node in nodes:
            graph.add_node(node)
        for source, target in edges:
            graph.add_edge(source, target)
        return graph

    # -- access ---------------------------------------------------------------

    @property
    def nodes(self):
        """Every node, in insertion order."""
        return tuple(self._successors)

    def successors(self, node):
        """Direct successors of *node*."""
        return frozenset(self._successors[node])

    def predecessors(self, node):
        """Direct predecessors of *node*."""
        return frozenset(self._predecessors[node])

    def edges(self):
        """Yield every (source, target) edge."""
        for source, targets in self._successors.items():
            for target in targets:
                yield (source, target)

    def has_edge(self, source, target):
        """True if the edge source -> target exists."""
        return source in self._successors and target in self._successors[source]

    def has_node(self, node):
        """True if *node* is in the graph."""
        return node in self._successors

    def __len__(self):
        return len(self._successors)

    def __contains__(self, node):
        return node in self._successors

    def subgraph(self, nodes):
        """Induced subgraph on *nodes*."""
        keep = set(nodes)
        graph = Digraph()
        for node in self._successors:
            if node in keep:
                graph.add_node(node)
        for source, target in self.edges():
            if source in keep and target in keep:
                graph.add_edge(source, target)
        return graph

    def reversed(self):
        """A new graph with every edge flipped."""
        graph = Digraph()
        for node in self._successors:
            graph.add_node(node)
        for source, target in self.edges():
            graph.add_edge(target, source)
        return graph
